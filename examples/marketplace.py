"""The paper's running example, end to end (Figure 1, Queries 1-5).

Builds the marketplace graph of Figure 1, then replays every numbered
query from Sections 2-3 of the paper under the legacy Cypher 9 dialect,
printing the graph after each step.

Run with:  python examples/marketplace.py
"""

from repro import Dialect, Graph
from repro.errors import UpdateError
from repro.paper import (
    QUERY_1,
    QUERY_2,
    QUERY_3,
    QUERY_4,
    QUERY_5,
    figure1_graph,
)
from repro.tools.render import to_text


def show(title: str, graph: Graph) -> None:
    print(f"\n=== {title} ===")
    print(to_text(graph.store))


def main() -> None:
    g = Graph(Dialect.CYPHER9, store=figure1_graph())
    show("Figure 1 (solid lines)", g)

    print(f"\nQuery (1): {QUERY_1}")
    result = g.run(QUERY_1)
    print(result.pretty())

    print(f"\nQuery (2): {QUERY_2}")
    result = g.run(QUERY_2)
    print(f"  -> {result.counters}")
    show("After Query (2): node p4 added (dotted in Figure 1)", g)

    print(f"\nQuery (3): {QUERY_3}")
    g.run(QUERY_3)
    show("After Query (3): p4 relabeled :Product with id 120", g)

    print("\nPlain DELETE of the connected product must fail:")
    try:
        g.run("MATCH (p:Product{id:120}) DELETE p")
    except UpdateError as error:
        print(f"  rejected: {error}")

    print(f"\nQuery (4): {QUERY_4}")
    g.run(QUERY_4)
    show("After Query (4): back to Figure 1", g)

    print(f"\nQuery (5): {QUERY_5}")
    result = g.run(QUERY_5)
    print(result.pretty())
    print(f"  -> {result.counters}  (v2 and its OFFERS are the dashes)")
    show("After Query (5): every product now has a vendor", g)

    check = g.run(
        "MATCH (p:Product) WHERE NOT (p)<-[:OFFERS]-(:Vendor) "
        "RETURN count(p) AS unoffered"
    )
    print(f"\nProducts without a vendor: {check.records[0]['unoffered']}")


if __name__ == "__main__":
    main()
