"""The five MERGE proposals of Section 6 on the paper's own tables.

Replays Examples 5, 6 and 7 (Figures 7, 8, 9) under all five proposed
semantics -- Atomic, Grouping, Weak Collapse, Collapse, Strong Collapse
-- and prints the resulting graph shapes next to the paper's figures.

Run with:  python examples/merge_design_space.py
"""

from repro import Dialect, Graph, MergeSemantics
from repro.core.merge import merge
from repro.parser import parse
from repro.paper import (
    EXAMPLE_5_PATTERN,
    EXAMPLE_6_PATTERN,
    EXAMPLE_7_PATTERN,
    example5_table,
    example6_table,
    example7_graph_and_table,
)
from repro.runtime.context import EvalContext
from repro.tools.render import to_text


def pattern_of(source: str):
    statement = parse(
        "MERGE ALL " + source, Dialect.REVISED, extended_merge=True
    )
    return statement.branches()[0].clauses[0].pattern


def sweep(title, pattern_source, make_graph_and_table, expectations):
    print(f"\n=== {title} ===")
    print(f"pattern: {pattern_source}")
    for semantics in MergeSemantics:
        graph, table = make_graph_and_table()
        ctx = EvalContext(store=graph.store)
        merge(ctx, pattern_of(pattern_source), table, semantics)
        snapshot = graph.snapshot()
        expected = expectations[semantics]
        print(
            f"  {semantics.value:16s}: {snapshot.order():3d} nodes, "
            f"{snapshot.size():2d} relationships   (paper: {expected})"
        )
    return graph


def main() -> None:
    print("Driving table of Example 5 (cid / pid / date):")
    print(example5_table().pretty())
    sweep(
        "Example 5 / Figure 7",
        EXAMPLE_5_PATTERN,
        lambda: (Graph(Dialect.REVISED), example5_table()),
        {
            MergeSemantics.ATOMIC: "Fig 7a: 12 nodes, 6 rels",
            MergeSemantics.GROUPING: "Fig 7b: 8 nodes, 4 rels",
            MergeSemantics.WEAK_COLLAPSE: "Fig 7c: 4 nodes, 4 rels",
            MergeSemantics.COLLAPSE: "Fig 7c: 4 nodes, 4 rels",
            MergeSemantics.STRONG_COLLAPSE: "Fig 7c: 4 nodes, 4 rels",
        },
    )

    sweep(
        "Example 6 / Figure 8",
        EXAMPLE_6_PATTERN,
        lambda: (Graph(Dialect.REVISED), example6_table()),
        {
            MergeSemantics.ATOMIC: "Fig 8a: 6 nodes",
            MergeSemantics.GROUPING: "Fig 8a: 6 nodes",
            MergeSemantics.WEAK_COLLAPSE: "Fig 8a: 6 nodes",
            MergeSemantics.COLLAPSE: "Fig 8b: 5 nodes",
            MergeSemantics.STRONG_COLLAPSE: "Fig 8b: 5 nodes",
        },
    )

    def example7():
        store, table = example7_graph_and_table()
        return Graph(Dialect.REVISED, store=store), table

    last = sweep(
        "Example 7 / Figure 9",
        EXAMPLE_7_PATTERN,
        example7,
        {
            MergeSemantics.ATOMIC: "Fig 9a: 5 rels",
            MergeSemantics.GROUPING: "Fig 9a: 5 rels",
            MergeSemantics.WEAK_COLLAPSE: "Fig 9a: 5 rels",
            MergeSemantics.COLLAPSE: "Fig 9a: 5 rels",
            MergeSemantics.STRONG_COLLAPSE: "Fig 9b: 4 rels",
        },
    )
    print("\nFigure 9b graph produced by Strong Collapse:")
    print(to_text(last.store))

    # The extended syntax makes the unshipped variants directly usable:
    g = Graph(Dialect.REVISED, extended_merge=True)
    g.run(
        "UNWIND [{c: 1, p: 1}, {c: 1, p: 1}, {c: 2, p: 1}] AS row "
        "MERGE GROUPING (:User {id: row.c})-[:ORDERED]->(:Product {id: row.p})"
    )
    print(
        f"\nMERGE GROUPING via the extended syntax: {g.node_count()} nodes, "
        f"{g.relationship_count()} relationships (duplicates grouped)"
    )


if __name__ == "__main__":
    main()
