"""Quickstart: create, query and update a property graph with Cypher.

Run with:  python examples/quickstart.py
"""

from repro import Dialect, Graph


def main() -> None:
    # A graph speaking the paper's revised dialect (the default).
    g = Graph(Dialect.REVISED)

    # -- Create some data ------------------------------------------------
    g.run("CREATE (:User {id: 89, name: 'Bob'})")
    g.run("CREATE (:User {id: 99, name: 'Jane'})")
    g.run(
        "MATCH (u:User {id: 89}) "
        "CREATE (u)-[:ORDERED {qty: 1}]->(:Product {name: 'laptop'})"
    )

    # -- Query it ---------------------------------------------------------
    result = g.run(
        "MATCH (u:User)-[o:ORDERED]->(p:Product) "
        "RETURN u.name AS user, p.name AS product, o.qty AS qty"
    )
    print("Orders:")
    print(result.pretty())

    # -- Parameters and aggregation ---------------------------------------
    result = g.run(
        "MATCH (u:User) WHERE u.id >= $min "
        "RETURN count(*) AS users, collect(u.name) AS names",
        min=0,
    )
    print("\nUser stats:")
    print(result.pretty())

    # -- Updates are statement-atomic --------------------------------------
    update = g.run(
        "MATCH (u:User {name: 'Jane'}) SET u.vip = true, u.score = 10"
    )
    print(f"\nUpdated: {update.counters}")

    # -- MERGE, the revised way --------------------------------------------
    # MERGE SAME creates the minimal missing subgraph: re-running it is a
    # no-op for rows that now match.
    for _ in range(2):
        g.run(
            "UNWIND [{c: 89, p: 'tablet'}, {c: 99, p: 'tablet'}] AS row "
            "MERGE SAME (:User2 {id: row.c})-[:WANTS]->(:Product2 {name: row.p})"
        )
    result = g.run("MATCH (p:Product2) RETURN count(p) AS tablet_nodes")
    print("\nAfter two identical MERGE SAME imports:")
    print(result.pretty())

    # -- Transactions -------------------------------------------------------
    try:
        with g.transaction():
            g.run("CREATE (:Audit {note: 'will be rolled back'})")
            raise RuntimeError("something went wrong")
    except RuntimeError:
        pass
    audit = g.run("MATCH (a:Audit) RETURN count(a) AS remaining")
    print("\nAudit rows after rolled-back transaction:")
    print(audit.pretty())

    print(f"\nFinal graph: {g}")


if __name__ == "__main__":
    main()
