"""Synchronous bulk updates: what atomic SET buys you.

A classic parallel-computation idiom: every node simultaneously reads a
neighbour's value and writes its own ("rotate the values around the
ring").  Under the paper's atomic SET this is one Cypher statement --
all reads happen against the input graph, all writes land at once.
Under Cypher 9's per-record SET the same statement is *asynchronous*:
early writes are visible to later records, so one value floods the ring
and the result depends on match order.

Run with:  python examples/synchronous_updates.py
"""

from repro import Dialect, Graph

RING_SIZE = 6

ROTATE = "MATCH (a:Cell)-[:NEXT]->(b:Cell) SET b.v = a.v"


def build_ring(dialect: Dialect) -> Graph:
    graph = Graph(dialect)
    graph.run(
        "UNWIND range(0, $n - 1) AS i CREATE (:Cell {id: i, v: i})",
        n=RING_SIZE,
    )
    graph.run(
        "MATCH (a:Cell), (b:Cell {id: (a.id + 1) % $n}) "
        "CREATE (a)-[:NEXT]->(b)",
        n=RING_SIZE,
    )
    return graph


def ring_values(graph: Graph) -> list[int]:
    return graph.run(
        "MATCH (c:Cell) RETURN c.v AS v ORDER BY c.id"
    ).values("v")


def main() -> None:
    print(f"a ring of {RING_SIZE} cells, values = ids; statement: {ROTATE}\n")

    revised = build_ring(Dialect.REVISED)
    print(f"start:               {ring_values(revised)}")
    revised.run(ROTATE)
    print(f"revised, 1 rotation: {ring_values(revised)}  (clean shift)")
    for _ in range(RING_SIZE - 1):
        revised.run(ROTATE)
    print(
        f"revised, {RING_SIZE} rotations: {ring_values(revised)}  "
        f"(back to the start -- a true permutation each step)"
    )

    legacy = build_ring(Dialect.CYPHER9)
    legacy.run(ROTATE)
    values = ring_values(legacy)
    print(f"\ncypher9, 1 'rotation': {values}")
    print(
        "  the per-record SET lets early writes cascade through later\n"
        "  records, so some value floods part of the ring; which one\n"
        "  depends entirely on the order the matcher produced."
    )
    distinct = len(set(values))
    print(f"  distinct values remaining: {distinct} (revised keeps {RING_SIZE})")


if __name__ == "__main__":
    main()
