"""Section 4's anomalies, side by side with the Section 7 fixes.

Each scenario is run twice -- once under Dialect.CYPHER9 (the legacy
behaviour the paper diagnoses) and once under Dialect.REVISED (the
decided fix) -- so the difference is directly visible.

Run with:  python examples/update_anomalies.py
"""

from repro import (
    DanglingRelationshipError,
    Dialect,
    Graph,
    PropertyConflictError,
)
from repro.paper import (
    EXAMPLE_1_SWAP,
    EXAMPLE_2_COPY_NAME,
    EXAMPLE_3_MERGE,
    EXAMPLE_3_MERGE_ALL,
    EXAMPLE_3_MERGE_SAME,
    SECTION_4_2_STATEMENT,
    example3_graph,
    example3_table,
    figure1_graph,
    section_4_2_graph,
)


def banner(text: str) -> None:
    print(f"\n{'=' * 66}\n{text}\n{'=' * 66}")


def example_1() -> None:
    banner("Example 1 - swapping two ids with SET")
    print(f"statement: {EXAMPLE_1_SWAP}")
    for dialect in (Dialect.CYPHER9, Dialect.REVISED):
        g = Graph(dialect)
        g.run("CREATE (:Product {name:'laptop', id: 1})")
        g.run("CREATE (:Product {name:'tablet', id: 2})")
        g.run(EXAMPLE_1_SWAP)
        rows = g.run(
            "MATCH (p:Product) RETURN p.name AS name, p.id AS id ORDER BY name"
        )
        outcome = {r["name"]: r["id"] for r in rows}
        verdict = "swap LOST" if outcome["laptop"] == outcome["tablet"] else "swap ok"
        print(f"  {dialect.value:8s}: {outcome}   <- {verdict}")


def example_2() -> None:
    banner("Example 2 - ambiguous SET on dirty data (two products share id 125)")
    print(f"statement: {EXAMPLE_2_COPY_NAME}")
    g9 = Graph(Dialect.CYPHER9, store=figure1_graph())
    g9.run(EXAMPLE_2_COPY_NAME)
    name = g9.run("MATCH (p:Product {id: 85}) RETURN p.name AS n").values("n")[0]
    print(f"  cypher9 : silently wrote {name!r} (whichever record came last)")
    gr = Graph(Dialect.REVISED, store=figure1_graph())
    try:
        gr.run(EXAMPLE_2_COPY_NAME)
    except PropertyConflictError as error:
        print(f"  revised : aborted -> {error}")


def section_4_2() -> None:
    banner("Section 4.2 - updating and returning a deleted node")
    print(f"statement: {SECTION_4_2_STATEMENT}")
    g9 = Graph(Dialect.CYPHER9, store=section_4_2_graph())
    result = g9.run(SECTION_4_2_STATEMENT)
    zombie = result.records[0]["user"]
    print(
        f"  cypher9 : succeeded; returned node has labels={set(zombie.labels)}"
        f" properties={dict(zombie.properties)} (an 'empty node')"
    )
    gr = Graph(Dialect.REVISED, store=section_4_2_graph())
    try:
        gr.run(SECTION_4_2_STATEMENT)
    except DanglingRelationshipError as error:
        print(f"  revised : aborted -> {error}")


def example_3() -> None:
    banner("Example 3 / Figure 6 - MERGE nondeterminism")
    print(f"legacy statement: {EXAMPLE_3_MERGE}")
    for label, reorder in (("top-down ", False), ("bottom-up", True)):
        store = example3_graph()
        g = Graph(Dialect.CYPHER9, store=store)
        table = example3_table(store)
        g.run(EXAMPLE_3_MERGE, table=table.reversed() if reorder else table)
        print(
            f"  cypher9 {label}: {g.relationship_count()} relationships "
            f"({'Figure 6a' if g.relationship_count() == 6 else 'Figure 6b'})"
        )
    for statement, figure in (
        (EXAMPLE_3_MERGE_ALL, "Figure 6a"),
        (EXAMPLE_3_MERGE_SAME, "Figure 6b"),
    ):
        counts = set()
        for seed in range(6):
            store = example3_graph()
            g = Graph(Dialect.REVISED, store=store)
            g.run(statement, table=example3_table(store).shuffled(seed))
            counts.add(g.relationship_count())
        keyword = statement.split("(")[0].strip()
        print(
            f"  revised {keyword}: {sorted(counts)} relationships under six "
            f"shuffles -> always {figure}"
        )


def main() -> None:
    example_1()
    example_2()
    section_4_2()
    example_3()
    print()


if __name__ == "__main__":
    main()
