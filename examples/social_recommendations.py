"""A larger application: product recommendations over a synthetic shop.

Exercises the production-oriented extras on top of the paper's
semantics: uniqueness constraints guarding a MERGE-based import, the
greedy match planner with EXPLAIN output, aggregation pipelines, and a
collaborative-filtering style recommendation query.

Run with:  python examples/social_recommendations.py
"""

from repro import Dialect, Graph
from repro.workloads.generators import MarketplaceConfig, marketplace_graph


def build_shop() -> Graph:
    """A synthetic marketplace with constraints and indexes in place."""
    store = marketplace_graph(
        MarketplaceConfig(
            users=300, vendors=10, products=80, orders=1500,
            offers_per_product=2, seed=42,
        )
    )
    graph = Graph(Dialect.REVISED, use_planner=True, store=store)
    graph.create_unique_constraint("User", "id")
    graph.create_unique_constraint("Product", "id")
    return graph


def main() -> None:
    g = build_shop()
    print(f"shop: {g}")
    print(g.statistics().summary())

    # -- The planner at work ------------------------------------------------
    query = (
        "MATCH (u:User)-[:ORDERED]->(p:Product {id: 7}) "
        "RETURN count(u) AS buyers"
    )
    print("\nEXPLAIN for an asymmetric lookup:")
    print(g.explain(query))
    print(f"-> {g.run(query).single()}")

    # -- Top products -------------------------------------------------------
    top = g.run(
        "MATCH (:User)-[:ORDERED]->(p:Product) "
        "RETURN p.name AS product, count(*) AS orders "
        "ORDER BY orders DESC, product LIMIT 5"
    )
    print("\nTop products:")
    print(top.pretty())

    # -- Also-bought recommendations ----------------------------------------
    recommendations = g.run(
        "MATCH (me:User {id: $uid})-[:ORDERED]->(p:Product)"
        "<-[:ORDERED]-(peer:User)-[:ORDERED]->(rec:Product) "
        "WHERE peer <> me AND NOT (me)-[:ORDERED]->(rec) "
        "RETURN rec.name AS recommendation, count(DISTINCT peer) AS score "
        "ORDER BY score DESC, recommendation LIMIT 5",
        uid=17,
    )
    print("\n'Customers who bought what you bought also bought':")
    print(recommendations.pretty())

    # -- Constraint-guarded import -------------------------------------------
    result = g.run(
        "UNWIND $new_users AS row MERGE SAME (:User {id: row.id})",
        new_users=[{"id": 300}, {"id": 300}, {"id": 301}],
    )
    print(
        f"\nimported new users (deduplicated by MERGE SAME): "
        f"+{result.counters.nodes_created} nodes"
    )
    try:
        g.run("CREATE (:User {id: 300})")
    except Exception as error:
        print(f"duplicate insert rejected by constraint: {error}")

    # -- Vendor revenue pipeline (WITH + aggregation + filter) ----------------
    revenue = g.run(
        "MATCH (v:Vendor)-[:OFFERS]->(p:Product)<-[:ORDERED]-(:User) "
        "WITH v.name AS vendor, sum(p.price) AS revenue "
        "WHERE revenue > 0 "
        "RETURN vendor, revenue ORDER BY revenue DESC LIMIT 3"
    )
    print("\nVendor revenue (orders x listed price):")
    print(revenue.pretty())


if __name__ == "__main__":
    main()
