"""Bulk-loading a graph from CSV -- the workload that motivated MERGE.

The paper's user survey found that MERGE is dominantly used to populate
graphs from relational/CSV exports (nodes first, relationships later).
This example generates a small CSV export of a web shop, imports it with
``LOAD CSV`` + ``MERGE SAME``, and shows that re-importing is a no-op
for the clean rows.

Run with:  python examples/csv_bulk_import.py
"""

import tempfile
from pathlib import Path

from repro import Dialect, Graph
from repro.io.csv_io import write_csv


def generate_export(directory: Path) -> tuple[Path, Path]:
    """Write a users.csv and an orders.csv with duplicates and gaps."""
    users = directory / "users.csv"
    write_csv(
        users,
        ["id", "name", "city"],
        [
            [1, "Bob", "Berlin"],
            [2, "Jane", "Oslo"],
            [2, "Jane", "Oslo"],  # exported twice
            [3, "Ada", None],  # missing city
        ],
    )
    orders = directory / "orders.csv"
    write_csv(
        orders,
        ["user_id", "product", "qty"],
        [
            [1, "laptop", 1],
            [1, "laptop", 1],  # duplicate order line
            [2, "tablet", 2],
            [3, "laptop", 1],
        ],
    )
    return users, orders


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        users_csv, orders_csv = generate_export(Path(tmp))
        g = Graph(Dialect.REVISED)
        g.create_index("User", "id")  # MERGE-friendly index

        # Phase 1: nodes. MERGE SAME deduplicates the doubled Jane row.
        result = g.run(
            f"LOAD CSV WITH HEADERS FROM '{users_csv}' AS row "
            "MERGE SAME (:User {id: toInteger(row.id), name: row.name})"
        )
        print(f"user import:    {result.counters}")

        # Phase 2: products, deduplicated across order lines.
        result = g.run(
            f"LOAD CSV WITH HEADERS FROM '{orders_csv}' AS row "
            "MERGE SAME (:Product {name: row.product})"
        )
        print(f"product import: {result.counters}")

        # Phase 3: relationships between already-loaded endpoints.
        result = g.run(
            f"LOAD CSV WITH HEADERS FROM '{orders_csv}' AS row "
            "MATCH (u:User {id: toInteger(row.user_id)}) "
            "MATCH (p:Product {name: row.product}) "
            "MERGE SAME (u)-[:ORDERED]->(p)"
        )
        print(f"order import:   {result.counters}")

        print(f"\ngraph after import: {g}")
        print(g.statistics().summary())

        # Re-import: everything matches, nothing is created.
        again = g.run(
            f"LOAD CSV WITH HEADERS FROM '{users_csv}' AS row "
            "MERGE SAME (:User {id: toInteger(row.id), name: row.name})"
        )
        print(f"\nre-import of users: contains_updates="
              f"{again.counters.contains_updates}")

        report = g.run(
            "MATCH (u:User)-[:ORDERED]->(p:Product) "
            "RETURN u.name AS user, collect(p.name) AS bought "
            "ORDER BY user"
        )
        print("\nWho bought what:")
        print(report.pretty())


if __name__ == "__main__":
    main()
