"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Keep the property suite fast by default; CI can select the "thorough"
# profile with HYPOTHESIS_PROFILE=thorough.
settings.register_profile(
    "fast",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=500, deadline=None)
settings.load_profile("fast")

from repro import Dialect, Graph
from repro.graph.store import GraphStore
from repro.paper import example3_graph, figure1_graph


@pytest.fixture
def store() -> GraphStore:
    """An empty graph store."""
    return GraphStore()


@pytest.fixture
def legacy_graph() -> Graph:
    """An empty graph speaking the Cypher 9 dialect."""
    return Graph(Dialect.CYPHER9)


@pytest.fixture
def revised_graph() -> Graph:
    """An empty graph speaking the revised dialect."""
    return Graph(Dialect.REVISED)


@pytest.fixture
def extended_graph() -> Graph:
    """Revised dialect with the experimental MERGE variants enabled."""
    return Graph(Dialect.REVISED, extended_merge=True)


@pytest.fixture
def marketplace() -> Graph:
    """The Figure 1 marketplace graph, legacy dialect."""
    return Graph(Dialect.CYPHER9, store=figure1_graph())


@pytest.fixture
def marketplace_revised() -> Graph:
    """The Figure 1 marketplace graph, revised dialect."""
    return Graph(Dialect.REVISED, store=figure1_graph())


@pytest.fixture
def example3() -> Graph:
    """The Example 3 five-node graph, legacy dialect."""
    return Graph(Dialect.CYPHER9, store=example3_graph())
