"""Exact (isomorphism-level) checks of the paper's output figures.

The main experiment tests assert node/relationship counts; these build
each expected output graph explicitly from the paper's drawings and
assert full isomorphism up to id renaming.
"""

import pytest

from repro import Dialect, Graph, MergeSemantics
from repro.core.merge import merge
from repro.graph.comparison import assert_isomorphic
from repro.graph.store import GraphStore
from repro.parser import parse
from repro.paper import (
    EXAMPLE_3_MERGE_ALL,
    EXAMPLE_3_MERGE_SAME,
    EXAMPLE_5_PATTERN,
    EXAMPLE_6_PATTERN,
    EXAMPLE_7_PATTERN,
    example3_graph,
    example3_table,
    example5_table,
    example6_table,
    example7_graph_and_table,
)
from repro.runtime.context import EvalContext


def pattern_of(source):
    statement = parse(
        "MERGE ALL " + source, Dialect.REVISED, extended_merge=True
    )
    return statement.branches()[0].clauses[0].pattern


def run_variant(graph, pattern_source, table, semantics):
    ctx = EvalContext(store=graph.store)
    merge(ctx, pattern_of(pattern_source), table, semantics)
    return graph.snapshot()


class TestFigure6Exact:
    """Figure 6: u1, u2 :User; p :Product; v1, v2 :Vendor (names kept)."""

    def _expected(self, edges):
        store = GraphStore()
        ids = {}
        for name, label in (
            ("u1", "User"),
            ("u2", "User"),
            ("p", "Product"),
            ("v1", "Vendor"),
            ("v2", "Vendor"),
        ):
            ids[name] = store.create_node((label,), {"name": name})
        for source, rel_type, target in edges:
            store.create_relationship(rel_type, ids[source], ids[target])
        return store.snapshot()

    #: Figure 6a: all three rows created their full path.
    FIG_6A = [
        ("u1", "ORDERED", "p"),
        ("v1", "OFFERS", "p"),
        ("u2", "ORDERED", "p"),
        ("v2", "OFFERS", "p"),
        ("u1", "ORDERED", "p"),
        ("v2", "OFFERS", "p"),
    ]

    #: Figure 6b: row 3's path u1 -> p <- v2 was matched, not created.
    FIG_6B = [
        ("u1", "ORDERED", "p"),
        ("v1", "OFFERS", "p"),
        ("u2", "ORDERED", "p"),
        ("v2", "OFFERS", "p"),
    ]

    def test_merge_all_is_exactly_figure_6a(self):
        store = example3_graph()
        graph = Graph(Dialect.REVISED, store=store)
        graph.run(EXAMPLE_3_MERGE_ALL, table=example3_table(store))
        assert_isomorphic(graph.snapshot(), self._expected(self.FIG_6A))

    def test_merge_same_is_exactly_figure_6b(self):
        store = example3_graph()
        graph = Graph(Dialect.REVISED, store=store)
        graph.run(EXAMPLE_3_MERGE_SAME, table=example3_table(store))
        assert_isomorphic(graph.snapshot(), self._expected(self.FIG_6B))

    def test_legacy_outcomes_are_exactly_the_two_figures(self):
        store = example3_graph()
        graph = Graph(Dialect.CYPHER9, store=store)
        graph.run(
            "MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)",
            table=example3_table(store),
        )
        assert_isomorphic(graph.snapshot(), self._expected(self.FIG_6B))
        store2 = example3_graph()
        graph2 = Graph(Dialect.CYPHER9, store=store2)
        graph2.run(
            "MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)",
            table=example3_table(store2).reversed(),
        )
        assert_isomorphic(graph2.snapshot(), self._expected(self.FIG_6A))


def _build(nodes, edges):
    """nodes: name -> (label, props); edges: (src, type, dst)."""
    store = GraphStore()
    ids = {}
    for name, (label, props) in nodes.items():
        ids[name] = store.create_node((label,), dict(props))
    for source, rel_type, target in edges:
        store.create_relationship(rel_type, ids[source], ids[target])
    return store.snapshot()


class TestFigure7Exact:
    def test_figure_7a_atomic(self):
        nodes = {}
        edges = []
        pairs = [(98, 125), (98, 125), (98, None), (98, None), (99, 125), (99, None)]
        for index, (cid, pid) in enumerate(pairs):
            nodes[f"u{index}"] = ("User", {"id": cid})
            nodes[f"p{index}"] = (
                "Product",
                {} if pid is None else {"id": pid},
            )
            edges.append((f"u{index}", "ORDERED", f"p{index}"))
        expected = _build(nodes, edges)
        graph = Graph(Dialect.REVISED)
        snapshot = run_variant(
            graph, EXAMPLE_5_PATTERN, example5_table(), MergeSemantics.ATOMIC
        )
        assert_isomorphic(snapshot, expected)

    def test_figure_7b_grouping(self):
        nodes = {}
        edges = []
        pairs = [(98, 125), (98, None), (99, 125), (99, None)]
        for index, (cid, pid) in enumerate(pairs):
            nodes[f"u{index}"] = ("User", {"id": cid})
            nodes[f"p{index}"] = (
                "Product",
                {} if pid is None else {"id": pid},
            )
            edges.append((f"u{index}", "ORDERED", f"p{index}"))
        expected = _build(nodes, edges)
        graph = Graph(Dialect.REVISED)
        snapshot = run_variant(
            graph, EXAMPLE_5_PATTERN, example5_table(), MergeSemantics.GROUPING
        )
        assert_isomorphic(snapshot, expected)

    @pytest.mark.parametrize(
        "semantics",
        [
            MergeSemantics.WEAK_COLLAPSE,
            MergeSemantics.COLLAPSE,
            MergeSemantics.STRONG_COLLAPSE,
        ],
    )
    def test_figure_7c_collapse_variants(self, semantics):
        expected = _build(
            {
                "u98": ("User", {"id": 98}),
                "u99": ("User", {"id": 99}),
                "p125": ("Product", {"id": 125}),
                "pnull": ("Product", {}),
            },
            [
                ("u98", "ORDERED", "p125"),
                ("u98", "ORDERED", "pnull"),
                ("u99", "ORDERED", "p125"),
                ("u99", "ORDERED", "pnull"),
            ],
        )
        graph = Graph(Dialect.REVISED)
        snapshot = run_variant(
            graph, EXAMPLE_5_PATTERN, example5_table(), semantics
        )
        assert_isomorphic(snapshot, expected)


class TestFigure8Exact:
    def test_figure_8a_weak_collapse(self):
        expected = _build(
            {
                "b98": ("User", {"id": 98}),
                "s97": ("User", {"id": 97}),
                "b99": ("User", {"id": 99}),
                "s98": ("User", {"id": 98}),
                "p125": ("Product", {"id": 125}),
                "p85": ("Product", {"id": 85}),
            },
            [
                ("b98", "ORDERED", "p125"),
                ("s97", "OFFERS", "p125"),
                ("b99", "ORDERED", "p85"),
                ("s98", "OFFERS", "p85"),
            ],
        )
        graph = Graph(Dialect.REVISED)
        snapshot = run_variant(
            graph,
            EXAMPLE_6_PATTERN,
            example6_table(),
            MergeSemantics.WEAK_COLLAPSE,
        )
        assert_isomorphic(snapshot, expected)

    def test_figure_8b_collapse(self):
        expected = _build(
            {
                "u98": ("User", {"id": 98}),
                "u97": ("User", {"id": 97}),
                "u99": ("User", {"id": 99}),
                "p125": ("Product", {"id": 125}),
                "p85": ("Product", {"id": 85}),
            },
            [
                ("u98", "ORDERED", "p125"),
                ("u97", "OFFERS", "p125"),
                ("u99", "ORDERED", "p85"),
                ("u98", "OFFERS", "p85"),
            ],
        )
        graph = Graph(Dialect.REVISED)
        snapshot = run_variant(
            graph,
            EXAMPLE_6_PATTERN,
            example6_table(),
            MergeSemantics.COLLAPSE,
        )
        assert_isomorphic(snapshot, expected)


class TestFigure9Exact:
    def _expected(self, *, strong):
        nodes = {
            name: ("Product", {"name": name})
            for name in ("p1", "p2", "p3", "p4")
        }
        edges = [
            ("p1", "TO", "p2"),
            ("p2", "TO", "p3"),
            ("p3", "TO", "p1"),
            ("p2", "BOUGHT", "p4"),
        ]
        if not strong:
            edges.append(("p1", "TO", "p2"))  # the duplicated edge
        return _build(nodes, edges)

    def test_figure_9a(self):
        store, table = example7_graph_and_table()
        graph = Graph(Dialect.REVISED, store=store)
        snapshot = run_variant(
            graph, EXAMPLE_7_PATTERN, table, MergeSemantics.COLLAPSE
        )
        assert_isomorphic(snapshot, self._expected(strong=False))

    def test_figure_9b(self):
        store, table = example7_graph_and_table()
        graph = Graph(Dialect.REVISED, store=store)
        snapshot = run_variant(
            graph, EXAMPLE_7_PATTERN, table, MergeSemantics.STRONG_COLLAPSE
        )
        assert_isomorphic(snapshot, self._expected(strong=True))
