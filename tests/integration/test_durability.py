"""End-to-end durability: the ``Graph`` path API and crash injection.

A durable graph must come back byte-identical (canonical graph JSON)
after close/reopen, across checkpoints, transactions, rollbacks and
schema changes -- and after a crash at any WAL record boundary.
"""

import pytest

from repro.errors import CypherEvaluationError, PersistenceError
from repro.graph.store import GraphStore
from repro.persistence.checkpoint import WAL_NAME
from repro.session import Graph
from repro.testing.crash import run_crash_scenario
from repro.testing.invariants import canonical_graph_json, check_invariants


def reopened(path):
    graph = Graph.open(path)
    try:
        return canonical_graph_json(graph.store)
    finally:
        graph.close()


class TestGraphPathApi:
    def test_reopen_is_byte_identical(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            graph.run("CREATE (:User {id: 1, name: 'Ann'})")
            graph.run("CREATE (:User {id: 2, name: 'Bob'})")
            graph.run(
                "MATCH (a:User {id: 1}), (b:User {id: 2}) "
                "CREATE (a)-[:KNOWS {since: 1999}]->(b)"
            )
            before = canonical_graph_json(graph.store)
        assert reopened(tmp_path) == before

    def test_failed_statement_leaves_no_trace(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            graph.run("CREATE (:A {k: 1})")
            with pytest.raises(CypherEvaluationError):
                graph.run("MATCH (n:A) SET n.bad = 1 / 0")
            before = canonical_graph_json(graph.store)
        assert reopened(tmp_path) == before

    def test_transaction_commit_and_rollback(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            with graph.transaction():
                graph.run("CREATE (:A {k: 1})")
                graph.run("CREATE (:B {k: 2})")
            tx = graph.transaction()
            graph.run("CREATE (:C {k: 3})")
            tx.rollback()
            before = canonical_graph_json(graph.store)
            assert graph.node_count() == 2
        assert reopened(tmp_path) == before

    def test_schema_survives_reopen(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            graph.run("CREATE INDEX ON :A(k)")
            graph.create_unique_constraint("B", "id")
            graph.run("CREATE (:A {k: 1})")
        graph = Graph.open(tmp_path)
        try:
            assert ("A", "k") in graph.store._property_indexes
            assert ("B", "id") in graph.store.unique_constraints()
            # The recovered index is live, not just registered.
            assert graph.store.property_index("A", "k").lookup(1)
        finally:
            graph.close()

    def test_checkpoint_compacts_and_preserves(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            for i in range(10):
                graph.run("CREATE (:A {k: $k})", {"k": i})
            graph.checkpoint()
            assert (tmp_path / WAL_NAME).stat().st_size == 0
            graph.run("CREATE (:B {k: 99})")
            before = canonical_graph_json(graph.store)
        assert reopened(tmp_path) == before

    def test_direct_api_writes_are_logged(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            a = graph.create_node("A", k=1)
            b = graph.create_node("B")
            graph.create_relationship(a, "T", b)
            before = canonical_graph_json(graph.store)
        assert reopened(tmp_path) == before

    def test_id_allocation_is_safe_after_reopen(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            graph.run("CREATE (:A {k: 1})")
            first_ids = {n.id for n in graph.nodes()}
        with Graph.open(tmp_path) as graph:
            graph.run("CREATE (:B {k: 2})")
            ids = [n.id for n in graph.nodes()]
            assert len(ids) == len(set(ids)) == 2
            assert set(ids) > first_ids
            check_invariants(graph.store)

    def test_prepopulated_store_plus_existing_dir_rejected(self, tmp_path):
        with Graph.open(tmp_path) as graph:
            graph.run("CREATE (:A {k: 1})")
        populated = GraphStore()
        populated.create_node(("X",), {})
        with pytest.raises(PersistenceError, match="pre-populated"):
            Graph(store=populated, path=tmp_path)

    def test_prepopulated_store_checkpoints_into_fresh_dir(self, tmp_path):
        populated = GraphStore()
        populated.create_node(("X",), {"k": 1})
        with Graph(store=populated, path=tmp_path) as graph:
            before = canonical_graph_json(graph.store)
        assert reopened(tmp_path) == before

    def test_checkpoint_without_persistence_raises(self):
        graph = Graph()
        with pytest.raises(PersistenceError):
            graph.checkpoint()

    def test_close_is_idempotent(self, tmp_path):
        graph = Graph.open(tmp_path)
        graph.close()
        graph.close()


class TestShell:
    def test_shell_path_roundtrip(self, tmp_path, capsys):
        from repro.tools.shell import main

        script = tmp_path / "setup.cypher"
        script.write_text("CREATE (:A {k: 1});\n")
        data = tmp_path / "data"
        assert main([str(script), "--path", str(data)]) == 0
        script2 = tmp_path / "check.cypher"
        script2.write_text("MATCH (n:A) RETURN n.k AS k;\n")
        assert main([str(script2), "--path", str(data)]) == 0
        out = capsys.readouterr().out
        assert "recovered:" in out
        assert "1 row(s)" in out

    def test_checkpoint_command(self, tmp_path):
        import io

        from repro.tools.shell import Shell

        out = io.StringIO()
        shell = Shell(Graph.open(tmp_path / "data"), out=out)
        shell.feed("CREATE (:A {k: 1});")
        shell.feed(":checkpoint")
        assert "checkpoint written" in out.getvalue()
        shell.graph.close()
        assert (tmp_path / "data" / WAL_NAME).stat().st_size == 0

    def test_checkpoint_on_ephemeral_graph_is_an_error(self):
        import io

        from repro.tools.shell import Shell

        out = io.StringIO()
        shell = Shell(Graph(), out=out)
        shell.feed(":checkpoint")
        assert "not durable" in out.getvalue()


class TestCrashInjection:
    def test_seeded_scenario_survives_every_kill_point(self, tmp_path):
        report = run_crash_scenario(0, tmp_path)
        assert report.kill_points > 10
        assert report.ok, report.failures[:5]

    def test_short_handcrafted_scenario(self, tmp_path):
        statements = [
            "CREATE (:A {k: 1})",
            "CREATE INDEX ON :A(k)",
            "MATCH (n:A) SET n.k = 2",
            "MATCH (n:A) SET n.boom = 1 / 0",  # must never hit the log
            "MERGE ALL (:A {k: 2})",
            "MATCH (n:A) DETACH DELETE n",
        ]
        report = run_crash_scenario(
            1, tmp_path, statements=statements, fsync="always"
        )
        assert report.ok, report.failures[:5]
        assert report.statements_run == len(statements)
