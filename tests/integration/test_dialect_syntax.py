"""E9: the grammar differences between Figures 2-5 and Figure 10."""

import pytest

from repro.dialect import Dialect
from repro.errors import CypherSyntaxError, MergeSyntaxError
from repro.parser import parse

#: Statements legal in BOTH dialects.
SHARED = [
    "MATCH (n) RETURN n",
    "MATCH (n:User {id: 1}) WHERE n.age > 21 RETURN n.name AS name",
    "CREATE (:User {id: 1})-[:ORDERED]->(:Product)",
    "MATCH (n) SET n.x = 1 REMOVE n.y",
    "MATCH (n) DETACH DELETE n",
    "MATCH (n) WITH n.x AS x WHERE x > 0 RETURN x ORDER BY x DESC LIMIT 3",
    "UNWIND [1, 2] AS x CREATE (:N {v: x})",
    "FOREACH (x IN [1] | CREATE (:N))",
    "MATCH (n) RETURN n.x AS x UNION MATCH (m) RETURN m.x AS x",
    "CREATE (n) WITH n MATCH (m) RETURN m",  # WITH between update and read
]

#: Legal ONLY in Cypher 9 (Figures 2-5).
LEGACY_ONLY = [
    "MERGE (n:User {id: 1})",
    "MERGE (a:A)-[:T]-(b:B)",  # undirected merge pattern
    "MERGE (n:User {id: 1}) ON CREATE SET n.new = true",
    "MERGE (n:User {id: 1}) ON MATCH SET n.seen = true",
]

#: Legal ONLY in the revised dialect (Figure 10).
REVISED_ONLY = [
    "MERGE ALL (a:A {x: 1})-[:T]->(b)",
    "MERGE SAME (a:A)-[:T]->(b), (c:C)-[:S]->(d)",
    "CREATE (n) MATCH (m) RETURN m",  # reading directly after update
    "MATCH (n) SET n.x = 1 MATCH (m) DELETE m",
    "MERGE ALL (a:A)-[:T]->(b) MATCH (x) RETURN x",
]

#: Illegal in BOTH dialects.
ALWAYS_ILLEGAL = [
    "MATCH (n)",  # no RETURN / update
    "MATCH (n) RETURN n RETURN n",
    "CREATE (a)-[:T]-(b)",  # undirected CREATE (Figure 5)
    "CREATE (a)-[]->(b)",  # untyped relationship
    "CREATE (a)-[:T|S]->(b)",  # multiple types
    "MERGE GROUPING (a:A)-[:T]->(b)",  # extension keyword w/o opt-in
    "RETURN",  # empty projection
    "FOREACH (x IN [1] | RETURN x)",
]


class TestSharedGrammar:
    @pytest.mark.parametrize("source", SHARED)
    def test_parses_in_both(self, source):
        parse(source, Dialect.CYPHER9)
        parse(source, Dialect.REVISED)


class TestLegacyOnly:
    @pytest.mark.parametrize("source", LEGACY_ONLY)
    def test_parses_in_cypher9(self, source):
        parse(source, Dialect.CYPHER9)

    @pytest.mark.parametrize("source", LEGACY_ONLY)
    def test_rejected_in_revised(self, source):
        with pytest.raises(CypherSyntaxError):
            parse(source, Dialect.REVISED)


class TestRevisedOnly:
    @pytest.mark.parametrize("source", REVISED_ONLY)
    def test_parses_in_revised(self, source):
        parse(source, Dialect.REVISED)

    @pytest.mark.parametrize("source", REVISED_ONLY)
    def test_rejected_in_cypher9(self, source):
        with pytest.raises(CypherSyntaxError):
            parse(source, Dialect.CYPHER9)


class TestAlwaysIllegal:
    @pytest.mark.parametrize("source", ALWAYS_ILLEGAL)
    def test_rejected_everywhere(self, source):
        with pytest.raises(CypherSyntaxError):
            parse(source, Dialect.CYPHER9)
        with pytest.raises(CypherSyntaxError):
            parse(source, Dialect.REVISED)


class TestMergeErrorMessages:
    def test_bare_merge_suggests_all_or_same(self):
        with pytest.raises(MergeSyntaxError) as excinfo:
            parse("MERGE (n)", Dialect.REVISED)
        assert "MERGE ALL" in str(excinfo.value)

    def test_extension_keyword_mentions_flag(self):
        with pytest.raises(MergeSyntaxError) as excinfo:
            parse("MERGE COLLAPSE (a:A)-[:T]->(b)", Dialect.REVISED)
        assert "extended_merge" in str(excinfo.value)
