"""Long mixed read/write statements under the Figure 10 grammar.

The revision's headline syntactic change is free interleaving of
reading and update clauses; these tests exercise realistic multi-phase
statements end to end, including the visibility rules (each clause sees
its predecessors' effects) and mid-statement failures.
"""

import pytest

from repro import Dialect, Graph, PropertyConflictError


class TestInterleavedReadWrite:
    def test_pipeline_cardinalities(self, revised_graph):
        # Spell out the cardinality algebra of the pipeline:
        # unit(1 row) -CREATE-> 1 row -CREATE-> 1 row -MATCH-> 2 rows.
        result = revised_graph.run(
            "CREATE (:N {v: 1}) CREATE (:N {v: 2}) "
            "MATCH (n:N) RETURN n.v AS v ORDER BY v"
        )
        assert result.values("v") == [1, 2]

    def test_update_visible_to_next_clause(self, revised_graph):
        revised_graph.run("CREATE (:N {v: 1})")
        result = revised_graph.run(
            "MATCH (n:N) SET n.v = 10 "
            "MATCH (m:N {v: 10}) RETURN count(m) AS c"
        )
        assert result.values("c") == [1]

    def test_delete_then_create_then_read(self, revised_graph):
        revised_graph.run("CREATE (:Old {v: 1}), (:Old {v: 2})")
        result = revised_graph.run(
            "MATCH (o:Old) DELETE o "
            "WITH count(*) AS dropped "
            "CREATE (:New {was: dropped}) "
            "MATCH (n:New) RETURN n.was AS was"
        )
        assert result.values("was") == [2]
        assert revised_graph.node_count() == 1

    def test_deleted_references_do_not_count(self, revised_graph):
        # After the strict DELETE the table's references are null, so
        # count(o) -- which skips nulls -- sees nothing, while count(*)
        # still counts the rows.  This is the Section 7 null rule at
        # work inside one statement.
        revised_graph.run("CREATE (:Old), (:Old)")
        result = revised_graph.run(
            "MATCH (o:Old) DELETE o "
            "RETURN count(o) AS refs, count(*) AS rows"
        )
        assert result.records == [{"refs": 0, "rows": 2}]

    def test_merge_then_aggregate(self, revised_graph):
        result = revised_graph.run(
            "UNWIND [1, 1, 2, 2, 2] AS uid "
            "MERGE SAME (u:User {id: uid}) "
            "RETURN u.id AS id, count(*) AS refs ORDER BY id"
        )
        assert result.records == [
            {"id": 1, "refs": 2},
            {"id": 2, "refs": 3},
        ]
        assert revised_graph.node_count() == 2

    def test_foreach_then_match(self, revised_graph):
        result = revised_graph.run(
            "FOREACH (x IN range(1, 3) | CREATE (:N {v: x})) "
            "MATCH (n:N) RETURN sum(n.v) AS total"
        )
        assert result.values("total") == [6]

    def test_legacy_needs_with_for_same_statement(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:N {v: 1})")
        result = g.run(
            "MATCH (n:N) SET n.v = 10 "
            "WITH n "
            "MATCH (m:N {v: 10}) RETURN count(m) AS c"
        )
        assert result.values("c") == [1]


class TestMidStatementFailure:
    def test_late_failure_undoes_early_writes(self, revised_graph):
        revised_graph.run("CREATE (:P {v: 1}), (:P {v: 2})")
        with pytest.raises(PropertyConflictError):
            revised_graph.run(
                "CREATE (:Created) "
                "WITH 1 AS one "
                "MATCH (a:P), (b:P) SET a.v = b.v"
            )
        assert revised_graph.run(
            "MATCH (c:Created) RETURN count(c) AS c"
        ).values("c") == [0]

    def test_constraint_violation_mid_statement(self, revised_graph):
        revised_graph.create_unique_constraint("User", "id")
        revised_graph.run("CREATE (:User {id: 1})")
        from repro.errors import ConstraintViolationError

        with pytest.raises(ConstraintViolationError):
            revised_graph.run(
                "CREATE (:Audit {note: 'trying'}) "
                "CREATE (:User {id: 1})"
            )
        assert revised_graph.node_count() == 1


class TestScopeThroughWith:
    def test_with_narrows_scope(self, revised_graph):
        revised_graph.run("CREATE (:N {v: 1})")
        with pytest.raises(Exception):
            revised_graph.run(
                "MATCH (n:N) WITH n.v AS v MATCH (m:N) RETURN n"
            )

    def test_aggregate_with_groups_before_update(self, revised_graph):
        revised_graph.run(
            "UNWIND [1, 1, 2] AS g CREATE (:Item {grp: g})"
        )
        revised_graph.run(
            "MATCH (i:Item) "
            "WITH i.grp AS grp, count(*) AS n "
            "CREATE (:Summary {grp: grp, n: n})"
        )
        result = revised_graph.run(
            "MATCH (s:Summary) RETURN s.grp AS g, s.n AS n ORDER BY g"
        )
        assert result.records == [{"g": 1, "n": 2}, {"g": 2, "n": 1}]

    def test_order_limit_in_with_controls_updates(self, revised_graph):
        revised_graph.run("UNWIND range(1, 5) AS v CREATE (:N {v: v})")
        revised_graph.run(
            "MATCH (n:N) WITH n ORDER BY n.v DESC LIMIT 2 SET n.top = true"
        )
        tops = revised_graph.run(
            "MATCH (n:N) WHERE n.top RETURN n.v AS v ORDER BY v"
        )
        assert tops.values("v") == [4, 5]
