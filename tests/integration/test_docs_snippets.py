"""Keep the documentation truthful: run the code blocks it shows."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


def python_blocks(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_runs(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README has no python blocks"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "README.md", "exec"), namespace)
        # The quickstart leaves a populated graph behind.
        graph = namespace["g"]
        assert graph.node_count() >= 2

    def test_quickstart_claims_hold(self):
        blocks = python_blocks(ROOT / "README.md")
        namespace: dict = {}
        exec(compile(blocks[0], "README.md", "exec"), namespace)
        result = namespace["result"]
        assert result.records == [{"user": "Bob", "product": "laptop"}]
        # "one pair, not two": the MERGE SAME example deduplicated.
        graph = namespace["g"]
        count = graph.run(
            "MATCH (:User {id: 1})-[:WANTS]->(p) RETURN count(p) AS c"
        )
        assert count.values("c") == [1]


class TestModuleDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.graph.values",
            "repro.graph.store",
            "repro.parser.parser",
            "repro.runtime.matcher",
            "repro.runtime.planner",
            "repro.core.merge",
            "repro.core.set",
            "repro.core.delete",
            "repro.legacy.updates",
            "repro.formal.semantics",
            "repro.engine",
            "repro.session",
        ],
    )
    def test_every_public_module_is_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_api_members_documented(self):
        import repro

        for name in repro.__all__:
            member = getattr(repro, name)
            assert member.__doc__, f"{name} lacks a docstring"


class TestDesignDocSync:
    def test_design_lists_every_bench_file(self):
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        bench_files = {
            path.name
            for path in (ROOT / "benchmarks").glob("bench_*.py")
        }
        missing = {
            name
            for name in bench_files
            if name not in design
        }
        assert not missing, f"DESIGN.md is missing bench files: {missing}"

    def test_experiments_mentions_all_experiment_ids(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for experiment_id in ["E1", "E2", "E3", "E4", "E5", "E6", "E7",
                              "E8", "E9", "E10", "P1", "P2", "P3", "P4",
                              "P5"]:
            assert experiment_id in experiments, experiment_id
