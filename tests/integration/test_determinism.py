"""E10: determinism of the revised MERGE at workload scale.

Beyond the paper's 3-row Example 3, these tests shuffle realistic
synthetic order tables under many seeds and check that every revised
variant produces the same graph up to id renaming, while the legacy
MERGE demonstrably does not.
"""

import pytest

from repro import Dialect, Graph, MergeSemantics
from repro.core.merge import merge
from repro.graph.comparison import fingerprint, isomorphic
from repro.parser import parse
from repro.runtime.context import EvalContext
from repro.workloads.generators import (
    OrderTableConfig,
    order_table,
)

PATTERN_SOURCE = "MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})"


def pattern_of():
    statement = parse(PATTERN_SOURCE, Dialect.REVISED, extended_merge=True)
    return statement.branches()[0].clauses[0].pattern


def run_revised(table, semantics):
    graph = Graph(Dialect.REVISED)
    ctx = EvalContext(store=graph.store)
    merge(ctx, pattern_of(), table, semantics)
    return graph.snapshot()


@pytest.fixture(scope="module")
def table():
    return order_table(
        OrderTableConfig(
            rows=120,
            distinct_users=15,
            distinct_products=10,
            null_ratio=0.15,
            duplicate_ratio=0.4,
            seed=3,
        )
    )


class TestRevisedDeterminism:
    @pytest.mark.parametrize("semantics", list(MergeSemantics))
    def test_order_insensitive_up_to_id_renaming(self, table, semantics):
        reference = run_revised(table, semantics)
        for seed in range(5):
            shuffled = run_revised(table.shuffled(seed), semantics)
            assert fingerprint(shuffled) == fingerprint(reference)
            assert isomorphic(shuffled, reference)

    def test_variant_sizes_are_ordered(self, table):
        """|Atomic| >= |Grouping| >= |Weak| >= |Collapse| >= |Strong|."""
        sizes = [
            run_revised(table, semantics).order()
            + run_revised(table, semantics).size()
            for semantics in (
                MergeSemantics.ATOMIC,
                MergeSemantics.GROUPING,
                MergeSemantics.WEAK_COLLAPSE,
                MergeSemantics.COLLAPSE,
                MergeSemantics.STRONG_COLLAPSE,
            )
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > sizes[-1]  # duplicates make the gap real


class TestLegacyNondeterminism:
    def test_legacy_merge_depends_on_order(self):
        # A table where rows chain on each other's creations: the paper's
        # Example 3 shape, at a slightly larger scale.
        from repro import DrivingTable

        def build():
            g = Graph(Dialect.CYPHER9)
            users = [g.create_node("User", id=i) for i in range(3)]
            products = [g.create_node("Product", id=i) for i in range(2)]
            vendors = [g.create_node("Vendor", id=i) for i in range(2)]
            rows = [
                {"user": users[a], "product": products[b], "vendor": vendors[c]}
                for a, b, c in [
                    (0, 0, 0),
                    (1, 0, 1),
                    (0, 0, 1),
                    (2, 1, 0),
                    (0, 1, 0),
                    (1, 1, 1),
                ]
            ]
            return g, DrivingTable(("user", "product", "vendor"), rows)

        outcomes = set()
        for seed in range(6):
            g, rows = build()
            g.run(
                "MERGE (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)",
                table=rows.shuffled(seed),
            )
            outcomes.add(g.relationship_count())
        assert len(outcomes) > 1  # genuinely order-dependent
