"""The view subscription surface, exercised over :class:`MockTransport`.

Covers the full server path -- register, read, long-poll, unsubscribe,
drop, limits -- plus the delivery-consistency promise: a change
notification stamped with LSN *n* means the view's result at *n* is
exactly ``baseline + added - removed``, and a subscriber that reads
the view right after a notification never sees a result *older* than
the notification it just received (no torn diffs).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.client import Client, MockTransport, ServerError
from repro.errors import ResourceLimitError
from repro.server.limits import RequestLimits
from repro.server.service import GraphService, ServerConfig


@pytest.fixture
def client():
    service = GraphService(ServerConfig())
    client = Client.in_process(service)
    yield client
    client.close()


def row_key(row: dict) -> str:
    return json.dumps(
        {k: repr(v) for k, v in row.items()}, sort_keys=True
    )


def apply_diff(rows: list[dict], diff: dict) -> list[dict]:
    """baseline + added - removed, as multisets."""
    out = list(rows) + list(diff["added"])
    for removed in diff["removed"]:
        for index, row in enumerate(out):
            if row_key(row) == row_key(removed):
                del out[index]
                break
        else:  # pragma: no cover - would be a server bug
            raise AssertionError(f"removed row not present: {removed}")
    return out


def multiset(rows: list[dict]) -> dict:
    counts: dict = {}
    for row in rows:
        counts[row_key(row)] = counts.get(row_key(row), 0) + 1
    return counts


class TestViewLifecycle:
    def test_register_read_drop(self, client):
        client.run("CREATE (:User {name: 'ada'})-[:KNOWS]->"
                   "(:User {name: 'bob'})")
        view = client.register_view(
            "MATCH (a:User)-[:KNOWS]->(b:User) "
            "RETURN a.name AS a, b.name AS b"
        )
        assert view.mode == "delta"
        result = view.result()
        assert result.records == [{"a": "ada", "b": "bob"}]
        stats = client.views()
        assert [row["id"] for row in stats] == [view.id]
        assert stats[0]["rows"] == 1
        view.drop()
        with pytest.raises(ServerError):
            view.result()
        assert client.views() == []

    def test_registration_is_deduplicated(self, client):
        first = client.register_view("MATCH (n:User) RETURN n.name AS n")
        second = client.register_view("MATCH (n:User) RETURN n.name AS n")
        assert first.id == second.id
        assert len(client.views()) == 1

    def test_write_statements_are_rejected(self, client):
        with pytest.raises(ServerError):
            client.register_view("CREATE (:User)")

    def test_max_views_limit(self):
        service = GraphService(
            ServerConfig(limits=RequestLimits(max_views=2))
        )
        with Client.in_process(service) as client:
            client.register_view("MATCH (n:A) RETURN n.i AS i")
            client.register_view("MATCH (n:B) RETURN n.i AS i")
            with pytest.raises(ResourceLimitError):
                client.register_view("MATCH (n:C) RETURN n.i AS i")

    def test_maintained_result_tracks_writes(self, client):
        view = client.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        assert view.result().records == []
        client.run("CREATE (:User {name: 'ada'})")
        assert view.result().records == [{"name": "ada"}]
        client.run("MATCH (n:User) DETACH DELETE n")
        assert view.result().records == []


class TestSubscriptions:
    def test_long_poll_delivers_relevant_diff(self, client):
        view = client.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        subscription = view.subscribe()
        assert subscription.baseline.records == []
        got: dict = {}

        def poll():
            got["diff"] = subscription.changes(timeout=5.0)

        waiter = threading.Thread(target=poll)
        waiter.start()
        client.run("CREATE (:User {name: 'ada'})")
        waiter.join(timeout=10)
        assert not waiter.is_alive()
        diff = got["diff"]
        assert not diff["timed_out"]
        assert diff["added"] == [{"name": "ada"}]
        assert diff["removed"] == []
        # Consistency stamp: baseline + diff is the result at diff lsn.
        result = view.result()
        assert view.lsn >= diff["lsn"]
        assert multiset(
            apply_diff(subscription.baseline.records, diff)
        ) == multiset(result.records)
        subscription.close()

    def test_irrelevant_write_does_not_wake_subscriber(self, client):
        view = client.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        with view.subscribe() as subscription:
            client.run("CREATE (:Order {total: 9})")
            diff = subscription.changes(timeout=0.3)
            assert diff["timed_out"]
            assert diff["added"] == [] and diff["removed"] == []

    def test_removed_rows_are_delivered(self, client):
        client.run("CREATE (:User {name: 'ada'}), (:User {name: 'bob'})")
        view = client.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        with view.subscribe() as subscription:
            client.run("MATCH (n:User {name: 'ada'}) DETACH DELETE n")
            diff = subscription.changes(timeout=5.0)
            assert diff["removed"] == [{"name": "ada"}]
            assert diff["added"] == []

    def test_unsubscribe_ends_the_feed(self, client):
        view = client.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        subscription = view.subscribe()
        subscription.close()
        with pytest.raises(ServerError):
            subscription.changes(timeout=0.2)

    def test_drop_wakes_and_invalidates_subscribers(self, client):
        view = client.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        subscription = view.subscribe()
        view.drop()
        with pytest.raises(ServerError):
            subscription.changes(timeout=2.0)

    def test_poll_timeout_is_clamped_by_limits(self):
        service = GraphService(
            ServerConfig(limits=RequestLimits(max_poll_timeout_s=0.2))
        )
        with Client.in_process(service) as client:
            view = client.register_view(
                "MATCH (n:User) RETURN n.name AS name"
            )
            with view.subscribe() as subscription:
                # asks for 60s; the server clamps to 0.2s
                diff = subscription.changes(timeout=60.0)
                assert diff["timed_out"]

    def test_max_subscriptions_limit(self):
        service = GraphService(
            ServerConfig(
                limits=RequestLimits(max_view_subscriptions=1)
            )
        )
        with Client.in_process(service) as client:
            view = client.register_view(
                "MATCH (n:User) RETURN n.name AS name"
            )
            view.subscribe()
            with pytest.raises(ResourceLimitError):
                view.subscribe()


class TestTwoClientConsistency:
    """A writer and a subscriber racing over one service."""

    def test_subscriber_never_observes_torn_diffs(self):
        service = GraphService(ServerConfig())
        writer = Client.in_process(service)
        reader = Client(writer._transport, owns_transport=False)
        view = reader.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        subscription = view.subscribe()
        materialized = list(subscription.baseline.records)
        names = [f"u{i}" for i in range(12)]
        done = threading.Event()

        def write():
            for name in names:
                writer.run(
                    "CREATE (:User {name: $name})", {"name": name}
                )
                # interleave irrelevant commits: they must never
                # produce a notification of their own
                writer.run("CREATE (:Order {total: 1})")
            done.set()

        feeder = threading.Thread(target=write)
        feeder.start()
        last_lsn = subscription.lsn or 0
        for _ in range(200):
            diff = subscription.changes(timeout=0.5)
            if not diff["timed_out"]:
                # LSNs only move forward, and the view as read *after*
                # the notification is never older than the diff stamp.
                assert diff["lsn"] > last_lsn
                last_lsn = diff["lsn"]
                materialized = apply_diff(materialized, diff)
                view.result()
                assert view.lsn >= diff["lsn"]
            if done.is_set() and diff["timed_out"]:
                break
        feeder.join(timeout=10)
        assert done.is_set()
        # Replaying every delivered diff over the baseline rebuilds the
        # final maintained result exactly: nothing lost, nothing torn.
        final = view.result()
        assert multiset(materialized) == multiset(final.records)
        assert {row["name"] for row in final.records} == set(names)
        subscription.close()
        writer.close()
