"""A seeded slice of the differential fuzzer runs in tier-1.

The full 200-case smoke is a separate CI job (`fuzz-smoke`); this keeps
a fast 45-case slice in the default suite so a broken execution surface
fails `pytest -x -q` immediately, plus determinism guarantees the CLI
smoke relies on.
"""

from repro.testing.differential import run_case
from repro.testing.generator import case_for


def _failure_report(result):
    lines = [f"case {result.case.seed_key} ({result.case.kind}):"]
    lines += [f"  {failure}" for failure in result.failures[:6]]
    for source in result.case.statement_sources():
        lines.append(f"  | {source}")
    return "\n".join(lines)


def test_seeded_slice_passes():
    for index in range(45):
        result = run_case(case_for(0, index))
        assert result.ok, _failure_report(result)


def test_each_kind_is_exercised():
    kinds = {case_for(0, index).kind for index in range(6)}
    assert kinds == {"revised", "legacy", "merge"}


def test_run_case_is_deterministic():
    """Two runs of the same case agree outcome-for-outcome."""
    for index in (0, 1, 2, 10, 11):
        first = run_case(case_for(0, index))
        second = run_case(case_for(0, index))
        assert first.ok == second.ok
        assert [o.status for o in first.outcomes] == [
            o.status for o in second.outcomes
        ]
        assert [o.rows_exact for o in first.outcomes] == [
            o.rows_exact for o in second.outcomes
        ]
        assert [o.graph for o in first.outcomes] == [
            o.graph for o in second.outcomes
        ]


def test_cli_module_entrypoint(capsys):
    """`python -m repro.fuzz` resolves and runs a couple of cases."""
    from repro.testing.cli import main

    assert main(["--seed", "3", "--cases", "3"]) == 0
    out = capsys.readouterr().out
    assert "3/3 cases passed" in out
