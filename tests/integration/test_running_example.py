"""E1: the Figure 1 running example and Queries (1)-(5) of Sections 2-3."""

import pytest

from repro import Dialect, Graph
from repro.errors import UpdateError
from repro.paper import (
    FIGURE_1_EXPECTED,
    QUERY_1,
    QUERY_2,
    QUERY_3,
    QUERY_4,
    QUERY_5,
    figure1_graph,
)


class TestFigure1:
    def test_shape(self, marketplace):
        snapshot = marketplace.snapshot()
        assert (snapshot.order(), snapshot.size()) == FIGURE_1_EXPECTED

    def test_query1_finds_cstore(self, marketplace):
        result = marketplace.run(QUERY_1)
        assert len(result) == 1
        assert result.records[0]["v"].get("name") == "cStore"

    def test_query1_without_where_is_bag(self, marketplace):
        # Without the WHERE filter the driving table holds two records
        # (p1/p2 swapped); the RETURN keeps both copies of v1 (Section 2).
        result = marketplace.run(
            "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
            "RETURN v"
        )
        assert len(result) == 2
        assert {record["v"].get("name") for record in result} == {"cStore"}

    def test_query1_p_and_q_never_equal(self, marketplace):
        # Relationship uniqueness forbids mapping both :OFFERS patterns
        # to the same edge, so p = q never occurs (Section 2 discussion).
        result = marketplace.run(
            "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) "
            "RETURN p.name AS p, q.name AS q"
        )
        assert all(record["p"] != record["q"] for record in result)


class TestQueries2To4:
    def test_query2_inserts_p4(self, marketplace):
        result = marketplace.run(QUERY_2)
        assert result.counters.nodes_created == 1
        assert result.counters.relationships_created == 1
        check = marketplace.run(
            "MATCH (u:User {id: 89})-[:ORDERED]->(p:New_Product) "
            "RETURN p.id AS id"
        )
        assert check.values("id") == [0]

    def test_query3_relabels(self, marketplace):
        marketplace.run(QUERY_2)
        marketplace.run(QUERY_3)
        check = marketplace.run(
            "MATCH (p:Product {id: 120}) "
            "RETURN p.name AS name, labels(p) AS labels"
        )
        assert check.records == [
            {"name": "smartphone", "labels": ["Product"]}
        ]

    def test_plain_delete_fails_with_attached_relationship(self, marketplace):
        marketplace.run(QUERY_2)
        marketplace.run(QUERY_3)
        with pytest.raises(UpdateError):
            marketplace.run("MATCH (p:Product {id:120}) DELETE p")

    def test_delete_with_relationship_in_same_statement(self, marketplace):
        marketplace.run(QUERY_2)
        marketplace.run(QUERY_3)
        marketplace.run("MATCH ()-[r]->(p:Product {id:120}) DELETE r, p")
        assert marketplace.run(
            "MATCH (p:Product {id:120}) RETURN p"
        ).records == []

    def test_query4_detach_delete(self, marketplace):
        marketplace.run(QUERY_2)
        marketplace.run(QUERY_3)
        result = marketplace.run(QUERY_4)
        assert result.counters.nodes_deleted == 1
        assert result.counters.relationships_deleted == 1
        snapshot = marketplace.snapshot()
        assert (snapshot.order(), snapshot.size()) == FIGURE_1_EXPECTED

    def test_section3_composite_statement(self):
        # The illustrative create-update-delete chain from Section 3,
        # all in one statement.
        g = Graph(Dialect.CYPHER9, store=figure1_graph())
        g.run(
            "MATCH (u:User{id:89}) "
            "CREATE (u)-[:ORDERED]->(p:New_Product{id:0}) "
            "SET p:Product, p.id=120, p.name='phone' "
            "REMOVE p:New_Product "
            "DETACH DELETE p"
        )
        snapshot = g.snapshot()
        assert (snapshot.order(), snapshot.size()) == FIGURE_1_EXPECTED


class TestQuery5:
    def test_legacy_merge_adds_v2(self, marketplace):
        result = marketplace.run(QUERY_5)
        assert len(result) == 3
        assert result.counters.nodes_created == 1
        assert result.counters.relationships_created == 1
        pairs = sorted(
            (record["p"].get("name"), record["v"].get("name") or "<new>")
            for record in result
        )
        assert pairs == [
            ("laptop", "cStore"),
            ("notebook", "cStore"),
            ("tablet", "<new>"),
        ]
        # Afterwards every product is offered by some vendor.
        check = marketplace.run(
            "MATCH (p:Product) WHERE NOT (p)<-[:OFFERS]-(:Vendor) RETURN p"
        )
        assert check.records == []

    def test_query5_is_idempotent_once_satisfied(self, marketplace):
        marketplace.run(QUERY_5)
        before = marketplace.snapshot()
        marketplace.run(QUERY_5)
        after = marketplace.snapshot()
        assert (before.order(), before.size()) == (after.order(), after.size())
