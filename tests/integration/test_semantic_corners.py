"""Adversarial corner cases probed by hand, pinned as tests."""

import pytest

from repro import Dialect, Graph
from repro.errors import CypherSemanticError, CypherTypeError


class TestCreateCorners:
    def test_relationship_property_reads_earlier_pattern_node(
        self, revised_graph
    ):
        # `a` is created and bound by the time the relationship's
        # property map is evaluated (inductive creation, Section 8.2).
        revised_graph.run("CREATE (a:A {v: 7})-[:T {w: a.v}]->(b:B)")
        rel = revised_graph.relationships()[0]
        assert rel.get("w") == 7

    def test_later_path_sees_earlier_bindings(self, revised_graph):
        revised_graph.run("CREATE (a:A {v: 1}), (b:B {copy: a.v})")
        node = revised_graph.run(
            "MATCH (b:B) RETURN b.copy AS c"
        ).values("c")
        assert node == [1]


class TestMergeCorners:
    def test_merge_with_null_bound_variable_errors(self, revised_graph):
        with pytest.raises(CypherTypeError):
            revised_graph.run(
                "UNWIND [null] AS u MERGE ALL (u)-[:T]->(:B)"
            )
        assert revised_graph.node_count() == 0  # rolled back

    def test_merge_same_inside_foreach(self, revised_graph):
        revised_graph.run(
            "FOREACH (x IN [1, 1, 2] | MERGE SAME (:U {id: x}))"
        )
        assert revised_graph.node_count() == 2

    def test_merge_all_inside_foreach_is_atomic_over_expansion(
        self, revised_graph
    ):
        # The FOREACH expansion is one driving table, so MERGE ALL's
        # read phase sees the input graph for every element at once.
        revised_graph.run(
            "FOREACH (x IN [1, 1] | MERGE ALL (:U {id: x}))"
        )
        assert revised_graph.node_count() == 2  # both rows failed, both create

    def test_legacy_merge_inside_foreach_reads_own_writes(self):
        graph = Graph(Dialect.CYPHER9)
        graph.run("FOREACH (x IN [1, 1] | MERGE (:U {id: x}))")
        assert graph.node_count() == 1


class TestProjectionCorners:
    def test_with_star_on_unit_table_rejected(self, revised_graph):
        with pytest.raises(CypherSemanticError):
            revised_graph.run("WITH * RETURN 1 AS one")

    def test_order_by_aggregate_alias(self, revised_graph):
        revised_graph.run("UNWIND [1, 1, 2] AS g CREATE (:N {g: g})")
        result = revised_graph.run(
            "MATCH (n:N) RETURN n.g AS g, count(*) AS c ORDER BY c DESC"
        )
        assert result.records[0] == {"g": 1, "c": 2}

    def test_with_alias_shadowing_variable(self, revised_graph):
        # `WITH n.v AS n` replaces the node binding with a scalar.
        revised_graph.run("CREATE (:N {v: 42})")
        result = revised_graph.run(
            "MATCH (n:N) WITH n.v AS n RETURN n + 1 AS x"
        )
        assert result.values("x") == [43]


class TestOptionalMatchCorners:
    def test_optional_match_with_null_bound_variable(self, revised_graph):
        revised_graph.run("CREATE (:U {id: 1})")
        result = revised_graph.run(
            "MATCH (u:U) OPTIONAL MATCH (u)-[:R]->(m) "
            "OPTIONAL MATCH (m)-[:R]->(k) "
            "RETURN m, k"
        )
        assert result.records == [{"m": None, "k": None}]

    def test_optional_match_keeps_multiplicity(self, revised_graph):
        revised_graph.run("CREATE (:U {id: 1}), (:U {id: 2})")
        result = revised_graph.run(
            "MATCH (u:U) OPTIONAL MATCH (u)-[:R]->(m) RETURN u.id AS id"
        )
        assert sorted(result.values("id")) == [1, 2]


class TestSelfLoops:
    def test_undirected_self_loop_matches_once(self, revised_graph):
        revised_graph.run("CREATE (n:N)-[:T]->(n)")
        result = revised_graph.run(
            "MATCH (a:N)-[:T]-(b) RETURN count(*) AS c"
        )
        assert result.values("c") == [1]

    def test_merge_same_can_build_self_loop(self, revised_graph):
        revised_graph.run("UNWIND [1] AS i MERGE SAME (:N {v: i})-[:T]->(:N {v: i})")
        rel = revised_graph.relationships()[0]
        assert rel.start == rel.end

    def test_delete_self_loop_node(self, revised_graph):
        revised_graph.run("CREATE (n:N)-[:T]->(n)")
        revised_graph.run("MATCH (n:N)-[r:T]->(n) DELETE r, n")
        assert revised_graph.node_count() == 0


class TestSetCorners:
    def test_set_additive_from_other_entity(self, revised_graph):
        revised_graph.run("CREATE (:Src {a: 1, b: 2}), (:Dst {c: 3})")
        revised_graph.run("MATCH (s:Src), (d:Dst) SET d += s")
        node = revised_graph.run("MATCH (d:Dst) RETURN d").records[0]["d"]
        assert dict(node.properties) == {"a": 1, "b": 2, "c": 3}

    def test_set_property_to_list(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        revised_graph.run("MATCH (n:N) SET n.tags = ['a', 'b']")
        assert revised_graph.nodes()[0].get("tags") == ["a", "b"]

    def test_set_property_to_map_rejected(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        with pytest.raises(CypherTypeError):
            revised_graph.run("MATCH (n:N) SET n.bad = {nested: 1}")

    def test_conflicting_set_different_clauses_is_fine(self, revised_graph):
        # Atomicity is per clause; two clauses apply sequentially.
        revised_graph.run("CREATE (:N)")
        revised_graph.run("MATCH (n:N) SET n.v = 1 SET n.v = 2")
        assert revised_graph.nodes()[0].get("v") == 2
