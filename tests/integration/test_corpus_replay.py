"""Every checked-in fuzz bundle replays cleanly.

Bundles under ``tests/fuzz_corpus/`` are minimised cases the fuzzer
(or a developer) considered worth pinning: once the bug that produced
one is fixed, the replay keeps it fixed.  A failing replay means a
regression -- the bundle's ``failures`` field records what it looked
like when found.
"""

from pathlib import Path

import pytest

from repro.testing.corpus import iter_bundles, load_bundle, replay_bundle

CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"

BUNDLES = iter_bundles(CORPUS)


def test_corpus_is_not_empty():
    assert BUNDLES, f"expected regression bundles under {CORPUS}"


@pytest.mark.parametrize(
    "path", BUNDLES, ids=[path.name for path in BUNDLES]
)
def test_bundle_replays_clean(path):
    case, recorded = load_bundle(path)
    result = replay_bundle(path)
    assert result.ok, (
        f"regression: {path.name} fails again "
        f"(originally: {recorded[:2]})\n" + "\n".join(result.failures[:6])
    )
