"""E2/E3: Examples 1 and 2 -- SET atomicity and conflict detection."""

import pytest

from repro import Dialect, Graph, PropertyConflictError
from repro.paper import (
    EXAMPLE_1_SEQUENTIAL,
    EXAMPLE_1_SWAP,
    EXAMPLE_2_COPY_NAME,
    figure1_graph,
)


def swap_fixture(dialect):
    g = Graph(dialect)
    g.run("CREATE (:Product {name:'laptop', id: 1})")
    g.run("CREATE (:Product {name:'tablet', id: 2})")
    return g


def ids_by_name(graph):
    result = graph.run("MATCH (p:Product) RETURN p.name AS n, p.id AS i")
    return {record["n"]: record["i"] for record in result}


class TestExample1:
    def test_legacy_swap_degenerates_to_noop(self):
        g = swap_fixture(Dialect.CYPHER9)
        g.run(EXAMPLE_1_SWAP)
        # "first set the ID of laptop to that of tablet, ... then
        # perform a no-operation": both end up with tablet's id.
        assert ids_by_name(g) == {"laptop": 2, "tablet": 2}

    def test_legacy_single_clause_equals_two_clauses(self):
        one = swap_fixture(Dialect.CYPHER9)
        one.run(EXAMPLE_1_SWAP)
        two = swap_fixture(Dialect.CYPHER9)
        two.run(EXAMPLE_1_SEQUENTIAL)
        assert ids_by_name(one) == ids_by_name(two)

    def test_revised_swap_works(self):
        g = swap_fixture(Dialect.REVISED)
        g.run(EXAMPLE_1_SWAP)
        assert ids_by_name(g) == {"laptop": 2, "tablet": 1}

    def test_revised_two_clauses_still_sequential(self):
        # Atomicity is per clause: two SET clauses still see each
        # other's writes, so the two-clause spelling stays a no-op.
        g = swap_fixture(Dialect.REVISED)
        g.run(EXAMPLE_1_SEQUENTIAL)
        assert ids_by_name(g) == {"laptop": 2, "tablet": 2}


class TestExample2:
    """Figure 1 contains two :Product nodes with id 125 (dirty data)."""

    def test_legacy_silently_picks_an_order_dependent_value(self):
        g = Graph(Dialect.CYPHER9, store=figure1_graph())
        g.run(EXAMPLE_2_COPY_NAME)
        name = g.run(
            "MATCH (p:Product {id: 85}) RETURN p.name AS n"
        ).values("n")[0]
        assert name in ("laptop", "notebook")

    def test_legacy_result_depends_on_record_order(self):
        # Force the two conflicting records into each order via ORDER BY
        # in a WITH, and observe different final values.
        outcomes = set()
        for direction in ("ASC", "DESC"):
            g = Graph(Dialect.CYPHER9, store=figure1_graph())
            g.run(
                "MATCH (p1:Product{id:85}), (p2:Product{id:125}) "
                f"WITH p1, p2 ORDER BY p2.name {direction} "
                "SET p1.name = p2.name"
            )
            outcomes.add(
                g.run(
                    "MATCH (p:Product {id: 85}) RETURN p.name AS n"
                ).values("n")[0]
            )
        assert outcomes == {"laptop", "notebook"}

    def test_revised_conflicting_set_aborts(self):
        g = Graph(Dialect.REVISED, store=figure1_graph())
        with pytest.raises(PropertyConflictError):
            g.run(EXAMPLE_2_COPY_NAME)

    def test_revised_abort_leaves_graph_unchanged(self):
        g = Graph(Dialect.REVISED, store=figure1_graph())
        before = g.snapshot()
        with pytest.raises(PropertyConflictError):
            g.run(EXAMPLE_2_COPY_NAME)
        from repro.graph.comparison import assert_isomorphic

        assert_isomorphic(before, g.snapshot())

    def test_revised_clean_data_copy_works(self):
        # Remove the duplicate id first; then the copy is unambiguous.
        g = Graph(Dialect.REVISED, store=figure1_graph())
        g.run("MATCH (p:Product {name: 'notebook'}) SET p.id = 126")
        g.run(EXAMPLE_2_COPY_NAME)
        name = g.run(
            "MATCH (p:Product {id: 85}) RETURN p.name AS n"
        ).values("n")[0]
        assert name == "laptop"
