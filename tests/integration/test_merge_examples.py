"""E5-E8: Examples 3-7 and Figures 6-9 -- the MERGE design space."""

import pytest

from repro import Dialect, DrivingTable, Graph, MatchMode, MergeSemantics
from repro.core.merge import merge
from repro.graph.comparison import assert_isomorphic, isomorphic
from repro.parser import parse
from repro.paper import (
    EXAMPLE_3_MERGE,
    EXAMPLE_3_MERGE_ALL,
    EXAMPLE_3_MERGE_SAME,
    EXAMPLE_5_PATTERN,
    EXAMPLE_6_PATTERN,
    EXAMPLE_7_PATTERN,
    FIGURE_6A_EXPECTED,
    FIGURE_6B_EXPECTED,
    FIGURE_7A_EXPECTED,
    FIGURE_7B_EXPECTED,
    FIGURE_7C_EXPECTED,
    FIGURE_8A_EXPECTED,
    FIGURE_8B_EXPECTED,
    FIGURE_9A_EXPECTED,
    FIGURE_9B_EXPECTED,
    example3_graph,
    example3_table,
    example5_table,
    example6_table,
    example7_graph_and_table,
)
from repro.runtime.context import EvalContext


def shape(graph):
    snapshot = graph.snapshot()
    return snapshot.order(), snapshot.size()


def pattern_of(source):
    statement = parse(
        "MERGE ALL " + source, Dialect.REVISED, extended_merge=True
    )
    return statement.branches()[0].clauses[0].pattern


def run_variant(graph, pattern_source, table, semantics):
    ctx = EvalContext(store=graph.store)
    return merge(ctx, pattern_of(pattern_source), table, semantics)


class TestExample3Figure6:
    """Legacy MERGE is order-dependent; the revision is not."""

    def test_top_down_yields_figure_6b(self):
        store = example3_graph()
        g = Graph(Dialect.CYPHER9, store=store)
        g.run(EXAMPLE_3_MERGE, table=example3_table(store))
        assert shape(g) == FIGURE_6B_EXPECTED

    def test_bottom_up_yields_figure_6a(self):
        store = example3_graph()
        g = Graph(Dialect.CYPHER9, store=store)
        g.run(EXAMPLE_3_MERGE, table=example3_table(store).reversed())
        assert shape(g) == FIGURE_6A_EXPECTED

    def test_the_two_legacy_outcomes_differ(self):
        store_a = example3_graph()
        g_a = Graph(Dialect.CYPHER9, store=store_a)
        g_a.run(EXAMPLE_3_MERGE, table=example3_table(store_a))
        store_b = example3_graph()
        g_b = Graph(Dialect.CYPHER9, store=store_b)
        g_b.run(EXAMPLE_3_MERGE, table=example3_table(store_b).reversed())
        assert not isomorphic(g_a.snapshot(), g_b.snapshot())


class TestExample4Determinism:
    """MERGE ALL always gives Fig 6a; MERGE SAME always gives Fig 6b."""

    @pytest.mark.parametrize("seed", range(8))
    def test_merge_all_is_order_insensitive(self, seed):
        store = example3_graph()
        g = Graph(Dialect.REVISED, store=store)
        g.run(
            EXAMPLE_3_MERGE_ALL,
            table=example3_table(store).shuffled(seed),
        )
        assert shape(g) == FIGURE_6A_EXPECTED

    @pytest.mark.parametrize("seed", range(8))
    def test_merge_same_is_order_insensitive(self, seed):
        store = example3_graph()
        g = Graph(Dialect.REVISED, store=store)
        g.run(
            EXAMPLE_3_MERGE_SAME,
            table=example3_table(store).shuffled(seed),
        )
        assert shape(g) == FIGURE_6B_EXPECTED

    def test_merge_same_output_graphs_are_isomorphic_across_orders(self):
        snapshots = []
        for seed in range(4):
            store = example3_graph()
            g = Graph(Dialect.REVISED, store=store)
            g.run(
                EXAMPLE_3_MERGE_SAME,
                table=example3_table(store).shuffled(seed),
            )
            snapshots.append(g.snapshot())
        for snapshot in snapshots[1:]:
            assert_isomorphic(snapshots[0], snapshot)


class TestExample5Figure7:
    EXPECTED = {
        MergeSemantics.ATOMIC: FIGURE_7A_EXPECTED,
        MergeSemantics.GROUPING: FIGURE_7B_EXPECTED,
        MergeSemantics.WEAK_COLLAPSE: FIGURE_7C_EXPECTED,
        MergeSemantics.COLLAPSE: FIGURE_7C_EXPECTED,
        MergeSemantics.STRONG_COLLAPSE: FIGURE_7C_EXPECTED,
    }

    @pytest.mark.parametrize("semantics", list(MergeSemantics))
    def test_variant_shapes(self, semantics):
        g = Graph(Dialect.REVISED)
        run_variant(g, EXAMPLE_5_PATTERN, example5_table(), semantics)
        assert shape(g) == self.EXPECTED[semantics]

    def test_null_rows_produce_propertyless_products(self):
        g = Graph(Dialect.REVISED)
        run_variant(
            g,
            EXAMPLE_5_PATTERN,
            example5_table(),
            MergeSemantics.STRONG_COLLAPSE,
        )
        empty_products = [
            node
            for node in g.nodes()
            if node.has_label("Product") and not dict(node.properties)
        ]
        assert len(empty_products) == 1  # the single "non-product"

    def test_merge_all_and_same_statements(self):
        g_all = Graph(Dialect.REVISED)
        g_all.run(
            "MERGE ALL " + EXAMPLE_5_PATTERN, table=example5_table()
        )
        assert shape(g_all) == FIGURE_7A_EXPECTED
        g_same = Graph(Dialect.REVISED)
        g_same.run(
            "MERGE SAME " + EXAMPLE_5_PATTERN, table=example5_table()
        )
        assert shape(g_same) == FIGURE_7C_EXPECTED

    def test_output_table_cardinality_is_preserved(self):
        # All six rows fail to match, so all six reappear bound to the
        # created entities, whatever the variant.
        g = Graph(Dialect.REVISED)
        out = run_variant(
            g,
            EXAMPLE_5_PATTERN,
            example5_table(),
            MergeSemantics.GROUPING,
        )
        assert len(out) == 6


class TestExample6Figure8:
    EXPECTED = {
        MergeSemantics.ATOMIC: FIGURE_8A_EXPECTED,
        MergeSemantics.GROUPING: FIGURE_8A_EXPECTED,
        MergeSemantics.WEAK_COLLAPSE: FIGURE_8A_EXPECTED,
        MergeSemantics.COLLAPSE: FIGURE_8B_EXPECTED,
        MergeSemantics.STRONG_COLLAPSE: FIGURE_8B_EXPECTED,
    }

    @pytest.mark.parametrize("semantics", list(MergeSemantics))
    def test_variant_shapes(self, semantics):
        g = Graph(Dialect.REVISED)
        run_variant(g, EXAMPLE_6_PATTERN, example6_table(), semantics)
        assert shape(g) == self.EXPECTED[semantics]

    def test_collapse_merges_the_cross_position_user(self):
        g = Graph(Dialect.REVISED)
        run_variant(
            g, EXAMPLE_6_PATTERN, example6_table(), MergeSemantics.COLLAPSE
        )
        users_98 = [
            node
            for node in g.nodes()
            if node.has_label("User") and node.get("id") == 98
        ]
        assert len(users_98) == 1
        # ... and that single node is both a buyer and a seller.
        assert g.run(
            "MATCH (s:User {id: 98})-[:OFFERS]->(), "
            "(s)-[:ORDERED]->() RETURN count(*) AS c"
        ).values("c") == [1]


class TestExample7Figure9:
    @pytest.mark.parametrize(
        "semantics, expected",
        [
            (MergeSemantics.ATOMIC, FIGURE_9A_EXPECTED),
            (MergeSemantics.GROUPING, FIGURE_9A_EXPECTED),
            (MergeSemantics.WEAK_COLLAPSE, FIGURE_9A_EXPECTED),
            (MergeSemantics.COLLAPSE, FIGURE_9A_EXPECTED),
            (MergeSemantics.STRONG_COLLAPSE, FIGURE_9B_EXPECTED),
        ],
    )
    def test_variant_shapes(self, semantics, expected):
        store, table = example7_graph_and_table()
        g = Graph(Dialect.REVISED, store=store)
        run_variant(g, EXAMPLE_7_PATTERN, table, semantics)
        assert shape(g) == expected

    def test_strong_collapse_breaks_trail_rematch(self):
        store, table = example7_graph_and_table()
        g = Graph(Dialect.REVISED, store=store)
        g.run("MERGE SAME " + EXAMPLE_7_PATTERN, table=table)
        rematch = g.run(
            "MATCH " + EXAMPLE_7_PATTERN + " RETURN count(*) AS c",
            table=table,
        )
        assert rematch.values("c") == [0]

    def test_homomorphism_rematch_succeeds(self):
        store, table = example7_graph_and_table()
        g = Graph(Dialect.REVISED, store=store)
        g.run("MERGE SAME " + EXAMPLE_7_PATTERN, table=table)
        hom = Graph(
            Dialect.REVISED, match_mode=MatchMode.HOMOMORPHISM, store=g.store
        )
        rematch = hom.run(
            "MATCH " + EXAMPLE_7_PATTERN + " RETURN count(*) AS c",
            table=table,
        )
        assert rematch.values("c")[0] >= 1

    def test_collapse_variants_leave_trail_rematch_intact(self):
        store, table = example7_graph_and_table()
        g = Graph(Dialect.REVISED, store=store)
        run_variant(g, EXAMPLE_7_PATTERN, table, MergeSemantics.COLLAPSE)
        rematch = g.run(
            "MATCH " + EXAMPLE_7_PATTERN + " RETURN count(*) AS c",
            table=table,
        )
        # Collapse keeps the two parallel p1->p2 :TO edges, so the
        # pattern re-matches (twice: the parallel edges permute).
        assert rematch.values("c") == [2]
