"""The CSV-import workflow that motivates the revised MERGE.

The paper's user survey: graphs are commonly populated "by importing
from a relational database or a CSV file", nodes first, relationships
later.  These tests run the whole pipeline end to end, in both the
LOAD CSV spelling and the pre-built driving-table spelling.
"""

import pytest

from repro import Dialect, Graph
from repro.io.csv_io import read_driving_table, write_csv


@pytest.fixture
def orders_csv(tmp_path):
    path = tmp_path / "orders.csv"
    write_csv(
        path,
        ["cid", "pid", "date"],
        [
            [98, 125, "2018-06-23"],
            [98, 125, "2018-07-06"],
            [98, None, None],
            [98, None, None],
            [99, 125, "2018-03-11"],
            [99, None, None],
        ],
    )
    return path


class TestDrivingTableImport:
    def test_read_driving_table_preserves_nulls(self, orders_csv):
        table = read_driving_table(orders_csv)
        assert len(table) == 6
        assert table.records[2]["pid"] is None
        assert table.records[0]["cid"] == 98  # coerced to int

    def test_merge_same_import_is_minimal(self, orders_csv):
        g = Graph(Dialect.REVISED)
        table = read_driving_table(orders_csv)
        g.run(
            "MERGE SAME (:User {id: cid})-[:ORDERED]->(:Product {id: pid})",
            table=table,
        )
        assert g.node_count() == 4
        assert g.relationship_count() == 4

    def test_reimport_matches_non_null_rows_only(self, orders_csv):
        g = Graph(Dialect.REVISED)
        table = read_driving_table(orders_csv)
        statement = (
            "MERGE SAME (:User {id: cid})-[:ORDERED]->(:Product {id: pid})"
        )
        g.run(statement, table=table)
        assert g.node_count() == 4
        g.run(statement, table=table)
        # The (98,125) and (99,125) rows now match and create nothing.
        # The null-pid rows can never match ({id: null} fails), so they
        # create a fresh user copy each plus one shared null product:
        # Definition 1 (iii) forbids collapsing with the existing nodes.
        assert g.node_count() == 7
        assert g.run(
            "MATCH (p:Product {id: 125}) RETURN count(p) AS c"
        ).values("c") == [1]


class TestLoadCsvStatement:
    def test_two_phase_import(self, tmp_path):
        users = tmp_path / "users.csv"
        write_csv(users, ["id", "name"], [[1, "Bob"], [2, "Jane"]])
        follows = tmp_path / "follows.csv"
        write_csv(follows, ["src", "dst"], [[1, 2], [2, 1]])

        g = Graph(Dialect.REVISED)
        g.run(
            f"LOAD CSV WITH HEADERS FROM '{users}' AS row "
            "MERGE SAME (:User {id: row.id, name: row.name})"
        )
        assert g.node_count() == 2
        g.run(
            f"LOAD CSV WITH HEADERS FROM '{follows}' AS row "
            "MATCH (a:User {id: row.src}), (b:User {id: row.dst}) "
            "CREATE (a)-[:FOLLOWS]->(b)"
        )
        assert g.relationship_count() == 2

    def test_duplicate_csv_rows_deduplicated_by_merge_same(self, tmp_path):
        path = tmp_path / "dup.csv"
        write_csv(path, ["id"], [[1], [1], [1]])
        g = Graph(Dialect.REVISED)
        g.run(
            f"LOAD CSV WITH HEADERS FROM '{path}' AS row "
            "MERGE SAME (:User {id: row.id})"
        )
        assert g.node_count() == 1

    def test_duplicate_csv_rows_kept_by_merge_all(self, tmp_path):
        path = tmp_path / "dup.csv"
        write_csv(path, ["id"], [[1], [1], [1]])
        g = Graph(Dialect.REVISED)
        g.run(
            f"LOAD CSV WITH HEADERS FROM '{path}' AS row "
            "MERGE ALL (:User {id: row.id})"
        )
        assert g.node_count() == 3

    def test_legacy_merge_import_depends_on_visibility(self, tmp_path):
        # The legacy per-row MERGE *also* deduplicates identical rows --
        # but only because it reads its own writes.
        path = tmp_path / "dup.csv"
        write_csv(path, ["id"], [[1], [1]])
        g = Graph(Dialect.CYPHER9)
        g.run(
            f"LOAD CSV WITH HEADERS FROM '{path}' AS row "
            "MERGE (:User {id: row.id})"
        )
        assert g.node_count() == 1
