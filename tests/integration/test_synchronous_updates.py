"""The ring-rotation demonstration of atomic SET, as a pinned test."""

from repro import Dialect, Graph

ROTATE = "MATCH (a:Cell)-[:NEXT]->(b:Cell) SET b.v = a.v"


def build_ring(dialect, size=6):
    graph = Graph(dialect)
    graph.run(
        "UNWIND range(0, $n - 1) AS i CREATE (:Cell {id: i, v: i})", n=size
    )
    graph.run(
        "MATCH (a:Cell), (b:Cell {id: (a.id + 1) % $n}) "
        "CREATE (a)-[:NEXT]->(b)",
        n=size,
    )
    return graph


def values(graph):
    return graph.run(
        "MATCH (c:Cell) RETURN c.v AS v ORDER BY c.id"
    ).values("v")


class TestRevisedRotation:
    def test_single_rotation_is_a_shift(self):
        graph = build_ring(Dialect.REVISED)
        graph.run(ROTATE)
        assert values(graph) == [5, 0, 1, 2, 3, 4]

    def test_n_rotations_are_the_identity(self):
        graph = build_ring(Dialect.REVISED)
        for __ in range(6):
            graph.run(ROTATE)
        assert values(graph) == [0, 1, 2, 3, 4, 5]

    def test_every_step_is_a_permutation(self):
        graph = build_ring(Dialect.REVISED)
        for __ in range(4):
            graph.run(ROTATE)
            assert sorted(values(graph)) == [0, 1, 2, 3, 4, 5]


class TestLegacyCascade:
    def test_values_are_lost(self):
        graph = build_ring(Dialect.CYPHER9)
        graph.run(ROTATE)
        remaining = set(values(graph))
        # The per-record SET cascades: at least one value floods part of
        # the ring, so the result is no longer a permutation.
        assert len(remaining) < 6

    def test_deterministic_given_match_order(self):
        # Our matcher enumerates deterministically, so the legacy
        # cascade is reproducible (value 0 floods everything) -- the
        # nondeterminism in production engines comes from plan freedom,
        # which DrivingTable.shuffled models at the table level.
        graph = build_ring(Dialect.CYPHER9)
        graph.run(ROTATE)
        assert values(graph) == [0, 0, 0, 0, 0, 0]
