"""The HTTP listener over real sockets: framing, keep-alive, limits,
concurrent connections, clean shutdown.  Everything below the socket
is already covered by ``test_server_sessions.py``; these tests prove
the byte-level layer and the blocking client against it.
"""

from __future__ import annotations

import asyncio
import http.client
import threading

import pytest

from repro.client import Client
from repro.errors import CypherSyntaxError, ResourceLimitError
from repro.server.http import HttpServer
from repro.server.limits import RequestLimits
from repro.server.service import GraphService, ServerConfig


class ServerHarness:
    """A live server on an ephemeral port, driven from test threads."""

    def __init__(self, config: ServerConfig | None = None):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()
        self.server = HttpServer(
            GraphService(config if config is not None else ServerConfig()),
            port=0,
        )
        self._call(self.server.start())

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout=30)

    @property
    def url(self) -> str:
        return self.server.url

    def close(self) -> None:
        self._call(self.server.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()


@pytest.fixture
def harness():
    harness = ServerHarness()
    yield harness
    harness.close()


class TestHttpLayer:
    def test_query_roundtrip_over_sockets(self, harness):
        client = Client.connect(harness.url)
        try:
            client.run("CREATE (:User {name: 'ada'})")
            row = client.run(
                "MATCH (u:User) RETURN u.name AS n"
            ).single()
            assert row["n"] == "ada"
        finally:
            client.close()

    def test_keep_alive_reuses_connection(self, harness):
        client = Client.connect(harness.url)
        try:
            for i in range(10):
                assert client.run(
                    "RETURN $i AS i", {"i": i}
                ).single()["i"] == i
            # one keep-alive connection served all ten requests
            assert client._transport._connection is not None
        finally:
            client.close()

    def test_errors_map_to_statuses(self, harness):
        client = Client.connect(harness.url)
        try:
            with pytest.raises(CypherSyntaxError):
                client.run("MATCH (")
            with pytest.raises(ResourceLimitError):
                client.run("RETURN range(0, 4611686018427387904)")
            # the connection survives error responses
            assert client.run("RETURN 1 AS x").single()["x"] == 1
        finally:
            client.close()

    def test_unknown_route_is_404(self, harness):
        connection = http.client.HTTPConnection(
            "127.0.0.1", harness.server.port, timeout=10
        )
        try:
            connection.request("GET", "/nothing/here")
            response = connection.getresponse()
            assert response.status == 404
            response.read()
        finally:
            connection.close()

    def test_oversized_body_rejected_without_buffering(self):
        harness = ServerHarness(
            ServerConfig(limits=RequestLimits(max_body_bytes=1024))
        )
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", harness.server.port, timeout=10
            )
            # claim a 1 MiB body; the server must refuse on the
            # Content-Length header alone
            connection.putrequest("POST", "/query")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(1 << 20))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            connection.close()
        finally:
            harness.close()

    def test_sessions_over_sockets(self, harness):
        client = Client.connect(harness.url)
        reader = Client.connect(harness.url)
        try:
            with client.session() as session:
                session.begin()
                session.run("CREATE (:User {name: 'ada'})")
                seen = reader.run(
                    "MATCH (u:User) RETURN count(u) AS c"
                ).single()["c"]
                assert seen == 0
                session.commit()
            seen = reader.run(
                "MATCH (u:User) RETURN count(u) AS c"
            ).single()["c"]
            assert seen == 1
        finally:
            client.close()
            reader.close()

    def test_many_concurrent_connections(self, harness):
        errors: list[Exception] = []

        def drive(i: int) -> None:
            try:
                client = Client.connect(harness.url)
                try:
                    client.run(
                        "CREATE (:Load {i: $i})", {"i": i}
                    )
                    client.run(
                        "MATCH (n:Load {i: $i}) RETURN n.i", {"i": i}
                    )
                finally:
                    client.close()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=(i,))
            for i in range(24)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        client = Client.connect(harness.url)
        try:
            total = client.run(
                "MATCH (n:Load) RETURN count(n) AS c"
            ).single()["c"]
            assert total == 24
        finally:
            client.close()

    def test_clean_shutdown_with_open_connections(self):
        harness = ServerHarness()
        client = Client.connect(harness.url)
        client.run("RETURN 1")
        # closing with the keep-alive connection still open must not
        # hang or error on the server side
        harness.close()
        client.close()
