"""Failure injection: crashes mid-statement must never corrupt state.

A fault-injecting store wrapper makes a chosen low-level mutation fail
after N successes; whatever the failure point, the engine must roll the
statement back to a bit-identical graph and all indexes must agree with
a full rescan.
"""

import pytest

from repro import Dialect, Graph
from repro.graph.comparison import assert_isomorphic


class _InjectedFault(RuntimeError):
    """The synthetic fault raised by the wrapper."""


def inject(store, method_name: str, fail_after: int):
    """Make store.<method> raise after *fail_after* successful calls."""
    original = getattr(store, method_name)
    state = {"calls": 0}

    def wrapper(*args, **kwargs):
        if state["calls"] >= fail_after:
            raise _InjectedFault(
                f"{method_name} failed (injected after {fail_after})"
            )
        state["calls"] += 1
        return original(*args, **kwargs)

    setattr(store, method_name, wrapper)
    return lambda: setattr(store, method_name, original)


BIG_STATEMENT = (
    "UNWIND range(0, 19) AS i "
    "CREATE (:A {v: i})-[:T {w: i}]->(:B {v: i}) "
    "SET i = i"  # placeholder, replaced below
)


@pytest.fixture
def seeded():
    graph = Graph(Dialect.REVISED)
    graph.run(
        "UNWIND range(0, 9) AS i CREATE (:Seed {v: i})-[:S]->(:Seed2 {v: i})"
    )
    graph.create_index("Seed", "v")
    return graph


FAULTS = [
    ("create_node", 3),
    ("create_node", 0),
    ("create_relationship", 5),
    ("set_node_property", 2),
    ("delete_relationship", 1),
]


class TestMidStatementCrashes:
    @pytest.mark.parametrize("method, after", FAULTS)
    def test_graph_restored_exactly(self, seeded, method, after):
        before = seeded.snapshot()
        restore = inject(seeded.store, method, after)
        try:
            with pytest.raises(_InjectedFault):
                seeded.run(
                    "MATCH (s:Seed)-[r:S]->(t) "
                    "SET s.touched = true "
                    "DELETE r "
                    "WITH s CREATE (s)-[:S2]->(:Fresh {v: s.v})"
                )
        finally:
            restore()
        assert_isomorphic(seeded.snapshot(), before)

    @pytest.mark.parametrize("method, after", FAULTS)
    def test_index_consistent_after_crash(self, seeded, method, after):
        restore = inject(seeded.store, method, after)
        try:
            with pytest.raises(_InjectedFault):
                seeded.run(
                    "MATCH (s:Seed)-[r:S]->(t) "
                    "SET s.v = s.v + 100 "
                    "DELETE r "
                    "WITH s, t CREATE (s)-[:S]->(t), (:Seed {v: s.v})"
                )
        finally:
            restore()
        index = seeded.store.property_index("Seed", "v")
        for value in range(10):
            expected = frozenset(
                node.id
                for node in seeded.store.nodes()
                if node.has_label("Seed") and node.get("v") == value
            )
            assert index.lookup(value) == expected

    def test_crash_inside_transaction_then_continue(self, seeded):
        before_count = seeded.node_count()
        with seeded.transaction():
            seeded.run("CREATE (:Kept {v: 1})")
            restore = inject(seeded.store, "create_node", 0)
            try:
                with pytest.raises(_InjectedFault):
                    seeded.run("CREATE (:Lost)")
            finally:
                restore()
            seeded.run("CREATE (:Kept {v: 2})")
        kept = seeded.run("MATCH (k:Kept) RETURN count(k) AS c")
        assert kept.values("c") == [2]
        assert seeded.node_count() == before_count + 2

    def test_crash_during_merge_same(self, seeded):
        before = seeded.snapshot()
        restore = inject(seeded.store, "create_relationship", 2)
        try:
            with pytest.raises(_InjectedFault):
                seeded.run(
                    "UNWIND range(0, 9) AS i "
                    "MERGE SAME (:U {id: i})-[:R]->(:P {id: i % 3})"
                )
        finally:
            restore()
        assert_isomorphic(seeded.snapshot(), before)

    def test_crash_during_legacy_delete(self):
        graph = Graph(Dialect.CYPHER9)
        graph.run(
            "UNWIND range(0, 5) AS i CREATE (:A {v: i})-[:T]->(:B {v: i})"
        )
        before = graph.snapshot()
        restore = inject(graph.store, "delete_node", 2)
        try:
            with pytest.raises(_InjectedFault):
                graph.run("MATCH (a:A)-[r:T]->(b:B) DELETE r, a, b")
        finally:
            restore()
        assert_isomorphic(graph.snapshot(), before)
