"""The networked session surface, exercised without sockets.

A :class:`~repro.client.MockTransport` runs the full
:class:`~repro.server.service.GraphService` stack -- routing,
sessions, the write lock, snapshot reads, limits, durability -- on a
private event loop, so these tests cover everything the HTTP listener
serves except the socket framing itself.

The parity classes mirror the embedded ``tests/unit/test_session.py``
transaction semantics: whatever holds for ``Graph.transaction()``
must hold for a remote session.  The isolation classes then cover
what only exists on the server: *concurrent* sessions.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.client import Client, MockTransport, ServerError
from repro.errors import (
    CypherSyntaxError,
    ResourceLimitError,
    TransactionError,
)
from repro.server.limits import RequestLimits
from repro.server.service import GraphService, ServerConfig
from repro.server.wire import WireNode, WirePath, WireRelationship


@pytest.fixture
def client():
    service = GraphService(ServerConfig())
    client = Client.in_process(service)
    yield client
    client.close()


def count_users(runner) -> int:
    return runner.run("MATCH (u:User) RETURN count(u) AS c").single()[
        "c"
    ]


class TestSessionParity:
    """Remote sessions behave like ``Graph.transaction()``."""

    def test_commit_keeps_changes(self, client):
        with client.session() as session:
            session.begin()
            session.run("CREATE (:User {name: 'ada'})")
            session.commit()
        assert count_users(client) == 1

    def test_rollback_discards_changes(self, client):
        with client.session() as session:
            session.begin()
            session.run("CREATE (:User {name: 'ada'})")
            session.rollback()
        assert count_users(client) == 0

    def test_close_rolls_back_open_transaction(self, client):
        session = client.session()
        session.begin()
        session.run("CREATE (:User {name: 'ada'})")
        session.close()
        assert count_users(client) == 0

    def test_statement_error_keeps_transaction_alive(self, client):
        with client.session() as session:
            session.begin()
            session.run("CREATE (:User {name: 'ada'})")
            with pytest.raises(CypherSyntaxError):
                session.run("MATCH (")
            # the failed statement rolled back alone; the
            # transaction's earlier write survives to the commit
            session.run("CREATE (:User {name: 'bob'})")
            session.commit()
        assert count_users(client) == 2

    def test_transaction_context_manager(self, client):
        session = client.session()
        with session.transaction():
            session.run("CREATE (:User {name: 'ada'})")
        assert count_users(client) == 1
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.run("CREATE (:User {name: 'bob'})")
                raise RuntimeError("boom")
        assert count_users(client) == 1
        session.close()

    def test_begin_twice_rejected(self, client):
        with client.session() as session:
            session.begin()
            with pytest.raises(TransactionError):
                session.begin()
            session.rollback()

    def test_commit_without_begin_rejected(self, client):
        with client.session() as session:
            with pytest.raises(TransactionError):
                session.commit()

    def test_read_only_transaction_commits_cleanly(self, client):
        with client.session() as session:
            session.begin()
            assert count_users(session) == 0
            session.commit()

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/sessions/deadbeef/query", {
                "statement": "RETURN 1",
            })
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "UnknownSessionError"

    def test_autocommit_inside_session(self, client):
        with client.session() as session:
            session.run("CREATE (:User {name: 'ada'})")
        assert count_users(client) == 1


class TestIsolation:
    """Visibility rules between concurrent sessions."""

    def test_uncommitted_writes_invisible(self, client):
        writer = client.session()
        reader = client.session()
        writer.begin()
        writer.run("CREATE (:User {name: 'ada'})")
        assert count_users(writer) == 1  # read-own-writes
        assert count_users(reader) == 0
        assert count_users(client) == 0  # sessionless read too
        writer.commit()
        assert count_users(reader) == 1
        writer.close()
        reader.close()

    def test_commit_is_atomic_across_statements(self, client):
        writer = client.session()
        reader = client.session()
        writer.begin()
        for name in ("ada", "bob", "cy"):
            writer.run(
                "CREATE (:User {name: $n})", {"n": name}
            )
            # mid-transaction: all or nothing, never a prefix
            assert count_users(reader) == 0
        writer.commit()
        assert count_users(reader) == 3
        writer.close()
        reader.close()

    def test_rollback_restores_for_everyone(self, client):
        client.run("CREATE (:User {name: 'base'})")
        writer = client.session()
        writer.begin()
        writer.run("MATCH (u:User) DETACH DELETE u")
        writer.run("CREATE (:User {name: 'other'})")
        assert count_users(client) == 1  # snapshot: still 'base'
        names = client.run(
            "MATCH (u:User) RETURN u.name AS n"
        ).values()
        assert names == ["base"]
        writer.rollback()
        assert count_users(client) == 1
        writer.close()

    def test_snapshot_read_does_not_disturb_writer(self, client):
        writer = client.session()
        writer.begin()
        writer.run("CREATE (:User {name: 'ada'})")
        # a snapshot read rewinds and restores the store; the
        # writer's uncommitted state must survive it bit-for-bit
        assert count_users(client) == 0
        assert count_users(writer) == 1
        writer.run("MATCH (u:User {name: 'ada'}) SET u.age = 36")
        writer.commit()
        row = client.run(
            "MATCH (u:User) RETURN u.name AS n, u.age AS a"
        ).single()
        assert row == {"n": "ada", "a": 36}
        writer.close()

    def test_second_writer_times_out_while_tx_open(self):
        service = GraphService(
            ServerConfig(
                limits=RequestLimits(write_lock_timeout_s=0.1)
            )
        )
        client = Client.in_process(service)
        try:
            first = client.session()
            second = client.session()
            first.begin()
            first.run("CREATE (:User {name: 'ada'})")
            with pytest.raises(ServerError) as excinfo:
                second.run("CREATE (:User {name: 'bob'})")
            assert excinfo.value.status == 409
            assert excinfo.value.error_type == "WriteBusyError"
            first.commit()
            # lock released: the blocked writer can proceed now
            second.run("CREATE (:User {name: 'bob'})")
            assert count_users(client) == 2
        finally:
            client.close()

    def test_concurrent_threaded_writers_all_land(self, client):
        errors: list[Exception] = []

        def write(i: int) -> None:
            try:
                client.run(
                    "CREATE (:User {name: $n})", {"n": f"u{i}"}
                )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=write, args=(i,))
            for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert count_users(client) == 16

    def test_interleaved_transactions_never_tear(self, client):
        """Property test: randomly interleaved reader statements
        against a writer committing fixed-size batches never observe
        a count that is not a multiple of the batch size."""
        rng = random.Random(0xC0FFEE)
        writer = client.session()
        reader = client.session()
        batch = 3
        committed = 0
        for _ in range(20):
            writer.begin()
            for i in range(batch):
                writer.run("CREATE (:Pair)")
                if rng.random() < 0.7:
                    seen = reader.run(
                        "MATCH (p:Pair) RETURN count(p) AS c"
                    ).single()["c"]
                    assert seen == committed, (
                        f"reader saw {seen} mid-transaction, "
                        f"committed is {committed}"
                    )
            if rng.random() < 0.25:
                writer.rollback()
            else:
                writer.commit()
                committed += batch
            seen = reader.run(
                "MATCH (p:Pair) RETURN count(p) AS c"
            ).single()["c"]
            assert seen == committed
        writer.close()
        reader.close()


class TestWireRoundTrip:
    def test_entities_come_back_typed(self, client):
        client.run(
            "CREATE (:User {name: 'ada'})-[:KNOWS {since: 1843}]->"
            "(:User {name: 'bob'})"
        )
        row = client.run(
            "MATCH p = (a:User)-[k:KNOWS]->(b:User) "
            "RETURN a, k, b, p"
        ).single()
        assert isinstance(row["a"], WireNode)
        assert row["a"].labels == ("User",)
        assert row["a"].properties["name"] == "ada"
        assert isinstance(row["k"], WireRelationship)
        assert row["k"].type == "KNOWS"
        assert row["k"].start == row["a"].id
        assert row["k"].end == row["b"].id
        assert isinstance(row["p"], WirePath)
        assert len(row["p"]) == 1

    def test_collections_and_tilde_maps(self, client):
        row = client.run(
            "RETURN [1, 2.5, 'x', null] AS xs, "
            "{a: 1, b: {c: [true]}} AS m, "
            "{`~kind`: 'node'} AS evil"
        ).single()
        assert row["xs"] == [1, 2.5, "x", None]
        assert row["m"] == {"a": 1, "b": {"c": [True]}}
        assert row["evil"] == {"~kind": "node"}

    def test_counters_cross_the_wire(self, client):
        result = client.run(
            "CREATE (:User {name: 'ada'})-[:KNOWS]->(:User)"
        )
        assert result.counters.nodes_created == 2
        assert result.counters.relationships_created == 1


class TestLimitsOverTheWire:
    def test_range_cap_applies_remotely(self, client):
        with pytest.raises(ResourceLimitError):
            client.run("RETURN range(0, 4611686018427387904) AS xs")

    def test_request_limit_tighter_than_default(self):
        service = GraphService(
            ServerConfig(limits=RequestLimits(max_list_length=10))
        )
        client = Client.in_process(service)
        try:
            with pytest.raises(ResourceLimitError):
                client.run("RETURN range(1, 11) AS xs")
            assert client.run("RETURN range(1, 10) AS xs").single()[
                "xs"
            ] == list(range(1, 11))
        finally:
            client.close()

    def test_statement_length_cap(self):
        service = GraphService(
            ServerConfig(
                limits=RequestLimits(max_statement_chars=64)
            )
        )
        client = Client.in_process(service)
        try:
            with pytest.raises(ResourceLimitError):
                client.run("RETURN " + "1 + " * 32 + "1")
        finally:
            client.close()

    def test_result_row_cap(self):
        service = GraphService(
            ServerConfig(limits=RequestLimits(max_result_rows=5))
        )
        client = Client.in_process(service)
        try:
            with pytest.raises(ResourceLimitError):
                client.run("UNWIND range(1, 6) AS x RETURN x")
            assert (
                len(client.run("UNWIND range(1, 5) AS x RETURN x"))
                == 5
            )
        finally:
            client.close()

    def test_load_csv_disabled_by_default(self, client):
        with pytest.raises(ResourceLimitError):
            client.run(
                "LOAD CSV FROM 'file:///etc/passwd' AS row RETURN row"
            )

    def test_session_cap(self):
        service = GraphService(
            ServerConfig(limits=RequestLimits(max_sessions=2))
        )
        client = Client.in_process(service)
        try:
            first = client.session()
            client.session()
            with pytest.raises(ResourceLimitError):
                client.session()
            first.close()
            client.session()  # freed slot is reusable
        finally:
            client.close()


class TestAdminSurface:
    def test_health_and_stats(self, client):
        assert client.health()["status"] == "ok"
        client.run("CREATE (:User)")
        stats = client.stats()
        assert stats["nodes"] == 1
        assert stats["statements"] >= 1
        assert "wal_lsn" not in stats  # in-memory service

    def test_schema_lists_indexes_and_constraints(self, client):
        client.run("CREATE INDEX ON :User(name)")
        client.run(
            "CREATE CONSTRAINT ON (u:User) ASSERT u.email IS UNIQUE"
        )
        schema = client.schema()
        assert {"label": "User", "key": "name"} in schema["indexes"]
        assert any(
            c["label"] == "User" and c["key"] == "email"
            for c in schema["constraints"]
        )

    def test_checkpoint_requires_durability(self, client):
        with pytest.raises(Exception) as excinfo:
            client.checkpoint()
        assert "checkpoint" in str(excinfo.value)

    def test_bad_json_body_is_400(self, client):
        status, payload = client._transport.request(
            "POST", "/query", None
        )
        assert status == 400  # missing statement field
        status, _ = client._transport.request(
            "GET", "/nope/nothing"
        )
        assert status == 404


class TestDurableService:
    def test_group_commit_survives_reopen(self, tmp_path):
        from repro.session import Graph

        directory = tmp_path / "graph"
        service = GraphService(
            ServerConfig(
                path=str(directory), fsync="always", group_commit=True
            )
        )
        client = Client.in_process(service)
        try:
            for i in range(8):
                client.run(
                    "CREATE (:User {name: $n})", {"n": f"u{i}"}
                )
            with client.session() as session:
                session.begin()
                session.run("CREATE (:User {name: 'tx'})")
                session.commit()
            stats = client.stats()
            assert stats["wal_lsn"] >= 9
            assert stats["group_commit"]["durable_lsn"] >= 9
        finally:
            client.close()
        graph = Graph.open(directory)
        try:
            assert count_users(graph) == 9
        finally:
            graph.close()

    def test_rolled_back_transaction_not_in_wal(self, tmp_path):
        from repro.session import Graph

        directory = tmp_path / "graph"
        service = GraphService(
            ServerConfig(
                path=str(directory), fsync="always", group_commit=True
            )
        )
        client = Client.in_process(service)
        try:
            with client.session() as session:
                session.begin()
                session.run("CREATE (:User {name: 'ghost'})")
                session.rollback()
            client.run("CREATE (:User {name: 'real'})")
        finally:
            client.close()
        graph = Graph.open(directory)
        try:
            names = graph.run(
                "MATCH (u:User) RETURN u.name AS n"
            ).values("n")
        finally:
            graph.close()
        assert names == ["real"]

    def test_remote_checkpoint(self, tmp_path):
        service = GraphService(
            ServerConfig(path=str(tmp_path / "graph"))
        )
        client = Client.in_process(service)
        try:
            client.run("CREATE (:User)")
            payload = client.checkpoint()
            assert payload["checkpointed"] is True
        finally:
            client.close()
