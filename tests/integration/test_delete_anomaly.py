"""E4: the Section 4.2 DELETE anomaly and its strict replacement."""

import pytest

from repro import DanglingRelationshipError, Dialect, Graph
from repro.errors import UpdateError
from repro.paper import SECTION_4_2_STATEMENT, section_4_2_graph


class TestLegacyAnomaly:
    def test_statement_goes_through_without_error(self):
        g = Graph(Dialect.CYPHER9, store=section_4_2_graph())
        result = g.run(SECTION_4_2_STATEMENT)
        assert len(result) == 1

    def test_returned_node_is_empty(self):
        g = Graph(Dialect.CYPHER9, store=section_4_2_graph())
        zombie = g.run(SECTION_4_2_STATEMENT).records[0]["user"]
        assert zombie.labels == frozenset()
        assert dict(zombie.properties) == {}
        assert zombie.is_deleted

    def test_set_on_deleted_entity_is_lost(self):
        g = Graph(Dialect.CYPHER9, store=section_4_2_graph())
        g.run(SECTION_4_2_STATEMENT)
        # id = 999 never landed anywhere.
        remaining = g.run("MATCH (n) RETURN n.id AS id")
        assert remaining.values("id") == [125]

    def test_intermediate_state_has_dangling_relationship(self):
        # Reproduce the illegal working graph: delete only the user and
        # observe (via the engine's commit check) that the statement
        # would leave a dangling relationship.
        g = Graph(Dialect.CYPHER9, store=section_4_2_graph())
        with pytest.raises(UpdateError):
            g.run("MATCH (user:User) DELETE user")

    def test_matching_on_illegal_intermediate_graph(self):
        # Section 4.2: "complex data querying may actually be executed
        # on this illegal graph".  Mid-statement, the dangling
        # relationship is still matchable from its surviving endpoint,
        # and its missing endpoint matches as an empty anonymous node.
        g = Graph(Dialect.CYPHER9, store=section_4_2_graph())
        result = g.run(
            "MATCH (user:User)-[order:ORDERED]->(product) "
            "DELETE user "
            "WITH product "
            "MATCH (product)<-[r:ORDERED]-(ghost) "
            "DELETE r "
            "RETURN labels(ghost) AS ghost_labels"
        )
        assert result.values("ghost_labels") == [[]]
        # The statement ends without dangling rels, so it commits.
        assert g.node_count() == 1


class TestRevisedStrictness:
    def test_statement_is_rejected(self):
        g = Graph(Dialect.REVISED, store=section_4_2_graph())
        with pytest.raises(DanglingRelationshipError):
            g.run(SECTION_4_2_STATEMENT)

    def test_rejection_is_atomic(self):
        g = Graph(Dialect.REVISED, store=section_4_2_graph())
        with pytest.raises(DanglingRelationshipError):
            g.run(SECTION_4_2_STATEMENT)
        assert g.node_count() == 2
        assert g.relationship_count() == 1

    def test_same_clause_deletion_is_fine(self):
        g = Graph(Dialect.REVISED, store=section_4_2_graph())
        g.run(
            "MATCH (user)-[order:ORDERED]->(product) DELETE user, order"
        )
        assert g.node_count() == 1

    def test_deleted_reference_becomes_null_in_return(self):
        g = Graph(Dialect.REVISED, store=section_4_2_graph())
        result = g.run(
            "MATCH (user:User)-[order]->() DETACH DELETE user "
            "RETURN user, order"
        )
        assert result.records == [{"user": None, "order": None}]
