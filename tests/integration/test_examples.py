"""Smoke tests: every shipped example runs to completion."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = _load(path)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{path.stem} produced no output"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "marketplace",
        "update_anomalies",
        "merge_design_space",
        "csv_bulk_import",
        "social_recommendations",
    } <= names
