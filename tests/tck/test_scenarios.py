"""Runner for the declarative scenario corpus (scenarios.json).

Each scenario is executed as its own pytest case.  Records are compared
as bags after rendering entity values to plain data (nodes/relationships
are replaced by their property maps so expectations stay declarative).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.errors
from repro import Dialect, Graph
from repro.graph.model import Node, Path as GraphPath, Relationship
from repro.graph.values import grouping_key

_CORPUS = json.loads(
    (Path(__file__).parent / "scenarios.json").read_text(encoding="utf-8")
)
SCENARIOS = _CORPUS["scenarios"]


def _render(value):
    """Make result values JSON-comparable."""
    if isinstance(value, (Node, Relationship)):
        return dict(value.properties)
    if isinstance(value, GraphPath):
        return {
            "nodes": [dict(n.properties) for n in value.nodes],
            "relationships": [dict(r.properties) for r in value.relationships],
        }
    if isinstance(value, list):
        return [_render(v) for v in value]
    if isinstance(value, dict):
        return {k: _render(v) for k, v in value.items()}
    return value


def _bag(records):
    return sorted(
        (
            tuple(sorted((k, repr(grouping_key(_render(v)))) for k, v in r.items()))
            for r in records
        )
    )


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=lambda s: s["name"].replace(" ", "-")
)
def test_scenario(scenario):
    graph = Graph(
        Dialect.parse(scenario.get("dialect", "revised")),
        extended_merge=scenario.get("extended_merge", False),
        match_mode=scenario.get("match_mode", "trail"),
    )
    for statement in scenario.get("setup", ()):
        graph.run(statement)
    params = scenario.get("params", {})

    if "error" in scenario:
        expected_error = getattr(repro.errors, scenario["error"])
        with pytest.raises(expected_error):
            graph.run(scenario["query"], params)
        return

    result = graph.run(scenario["query"], params)
    if "expect" in scenario:
        assert _bag(result.records) == _bag(scenario["expect"]), (
            f"records mismatch:\n  got      {result.records}\n"
            f"  expected {scenario['expect']}"
        )
    if "graph" in scenario:
        expected = scenario["graph"]
        assert graph.node_count() == expected["nodes"]
        assert graph.relationship_count() == expected["relationships"]


def test_corpus_is_well_formed():
    names = [scenario["name"] for scenario in SCENARIOS]
    assert len(names) == len(set(names)), "duplicate scenario names"
    for scenario in SCENARIOS:
        assert "query" in scenario
        assert ("expect" in scenario) or ("error" in scenario) or (
            "graph" in scenario
        ), scenario["name"]


def test_corpus_covers_both_dialects():
    dialects = {scenario.get("dialect") for scenario in SCENARIOS}
    assert "cypher9" in dialects and "revised" in dialects
