"""Unit tests for the greedy endpoint planner."""

import pytest

from repro import Dialect, Graph
from repro.parser import ast, parse
from repro.runtime.context import EvalContext
from repro.runtime.planner import (
    estimate_node_cost,
    plan_pattern,
    reverse_path,
)


def pattern_of(source):
    statement = parse(f"MATCH {source} RETURN 1 AS one", Dialect.REVISED)
    return statement.branches()[0].clauses[0].pattern


@pytest.fixture
def market():
    g = Graph(Dialect.REVISED)
    g.run("UNWIND range(0, 199) AS i CREATE (:User {id: i})")
    g.run("UNWIND range(0, 9) AS i CREATE (:Product {id: i})")
    g.run(
        "MATCH (u:User), (p:Product {id: u.id % 10}) "
        "CREATE (u)-[:ORDERED]->(p)"
    )
    return g


class TestReversePath:
    def test_mirror_is_involutive(self):
        path = pattern_of("(a:A)-[:T]->(b)<-[:S]-(c:C {x: 1})").paths[0]
        assert reverse_path(reverse_path(path)) == path

    def test_directions_flip(self):
        path = pattern_of("(a)-[:T]->(b)").paths[0]
        mirrored = reverse_path(path)
        assert mirrored.elements[0].variable == "b"
        assert mirrored.relationships[0].direction == ast.IN

    def test_undirected_stays_undirected(self):
        path = pattern_of("(a)-[:T]-(b)").paths[0]
        assert reverse_path(path).relationships[0].direction == ast.BOTH

    def test_mirror_matches_the_same_subgraphs(self, market):
        from repro.runtime.matcher import match_paths

        ctx = EvalContext(store=market.store)
        path = pattern_of("(u:User {id: 5})-[:ORDERED]->(p:Product)").paths[0]
        forward = {
            (m["u"].id, m["p"].id) for m in match_paths(ctx, (path,), {})
        }
        backward = {
            (m["u"].id, m["p"].id)
            for m in match_paths(ctx, (reverse_path(path),), {})
        }
        assert forward == backward and forward


class TestCostEstimates:
    def test_bound_variable_is_free(self, market):
        ctx = EvalContext(store=market.store)
        node = market.store.node(0)
        element = pattern_of("(u:User)").paths[0].elements[0]
        assert estimate_node_cost(ctx, element, {"u"}, {"u": node}) == 0.0

    def test_label_count_used(self, market):
        ctx = EvalContext(store=market.store)
        user = pattern_of("(u:User)").paths[0].elements[0]
        product = pattern_of("(p:Product)").paths[0].elements[0]
        assert estimate_node_cost(
            ctx, product, set(), {}
        ) < estimate_node_cost(ctx, user, set(), {})

    def test_property_index_beats_label_scan(self, market):
        ctx = EvalContext(store=market.store)
        element = pattern_of("(u:User {id: 7})").paths[0].elements[0]
        without_index = estimate_node_cost(ctx, element, set(), {})
        market.create_index("User", "id")
        with_index = estimate_node_cost(ctx, element, set(), {})
        assert with_index < without_index
        # one index hit, times the 0.9 property-filter discount
        assert with_index == pytest.approx(0.9)

    def test_unlabeled_costs_node_count(self, market):
        ctx = EvalContext(store=market.store)
        element = pattern_of("(x)").paths[0].elements[0]
        assert estimate_node_cost(ctx, element, set(), {}) == float(
            market.node_count()
        )


class TestPlanPattern:
    def test_reverses_toward_cheap_end(self, market):
        ctx = EvalContext(store=market.store)
        pattern = pattern_of("(u:User)-[:ORDERED]->(p:Product {id: 3})")
        planned = plan_pattern(ctx, pattern, {})
        first = planned.paths[0].elements[0]
        assert first.labels == ("Product",)

    def test_keeps_orientation_when_first_is_cheap(self, market):
        ctx = EvalContext(store=market.store)
        pattern = pattern_of("(p:Product {id: 3})-[:ORDERED]-(u:User)")
        planned = plan_pattern(ctx, pattern, {})
        assert planned.paths[0].elements[0].labels == ("Product",)

    def test_named_paths_never_reverse(self, market):
        ctx = EvalContext(store=market.store)
        pattern = pattern_of("pp = (u:User)-[:ORDERED]->(p:Product {id: 3})")
        planned = plan_pattern(ctx, pattern, {})
        assert planned.paths[0].elements[0].labels == ("User",)

    def test_named_var_length_never_reverses(self, market):
        ctx = EvalContext(store=market.store)
        pattern = pattern_of("(u:User)-[rs:ORDERED*1..2]->(p:Product {id: 3})")
        planned = plan_pattern(ctx, pattern, {})
        assert planned.paths[0].elements[0].labels == ("User",)

    def test_paths_reordered_by_cost(self, market):
        ctx = EvalContext(store=market.store)
        pattern = pattern_of("(u:User), (p:Product)")
        planned = plan_pattern(ctx, pattern, {})
        assert planned.paths[0].elements[0].labels == ("Product",)

    def test_bound_path_runs_first(self, market):
        ctx = EvalContext(store=market.store)
        node = market.store.node(0)
        pattern = pattern_of("(p:Product), (u)")
        planned = plan_pattern(ctx, pattern, {"u": node})
        assert planned.paths[0].elements[0].variable == "u"


class TestPlannerEndToEnd:
    def test_same_results_with_and_without_planner(self, market):
        query = (
            "MATCH (u:User)-[:ORDERED]->(p:Product {id: 3}) "
            "RETURN u.id AS uid ORDER BY uid"
        )
        baseline = market.run(query).values("uid")
        planned_graph = Graph(
            Dialect.REVISED, use_planner=True, store=market.store
        )
        assert planned_graph.run(query).values("uid") == baseline
        assert len(baseline) == 20

    def test_planner_with_parameters_and_where(self, market):
        market.create_index("Product", "id")
        query = (
            "MATCH (u:User)-[:ORDERED]->(p:Product {id: $pid}) "
            "WHERE u.id < 50 RETURN count(*) AS c"
        )
        planned_graph = Graph(
            Dialect.REVISED, use_planner=True, store=market.store
        )
        assert (
            planned_graph.run(query, pid=3).records
            == market.run(query, pid=3).records
        )

    def test_planner_optional_match(self, market):
        query = (
            "MATCH (p:Product {id: 3}) "
            "OPTIONAL MATCH (u:User {id: 9999})-[:ORDERED]->(p) "
            "RETURN u"
        )
        planned_graph = Graph(
            Dialect.REVISED, use_planner=True, store=market.store
        )
        assert planned_graph.run(query).records == [{"u": None}]
