"""Unit tests for the REMOVE clause."""

import pytest

from repro import Dialect, Graph
from repro.errors import CypherTypeError


class TestRemove:
    def test_remove_property(self, revised_graph):
        revised_graph.run("CREATE (:N {a: 1, b: 2})")
        revised_graph.run("MATCH (n:N) REMOVE n.a")
        node = revised_graph.nodes()[0]
        assert dict(node.properties) == {"b": 2}

    def test_remove_missing_property_is_noop(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        revised_graph.run("MATCH (n:N) REMOVE n.zzz")

    def test_remove_labels(self, revised_graph):
        revised_graph.run("CREATE (:A:B:C)")
        revised_graph.run("MATCH (n:A) REMOVE n:A:B")
        node = revised_graph.nodes()[0]
        assert node.labels == frozenset({"C"})

    def test_remove_relationship_property(self, revised_graph):
        revised_graph.run("CREATE (:A)-[:T {w: 1}]->(:B)")
        revised_graph.run("MATCH ()-[r:T]->() REMOVE r.w")
        assert dict(revised_graph.relationships()[0].properties) == {}

    def test_remove_multiple_items(self, revised_graph):
        revised_graph.run("CREATE (:A:B {x: 1, y: 2})")
        revised_graph.run("MATCH (n:A) REMOVE n.x, n.y, n:B")
        node = revised_graph.nodes()[0]
        assert dict(node.properties) == {}
        assert node.labels == frozenset({"A"})

    def test_remove_on_null_is_noop(self, revised_graph):
        revised_graph.run("CREATE (:N {a: 1})")
        revised_graph.run(
            "MATCH (n:N) OPTIONAL MATCH (n)-[:NO]->(m) REMOVE m.a"
        )

    def test_remove_requires_entity(self, revised_graph):
        with pytest.raises(CypherTypeError):
            revised_graph.run("UNWIND [1] AS x REMOVE x.a")

    def test_label_removal_reflected_in_index(self, revised_graph):
        revised_graph.run("CREATE (:A {v: 1})")
        revised_graph.run("MATCH (n:A) REMOVE n:A")
        assert revised_graph.run("MATCH (n:A) RETURN n").records == []

    def test_legacy_remove_on_deleted_is_silent(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:N {a: 1})")
        g.run("MATCH (n:N) DELETE n REMOVE n.a")
        assert g.node_count() == 0

    def test_paper_query3_remove(self, revised_graph):
        # Query 3's REMOVE of the placeholder label.
        revised_graph.run("CREATE (:New_Product {id: 0})")
        revised_graph.run(
            "MATCH (p:New_Product{id:0}) "
            "SET p:Product, p.id=120, p.name='smartphone' "
            "REMOVE p:New_Product"
        )
        node = revised_graph.nodes()[0]
        assert node.labels == frozenset({"Product"})
        assert node.get("id") == 120
