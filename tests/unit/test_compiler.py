"""Unit tests for the expression compiler and the shared LRU cache."""

import pytest

from repro import Graph
from repro.caching import LRUCache
from repro.errors import CypherEvaluationError
from repro.graph.store import GraphStore
from repro.parser import ast, parse_expression
from repro.runtime import compiler
from repro.runtime.context import EvalContext


@pytest.fixture
def ctx():
    return EvalContext(store=GraphStore())


class TestLRUCache:
    def test_basic_get_put(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.info()["hits"] == 1
        assert cache.info()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now the stalest
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.info()["evictions"] == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via put
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_unhashable_keys_are_uncacheable(self):
        cache = LRUCache(capacity=2)
        cache.put(["list"], 1)  # silently not stored
        assert len(cache) == 0
        assert cache.get(["list"], "fallback") == "fallback"
        assert ["list"] not in cache

    def test_clear_preserves_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.info()["hits"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestMemoization:
    def test_same_node_compiles_once(self, ctx):
        expression = parse_expression("x + 1 * 2")
        first = compiler.compile_expression(expression)
        before = compiler.STATS.snapshot()
        second = compiler.compile_expression(expression)
        after = compiler.STATS.snapshot()
        assert second is first
        assert after["expressions_compiled"] == before["expressions_compiled"]
        assert after["cache_hits"] == before["cache_hits"] + 1

    def test_structurally_equal_nodes_share_closures(self, ctx):
        first = compiler.compile_expression(parse_expression("x + 1"))
        second = compiler.compile_expression(parse_expression("x + 1"))
        assert second is first

    def test_numeric_literal_types_stay_distinct(self, ctx):
        """True, 1 and 1.0 are equal under Python ``==`` but must not
        share a compiled closure (the AST hashes them apart)."""
        assert ast.Literal(1) != ast.Literal(True)
        assert ast.Literal(1) != ast.Literal(1.0)
        assert ast.Literal(1) == ast.Literal(1)
        one = compiler.compile_expression(parse_expression("1"))(ctx, {})
        true = compiler.compile_expression(parse_expression("true"))(ctx, {})
        lifted = compiler.compile_expression(parse_expression("1.0"))(ctx, {})
        assert one == 1 and not isinstance(one, bool)
        assert true is True
        assert isinstance(lifted, float)

    def test_unhashable_literal_compiles_fresh(self, ctx):
        expression = ast.Literal([1, 2])  # aggregate substitution shape
        fn = compiler.compile_expression(expression)
        assert fn(ctx, {}) == [1, 2]


class TestConstantFolding:
    def test_folds_constant_arithmetic(self, ctx):
        expression = parse_expression("2 * 3 + 4")
        before = compiler.STATS.constant_folded
        fn = compiler.compile_expression(expression)
        assert compiler.STATS.constant_folded > before
        assert fn(ctx, {}) == 10

    def test_folding_error_is_deferred_to_evaluation(self, ctx):
        fn = compiler.compile_expression(parse_expression("1 / 0"))
        with pytest.raises(CypherEvaluationError, match="division by zero"):
            fn(ctx, {})

    def test_list_literals_stay_fresh_objects(self, ctx):
        """A list literal must return a new list per evaluation (callers
        mutate results), so it is never folded to a shared constant."""
        fn = compiler.compile_expression(parse_expression("[1, 2]"))
        first = fn(ctx, {})
        second = fn(ctx, {})
        assert first == second == [1, 2]
        assert first is not second


class TestCompilationDisabled:
    def test_disabled_mode_interprets(self, ctx):
        expression = parse_expression("1 + 2")
        with compiler.compilation_disabled():
            assert not compiler.compilation_enabled()
            assert compiler.compile_expression(expression)(ctx, {}) == 3
        assert compiler.compilation_enabled()

    def test_disabled_mode_nests(self, ctx):
        with compiler.compilation_disabled():
            with compiler.compilation_disabled():
                pass
            assert not compiler.compilation_enabled()
        assert compiler.compilation_enabled()

    def test_disabled_queries_still_work(self):
        graph = Graph()
        graph.run("CREATE (:T {v: 1}), (:T {v: 2})")
        with compiler.compilation_disabled():
            result = graph.run(
                "MATCH (t:T) WHERE t.v > 1 RETURN count(*) AS n"
            )
        assert result.single()["n"] == 1


class TestEngineStatementCache:
    def test_parse_cache_hits(self):
        graph = Graph()
        graph.run("RETURN 1 AS one")
        graph.run("RETURN 1 AS one")
        graph.run("RETURN 2 AS two")
        info = graph.engine.ast_cache_info()
        assert info["hits"] == 1
        assert info["misses"] >= 2
        assert info["size"] == 2

    def test_profile_reports_compiler_metrics(self):
        graph = Graph()
        graph.run("CREATE (:T {v: 1})")
        profile = graph.profile("MATCH (t:T) RETURN t.v + 1 AS w")
        metrics = profile.to_dict()["compiler"]
        assert set(metrics) == {
            "expressions_compiled",
            "cache_hits",
            "constant_folded",
        }
        # Re-profiling the same statement reuses every closure.
        again = graph.profile("MATCH (t:T) RETURN t.v + 1 AS w")
        assert again.to_dict()["compiler"]["expressions_compiled"] == 0
        assert "compiler:" in again.render()
