"""The greedy shrinker: minimises while preserving the failure."""

import dataclasses

from repro.dialect import Dialect
from repro.parser import ast
from repro.parser.parser import parse
from repro.testing.generator import FuzzCase, case_for
from repro.testing.shrinker import _candidates, _valid, shrink


def _case_size(case: FuzzCase) -> int:
    clause_count = sum(
        len(statement.query.clauses) for statement in case.statements
    )
    return (
        clause_count
        + len(case.graph.get("nodes", ()))
        + len(case.graph.get("relationships", ()))
    )


def _make_case(source: str, graph=None) -> FuzzCase:
    statement = parse(source, Dialect.REVISED, extended_merge=True)
    return FuzzCase(
        kind="revised",
        seed_key="test:0",
        graph=graph or {"nodes": [], "relationships": []},
        statements=(statement,),
    )


def test_shrinks_to_the_failing_clause():
    """A predicate keyed on one clause strips everything else."""
    case = _make_case(
        "CREATE (a:A {i: 1}) "
        "CREATE (b:B {i: 2})-[:T]->(c:C) "
        "SET a.i = 1 + 2 * 3 "
        "RETURN a AS a, b AS b, c AS c",
        graph={
            "nodes": [
                {"id": 0, "labels": ["A"], "properties": {"i": 9}},
                {"id": 1, "labels": [], "properties": {}},
            ],
            "relationships": [],
        },
    )

    def still_fails(candidate: FuzzCase) -> bool:
        return any(
            isinstance(clause, ast.SetClause)
            for statement in candidate.statements
            for clause in statement.query.clauses
        )

    small = shrink(case, still_fails, budget=300)
    assert still_fails(small)
    assert _case_size(small) < _case_size(case)
    # Everything except the anchor SET (and whatever binds its
    # variable) should be gone.
    assert len(small.graph["nodes"]) == 0
    clauses = small.statements[0].query.clauses
    assert any(isinstance(c, ast.SetClause) for c in clauses)
    assert len(clauses) <= 3


def test_shrunk_cases_stay_replayable():
    def still_fails(candidate: FuzzCase) -> bool:
        return bool(candidate.statements)

    for index in (0, 3, 6):
        case = case_for(1, index)
        if case.kind == "merge":
            continue
        small = shrink(case, still_fails, budget=120)
        assert _valid(small)


def test_candidates_are_strictly_no_larger():
    case = case_for(0, 3)
    size = _case_size(case)
    for candidate in _candidates(case):
        assert _case_size(candidate) <= size


def test_expression_shrinking_reaches_literals():
    case = _make_case("CREATE (a:A {i: (1 + 2) * (3 + 4)}) RETURN a AS a")

    def still_fails(candidate: FuzzCase) -> bool:
        return any(
            isinstance(clause, ast.CreateClause)
            for statement in candidate.statements
            for clause in statement.query.clauses
        )

    small = shrink(case, still_fails, budget=300)
    create = next(
        clause
        for clause in small.statements[0].query.clauses
        if isinstance(clause, ast.CreateClause)
    )
    node = create.pattern.paths[0].elements[0]
    # The property map (or its nested arithmetic) must have collapsed.
    assert node.properties is None or all(
        isinstance(value, ast.Literal)
        for __, value in node.properties.items
    )


def test_budget_is_respected():
    case = case_for(0, 3)
    calls = 0

    def counting(candidate: FuzzCase) -> bool:
        nonlocal calls
        calls += 1
        return True  # every candidate "fails": worst case churn

    shrink(case, counting, budget=25)
    assert calls <= 25


def test_table_rows_shrink_for_merge_cases():
    case = case_for(0, 2)
    assert case.kind == "merge"
    original_rows = len(case.merge_table["records"])
    if original_rows < 2:
        return

    def still_fails(candidate: FuzzCase) -> bool:
        return True

    small = shrink(case, still_fails, budget=200)
    assert len(small.merge_table["records"]) == 1


def test_invalid_candidates_never_reach_the_predicate():
    """Dropping UNWIND alone would orphan its variable downstream; the
    validity filter must discard such candidates instead of offering
    them."""
    case = _make_case(
        "UNWIND [1, 2] AS x CREATE (a:A {i: x}) RETURN a AS a, x AS x"
    )
    seen = []

    def recording(candidate: FuzzCase) -> bool:
        seen.append(candidate)
        return False  # nothing reproduces: shrink returns the original

    result = shrink(case, recording, budget=200)
    assert result == case
    for candidate in seen:
        assert _valid(candidate)
