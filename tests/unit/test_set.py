"""Unit tests for SET: atomic (revised) vs per-record (legacy)."""

import pytest

from repro import Dialect, Graph, PropertyConflictError
from repro.errors import CypherTypeError, DeletedEntityError


@pytest.fixture
def two_products(revised_graph):
    revised_graph.run("CREATE (:P {name: 'a', v: 1}), (:P {name: 'b', v: 2})")
    return revised_graph


class TestRevisedAtomicSet:
    def test_swap_works(self, two_products):
        two_products.run(
            "MATCH (a:P {name:'a'}), (b:P {name:'b'}) SET a.v = b.v, b.v = a.v"
        )
        result = two_products.run(
            "MATCH (p:P) RETURN p.name AS n, p.v AS v ORDER BY n"
        )
        assert result.records == [{"n": "a", "v": 2}, {"n": "b", "v": 1}]

    def test_reads_come_from_input_graph_across_clusters(self, two_products):
        # Incrementing every node by the *same* right-hand side must not
        # cascade between records.
        two_products.run("MATCH (p:P) SET p.v = p.v + 1")
        result = two_products.run("MATCH (p:P) RETURN p.v AS v ORDER BY v")
        assert result.values("v") == [2, 3]

    def test_conflicting_writes_raise(self, two_products):
        with pytest.raises(PropertyConflictError):
            two_products.run("MATCH (a:P), (b:P) SET a.v = b.v")

    def test_conflict_rolls_back_whole_statement(self, two_products):
        with pytest.raises(PropertyConflictError):
            two_products.run(
                "MATCH (a:P), (b:P) SET a.marker = 1, a.v = b.v"
            )
        result = two_products.run("MATCH (p:P) RETURN p.marker AS m")
        assert result.values("m") == [None, None]

    def test_identical_writes_are_not_conflicts(self, two_products):
        two_products.run("MATCH (a:P), (b:P) SET a.flag = true")
        result = two_products.run("MATCH (p:P) RETURN p.flag AS f")
        assert result.values("f") == [True, True]

    def test_set_null_removes(self, two_products):
        two_products.run("MATCH (p:P {name: 'a'}) SET p.v = null")
        result = two_products.run(
            "MATCH (p:P {name: 'a'}) RETURN p.v AS v"
        )
        assert result.values("v") == [None]

    def test_set_on_null_target_is_noop(self, two_products):
        two_products.run(
            "MATCH (p:P {name:'a'}) OPTIONAL MATCH (p)-[:NO]->(q) SET q.v = 9"
        )

    def test_set_labels(self, two_products):
        two_products.run("MATCH (p:P {name: 'a'}) SET p:X:Y")
        result = two_products.run("MATCH (p:X:Y) RETURN p.name AS n")
        assert result.values("n") == ["a"]

    def test_set_whole_map_replaces(self, two_products):
        two_products.run("MATCH (p:P {name:'a'}) SET p = {fresh: true}")
        node = two_products.run(
            "MATCH (p:P) WHERE p.fresh RETURN p"
        ).records[0]["p"]
        assert dict(node.properties) == {"fresh": True}

    def test_set_additive_merges(self, two_products):
        two_products.run("MATCH (p:P {name:'a'}) SET p += {v: 10, extra: 'x'}")
        result = two_products.run(
            "MATCH (p:P {name:'a'}) RETURN p.v AS v, p.extra AS e"
        )
        assert result.records == [{"v": 10, "e": "x"}]

    def test_set_additive_null_removes_key(self, two_products):
        two_products.run("MATCH (p:P {name:'a'}) SET p += {v: null}")
        assert two_products.run(
            "MATCH (p:P {name:'a'}) RETURN p.v AS v"
        ).values("v") == [None]

    def test_replace_conflict_with_whole_map(self, two_products):
        # One record replaces the map (removing v), another sets v: the
        # removal and the write conflict.
        with pytest.raises(PropertyConflictError):
            two_products.run(
                "MATCH (a:P {name:'a'}) SET a = {}, a.v = 5"
            )

    def test_set_from_entity_properties(self, two_products):
        # SET a = b copies b's whole property map onto a.
        two_products.run(
            "MATCH (a:P {name:'a'}), (b:P {name:'b'}) SET a = b"
        )
        maps = [
            dict(record["p"].properties)
            for record in two_products.run("MATCH (p:P) RETURN p").records
        ]
        assert maps == [{"name": "b", "v": 2}, {"name": "b", "v": 2}]

    def test_set_on_relationship(self, revised_graph):
        revised_graph.run("CREATE (:A)-[:T]->(:B)")
        revised_graph.run("MATCH ()-[r:T]->() SET r.w = 4")
        result = revised_graph.run("MATCH ()-[r:T]->() RETURN r.w AS w")
        assert result.values("w") == [4]

    def test_set_requires_entity(self, revised_graph):
        with pytest.raises(CypherTypeError):
            revised_graph.run("UNWIND [1] AS x SET x.v = 1")


class TestLegacySequentialSet:
    def test_swap_degenerates(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:P {name: 'a', v: 1}), (:P {name: 'b', v: 2})")
        g.run(
            "MATCH (a:P {name:'a'}), (b:P {name:'b'}) SET a.v = b.v, b.v = a.v"
        )
        result = g.run("MATCH (p:P) RETURN p.v AS v")
        assert result.values("v") == [2, 2]

    def test_last_writer_wins_no_error(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:P {v: 1}), (:P {v: 2}), (:Target)")
        g.run("MATCH (t:Target), (p:P) SET t.v = p.v")
        result = g.run("MATCH (t:Target) RETURN t.v AS v")
        assert result.values("v")[0] in (1, 2)

    def test_order_dependence(self):
        def run(reverse):
            g = Graph(Dialect.CYPHER9)
            g.run("CREATE (:Target)")
            order = "DESC" if reverse else "ASC"
            g.run(
                "UNWIND [1, 2] AS v WITH v ORDER BY v " + order +
                " MATCH (t:Target) SET t.v = v"
            )
            return g.run("MATCH (t:Target) RETURN t.v AS v").values("v")[0]

        assert run(reverse=False) == 2
        assert run(reverse=True) == 1

    def test_set_after_delete_is_silently_lost(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:N {v: 1})")
        g.run("MATCH (n:N) DELETE n SET n.v = 9")
        assert g.node_count() == 0

    def test_revised_delete_then_set_is_null_target(self, revised_graph):
        # The revised DELETE replaces the table's reference with null
        # (Section 7), so a later SET in the same statement sees a null
        # target and is a well-defined no-op -- no zombie writes.
        revised_graph.run("CREATE (:N {v: 1})")
        revised_graph.run("MATCH (n:N) DELETE n SET n.v = 9")
        assert revised_graph.node_count() == 0

    def test_revised_set_on_externally_deleted_handle_raises(
        self, revised_graph
    ):
        # A deleted handle smuggled in via the initial driving table (not
        # nulled by a DELETE clause) is rejected loudly.
        from repro.runtime.table import DrivingTable

        node = revised_graph.create_node("N")
        revised_graph.store.delete_node(node.id)
        table = DrivingTable(("n",), [{"n": node}])
        with pytest.raises(DeletedEntityError):
            revised_graph.run("SET n.v = 9", table=table)
