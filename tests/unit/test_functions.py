"""Unit tests for built-in scalar functions."""

import math

import pytest

from repro.errors import CypherEvaluationError, CypherTypeError
from repro.graph.model import Path
from repro.graph.store import GraphStore
from repro.parser import parse_expression
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate


@pytest.fixture
def ctx():
    return EvalContext(store=GraphStore())


def ev(ctx, source, record=None):
    return evaluate(ctx, parse_expression(source), record or {})


class TestGraphFunctions:
    def test_id_labels_properties_keys(self, ctx):
        node_id = ctx.store.create_node(("B", "A"), {"x": 1, "y": 2})
        node = ctx.store.node(node_id)
        record = {"n": node}
        assert ev(ctx, "id(n)", record) == node_id
        assert ev(ctx, "labels(n)", record) == ["A", "B"]
        assert ev(ctx, "properties(n)", record) == {"x": 1, "y": 2}
        assert ev(ctx, "keys(n)", record) == ["x", "y"]

    def test_type_start_end(self, ctx):
        a = ctx.store.create_node()
        b = ctx.store.create_node()
        r = ctx.store.create_relationship("KNOWS", a, b)
        record = {"r": ctx.store.relationship(r)}
        assert ev(ctx, "type(r)", record) == "KNOWS"
        assert ev(ctx, "id(startNode(r))", record) == a
        assert ev(ctx, "id(endNode(r))", record) == b

    def test_degree(self, ctx):
        a = ctx.store.create_node()
        b = ctx.store.create_node()
        ctx.store.create_relationship("T", a, b)
        assert ev(ctx, "degree(n)", {"n": ctx.store.node(a)}) == 1

    def test_path_functions(self, ctx):
        a = ctx.store.create_node()
        b = ctx.store.create_node()
        r = ctx.store.create_relationship("T", a, b)
        path = Path(
            [ctx.store.node(a), ctx.store.node(b)],
            [ctx.store.relationship(r)],
        )
        record = {"p": path}
        assert ev(ctx, "length(p)", record) == 1
        assert [n.id for n in ev(ctx, "nodes(p)", record)] == [a, b]
        assert [x.id for x in ev(ctx, "relationships(p)", record)] == [r]

    def test_wrong_types_raise(self, ctx):
        with pytest.raises(CypherTypeError):
            ev(ctx, "labels(1)")
        with pytest.raises(CypherTypeError):
            ev(ctx, "type('x')")


class TestListFunctions:
    def test_size(self, ctx):
        assert ev(ctx, "size([1, 2, 3])") == 3
        assert ev(ctx, "size('abcd')") == 4

    def test_head_last_tail(self, ctx):
        assert ev(ctx, "head([1, 2])") == 1
        assert ev(ctx, "last([1, 2])") == 2
        assert ev(ctx, "tail([1, 2, 3])") == [2, 3]
        assert ev(ctx, "head([])") is None

    def test_reverse(self, ctx):
        assert ev(ctx, "reverse([1, 2])") == [2, 1]
        assert ev(ctx, "reverse('ab')") == "ba"

    def test_range(self, ctx):
        assert ev(ctx, "range(1, 4)") == [1, 2, 3, 4]
        assert ev(ctx, "range(0, 10, 5)") == [0, 5, 10]
        assert ev(ctx, "range(3, 1, -1)") == [3, 2, 1]
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "range(1, 2, 0)")

    def test_coalesce(self, ctx):
        assert ev(ctx, "coalesce(null, null, 3)") == 3
        assert ev(ctx, "coalesce(null)") is None
        assert ev(ctx, "coalesce(1, 2)") == 1


class TestConversions:
    def test_to_integer(self, ctx):
        assert ev(ctx, "toInteger('42')") == 42
        assert ev(ctx, "toInteger(3.9)") == 3
        assert ev(ctx, "toInteger('3.9')") == 3
        assert ev(ctx, "toInteger('nope')") is None
        assert ev(ctx, "toInteger(true)") == 1

    def test_to_float(self, ctx):
        assert ev(ctx, "toFloat('2.5')") == 2.5
        assert ev(ctx, "toFloat(2)") == 2.0
        assert ev(ctx, "toFloat('x')") is None

    def test_to_string(self, ctx):
        assert ev(ctx, "toString(42)") == "42"
        assert ev(ctx, "toString(true)") == "true"
        assert ev(ctx, "toString(2.5)") == "2.5"

    def test_to_boolean(self, ctx):
        assert ev(ctx, "toBoolean('TRUE')") is True
        assert ev(ctx, "toBoolean('false')") is False
        assert ev(ctx, "toBoolean('x')") is None

    def test_null_propagates(self, ctx):
        assert ev(ctx, "toInteger(null)") is None
        assert ev(ctx, "size(null)") is None


class TestNumeric:
    def test_abs_sign(self, ctx):
        assert ev(ctx, "abs(-3)") == 3
        assert ev(ctx, "sign(-2)") == -1
        assert ev(ctx, "sign(0)") == 0

    def test_abs_int64_min_overflows(self, ctx):
        # abs(INT64_MIN) is 2^63, which is not a 64-bit integer.
        with pytest.raises(CypherEvaluationError, match="overflow"):
            ev(ctx, "abs(-9223372036854775807 - 1)")

    def test_abs_boundaries_are_legal(self, ctx):
        assert ev(ctx, "abs(-9223372036854775807)") == 9223372036854775807
        assert ev(ctx, "abs(9223372036854775807)") == 9223372036854775807
        # Floats are IEEE 754 and never overflow this way.
        assert ev(ctx, "abs(-9223372036854775808.0)") == float(2**63)

    def test_rounding(self, ctx):
        assert ev(ctx, "ceil(2.1)") == 3.0
        assert ev(ctx, "floor(2.9)") == 2.0
        assert ev(ctx, "round(2.5)") == 3.0
        assert ev(ctx, "round(2.4)") == 2.0

    def test_roots_and_logs(self, ctx):
        assert ev(ctx, "sqrt(16)") == 4.0
        assert math.isnan(ev(ctx, "sqrt(-1)"))
        assert ev(ctx, "log(exp(1.0))") == pytest.approx(1.0)
        assert ev(ctx, "log10(100)") == pytest.approx(2.0)


class TestStrings:
    def test_case_functions(self, ctx):
        assert ev(ctx, "toUpper('ab')") == "AB"
        assert ev(ctx, "toLower('AB')") == "ab"

    def test_trim_family(self, ctx):
        assert ev(ctx, "trim('  x  ')") == "x"
        assert ev(ctx, "lTrim('  x')") == "x"
        assert ev(ctx, "rTrim('x  ')") == "x"

    def test_replace_split(self, ctx):
        assert ev(ctx, "replace('a-b', '-', '+')") == "a+b"
        assert ev(ctx, "split('a,b,c', ',')") == ["a", "b", "c"]

    def test_substring_left_right(self, ctx):
        assert ev(ctx, "substring('hello', 1)") == "ello"
        assert ev(ctx, "substring('hello', 1, 3)") == "ell"
        assert ev(ctx, "left('hello', 2)") == "he"
        assert ev(ctx, "right('hello', 2)") == "lo"

    def test_substring_past_the_end_is_empty(self, ctx):
        assert ev(ctx, "substring('hello', 9)") == ""
        assert ev(ctx, "substring('hello', 0, 0)") == ""
        assert ev(ctx, "left('hello', 99)") == "hello"
        assert ev(ctx, "right('hello', 99)") == "hello"

    def test_negative_positions_raise(self, ctx):
        # Regression: these used to fall through to Python's negative
        # indexing (substring('hello', -1) returned 'o').
        for source in (
            "substring('hello', -1)",
            "substring('hello', 1, -1)",
            "left('hello', -2)",
            "right('hello', -2)",
        ):
            with pytest.raises(
                CypherEvaluationError, match="non-negative"
            ):
                ev(ctx, source)

    def test_list_slices_keep_negative_indexing(self, ctx):
        # Only the string functions reject negatives; list slicing's
        # documented from-the-end semantics are unchanged.
        assert ev(ctx, "[1, 2, 3][-2..]") == [2, 3]
        assert ev(ctx, "[1, 2, 3][..-1]") == [1, 2]


class TestDispatch:
    def test_unknown_function(self, ctx):
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "frobnicate(1)")

    def test_arity_errors(self, ctx):
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "abs(1, 2)")
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "range(1)")

    def test_function_names_case_insensitive(self, ctx):
        assert ev(ctx, "TOUPPER('x')") == "X"
