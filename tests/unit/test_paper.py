"""Self-checks of the repro.paper module (the encoded artifacts)."""

from repro import Dialect
from repro.parser import parse
from repro import paper


class TestEncodedGraphs:
    def test_figure1_shape_constant(self):
        store = paper.figure1_graph()
        assert (store.node_count(), store.relationship_count()) == (
            paper.FIGURE_1_EXPECTED
        )

    def test_figure1_has_the_duplicate_id(self):
        # Example 2's premise: two :Product nodes share id 125.
        store = paper.figure1_graph()
        duplicates = [
            node
            for node in store.nodes()
            if node.has_label("Product") and node.get("id") == 125
        ]
        assert len(duplicates) == 2

    def test_example3_graph_has_no_relationships(self):
        store = paper.example3_graph()
        assert store.relationship_count() == 0
        assert store.node_count() == 5

    def test_example3_table_matches_the_paper(self):
        store = paper.example3_graph()
        table = paper.example3_table(store)
        names = [
            (
                record["user"].get("name"),
                record["product"].get("name"),
                record["vendor"].get("name"),
            )
            for record in table
        ]
        assert names == [
            ("u1", "p", "v1"),
            ("u2", "p", "v2"),
            ("u1", "p", "v2"),
        ]

    def test_example5_table_shape(self):
        table = paper.example5_table()
        assert len(table) == 6
        assert table.columns == ("cid", "pid", "date")
        null_rows = [r for r in table if r["pid"] is None]
        assert len(null_rows) == 3

    def test_example7_bindings_reference_live_nodes(self):
        store, table = paper.example7_graph_and_table()
        record = table.records[0]
        assert record["a"] == record["d"]  # both p1
        assert record["b"] == record["e"]  # both p2
        assert all(value.graph is store for value in record.values())

    def test_journals_are_clean(self):
        # Fixture builders must not leave undo entries behind, or the
        # first statement's rollback would eat the fixture.
        assert paper.figure1_graph().journal_length() == 0
        assert paper.example3_graph().journal_length() == 0
        store, __ = paper.example7_graph_and_table()
        assert store.journal_length() == 0


class TestEncodedStatements:
    def test_all_legacy_statements_parse(self):
        for source in (
            paper.QUERY_1,
            paper.QUERY_2,
            paper.QUERY_3,
            paper.QUERY_4,
            paper.QUERY_5,
            paper.EXAMPLE_1_SWAP,
            paper.EXAMPLE_1_SEQUENTIAL,
            paper.EXAMPLE_2_COPY_NAME,
            paper.SECTION_4_2_STATEMENT,
            paper.EXAMPLE_3_MERGE,
        ):
            parse(source, Dialect.CYPHER9)

    def test_all_revised_statements_parse(self):
        for source in (
            paper.EXAMPLE_3_MERGE_ALL,
            paper.EXAMPLE_3_MERGE_SAME,
            paper.EXAMPLE_5_MERGE_ALL,
            paper.EXAMPLE_5_MERGE_SAME,
            "MERGE ALL " + paper.EXAMPLE_6_PATTERN,
            "MERGE SAME " + paper.EXAMPLE_7_PATTERN,
        ):
            parse(source, Dialect.REVISED)

    def test_figure_constants_are_consistent(self):
        # Figures 7a/b/c nodes decrease, relationships never increase.
        assert paper.FIGURE_7A_EXPECTED > paper.FIGURE_7B_EXPECTED
        assert paper.FIGURE_7B_EXPECTED > paper.FIGURE_7C_EXPECTED
        assert paper.FIGURE_8A_EXPECTED > paper.FIGURE_8B_EXPECTED
        assert paper.FIGURE_9A_EXPECTED > paper.FIGURE_9B_EXPECTED
        assert paper.FIGURE_6A_EXPECTED[1] > paper.FIGURE_6B_EXPECTED[1]
