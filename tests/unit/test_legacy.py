"""Unit tests for the legacy (Cypher 9) MERGE and FOREACH behaviour."""

import pytest

from repro import Dialect, DrivingTable, Graph
from repro.paper import EXAMPLE_3_MERGE, example3_graph, example3_table


class TestLegacyMerge:
    def test_match_or_create(self):
        g = Graph(Dialect.CYPHER9)
        g.run("MERGE (u:User {id: 1})")
        g.run("MERGE (u:User {id: 1})")
        assert g.node_count() == 1
        g.run("MERGE (u:User {id: 2})")
        assert g.node_count() == 2

    def test_reads_own_writes_across_records(self):
        g = Graph(Dialect.CYPHER9)
        # Two identical failing rows: the first creates, the second
        # matches the first's creation (the read-own-writes behaviour).
        g.run("UNWIND [1, 1] AS uid MERGE (u:User {id: uid})")
        assert g.node_count() == 1

    def test_order_dependence_reproduces_figure6(self):
        store = example3_graph()
        g = Graph(Dialect.CYPHER9, store=store)
        g.run(EXAMPLE_3_MERGE, table=example3_table(store))
        top_down_rels = g.relationship_count()

        store2 = example3_graph()
        g2 = Graph(Dialect.CYPHER9, store=store2)
        g2.run(EXAMPLE_3_MERGE, table=example3_table(store2).reversed())
        bottom_up_rels = g2.relationship_count()

        assert top_down_rels == 4  # Figure 6b
        assert bottom_up_rels == 6  # Figure 6a

    def test_undirected_merge_creates_left_to_right(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:A {k: 1}), (:B {k: 2})")
        g.run("MATCH (a:A), (b:B) MERGE (a)-[:T]-(b)")
        rel = g.relationships()[0]
        assert rel.start.has_label("A")
        assert rel.end.has_label("B")

    def test_undirected_merge_matches_either_direction(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:A)<-[:T]-(:B)")
        g.run("MATCH (a:A), (b:B) MERGE (a)-[:T]-(b)")
        assert g.relationship_count() == 1  # matched, not created

    def test_on_create_set(self):
        g = Graph(Dialect.CYPHER9)
        g.run(
            "MERGE (u:User {id: 1}) "
            "ON CREATE SET u.created = true ON MATCH SET u.matched = true"
        )
        node = g.nodes()[0]
        assert node.get("created") is True
        assert node.get("matched") is None

    def test_on_match_set(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:User {id: 1})")
        g.run(
            "MERGE (u:User {id: 1}) "
            "ON CREATE SET u.created = true ON MATCH SET u.matched = true"
        )
        node = g.nodes()[0]
        assert node.get("matched") is True
        assert node.get("created") is None

    def test_paper_query5(self, marketplace):
        result = marketplace.run(
            "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p, v"
        )
        # p1 and p2 match vendor v1; p3 gets a fresh vendor.
        assert len(result) == 3
        assert result.counters.nodes_created == 1
        assert result.counters.relationships_created == 1

    def test_merge_table_binds_new_variables(self):
        g = Graph(Dialect.CYPHER9)
        result = g.run("MERGE (u:User {id: 9}) RETURN u.id AS id")
        assert result.values("id") == [9]


class TestForeach:
    def test_foreach_creates_per_element(self, revised_graph):
        revised_graph.run("FOREACH (x IN [1, 2, 3] | CREATE (:N {v: x}))")
        assert revised_graph.node_count() == 3

    def test_foreach_passes_table_through(self, revised_graph):
        result = revised_graph.run(
            "UNWIND [10] AS base "
            "FOREACH (x IN [1, 2] | CREATE (:N {v: base + x})) "
            "RETURN base"
        )
        assert result.values("base") == [10]
        values = sorted(n.get("v") for n in revised_graph.nodes())
        assert values == [11, 12]

    def test_foreach_null_list_is_noop(self, revised_graph):
        revised_graph.run("FOREACH (x IN null | CREATE (:N))")
        assert revised_graph.node_count() == 0

    def test_nested_foreach(self, revised_graph):
        revised_graph.run(
            "FOREACH (x IN [1, 2] | FOREACH (y IN [1, 2] | "
            "CREATE (:N {v: x * 10 + y})))"
        )
        assert revised_graph.node_count() == 4

    def test_foreach_set_on_matched_nodes(self, revised_graph):
        revised_graph.run("CREATE (:N {v: 1}), (:N {v: 2})")
        revised_graph.run(
            "MATCH (n:N) WITH collect(n) AS ns "
            "FOREACH (n IN ns | SET n.seen = true)"
        )
        assert all(n.get("seen") for n in revised_graph.nodes())

    def test_foreach_atomic_set_conflict_in_revised(self, revised_graph):
        from repro import PropertyConflictError

        revised_graph.run("CREATE (:Target)")
        with pytest.raises(PropertyConflictError):
            revised_graph.run(
                "MATCH (t:Target) "
                "FOREACH (x IN [1, 2] | SET t.v = x)"
            )

    def test_foreach_legacy_set_last_wins(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:Target)")
        g.run("MATCH (t:Target) FOREACH (x IN [1, 2] | SET t.v = x)")
        assert g.nodes()[0].get("v") == 2

    def test_foreach_delete(self, revised_graph):
        revised_graph.run("CREATE (:N), (:N)")
        revised_graph.run(
            "MATCH (n:N) WITH collect(n) AS ns FOREACH (n IN ns | DELETE n)"
        )
        assert revised_graph.node_count() == 0
