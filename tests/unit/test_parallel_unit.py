"""Unit tests for the morsel scheduler's building blocks.

The equivalence properties live in
``tests/properties/test_parallel_equivalence.py``; here the pieces are
checked in isolation: the segment analyzer's classification, the
scoped worker/min-row overrides, the per-segment profile entry, and
the server-side worker cap.
"""

import pytest

from repro.dialect import Dialect
from repro.parser.parser import parse
from repro.runtime.parallel import (
    DEFAULT_MAX_WORKERS,
    max_workers,
    parallel_min_rows,
    worker_limit,
)
from repro.runtime.pipeline import analyze_segments, is_record_local
from repro.session import Graph


def clauses_of(source, dialect=Dialect.REVISED):
    return parse(source, dialect).branches()[0].clauses


def kinds(source):
    return [kind for kind, _ in analyze_segments(clauses_of(source))]


class TestSegmentAnalyzer:
    def test_pure_read_pipeline_is_one_parallel_segment(self):
        segments = analyze_segments(
            clauses_of(
                "MATCH (a) OPTIONAL MATCH (a)-[r:T]->(b) "
                "UNWIND [1, 2] AS k WITH a, k WHERE k > 1 "
                "RETURN a.i AS i, k"
            )
        )
        assert [kind for kind, _ in segments] == ["parallel"]
        assert len(segments[0][1]) == 5

    def test_mutating_suffix_splits_off_serially(self):
        assert kinds("MATCH (a) SET a.x = 1") == ["parallel", "serial"]
        assert kinds("MATCH (a) CREATE (a)-[:R]->(:B)") == [
            "parallel",
            "serial",
        ]
        assert kinds("MATCH (a) DELETE a") == ["parallel", "serial"]

    def test_aggregating_projection_is_serial(self):
        analyzed = analyze_segments(
            clauses_of("MATCH (a) RETURN count(a) AS c")
        )
        assert [kind for kind, _ in analyzed] == ["parallel", "serial"]

    def test_distinct_order_skip_limit_are_serial(self):
        for suffix in (
            "RETURN DISTINCT a.i AS i",
            "RETURN a.i AS i ORDER BY i",
            "RETURN a.i AS i SKIP 1",
            "RETURN a.i AS i LIMIT 2",
            "WITH DISTINCT a RETURN a.i AS i",
        ):
            analyzed = analyze_segments(clauses_of(f"MATCH (a) {suffix}"))
            first_kind, first_run = analyzed[0]
            assert first_kind == "parallel"
            assert len(first_run) == 1, suffix

    def test_read_resumes_after_a_mutation(self):
        assert kinds(
            "MATCH (a) SET a.x = 1 WITH a MATCH (b) RETURN a.x, b.x"
        ) == ["parallel", "serial", "parallel"]

    def test_merge_and_foreach_are_not_record_local(self):
        for source in (
            "MERGE ALL (a:A)",
            "FOREACH (k IN [1] | CREATE (:B {i: k}))",
        ):
            (clause,) = clauses_of(source)
            assert not is_record_local(clause)

    def test_load_csv_is_conservatively_serial(self):
        clause = clauses_of(
            "LOAD CSV FROM 'file:///x.csv' AS row RETURN row"
        )[0]
        assert not is_record_local(clause)


class TestScopedOverrides:
    def test_worker_limit_is_scoped_and_nestable(self):
        assert max_workers() == DEFAULT_MAX_WORKERS
        with worker_limit(2):
            assert max_workers() == 2
            with worker_limit(1):
                assert max_workers() == 1
            assert max_workers() == 2
        assert max_workers() == DEFAULT_MAX_WORKERS

    def test_worker_limit_rejects_zero(self):
        with pytest.raises(ValueError):
            with worker_limit(0):
                pass

    def test_worker_limit_caps_session_workers(self):
        graph = Graph(Dialect.REVISED, workers=4)
        for index in range(20):
            graph.run("CREATE (:U {id: $i})", i=index)
        with parallel_min_rows(2), worker_limit(1):
            profile = graph.profile("MATCH (u:U) RETURN u.id AS i")
        # With the cap at one worker there is nothing to fan out.
        assert "ParallelSegment" not in profile.render()

    def test_parallel_min_rows_rejects_zero(self):
        with pytest.raises(ValueError):
            with parallel_min_rows(0):
                pass


class TestProfileAnnotations:
    def test_parallel_segment_profiles_as_one_entry(self):
        graph = Graph(Dialect.REVISED, workers=4)
        for index in range(20):
            graph.run("CREATE (:U {id: $i})", i=index)
        with parallel_min_rows(2):
            profile = graph.profile(
                "MATCH (u:U) WHERE u.id > 3 "
                "UNWIND [1, 2] AS k RETURN u.id + k AS v"
            )
        def walk(entries):
            for entry in entries:
                yield entry
                yield from walk(entry.children)

        segment = next(
            entry
            for entry in walk(profile.clauses)
            if entry.label.startswith("ParallelSegment[")
        )
        assert segment.workers == 4
        assert segment.morsels >= 2
        assert len(segment.morsel_ms) == segment.morsels
        assert segment.rows_out == 32
        data = segment.to_dict()
        assert data["workers"] == 4
        assert len(data["morsel_ms"]) == segment.morsels


class TestServerWorkerCap:
    def test_request_limits_default_is_serial(self):
        from repro.server.limits import RequestLimits

        assert RequestLimits().max_workers == 1
        assert RequestLimits(max_workers=8).max_workers == 8
