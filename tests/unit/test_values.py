"""Unit tests for the Cypher value model (three-valued logic etc.)."""

import math

import pytest

from repro.errors import CypherTypeError
from repro.graph.values import (
    cypher_eq,
    cypher_gt,
    cypher_gte,
    cypher_in,
    cypher_lt,
    cypher_lte,
    cypher_neq,
    equivalent,
    grouping_key,
    is_storable,
    normalize_property_map,
    require_storable,
    sort_key,
    tri_and,
    tri_not,
    tri_or,
    tri_xor,
    type_name,
)


class TestTernaryLogic:
    def test_not(self):
        assert tri_not(True) is False
        assert tri_not(False) is True
        assert tri_not(None) is None

    def test_and_truth_table(self):
        assert tri_and(True, True) is True
        assert tri_and(True, False) is False
        assert tri_and(False, None) is False
        assert tri_and(None, False) is False
        assert tri_and(True, None) is None
        assert tri_and(None, None) is None

    def test_or_truth_table(self):
        assert tri_or(False, False) is False
        assert tri_or(True, None) is True
        assert tri_or(None, True) is True
        assert tri_or(False, None) is None
        assert tri_or(None, None) is None

    def test_xor_truth_table(self):
        assert tri_xor(True, False) is True
        assert tri_xor(True, True) is False
        assert tri_xor(None, True) is None
        assert tri_xor(False, None) is None

    def test_non_boolean_operand_raises(self):
        with pytest.raises(CypherTypeError):
            tri_and(1, True)
        with pytest.raises(CypherTypeError):
            tri_or(True, "x")
        with pytest.raises(CypherTypeError):
            tri_not("yes")


class TestTernaryEquality:
    def test_null_propagates(self):
        assert cypher_eq(None, None) is None
        assert cypher_eq(1, None) is None
        assert cypher_eq(None, "a") is None
        assert cypher_neq(None, None) is None

    def test_numbers_compare_across_types(self):
        assert cypher_eq(1, 1.0) is True
        assert cypher_eq(1, 2) is False

    def test_boolean_is_not_a_number(self):
        assert cypher_eq(True, 1) is False
        assert cypher_eq(False, 0) is False
        assert cypher_eq(True, True) is True

    def test_nan_never_equals(self):
        assert cypher_eq(float("nan"), float("nan")) is False

    def test_lists_propagate_unknown(self):
        assert cypher_eq([1, 2], [1, 2]) is True
        assert cypher_eq([1, None], [1, 2]) is None
        assert cypher_eq([1, None], [2, 2]) is False
        assert cypher_eq([1], [1, 2]) is False

    def test_maps(self):
        assert cypher_eq({"a": 1}, {"a": 1}) is True
        assert cypher_eq({"a": 1}, {"a": 2}) is False
        assert cypher_eq({"a": None}, {"a": 1}) is None
        assert cypher_eq({"a": 1}, {"b": 1}) is False

    def test_mixed_types_are_false(self):
        assert cypher_eq(1, "1") is False
        assert cypher_eq([1], {"a": 1}) is False


class TestComparisons:
    def test_numeric_ordering(self):
        assert cypher_lt(1, 2) is True
        assert cypher_lt(2, 1) is False
        assert cypher_lte(2, 2) is True
        assert cypher_gt(3, 2) is True
        assert cypher_gte(2, 3) is False

    def test_string_ordering(self):
        assert cypher_lt("a", "b") is True
        assert cypher_gte("b", "a") is True

    def test_null_comparisons_are_null(self):
        assert cypher_lt(None, 1) is None
        assert cypher_gte(1, None) is None

    def test_incomparable_types_are_null(self):
        assert cypher_lt(1, "a") is None
        assert cypher_lt(True, 1) is None

    def test_in_operator(self):
        assert cypher_in(2, [1, 2, 3]) is True
        assert cypher_in(5, [1, 2, 3]) is False
        assert cypher_in(5, [1, None]) is None
        assert cypher_in(1, [1, None]) is True
        assert cypher_in(1, None) is None

    def test_in_requires_list(self):
        with pytest.raises(CypherTypeError):
            cypher_in(1, "abc")


class TestEquivalence:
    def test_null_equivalent_to_null(self):
        assert equivalent(None, None)
        assert not equivalent(None, 1)

    def test_nan_equivalent_to_nan(self):
        assert equivalent(float("nan"), float("nan"))
        assert not equivalent(float("nan"), 1.0)

    def test_numbers_across_types(self):
        assert equivalent(1, 1.0)
        assert not equivalent(True, 1)

    def test_nested(self):
        assert equivalent([1, [None]], [1.0, [None]])
        assert equivalent({"a": None}, {"a": None})
        assert not equivalent({"a": None}, {"b": None})

    def test_grouping_key_agrees_with_equivalence(self):
        pairs = [
            (1, 1.0),
            (None, None),
            (float("nan"), float("nan")),
            ([1, None], [1.0, None]),
            ({"x": 2}, {"x": 2.0}),
        ]
        for left, right in pairs:
            assert grouping_key(left) == grouping_key(right)
        assert grouping_key(1) != grouping_key(True)
        assert grouping_key("1") != grouping_key(1)


class TestSortOrder:
    def test_nulls_sort_last(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [1, 2, 3, None, None]

    def test_cross_type_order_is_total(self):
        values = [1, "a", True, [1], {"a": 1}, None, 2.5]
        ordered = sorted(values, key=sort_key)
        # Maps < lists < strings < booleans < numbers < null
        assert ordered[-1] is None
        assert isinstance(ordered[0], dict)

    def test_nan_sorts_after_numbers(self):
        ordered = sorted([float("nan"), 1, 2], key=sort_key)
        assert math.isnan(ordered[-1])


class TestStorability:
    def test_scalars_are_storable(self):
        for value in (1, 1.5, "x", True):
            assert is_storable(value)

    def test_null_and_entities_are_not(self):
        assert not is_storable(None)
        assert not is_storable({"a": 1})

    def test_lists_of_scalars(self):
        assert is_storable([1, 2, 3])
        assert is_storable([])
        assert not is_storable([[1]])
        assert not is_storable([None])

    def test_require_storable_raises(self):
        with pytest.raises(CypherTypeError):
            require_storable({"a": 1}, "k")

    def test_normalize_drops_nulls(self):
        result = normalize_property_map([("a", 1), ("b", None), ("c", "x")])
        assert result == {"a": 1, "c": "x"}

    def test_normalize_null_overrides_earlier_value(self):
        result = normalize_property_map([("a", 1), ("a", None)])
        assert result == {}


class TestTypeName:
    def test_names(self):
        assert type_name(None) == "Null"
        assert type_name(True) == "Boolean"
        assert type_name(1) == "Integer"
        assert type_name(1.5) == "Float"
        assert type_name("x") == "String"
        assert type_name([1]) == "List"
        assert type_name({"a": 1}) == "Map"
