"""Unit tests for the selectivity-driven match planner and its statistics."""

import io

import pytest

from repro import Dialect, Graph
from repro.graph.store import GraphStore
from repro.parser import parse
from repro.runtime.context import EvalContext
from repro.runtime.match_planner import (
    PatternPlan,
    _path_sort_spec,
    estimate_element,
    plan_paths,
    planner_disabled,
    planning_active,
)


def paths_of(source, dialect=Dialect.REVISED):
    statement = parse(f"MATCH {source} RETURN 1 AS one", dialect)
    return statement.branches()[0].clauses[0].pattern.paths


class TestStoreStatistics:
    def test_counts_track_mutations_and_rollback(self):
        store = GraphStore()
        a = store.create_node(["A"])
        b = store.create_node(["B"])
        rel = store.create_relationship("T", a, b)
        assert (store.node_count(), store.relationship_count()) == (2, 1)
        mark = store.mark()
        store.delete_relationship(rel)
        store.delete_node(a)
        assert (store.node_count(), store.relationship_count()) == (1, 0)
        store.rollback_to(mark)
        assert (store.node_count(), store.relationship_count()) == (2, 1)
        # Rolling back creations decrements too.
        mark = store.mark()
        store.create_node(["A"])
        store.create_relationship("T", a, b)
        store.rollback_to(mark)
        assert (store.node_count(), store.relationship_count()) == (2, 1)

    def test_counts_match_recomputation(self):
        store = GraphStore()
        ids = [store.create_node(["A"]) for _ in range(5)]
        for i in range(4):
            store.create_relationship("T", ids[i], ids[i + 1])
        store.delete_relationship(0)
        store.delete_node(ids[0])
        assert store.node_count() == sum(1 for _ in store.nodes())
        assert store.relationship_count() == sum(
            1 for _ in store.relationships()
        )

    def test_degrees_per_direction_and_type(self):
        store = GraphStore()
        a = store.create_node()
        b = store.create_node()
        store.create_relationship("T", a, b)
        store.create_relationship("S", a, b)
        store.create_relationship("T", b, a)
        assert store.out_degree(a) == 2
        assert store.in_degree(a) == 1
        assert store.degree(a) == 3
        assert store.out_degree(a, ("T",)) == 1
        assert store.out_degree(a, ("T", "S")) == 2
        assert store.in_degree(a, ("S",)) == 0
        assert store.degree(a, ("T",)) == 2

    def test_degree_ignores_deleted(self):
        store = GraphStore()
        a = store.create_node()
        b = store.create_node()
        rel = store.create_relationship("T", a, b)
        store.delete_relationship(rel)
        assert store.degree(a) == 0
        assert store.out_degree(a, ("T",)) == 0

    def test_adjacent_rel_ids_sorted_and_deduped(self):
        store = GraphStore()
        a = store.create_node()
        b = store.create_node()
        r_out = store.create_relationship("T", a, b)
        r_in = store.create_relationship("S", b, a)
        loop = store.create_relationship("T", a, a)
        # The self-loop appears in both adjacency sets but only once here.
        assert store.adjacent_rel_ids(a) == [r_out, r_in, loop]
        assert store.adjacent_rel_ids(a, incoming=False) == [r_out, loop]
        assert store.adjacent_rel_ids(a, outgoing=False) == [r_in, loop]
        assert store.adjacent_rel_ids(a, types=("T",)) == [r_out, loop]
        assert store.adjacent_rel_ids(a, types=("S",)) == [r_in]
        assert store.adjacent_rel_ids(a, types=("T", "S")) == [
            r_out,
            r_in,
            loop,
        ]

    def test_label_count_and_index_selectivity(self):
        store = GraphStore()
        for i in range(6):
            store.create_node(["P"], {"k": i % 3})
        assert store.label_count("P") == 6
        assert store.label_count("Q") == 0
        assert store.index_selectivity("P", "k") is None
        store.create_index("P", "k")
        assert store.index_selectivity("P", "k") == pytest.approx(2.0)
        index = store.property_index("P", "k")
        assert index.bucket_count() == 3
        assert index.bucket_size(0) == 2
        assert index.bucket_size(99) == 0


@pytest.fixture
def shop_store():
    store = GraphStore()
    for i in range(100):
        store.create_node(["User"], {"id": i})
    for i in range(5):
        store.create_node(["Product"], {"id": i})
    store.create_index("Product", "id")
    return store


class TestPlanChoices:
    def test_index_anchor_in_last_position(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        paths = paths_of("(u:User)-[:ORDERED]->(p:Product {id: 3})")
        plan = plan_paths(ctx, paths, {})
        assert plan.ordered[0].anchor_index == 1
        assert plan.ordered[0].access == "index :Product(id)"
        assert plan.ordered[0].cost == 1.0
        assert "p via index :Product(id)" in plan.anchor_summary()

    def test_bound_variable_beats_everything(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        paths = paths_of("(u:User)-[:ORDERED]->(p)")
        node = shop_store.node(0)
        plan = plan_paths(ctx, paths, {"p": node})
        assert plan.ordered[0].anchor_index == 1
        assert plan.ordered[0].access == "bound(p)"
        assert plan.ordered[0].cost == 0.0

    def test_selective_path_runs_first(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        paths = paths_of("(u:User), (p:Product {id: 3})-[:T]->(q)")
        plan = plan_paths(ctx, paths, {})
        assert plan.ordered[0].written_index == 1
        assert plan.moved_count() == 2
        assert not plan.trivial

    def test_var_length_pins_anchor(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        paths = paths_of("(u:User)-[:T*1..3]->(p:Product {id: 3})")
        plan = plan_paths(ctx, paths, {})
        assert plan.ordered[0].anchor_index == 0

    def test_own_property_reference_pins_anchor(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        paths = paths_of("(u:User)-[:T]->(p:Product {id: u.id})")
        plan = plan_paths(ctx, paths, {})
        assert plan.ordered[0].anchor_index == 0

    def test_cross_path_reference_keeps_written_order(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        paths = paths_of("(u:User), (p:Product {id: u.id})")
        plan = plan_paths(ctx, paths, {})
        # Path 2's property map reads path 1's variable, so the written
        # order stands even though path 2's anchor is far cheaper.
        assert [p.written_index for p in plan.ordered] == [0, 1]
        assert plan.moved_count() == 0

    def test_estimate_ladder(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        def est(source):
            element = paths_of(source)[0].nodes[0]
            return estimate_element(ctx, element, set(), {})
        all_cost, all_access = est("(n)")
        label_cost, label_access = est("(n:User)")
        index_cost, index_access = est("(n:Product {id: 3})")
        assert all_access == "all nodes" and all_cost == 105.0
        assert label_access == "label scan :User" and label_cost == 100.0
        assert index_access == "index :Product(id)" and index_cost == 1.0
        assert index_cost < label_cost < all_cost

    def test_unknown_index_value_uses_average_bucket(self, shop_store):
        ctx = EvalContext(store=shop_store, use_planner=True)
        cost, access = estimate_element(
            ctx,
            paths_of("(p:Product {id: zzz.id})")[0].nodes[0],
            set(),
            {},
        )
        assert access == "index :Product(id)"
        assert cost == pytest.approx(1.0)  # average bucket of a unique index

    def test_sort_spec_shapes(self):
        assert _path_sort_spec(paths_of("(a)-[:T]->(b)")[0]) == ("fixed",)
        assert _path_sort_spec(paths_of("(a)-[:T*1..2]->(b)")[0]) == ("var",)
        assert _path_sort_spec(
            paths_of("(a)-[:T]->(b)-[:S*0..2]->(c)")[0]
        ) == ("fixed", "var")
        assert (
            _path_sort_spec(paths_of("(a)-[:T*1..2]->(b)-[:S*1..2]->(c)")[0])
            is None
        )


class TestEscapeHatch:
    def test_planner_disabled_flag(self):
        assert planning_active()
        with planner_disabled():
            assert not planning_active()
            with planner_disabled():
                assert not planning_active()
            assert not planning_active()
        assert planning_active()

    def test_disabled_matching_still_correct(self, shop_store):
        g = Graph(Dialect.REVISED, store=shop_store, use_planner=True)
        query = "MATCH (p:Product {id: 3}) RETURN count(p) AS c"
        assert g.run(query).single()["c"] == 1
        with planner_disabled():
            assert g.run(query).single()["c"] == 1


class TestObservability:
    @pytest.fixture
    def graph(self, shop_store):
        return Graph(Dialect.REVISED, store=shop_store, use_planner=True)

    def test_profile_reports_anchor(self, graph):
        profile = graph.profile(
            "MATCH (u:User), (p:Product {id: 3}) RETURN count(*) AS c"
        )
        match = profile.clauses[0]
        assert match.anchor == "p via index :Product(id), u via label scan :User"
        assert match.paths_reordered == 2
        rendered = profile.render()
        assert "anchor p via index :Product(id)" in rendered
        assert "2 paths reordered" in rendered
        as_dict = match.to_dict()
        assert as_dict["anchor"] == match.anchor
        assert as_dict["paths_reordered"] == 2

    def test_profile_fields_default_empty(self, graph):
        profile = graph.profile("RETURN 1 AS one")
        entry = profile.clauses[0]
        assert entry.anchor is None
        assert entry.paths_reordered == 0
        assert "anchor" not in profile.render()

    def test_graph_plan_forces_planner_on(self, shop_store):
        g = Graph(Dialect.REVISED, store=shop_store)  # planner off
        plan = g.plan("MATCH (u:User)-[:ORDERED]->(p:Product {id: 3}) RETURN u")
        assert "index :Product(id)" in plan
        assert "est. 1 candidates" in plan

    def test_shell_plan_command(self, shop_store):
        from repro.tools.shell import Shell

        out = io.StringIO()
        shell = Shell(Graph(Dialect.REVISED, store=shop_store), out=out)
        shell.feed(":plan MATCH (u:User), (p:Product {id: 3}) RETURN u;")
        text = out.getvalue()
        assert "index :Product(id)" in text
        assert "paths reordered" in text
        shell.feed(":plan")
        assert "usage: :plan STATEMENT" in out.getvalue()
        shell.feed(":help")
        assert ":plan STATEMENT" in out.getvalue()


class TestAnchoredEquivalence:
    """Direct checks that anchored expansion reassembles written order."""

    def test_named_path_binds_written_orientation(self, shop_store):
        store = shop_store
        u, p = 0, 100  # first User, first Product
        store.create_relationship("ORDERED", u, p)
        g = Graph(Dialect.REVISED, store=store, use_planner=True)
        record = g.run(
            "MATCH q = (u:User)-[:ORDERED]->(p:Product {id: 0}) RETURN q"
        ).single()
        path = record["q"]
        assert [n.id for n in path.nodes] == [u, p]
        assert path.relationships[0].start.id == u

    def test_mid_path_anchor_full_result(self):
        g = Graph(Dialect.REVISED, use_planner=True)
        g.run(
            "CREATE (a:L {n: 'a'})-[:T]->(b:M {n: 'b'})-[:T]->(c:R {n: 'c'})"
        )
        g.run("UNWIND range(0, 49) AS i CREATE (:L {n: 'x'})")
        g.create_index("M", "n")
        rows = g.run(
            "MATCH (x:L)-[:T]->(y:M {n: 'b'})-[:T]->(z:R) "
            "RETURN x.n AS x, y.n AS y, z.n AS z"
        ).records
        assert rows == [{"x": "a", "y": "b", "z": "c"}]

    def test_legacy_var_length_order(self):
        on = Graph(Dialect.CYPHER9, use_planner=True)
        off = Graph(Dialect.CYPHER9)
        for g in (on, off):
            g.run(
                "CREATE (s:S {i: 0})-[:T]->(m {i: 1})-[:T]->(e {i: 2}), "
                "(s)-[:T]->(e)"
            )
            g.run("CREATE (:Z {id: 0})")
            g.create_index("Z", "id")
        # Reordering puts the indexed path first; results must still
        # stream in naive order, including the var-length segments.
        query = (
            "MATCH (a:S)-[rs:T*1..2]->(b), (z:Z {id: 0}) "
            "RETURN a.i AS a, b.i AS b, size(rs) AS hops"
        )
        assert on.run(query).records == off.run(query).records
