"""Unit tests for DELETE: strict atomic (revised) vs legacy behaviour."""

import pytest

from repro import DanglingRelationshipError, Dialect, Graph
from repro.errors import CypherTypeError, UpdateError


@pytest.fixture
def ordered(revised_graph):
    revised_graph.run("CREATE (:User {id: 1})-[:ORDERED]->(:Product {id: 2})")
    return revised_graph


class TestRevisedStrictDelete:
    def test_delete_isolated_node(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        result = revised_graph.run("MATCH (n:N) DELETE n")
        assert result.counters.nodes_deleted == 1
        assert revised_graph.node_count() == 0

    def test_delete_attached_node_fails_atomically(self, ordered):
        with pytest.raises(DanglingRelationshipError):
            ordered.run("MATCH (u:User) DELETE u")
        assert ordered.node_count() == 2
        assert ordered.relationship_count() == 1

    def test_delete_node_and_relationship_same_clause(self, ordered):
        ordered.run("MATCH (u:User)-[r]->() DELETE u, r")
        assert ordered.node_count() == 1

    def test_delete_across_records_same_clause(self, ordered):
        # The relationship is collected from one record, the node from
        # another record of the same clause: still fine (clause-atomic).
        ordered.run(
            "MATCH (u:User) OPTIONAL MATCH (u)-[r]->() "
            "WITH collect(u) AS us, collect(r) AS rs "
            "UNWIND us + rs AS x DELETE x"
        )
        assert ordered.node_count() == 1

    def test_detach_delete(self, ordered):
        ordered.run("MATCH (u:User) DETACH DELETE u")
        assert ordered.node_count() == 1
        assert ordered.relationship_count() == 0

    def test_references_become_null(self, ordered):
        result = ordered.run("MATCH (u:User) DETACH DELETE u RETURN u")
        assert result.records == [{"u": None}]

    def test_references_inside_lists_become_null(self, ordered):
        result = ordered.run(
            "MATCH (u:User) WITH u, [u] AS us DETACH DELETE u RETURN us"
        )
        assert result.records == [{"us": [None]}]

    def test_delete_null_is_noop(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        revised_graph.run("MATCH (n:N) OPTIONAL MATCH (n)-[:X]->(m) DELETE m")
        assert revised_graph.node_count() == 1

    def test_double_delete_is_noop(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        revised_graph.run("MATCH (n:N), (m:N) DELETE n, m")
        assert revised_graph.node_count() == 0

    def test_delete_relationship_only(self, ordered):
        ordered.run("MATCH ()-[r:ORDERED]->() DELETE r")
        assert ordered.relationship_count() == 0
        assert ordered.node_count() == 2

    def test_delete_path(self, ordered):
        ordered.run("MATCH p = (:User)-[:ORDERED]->(:Product) DELETE p")
        assert ordered.node_count() == 0
        assert ordered.relationship_count() == 0

    def test_delete_non_entity_raises(self, revised_graph):
        with pytest.raises(CypherTypeError):
            revised_graph.run("UNWIND [1] AS x DELETE x")

    def test_match_after_delete_sees_removal(self, revised_graph):
        revised_graph.run("CREATE (:N {v: 1}), (:N {v: 2})")
        result = revised_graph.run(
            "MATCH (n:N {v: 1}) DELETE n "
            "WITH 1 AS one MATCH (m:N) RETURN m.v AS v"
        )
        assert result.values("v") == [2]


class TestLegacyDelete:
    def test_dangling_intermediate_state_allowed(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:User)-[:ORDERED]->(:Product)")
        # Deleting the user first, then the relationship, in separate
        # clauses of one statement works (Section 4.2).
        g.run("MATCH (u:User)-[r:ORDERED]->() DELETE u DELETE r")
        assert g.node_count() == 1

    def test_statement_leaving_dangling_fails(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:User)-[:ORDERED]->(:Product)")
        with pytest.raises(UpdateError):
            g.run("MATCH (u:User) DELETE u")
        # Commit-time validation rolls the statement back.
        assert g.node_count() == 2
        assert g.relationship_count() == 1

    def test_returned_deleted_node_is_empty(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:User {id: 1})-[:ORDERED]->(:Product)")
        result = g.run(
            "MATCH (user)-[order:ORDERED]->(product) "
            "DELETE user SET user.id = 999 DELETE order RETURN user"
        )
        zombie = result.records[0]["user"]
        assert zombie.is_deleted
        assert zombie.labels == frozenset()
        assert dict(zombie.properties) == {}

    def test_legacy_detach_delete(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:User)-[:ORDERED]->(:Product)")
        g.run("MATCH (u:User) DETACH DELETE u")
        assert g.node_count() == 1
        assert g.relationship_count() == 0
