"""Unit tests for the persistence subsystem.

WAL framing (checksums, torn tails), the fsync-policy writer, redo
derivation and replay on the store, atomic checkpoints, and the
manager's recover/attach/log/checkpoint lifecycle.
"""

import json

import pytest

from repro.errors import PersistenceError
from repro.graph.store import GraphStore
from repro.persistence import (
    PersistenceManager,
    WalWriter,
    decode_records,
    encode_record,
    read_wal,
)
from repro.persistence.checkpoint import (
    WAL_NAME,
    load_checkpoint,
    restore_checkpoint,
    write_checkpoint,
)
from repro.testing.invariants import canonical_graph_json, check_invariants


class TestFraming:
    def test_roundtrip(self):
        ops = [["create_node", 0, ["A"], {"k": 1}], ["delete_node", 3]]
        data = encode_record(7, ops) + encode_record(8, [])
        records, clean = decode_records(data)
        assert clean == len(data)
        assert [r.lsn for r in records] == [7, 8]
        assert records[0].ops == (("create_node", 0, ["A"], {"k": 1}),
                                  ("delete_node", 3))
        assert records[1].ops == ()

    def test_torn_tail_is_discarded(self):
        whole = encode_record(1, [["delete_node", 0]])
        torn = encode_record(2, [["delete_node", 1]])[:-3]
        records, clean = decode_records(whole + torn)
        assert [r.lsn for r in records] == [1]
        assert clean == len(whole)

    def test_corrupt_checksum_stops_decoding(self):
        first = encode_record(1, [])
        second = bytearray(encode_record(2, [["delete_node", 1]]))
        second[10] ^= 0xFF  # flip a payload byte; CRC no longer matches
        third = encode_record(3, [])
        records, clean = decode_records(first + bytes(second) + third)
        # Everything after the corrupt record is unreachable: without a
        # trustworthy length we cannot resynchronise.
        assert [r.lsn for r in records] == [1]
        assert clean == len(first)

    def test_short_header_is_torn(self):
        records, clean = decode_records(b"\x00\x00")
        assert records == [] and clean == 0

    def test_read_missing_file(self, tmp_path):
        assert read_wal(tmp_path / "nope.log") == ([], 0, 0)


class TestWalWriter:
    @pytest.mark.parametrize("policy", ["always", "batch", "off"])
    def test_append_and_read_back(self, tmp_path, policy):
        path = tmp_path / WAL_NAME
        with WalWriter(path, fsync=policy, batch_size=2) as writer:
            for lsn in range(1, 6):
                writer.append(lsn, [["delete_node", lsn]])
        records, clean, total = read_wal(path)
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
        assert clean == total

    def test_truncate_cuts_a_torn_tail(self, tmp_path):
        path = tmp_path / WAL_NAME
        writer = WalWriter(path, fsync="off")
        writer.append(1, [])
        writer.close()
        clean_length = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x00\x01garbage")
        with WalWriter(path, fsync="off") as writer:
            writer.truncate(clean_length)
            writer.append(2, [])
        records, clean, total = read_wal(path)
        assert [r.lsn for r in records] == [1, 2]
        assert clean == total

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(PersistenceError, match="fsync policy"):
            WalWriter(tmp_path / WAL_NAME, fsync="sometimes")
        with pytest.raises(PersistenceError, match="batch_size"):
            WalWriter(tmp_path / WAL_NAME, batch_size=0)


def _replay(source: GraphStore) -> GraphStore:
    """Run the full redo stream through a fresh store."""
    target = GraphStore()
    for op in source.redo_ops(0):
        target.apply_redo(op)
    return target


class TestRedo:
    def test_creates_and_sets_roundtrip(self):
        store = GraphStore()
        a = store.create_node(("A", "B"), {"k": 1})
        b = store.create_node((), {})
        store.create_relationship("T", a, b, {"w": 2.5})
        store.set_node_property(a, "k", [1, "x"])
        store.set_node_property(a, "k", None)  # removal
        store.add_label(b, "C")
        store.remove_label(a, "B")
        replayed = _replay(store)
        assert canonical_graph_json(replayed) == canonical_graph_json(store)
        check_invariants(replayed)

    def test_deletes_roundtrip(self):
        store = GraphStore()
        a = store.create_node(("A",), {})
        b = store.create_node(("A",), {})
        r = store.create_relationship("T", a, b)
        store.delete_relationship(r)
        store.delete_node(b)
        replayed = _replay(store)
        assert canonical_graph_json(replayed) == canonical_graph_json(store)
        check_invariants(replayed)

    def test_redo_is_absolute_not_delta(self):
        # Every write to a key is logged with its *final* value, not a
        # delta, so re-applying a set op is a no-op.
        store = GraphStore()
        a = store.create_node(("A",), {})
        store.set_node_property(a, "k", 1)
        store.set_node_property(a, "k", 2)
        ops = store.redo_ops(0)
        sets = [op for op in ops if op[0] == "set_node_prop"]
        assert all(op[3] == 2 for op in sets)  # current value, no history
        target = GraphStore()
        for op in ops:
            target.apply_redo(op)
        for op in sets:  # re-applying the data writes changes nothing
            target.apply_redo(op)
        assert canonical_graph_json(target) == canonical_graph_json(store)
        check_invariants(target)

    def test_rolled_back_slice_produces_no_ops(self):
        store = GraphStore()
        store.create_node(("A",), {})
        mark = store.mark()
        store.create_node(("B",), {})
        store.rollback_to(mark)
        assert store.redo_ops(mark) == []

    def test_apply_redo_bumps_id_allocators(self):
        store = GraphStore()
        store.apply_redo(("create_node", 7, ["A"], {}))
        assert store.create_node((), {}) > 7

    def test_apply_redo_maintains_property_indexes(self):
        store = GraphStore()
        store.create_index("A", "k")
        store.apply_redo(("create_node", 0, ["A"], {"k": 5}))
        store.apply_redo(("set_node_prop", 0, "k", 6))
        check_invariants(store)
        assert store.property_index("A", "k").lookup(6) == frozenset({0})

    def test_unknown_redo_op_rejected(self):
        with pytest.raises(PersistenceError):
            GraphStore().apply_redo(("warp_core_breach", 1))


class TestCommitHook:
    def test_hook_sees_committed_statements_only(self):
        logged = []
        store = GraphStore()
        store.set_commit_hook(logged.append)
        mark = store.mark()
        store.create_node(("A",), {})
        store.commit_statement(mark)
        mark = store.mark()
        store.create_node(("B",), {})
        store.rollback_to(mark)
        assert len(logged) == 1
        assert logged[0][0][0] == "create_node"
        # The journal is truncated at commit: nothing left to undo.
        assert store.journal_length() == 0

    def test_transaction_batches_statements(self):
        logged = []
        store = GraphStore()
        store.set_commit_hook(logged.append)
        tx = store.begin_transaction()
        mark = store.mark()
        store.create_node(("A",), {})
        store.commit_statement(mark)  # inside a transaction: deferred
        assert logged == []
        store.commit_transaction(tx)
        assert len(logged) == 1

    def test_rolled_back_transaction_logs_nothing(self):
        logged = []
        store = GraphStore()
        store.set_commit_hook(logged.append)
        tx = store.begin_transaction()
        store.create_node(("A",), {})
        store.rollback_transaction(tx)
        assert logged == []
        assert store.node_count() == 0

    def test_empty_commit_writes_no_record(self):
        logged = []
        store = GraphStore()
        store.set_commit_hook(logged.append)
        store.commit_statement(store.mark())
        assert logged == []

    def test_schema_changes_are_logged_once(self):
        logged = []
        store = GraphStore()
        store.set_commit_hook(logged.append)
        store.create_index("A", "k")
        store.create_index("A", "k")  # no-op: already exists
        store.drop_index("A", "k")
        store.drop_index("A", "k")  # no-op: already gone
        assert [ops[0][0] for ops in logged] == [
            "create_index",
            "drop_index",
        ]


class TestCheckpoint:
    def _store(self):
        store = GraphStore()
        a = store.create_node(("A",), {"k": 1})
        b = store.create_node(("B",), {"k": "two"})
        store.create_relationship("T", a, b, {"w": None if False else 3})
        store.create_index("A", "k")
        store.create_unique_constraint("B", "k")
        return store

    def test_write_load_restore(self, tmp_path):
        store = self._store()
        write_checkpoint(tmp_path, store, lsn=41)
        payload = load_checkpoint(tmp_path)
        assert payload["lsn"] == 41
        restored = GraphStore()
        restore_checkpoint(restored, payload)
        assert canonical_graph_json(restored) == canonical_graph_json(store)
        assert set(restored._property_indexes) == set(
            store._property_indexes
        )
        assert restored.unique_constraints() == store.unique_constraints()
        check_invariants(restored)

    def test_no_checkpoint_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path) is None

    def test_corrupt_checkpoint_raises(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text("{not json")
        with pytest.raises(PersistenceError, match="corrupt"):
            load_checkpoint(tmp_path)

    def test_unsupported_format_raises(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(PersistenceError, match="format"):
            load_checkpoint(tmp_path)

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        write_checkpoint(tmp_path, self._store(), lsn=1)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "checkpoint.json"
        ]


class TestManager:
    def _run_statements(self, directory, statements):
        from repro.session import Graph

        graph = Graph(path=directory, fsync="off")
        for statement in statements:
            graph.run(statement)
        snapshot = canonical_graph_json(graph.store)
        graph.close()
        return snapshot

    def test_recover_replays_the_log(self, tmp_path):
        before = self._run_statements(
            tmp_path,
            [
                "CREATE (:A {k: 1})",
                "CREATE (:B {k: 2})",
                "MATCH (a:A), (b:B) CREATE (a)-[:T {w: 1}]->(b)",
            ],
        )
        store = GraphStore()
        report = PersistenceManager(tmp_path).recover(store)
        assert canonical_graph_json(store) == before
        assert report.records_applied == 3
        assert report.nodes == 2 and report.relationships == 1

    def test_recover_refuses_a_hooked_store(self, tmp_path):
        store = GraphStore()
        store.set_commit_hook(lambda ops: None)
        with pytest.raises(PersistenceError, match="commit hook"):
            PersistenceManager(tmp_path).recover(store)

    def test_log_without_attach_raises(self, tmp_path):
        manager = PersistenceManager(tmp_path)
        with pytest.raises(PersistenceError, match="not attached"):
            manager.log_commit([("delete_node", 0)])

    def test_checkpoint_truncates_and_recovery_skips(self, tmp_path):
        before = self._run_statements(tmp_path, ["CREATE (:A {k: 1})"])
        store = GraphStore()
        manager = PersistenceManager(tmp_path)
        manager.recover(store)
        manager.checkpoint(store)
        assert (tmp_path / WAL_NAME).stat().st_size == 0
        fresh = GraphStore()
        report = PersistenceManager(tmp_path).recover(fresh)
        assert canonical_graph_json(fresh) == before
        assert report.records_total == 0
        assert report.checkpoint_lsn == 1

    def test_stale_wal_after_checkpoint_is_skipped(self, tmp_path):
        # A crash between "checkpoint renamed" and "WAL truncated"
        # leaves covered records behind; the LSN stamp must make the
        # replay skip them instead of double-applying creates.
        before = self._run_statements(
            tmp_path, ["CREATE (:A {k: 1})", "CREATE (:B {k: 2})"]
        )
        stale_wal = (tmp_path / WAL_NAME).read_bytes()
        store = GraphStore()
        manager = PersistenceManager(tmp_path)
        manager.recover(store)
        manager.checkpoint(store)
        (tmp_path / WAL_NAME).write_bytes(stale_wal)  # simulated crash
        fresh = GraphStore()
        report = PersistenceManager(tmp_path).recover(fresh)
        assert canonical_graph_json(fresh) == before
        assert report.records_skipped == 2
        assert report.records_applied == 0
        check_invariants(fresh)

    def test_attach_truncates_the_torn_tail(self, tmp_path):
        self._run_statements(tmp_path, ["CREATE (:A {k: 1})"])
        wal = tmp_path / WAL_NAME
        clean_length = wal.stat().st_size
        wal.write_bytes(wal.read_bytes() + b"torn!")
        store = GraphStore()
        manager = PersistenceManager(tmp_path, fsync="off")
        report = manager.recover(store)
        assert report.torn_bytes == 5
        manager.attach(store)
        assert wal.stat().st_size == clean_length
        manager.close()

    def test_invariant_violation_fails_verification(self, tmp_path):
        manager = PersistenceManager(tmp_path, fsync="off")
        store = GraphStore()
        manager.recover(store)
        manager.attach(store)
        # A dangling relationship: target node never created.
        manager.log_commit([("create_node", 0, ["A"], {}),
                            ("create_rel", 0, "T", 0, 99, {})])
        manager.close()
        with pytest.raises(PersistenceError, match="invariants"):
            PersistenceManager(tmp_path).recover(GraphStore())


class TestStreamingCheckpointManager:
    """Format-2 wiring through the manager: sniffing, compat, tmp."""

    def _populate(self, directory):
        from repro.session import Graph

        graph = Graph(path=directory, fsync="off")
        graph.run("CREATE (:A {k: 1})-[:T]->(:B {k: 2})")
        snapshot = canonical_graph_json(graph.store)
        graph.close()
        return snapshot

    def test_manager_checkpoint_is_streaming(self, tmp_path):
        from repro.persistence.checkpoint import (
            STREAM_MAGIC,
            checkpoint_format,
        )

        before = self._populate(tmp_path)
        store = GraphStore()
        manager = PersistenceManager(tmp_path)
        manager.recover(store)
        path = manager.checkpoint(store)
        assert path.read_bytes()[:8] == STREAM_MAGIC
        assert checkpoint_format(path) == 2
        fresh = GraphStore()
        report = PersistenceManager(tmp_path).recover(fresh)
        assert canonical_graph_json(fresh) == before
        assert report.checkpoint_format == 2
        assert report.records_total == 0

    def test_legacy_blob_still_recovers(self, tmp_path):
        before = self._populate(tmp_path)
        store = GraphStore()
        manager = PersistenceManager(tmp_path)
        manager.recover(store)
        manager.checkpoint(store, format=1)
        assert (tmp_path / "checkpoint.json").read_text()[0] == "{"
        fresh = GraphStore()
        report = PersistenceManager(tmp_path).recover(fresh)
        assert canonical_graph_json(fresh) == before
        assert report.checkpoint_format == 1

    def test_blob_and_stream_recover_identically(self, tmp_path):
        self._populate(tmp_path)
        store = GraphStore()
        manager = PersistenceManager(tmp_path)
        manager.recover(store)
        via = {}
        for format in (1, 2):
            manager.checkpoint(store, format=format)
            fresh = GraphStore()
            PersistenceManager(tmp_path).recover(fresh)
            via[format] = canonical_graph_json(fresh)
        assert via[1] == via[2]

    def test_torn_tmp_file_is_ignored(self, tmp_path):
        before = self._populate(tmp_path)
        (tmp_path / "checkpoint.json.tmp").write_bytes(b"RGCHKPT2\x00\x00")
        fresh = GraphStore()
        report = PersistenceManager(tmp_path).recover(fresh)
        assert canonical_graph_json(fresh) == before
        assert report.checkpoint_format == 0  # WAL replay only

    def test_no_checkpoint_reports_format_zero(self, tmp_path):
        report = PersistenceManager(tmp_path).recover(GraphStore())
        assert report.checkpoint_format == 0
        assert report.checkpoint_lsn == 0


class TestRecoverCli:
    def test_recover_and_compact(self, tmp_path, capsys):
        from repro.recover import main
        from repro.session import Graph

        graph = Graph(path=tmp_path, fsync="off")
        graph.run("CREATE (:A {k: 1})")
        graph.close()
        assert main([str(tmp_path), "--checkpoint", "--json"]) == 0
        out = capsys.readouterr().out
        assert "recovered:" in out and "invariants: ok" in out
        assert "checkpoint written" in out
        assert (tmp_path / WAL_NAME).stat().st_size == 0

    def test_cli_format_conversion_both_ways(self, tmp_path, capsys):
        from repro.persistence.checkpoint import checkpoint_format
        from repro.recover import main
        from repro.session import Graph

        graph = Graph(path=tmp_path, fsync="off")
        graph.run("CREATE (:A {k: 1})")
        graph.close()
        path = tmp_path / "checkpoint.json"
        assert main([str(tmp_path), "--checkpoint"]) == 0
        assert checkpoint_format(path) == 2
        assert main([str(tmp_path), "--checkpoint", "--format", "blob"]) == 0
        assert checkpoint_format(path) == 1
        assert main([str(tmp_path), "--checkpoint", "--format", "stream"]) == 0
        assert checkpoint_format(path) == 2
        out = capsys.readouterr().out
        assert "checkpoint format: 2 (stream)" in out
        assert "checkpoint format: 1 (blob)" in out

    def test_failure_exit_code(self, tmp_path, capsys):
        (tmp_path / "checkpoint.json").write_text("{broken")
        from repro.recover import main

        assert main([str(tmp_path)]) == 1
        assert "recovery failed" in capsys.readouterr().err
