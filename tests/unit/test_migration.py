"""Unit tests for the Cypher 9 -> revised migration linter."""

from repro.tools.migration import Severity, lint_script, lint_statement


def codes(report):
    return {finding.code for finding in report.findings}


class TestSyntaxBreaks:
    def test_bare_merge_flagged_with_rewrite(self):
        report = lint_statement("MERGE (u:User {id: 1})")
        assert report.breaks
        assert "bare-merge" in codes(report)
        suggestion = next(
            f.suggestion for f in report.findings if f.code == "bare-merge"
        )
        assert "MERGE SAME" in suggestion

    def test_undirected_merge_flagged(self):
        report = lint_statement("MATCH (a:A), (b:B) MERGE (a)-[:T]-(b)")
        assert "undirected-merge" in codes(report)
        suggestion = next(
            f.suggestion for f in report.findings if f.code == "bare-merge"
        )
        assert "-[:T]->" in suggestion  # directed rewrite offered

    def test_merge_actions_flagged(self):
        report = lint_statement(
            "MERGE (u:U {id: 1}) ON CREATE SET u.new = true"
        )
        assert "merge-actions" in codes(report)

    def test_whole_pattern_merge_change_noted(self):
        report = lint_statement(
            "MERGE (a:A {x: 1})-[:T]->(b:B {y: 2})"
        )
        assert "merge-whole-pattern" in codes(report)

    def test_invalid_cypher9_reported(self):
        report = lint_statement("MATCH (n")
        assert report.breaks
        assert "not-cypher9" in codes(report)


class TestSemanticChanges:
    def test_swap_pattern_flagged(self):
        report = lint_statement(
            "MATCH (p1:P), (p2:P) SET p1.id = p2.id, p2.id = p1.id"
        )
        assert report.changes and not report.breaks
        assert "set-read-write" in codes(report)

    def test_cross_entity_copy_flagged(self):
        report = lint_statement(
            "MATCH (a:A), (b:B) SET a.name = b.name"
        )
        assert "set-possible-conflict" in codes(report)

    def test_plain_delete_flagged(self):
        report = lint_statement("MATCH (n:N) DELETE n")
        assert "plain-delete" in codes(report)

    def test_write_after_delete_flagged(self):
        report = lint_statement(
            "MATCH (user)-[order:ORDERED]->(p) "
            "DELETE user SET user.id = 999 DELETE order"
        )
        assert "write-after-delete" in codes(report)

    def test_foreach_contents_analysed(self):
        report = lint_statement(
            "MATCH (n:N) WITH collect(n) AS ns "
            "FOREACH (n IN ns | DELETE n)"
        )
        assert "plain-delete" in codes(report)


class TestClean:
    def test_detach_delete_is_clean(self):
        report = lint_statement("MATCH (n:N) DETACH DELETE n")
        assert report.clean

    def test_reads_are_clean(self):
        report = lint_statement(
            "MATCH (u:User)-[:ORDERED]->(p) RETURN u, count(p) AS c"
        )
        assert report.clean

    def test_constant_set_is_clean(self):
        report = lint_statement("MATCH (n:N) SET n.v = 1, n.w = 'x'")
        assert report.clean

    def test_self_increment_gets_its_own_code(self):
        report = lint_statement("MATCH (n:N) SET n.v = n.v + 1")
        assert codes(report) == {"set-self-reference"}
        assert report.changes and not report.breaks

    def test_create_is_clean(self):
        report = lint_statement("CREATE (:A {x: 1})-[:T]->(:B)")
        assert report.clean

    def test_schema_command_is_clean(self):
        report = lint_statement("CREATE INDEX ON :User(id)")
        assert report.clean


class TestScriptLinting:
    def test_script_reports_per_statement(self):
        reports = lint_script(
            "MATCH (n) DETACH DELETE n;\n"
            "MERGE (u:U {id: 1});\n"
            "MATCH (a:A), (b:B) SET a.v = b.v;\n"
        )
        assert [r.clean for r in reports] == [True, False, False]
        assert reports[1].breaks
        assert reports[2].changes and not reports[2].breaks

    def test_render_formats(self):
        report = lint_statement("MERGE (u:U {id: 1})")
        text = report.render()
        assert text.startswith("BREAKS")
        assert "bare-merge" in text
        clean = lint_statement("MATCH (n) RETURN n").render()
        assert clean.startswith("OK")

    def test_severity_enum(self):
        assert Severity.BREAKS.value == "breaks"


class TestCliIntegration:
    def test_shell_lint_command(self):
        import io

        from repro import Dialect, Graph
        from repro.tools.shell import Shell

        out = io.StringIO()
        shell = Shell(Graph(Dialect.REVISED), out=out)
        shell.feed(":lint MERGE (u:U {id: 1})")
        assert "bare-merge" in out.getvalue()
        shell.feed(":lint")
        assert "usage" in out.getvalue()

    def test_cli_lint_mode(self, tmp_path, capsys):
        from repro.tools.shell import main

        script = tmp_path / "legacy.cypher"
        script.write_text(
            "MATCH (n) DETACH DELETE n;\nMERGE (u:U {id: 1});\n"
        )
        exit_code = main(["--lint", str(script)])
        captured = capsys.readouterr().out
        assert exit_code == 1  # one statement breaks
        assert "OK" in captured and "BREAKS" in captured

    def test_cli_lint_clean_script_exit_zero(self, tmp_path, capsys):
        from repro.tools.shell import main

        script = tmp_path / "fine.cypher"
        script.write_text("MATCH (n) RETURN n;\n")
        assert main(["--lint", str(script)]) == 0
