"""Corpus bundles: serialisation round-trip, naming, replay, CLI."""

import json

from repro.testing.corpus import (
    bundle_dict,
    bundle_name,
    case_from_dict,
    iter_bundles,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from repro.testing.differential import run_case
from repro.testing.generator import case_for


def test_bundle_round_trip_pipeline_case(tmp_path):
    case = case_for(0, 0)
    path = write_bundle(case, ["some failure"], tmp_path)
    loaded, failures = load_bundle(path)
    assert failures == ["some failure"]
    assert loaded.kind == case.kind
    assert loaded.dialect == case.dialect
    assert loaded.graph == case.graph
    assert loaded.statements == case.statements  # reparsed from text


def test_bundle_round_trip_merge_case(tmp_path):
    case = case_for(0, 2)
    assert case.kind == "merge"
    path = write_bundle(case, [], tmp_path)
    loaded, __ = load_bundle(path)
    assert loaded.merge_pattern == case.merge_pattern
    assert loaded.merge_table == case.merge_table


def test_bundle_naming_is_content_addressed(tmp_path):
    case = case_for(0, 0)
    assert bundle_name(case) == bundle_name(case)
    # Failure text does not change the name (idempotent re-finds).
    first = write_bundle(case, ["failure A"], tmp_path)
    second = write_bundle(case, ["failure B"], tmp_path)
    assert first == second
    assert bundle_name(case) != bundle_name(case_for(0, 3))


def test_bundle_is_readable_json(tmp_path):
    case = case_for(0, 1)
    path = write_bundle(case, [], tmp_path)
    data = json.loads(path.read_text())
    assert data["format"] == 1
    assert data["seed_key"] == case.seed_key
    assert all(isinstance(s, str) for s in data["statements"])
    assert case_from_dict(data).statements == case.statements


def test_iter_and_replay(tmp_path):
    assert iter_bundles(tmp_path) == []
    for index in (0, 1, 2):
        write_bundle(case_for(0, index), [], tmp_path)
    bundles = iter_bundles(tmp_path)
    assert len(bundles) == 3
    for path in bundles:
        result = replay_bundle(path)
        assert result.ok, result.failures


def test_replayed_case_agrees_with_generated_case(tmp_path):
    """Serialising through text must not change behaviour."""
    case = case_for(1, 4)
    direct = run_case(case)
    path = write_bundle(case, [], tmp_path)
    loaded, __ = load_bundle(path)
    replayed = run_case(loaded)
    assert direct.ok == replayed.ok
    assert [o.status for o in direct.outcomes] == [
        o.status for o in replayed.outcomes
    ]


def test_cli_smoke_and_replay(tmp_path, capsys):
    from repro.testing.cli import main

    exit_code = main(
        ["--seed", "0", "--cases", "6", "--corpus", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "6/6 cases passed" in out
    assert iter_bundles(tmp_path) == []  # no failures -> no bundles

    write_bundle(case_for(0, 0), [], tmp_path)
    exit_code = main(["--replay", str(tmp_path)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "replayed 1 bundle(s), 0 failing" in out


def test_cli_rejects_nonpositive_cases(capsys):
    from repro.testing.cli import main

    assert main(["--cases", "0"]) == 2


def test_bundle_dict_excludes_nothing_needed_for_replay():
    case = case_for(2, 5)
    data = bundle_dict(case)
    rebuilt = case_from_dict(data)
    assert run_case(rebuilt).ok == run_case(case).ok
