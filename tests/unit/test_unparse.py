"""Unit tests for the unparser (beyond the property round trips)."""

import pytest

from repro.dialect import Dialect
from repro.parser import ast, parse, parse_expression
from repro.parser.unparse import unparse


def round_trip(source, dialect=Dialect.REVISED, **kw):
    statement = parse(source, dialect, **kw)
    text = unparse(statement)
    again = parse(text, dialect, **kw)
    assert unparse(again) == text
    return text


class TestClauseCoverage:
    def test_match_where_return(self):
        text = round_trip(
            "MATCH (n:User {id: 1}) WHERE n.age > 21 RETURN n.name AS name"
        )
        assert "WHERE" in text and "AS name" in text

    def test_optional_match(self):
        assert "OPTIONAL MATCH" in round_trip(
            "OPTIONAL MATCH (n)-[:T]->(m) RETURN m"
        )

    def test_projection_modifiers(self):
        text = round_trip(
            "MATCH (n) RETURN DISTINCT n.x AS x "
            "ORDER BY x DESC, n.y SKIP 1 LIMIT 2"
        )
        assert "DISTINCT" in text
        assert "ORDER BY x DESC, n.y" in text
        assert "SKIP 1 LIMIT 2" in text

    def test_return_star(self):
        assert "RETURN *" in round_trip("MATCH (n) RETURN *")

    def test_with_where(self):
        text = round_trip("MATCH (n) WITH n.x AS x WHERE x > 1 RETURN x")
        assert "WITH n.x AS x WHERE x > 1" in text

    def test_unwind(self):
        assert "UNWIND [1, 2] AS x" in round_trip(
            "UNWIND [1,2] AS x RETURN x"
        )

    def test_create_delete(self):
        text = round_trip(
            "CREATE (a:A {x: 1})-[:T {w: 2}]->(b) "
            "WITH a MATCH (a) DETACH DELETE a",
        )
        assert "DETACH DELETE a" in text

    def test_set_variants(self):
        text = round_trip(
            "MATCH (n) SET n.x = 1, n += {y: 2}, n = {z: 3}, n:A:B"
        )
        assert "n += {y: 2}" in text
        assert "n:A:B" in text

    def test_remove(self):
        text = round_trip("MATCH (n) REMOVE n.x, n:A")
        assert "REMOVE n.x, n:A" in text

    def test_legacy_merge_with_actions(self):
        text = round_trip(
            "MERGE (n:User {id: 1}) "
            "ON CREATE SET n.created = true "
            "ON MATCH SET n.seen = true",
            Dialect.CYPHER9,
        )
        assert "ON CREATE SET" in text and "ON MATCH SET" in text

    def test_revised_merge_forms(self):
        assert "MERGE ALL" in round_trip("MERGE ALL (a:A {v: 1})-[:T]->(b)")
        assert "MERGE SAME" in round_trip(
            "MERGE SAME (a:A)-[:T]->(b), (c:C)-[:S]->(d)"
        )

    def test_extended_merge_keywords(self):
        text = round_trip(
            "MERGE WEAK COLLAPSE (a:A)-[:T]->(b)", extended_merge=True
        )
        assert "MERGE WEAK COLLAPSE" in text

    def test_foreach(self):
        text = round_trip("FOREACH (x IN [1] | CREATE (:N {v: x}))")
        assert text.startswith("FOREACH (x IN [1] | CREATE")

    def test_load_csv(self):
        text = round_trip(
            "LOAD CSV WITH HEADERS FROM '/tmp/f.csv' AS row "
            "FIELDTERMINATOR ';' RETURN row"
        )
        assert "WITH HEADERS" in text and "FIELDTERMINATOR ';'" in text

    def test_union(self):
        text = round_trip(
            "RETURN 1 AS x UNION ALL RETURN 2 AS x UNION RETURN 3 AS x"
        )
        assert "UNION ALL" in text and text.count("UNION") == 2


class TestPatternRendering:
    def test_directions(self):
        text = round_trip("MATCH (a)-[:X]->(b)<-[:Y]-(c)--(d) RETURN a")
        assert "-[:X]->" in text and "<-[:Y]-" in text and ")--(" in text

    def test_var_length_forms(self):
        for spec in ("*", "*2", "*1..3", "*..4", "*2.."):
            text = round_trip(f"MATCH (a)-[{spec}]->(b) RETURN a")
            assert spec in text, (spec, text)

    def test_multiple_types(self):
        assert "[r:X|Y]" in round_trip("MATCH (a)-[r:X|Y]->(b) RETURN r")

    def test_named_path(self):
        assert "p = (" in round_trip("MATCH p = (a)-[:T]->(b) RETURN p")


class TestQuoting:
    def test_weird_identifier_backticked(self):
        statement = parse("MATCH (`weird name`) RETURN `weird name` AS x")
        text = unparse(statement)
        assert "`weird name`" in text
        parse(text)

    def test_backtick_in_identifier_escaped(self):
        expr = ast.Variable("a`b")
        text = unparse(expr)
        assert text == "`a``b`"

    def test_string_escapes(self):
        expr = parse_expression("'it\\'s\\n'")
        text = unparse(expr)
        assert parse_expression(text) == expr

    def test_soft_keyword_variable_survives(self):
        text = round_trip(
            "MATCH (user)-[order:ORDERED]->(product) RETURN order",
            Dialect.CYPHER9,
        )
        assert "order" in text


class TestExpressionsRendering:
    def test_float_rendering(self):
        assert unparse(ast.Literal(2.0)) == "2.0"
        assert unparse(ast.Literal(1.5e300)) == "1.5e+300"

    def test_boolean_and_null(self):
        assert unparse(ast.Literal(True)) == "true"
        assert unparse(ast.Literal(None)) == "null"

    def test_case_rendering(self):
        text = unparse(
            parse_expression("CASE x WHEN 1 THEN 'a' ELSE 'b' END")
        )
        assert text == "CASE x WHEN 1 THEN 'a' ELSE 'b' END"

    def test_quantifier_rendering(self):
        text = unparse(parse_expression("all(x IN xs WHERE x > 0)"))
        assert text == "all(x IN xs WHERE x > 0)"

    def test_reduce_rendering(self):
        source = "reduce(acc = 0, x IN [1, 2] | acc + x)"
        assert unparse(parse_expression(source)) == source

    def test_precedence_parentheses_minimal(self):
        assert unparse(parse_expression("(1 + 2) * 3")) == "(1 + 2) * 3"
        assert unparse(parse_expression("1 + 2 * 3")) == "1 + 2 * 3"
        assert unparse(parse_expression("NOT (a AND b)")) == "NOT (a AND b)"

    def test_unknown_node_rejected(self):
        with pytest.raises(TypeError):
            unparse(object())
