"""Unit tests for the synthetic workload generators."""

from repro.graph.statistics import collect_statistics
from repro.workloads.generators import (
    MarketplaceConfig,
    OrderTableConfig,
    chain_graph,
    marketplace_graph,
    order_table,
    product_update_table,
    social_graph,
)


class TestMarketplace:
    def test_counts(self):
        config = MarketplaceConfig(
            users=10, vendors=2, products=5, orders=20
        )
        store = marketplace_graph(config)
        stats = collect_statistics(store)
        assert stats.labels == {"User": 10, "Vendor": 2, "Product": 5}
        assert stats.relationship_types["ORDERED"] == 20
        assert stats.relationship_types["OFFERS"] == 5

    def test_deterministic_by_seed(self):
        from repro.graph.comparison import isomorphic

        one = marketplace_graph(MarketplaceConfig(seed=1)).snapshot()
        two = marketplace_graph(MarketplaceConfig(seed=1)).snapshot()
        assert isomorphic(one, two)

    def test_journal_is_trimmed(self):
        store = marketplace_graph(MarketplaceConfig(users=3, products=2))
        assert store.journal_length() == 0


class TestOrderTable:
    def test_shape(self):
        table = order_table(OrderTableConfig(rows=100))
        assert len(table) == 100
        assert table.columns == ("cid", "pid", "date")

    def test_null_ratio_respected_roughly(self):
        table = order_table(
            OrderTableConfig(rows=1000, null_ratio=0.5, duplicate_ratio=0.0)
        )
        nulls = sum(1 for r in table if r["pid"] is None)
        assert 350 < nulls < 650

    def test_zero_duplicates_all_unique_pairs(self):
        table = order_table(
            OrderTableConfig(
                rows=50,
                duplicate_ratio=0.0,
                null_ratio=0.0,
                distinct_users=1000,
                distinct_products=1000,
            )
        )
        pairs = {(r["cid"], r["pid"]) for r in table}
        assert len(pairs) > 40  # random collisions only

    def test_deterministic_by_seed(self):
        one = order_table(OrderTableConfig(seed=9)).to_dicts()
        two = order_table(OrderTableConfig(seed=9)).to_dicts()
        assert one == two


class TestOtherGenerators:
    def test_chain(self):
        store = chain_graph(10)
        assert store.node_count() == 11
        assert store.relationship_count() == 10

    def test_social(self):
        store = social_graph(people=20, friends_per_person=3)
        assert store.node_count() == 20
        assert store.relationship_count() <= 60

    def test_product_update_table(self):
        store = marketplace_graph(MarketplaceConfig(products=7))
        table = product_update_table(store)
        assert len(table) == 7
        assert all(record["product"].has_label("Product") for record in table)
