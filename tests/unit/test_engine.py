"""Unit tests for the engine: atomicity, unions, parameters, results."""

import pytest

from repro import (
    CypherEngine,
    Dialect,
    DrivingTable,
    Graph,
    PropertyConflictError,
)
from repro.errors import CypherError, ParameterMissingError


class TestStatementAtomicity:
    def test_error_rolls_back_everything(self, revised_graph):
        revised_graph.run("CREATE (:P {v: 1}), (:P {v: 2})")
        with pytest.raises(PropertyConflictError):
            revised_graph.run(
                "MATCH (p:P) CREATE (:Log {of: p.v}) "
                "WITH p MATCH (a:P), (b:P) SET a.v = b.v"
            )
        # The CREATE from the failed statement is gone.
        assert revised_graph.node_count() == 2

    def test_runtime_error_mid_statement_rolls_back(self, revised_graph):
        with pytest.raises(CypherError):
            revised_graph.run("CREATE (:N) WITH 1 AS one RETURN 1 / 0 AS x")
        assert revised_graph.node_count() == 0

    def test_successful_statement_commits(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        assert revised_graph.node_count() == 1


class TestParameters:
    def test_parameters_flow(self, revised_graph):
        revised_graph.run("CREATE (:U {id: $uid})", uid=7)
        result = revised_graph.run(
            "MATCH (u:U {id: $uid}) RETURN u.id AS id", {"uid": 7}
        )
        assert result.values("id") == [7]

    def test_missing_parameter(self, revised_graph):
        with pytest.raises(ParameterMissingError):
            revised_graph.run("RETURN $nope AS x")

    def test_map_and_keyword_parameters_merge(self, revised_graph):
        result = revised_graph.run(
            "RETURN $a + $b AS s", {"a": 1}, b=2
        )
        assert result.values("s") == [3]


class TestInitialTables:
    def test_initial_table_feeds_pipeline(self, revised_graph):
        table = DrivingTable(("x",), [{"x": 1}, {"x": 2}])
        result = revised_graph.run("RETURN x * 10 AS y", table=table)
        assert result.values("y") == [10, 20]

    def test_initial_table_is_not_mutated(self, revised_graph):
        table = DrivingTable(("x",), [{"x": 1}])
        revised_graph.run("CREATE (:N {v: x})", table=table)
        assert table.records == [{"x": 1}]


class TestUnions:
    def test_union_distinct(self, revised_graph):
        result = revised_graph.run(
            "RETURN 1 AS x UNION RETURN 1 AS x UNION RETURN 2 AS x"
        )
        assert sorted(result.values("x")) == [1, 2]

    def test_union_all_keeps_duplicates(self, revised_graph):
        result = revised_graph.run(
            "RETURN 1 AS x UNION ALL RETURN 1 AS x"
        )
        assert result.values("x") == [1, 1]

    def test_union_requires_same_columns(self, revised_graph):
        with pytest.raises(CypherError):
            revised_graph.run("RETURN 1 AS x UNION RETURN 1 AS y")

    def test_union_updates_are_side_effects_left_to_right(self, revised_graph):
        result = revised_graph.run(
            "CREATE (:A {v: 1}) WITH 1 AS one MATCH (n) RETURN count(n) AS c "
            "UNION ALL "
            "CREATE (:B {v: 2}) WITH 1 AS one MATCH (n) RETURN count(n) AS c"
        )
        # The second branch sees the first branch's creation.
        assert result.values("c") == [1, 2]
        assert revised_graph.node_count() == 2


class TestResults:
    def test_statement_without_return_yields_empty_table(self, revised_graph):
        result = revised_graph.run("CREATE (:N)")
        assert len(result) == 0
        assert result.columns == ()

    def test_single(self, revised_graph):
        assert revised_graph.run("RETURN 5 AS x").single() == {"x": 5}
        with pytest.raises(CypherError):
            revised_graph.run("UNWIND [1, 2] AS x RETURN x").single()

    def test_iteration(self, revised_graph):
        rows = list(revised_graph.run("UNWIND [1, 2] AS x RETURN x"))
        assert rows == [{"x": 1}, {"x": 2}]

    def test_pretty(self, revised_graph):
        text = revised_graph.run("RETURN 1 AS x").pretty()
        assert "x" in text and "1" in text

    def test_counters_for_mixed_statement(self, revised_graph):
        revised_graph.run("CREATE (:A {x: 1})-[:T]->(:B)")
        result = revised_graph.run(
            "MATCH (a:A)-[r:T]->(b:B) SET a.x = 2 DELETE r"
        )
        counters = result.counters
        assert counters.properties_set == 1
        assert counters.relationships_deleted == 1
        assert not counters.nodes_created


class TestEngineConfig:
    def test_dialect_strings(self):
        assert CypherEngine(dialect="cypher9").dialect is Dialect.CYPHER9
        assert CypherEngine(dialect="revised").dialect is Dialect.REVISED
        with pytest.raises(ValueError):
            CypherEngine(dialect="nope")

    def test_ast_cache_reuse(self, revised_graph):
        engine = revised_graph.engine
        one = engine.parse("RETURN 1 AS x")
        two = engine.parse("RETURN 1 AS x")
        assert one is two

    def test_shared_store_across_dialects(self):
        g = Graph(Dialect.CYPHER9)
        g.run("CREATE (:N {v: 1})")
        revised_view = g.with_dialect(Dialect.REVISED)
        assert revised_view.run("MATCH (n:N) RETURN n.v AS v").values("v") == [1]
        assert revised_view.store is g.store


class TestResultSerialization:
    def test_to_json(self, revised_graph):
        revised_graph.run("CREATE (:U {id: 1, name: 'Bob'})")
        result = revised_graph.run("MATCH (u:U) RETURN u, u.id AS id")
        import json

        data = json.loads(result.to_json())
        assert data == [{"u": {"id": 1, "name": "Bob"}, "id": 1}]

    def test_to_csv(self, revised_graph):
        result = revised_graph.run(
            "UNWIND [1, 2] AS x RETURN x, null AS empty"
        )
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == "x,empty"
        assert lines[1] == "1,"
        assert lines[2] == "2,"

    def test_to_json_with_list_of_entities(self, revised_graph):
        revised_graph.run("CREATE (:U {id: 1})")
        result = revised_graph.run("MATCH (u:U) RETURN collect(u) AS us")
        import json

        assert json.loads(result.to_json()) == [{"us": [{"id": 1}]}]
