"""Direct unit tests for LabelIndex and PropertyIndex."""

from repro.graph.indexes import LabelIndex, PropertyIndex


class TestLabelIndex:
    def test_add_and_lookup(self):
        index = LabelIndex()
        index.add(1, ("A", "B"))
        index.add(2, ("A",))
        assert index.nodes_with_label("A") == {1, 2}
        assert index.nodes_with_label("B") == {1}
        assert index.nodes_with_label("Z") == frozenset()

    def test_remove(self):
        index = LabelIndex()
        index.add(1, ("A",))
        index.remove(1, ("A",))
        assert index.nodes_with_label("A") == frozenset()
        # removing again is a no-op
        index.remove(1, ("A",))

    def test_counts_and_labels(self):
        index = LabelIndex()
        index.add(1, ("A",))
        index.add(2, ("A", "B"))
        assert index.count("A") == 2
        assert index.count("B") == 1
        assert sorted(index.labels()) == ["A", "B"]

    def test_empty_buckets_are_pruned(self):
        index = LabelIndex()
        index.add(1, ("A",))
        index.remove(1, ("A",))
        assert list(index.labels()) == []


class TestPropertyIndex:
    def test_add_and_lookup(self):
        index = PropertyIndex("User", "id")
        index.add(1, 42)
        index.add(2, 42)
        index.add(3, 7)
        assert index.lookup(42) == {1, 2}
        assert index.lookup(7) == {3}
        assert len(index) == 3

    def test_numeric_equivalence(self):
        index = PropertyIndex("User", "id")
        index.add(1, 1)
        assert index.lookup(1.0) == {1}

    def test_re_add_moves_bucket(self):
        index = PropertyIndex("User", "id")
        index.add(1, 10)
        index.add(1, 20)
        assert index.lookup(10) == frozenset()
        assert index.lookup(20) == {1}
        assert len(index) == 1

    def test_discard(self):
        index = PropertyIndex("User", "id")
        index.add(1, 10)
        index.discard(1)
        assert index.lookup(10) == frozenset()
        assert len(index) == 0
        index.discard(1)  # idempotent

    def test_null_and_unstorable_not_indexed(self):
        index = PropertyIndex("User", "id")
        index.add(1, None)
        index.add(2, {"nested": "map"})
        assert len(index) == 0

    def test_null_lookup_empty(self):
        index = PropertyIndex("User", "id")
        index.add(1, 10)
        assert index.lookup(None) == frozenset()

    def test_bucket_of(self):
        index = PropertyIndex("User", "id")
        index.add(1, 5)
        index.add(2, 5)
        assert index.bucket_of(1) == {1, 2}
        assert index.bucket_of(99) == frozenset()

    def test_duplicate_buckets(self):
        index = PropertyIndex("User", "id")
        index.add(1, 5)
        index.add(2, 5)
        index.add(3, 6)
        duplicates = index.duplicate_buckets()
        assert duplicates == [frozenset({1, 2})]

    def test_list_values_indexable(self):
        index = PropertyIndex("User", "tags")
        index.add(1, ["a", "b"])
        assert index.lookup(["a", "b"]) == {1}

    def test_repr(self):
        index = PropertyIndex("User", "id")
        assert ":User(id)" in repr(index)
