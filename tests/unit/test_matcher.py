"""Unit tests for the pattern matcher (trail and homomorphism modes)."""

import pytest

from repro.dialect import Dialect
from repro.graph.store import GraphStore
from repro.parser import parse
from repro.runtime.context import EvalContext, MatchMode
from repro.runtime.matcher import match_pattern, pattern_variables


def pattern_of(source):
    statement = parse(f"MATCH {source} RETURN 1 AS one", Dialect.REVISED)
    return statement.branches()[0].clauses[0].pattern


def matches(store, source, record=None, mode=MatchMode.TRAIL):
    ctx = EvalContext(store=store, match_mode=mode)
    return list(match_pattern(ctx, pattern_of(source), record or {}))


@pytest.fixture
def triangle():
    """a -> b -> c -> a, all :T, nodes labeled :N with a name."""
    store = GraphStore()
    a = store.create_node(("N",), {"name": "a"})
    b = store.create_node(("N",), {"name": "b"})
    c = store.create_node(("N",), {"name": "c"})
    store.create_relationship("T", a, b)
    store.create_relationship("T", b, c)
    store.create_relationship("T", c, a)
    return store


class TestNodeMatching:
    def test_all_nodes(self, triangle):
        assert len(matches(triangle, "(n)")) == 3

    def test_label_filter(self, triangle):
        triangle.create_node(("Other",))
        assert len(matches(triangle, "(n:N)")) == 3
        assert len(matches(triangle, "(n:Other)")) == 1
        assert len(matches(triangle, "(n:N:Other)")) == 0

    def test_property_filter(self, triangle):
        assert len(matches(triangle, "(n {name: 'a'})")) == 1

    def test_null_property_never_matches(self, triangle):
        assert matches(triangle, "(n {name: null})") == []

    def test_bound_variable_is_respected(self, triangle):
        node = triangle.node(0)
        result = matches(triangle, "(n)", {"n": node})
        assert len(result) == 1 and result[0]["n"] == node

    def test_bound_variable_failing_filter(self, triangle):
        node = triangle.node(0)
        assert matches(triangle, "(n {name: 'b'})", {"n": node}) == []

    def test_bound_null_yields_nothing(self, triangle):
        assert matches(triangle, "(n)", {"n": None}) == []

    def test_cartesian_product(self, triangle):
        assert len(matches(triangle, "(a), (b)")) == 9


class TestRelationshipMatching:
    def test_directed(self, triangle):
        out = matches(triangle, "(a {name:'a'})-[:T]->(b)")
        assert len(out) == 1 and out[0]["b"].get("name") == "b"
        incoming = matches(triangle, "(a {name:'a'})<-[:T]-(b)")
        assert len(incoming) == 1 and incoming[0]["b"].get("name") == "c"

    def test_undirected(self, triangle):
        both = matches(triangle, "(a {name:'a'})-[:T]-(b)")
        assert sorted(m["b"].get("name") for m in both) == ["b", "c"]

    def test_type_filter(self, triangle):
        a, b = 0, 1
        triangle.create_relationship("S", a, b)
        assert len(matches(triangle, "(x {name:'a'})-[:S]->(y)")) == 1
        assert len(matches(triangle, "(x {name:'a'})-[]->(y)")) == 2
        assert len(matches(triangle, "(x {name:'a'})-[:S|T]->(y)")) == 2

    def test_relationship_property_filter(self):
        store = GraphStore()
        a = store.create_node()
        b = store.create_node()
        store.create_relationship("T", a, b, {"w": 1})
        store.create_relationship("T", a, b, {"w": 2})
        assert len(matches(store, "(x)-[{w: 1}]->(y)")) == 1

    def test_relationship_variable_bound(self, triangle):
        rel = triangle.relationship(0)
        result = matches(triangle, "(a)-[r]->(b)", {"r": rel})
        assert len(result) == 1
        assert result[0]["a"].id == rel.start.id

    def test_repeated_node_variable(self, triangle):
        # No self loops in the triangle.
        assert matches(triangle, "(a)-[:T]->(a)") == []
        store = GraphStore()
        n = store.create_node()
        store.create_relationship("T", n, n)
        assert len(matches(store, "(a)-[:T]->(a)")) == 1


class TestTrailSemantics:
    def test_distinct_relationships_required(self):
        # One edge between a and b: (x)-[:T]->(y)<-[:T]-(z) needs two
        # distinct edges into y, so a single edge yields no match.
        store = GraphStore()
        a = store.create_node()
        b = store.create_node()
        store.create_relationship("T", a, b)
        assert matches(store, "(x)-[:T]->(y)<-[:T]-(z)") == []
        # With a second parallel edge there is a match (x != z not required)
        store.create_relationship("T", a, b)
        assert len(matches(store, "(x)-[:T]->(y)<-[:T]-(z)")) == 2

    def test_uniqueness_spans_multiple_paths(self):
        store = GraphStore()
        a = store.create_node()
        b = store.create_node()
        store.create_relationship("T", a, b)
        assert matches(store, "(x)-[r1:T]->(y), (w)-[r2:T]->(z)") == []

    def test_homomorphism_allows_reuse(self):
        store = GraphStore()
        a = store.create_node()
        b = store.create_node()
        store.create_relationship("T", a, b)
        result = matches(
            store,
            "(x)-[:T]->(y)<-[:T]-(z)",
            mode=MatchMode.HOMOMORPHISM,
        )
        assert len(result) == 1  # the single edge used twice


class TestVariableLength:
    def test_fixed_bounds(self, triangle):
        paths = matches(triangle, "(a {name:'a'})-[:T*2]->(b)")
        assert len(paths) == 1 and paths[0]["b"].get("name") == "c"

    def test_range(self, triangle):
        found = matches(triangle, "(a {name:'a'})-[:T*1..2]->(b)")
        assert sorted(m["b"].get("name") for m in found) == ["b", "c"]

    def test_unbounded_star_is_finite_on_cycle(self, triangle):
        found = matches(triangle, "(a {name:'a'})-[:T*]->(b)")
        # trails: a->b, a->b->c, a->b->c->a
        assert len(found) == 3

    def test_star_zero(self, triangle):
        found = matches(triangle, "(a {name:'a'})-[:T*0..1]->(b)")
        names = sorted(m["b"].get("name") for m in found)
        assert names == ["a", "b"]  # zero-length binds b = a

    def test_var_length_binds_relationship_list(self, triangle):
        found = matches(triangle, "(a {name:'a'})-[rs:T*2]->(b)")
        assert len(found[0]["rs"]) == 2

    def test_paper_loop_query_is_finite(self):
        # MATCH (v)-[*]->(v): the Section 2 finiteness discussion.
        store = GraphStore()
        v = store.create_node()
        store.create_relationship("L", v, v)
        found = matches(store, "(v)-[*]->(v)")
        assert len(found) == 1

    def test_homomorphism_unbounded_respects_hop_limit(self):
        store = GraphStore()
        v = store.create_node()
        store.create_relationship("L", v, v)
        ctx = EvalContext(
            store=store,
            match_mode=MatchMode.HOMOMORPHISM,
            homomorphism_hop_limit=5,
        )
        found = list(match_pattern(ctx, pattern_of("(v)-[*]->(v)"), {}))
        assert len(found) == 5


class TestNamedPaths:
    def test_path_value(self, triangle):
        found = matches(triangle, "p = (a {name:'a'})-[:T]->(b)")
        path = found[0]["p"]
        assert len(path) == 1
        assert path.start.get("name") == "a"
        assert path.end.get("name") == "b"

    def test_var_length_path_nodes(self, triangle):
        found = matches(triangle, "p = (a {name:'a'})-[:T*2]->(b)")
        path = found[0]["p"]
        assert [n.get("name") for n in path.nodes] == ["a", "b", "c"]


class TestDeterminism:
    def test_match_order_is_id_ordered(self, triangle):
        found = matches(triangle, "(n:N)")
        assert [m["n"].id for m in found] == [0, 1, 2]


class TestPatternVariables:
    def test_collects_in_order_without_duplicates(self):
        pattern = pattern_of("p = (a)-[r:T]->(b)-[:S]->(a)")
        assert pattern_variables(pattern) == ("p", "a", "r", "b")


class TestSinglePropertyEvaluation:
    """Pattern property expressions are evaluated once per pattern per
    record, not once per candidate (observable via PROFILE db-hits)."""

    def _profile_clause(self, graph, statement, label_fragment):
        profile = graph.profile(statement)
        for clause in profile.clauses:
            if label_fragment in clause.label:
                return clause
        raise AssertionError(
            f"no clause matching {label_fragment!r} in {profile.clauses}"
        )

    def test_node_property_map_evaluated_once_per_record(self):
        from repro import Graph

        graph = Graph()
        graph.run("CREATE (:Ref {v: 1})")
        count = 10
        graph.run(
            "UNWIND range(1, 10) AS i "
            "CREATE (:Item {x: 1})"
        )
        clause = self._profile_clause(
            graph,
            "MATCH (r:Ref) MATCH (i:Item {x: r.v}) RETURN count(*) AS n",
            "Item",
        )
        # One read of r.v for the whole pattern, plus one i.x read per
        # :Item candidate.  The old per-candidate evaluation would have
        # cost `count` reads of r.v here (2 * count total).
        assert clause.hits.property_reads == count + 1

    def test_relationship_property_map_evaluated_once_per_record(self):
        from repro import Graph

        graph = Graph()
        graph.run("CREATE (:Ref {v: 1})")
        graph.run(
            "CREATE (hub:Hub) WITH hub "
            "UNWIND range(1, 10) AS i "
            "CREATE (hub)-[:T {w: 1}]->(:Leaf)"
        )
        clause = self._profile_clause(
            graph,
            "MATCH (r:Ref) MATCH (:Hub)-[t:T {w: r.v}]->() "
            "RETURN count(*) AS n",
            "Hub",
        )
        # One read of r.v for the whole relationship pattern, plus one
        # t.w read per candidate relationship.
        assert clause.hits.property_reads == 10 + 1
