"""Unit tests for the Cypher-script dump/restore format."""

import pytest

from repro import Dialect, Graph
from repro.graph.comparison import assert_isomorphic
from repro.io.cypher_script import (
    dump_script,
    load_script,
    save_script,
    split_statements,
)
from repro.paper import figure1_graph
from repro.workloads.generators import MarketplaceConfig, marketplace_graph


class TestRoundTrip:
    def test_figure1_round_trip(self, tmp_path):
        store = figure1_graph()
        path = tmp_path / "fig1.cypher"
        save_script(store, path)
        restored = load_script(path)
        assert_isomorphic(store.snapshot(), restored.snapshot())

    def test_marketplace_round_trip(self, tmp_path):
        store = marketplace_graph(
            MarketplaceConfig(users=10, vendors=2, products=5, orders=20)
        )
        path = tmp_path / "market.cypher"
        save_script(store, path)
        restored = load_script(path)
        assert_isomorphic(store.snapshot(), restored.snapshot())

    def test_dump_id_helper_property_removed(self, tmp_path):
        store = figure1_graph()
        path = tmp_path / "g.cypher"
        save_script(store, path)
        restored = load_script(path)
        for node in restored.nodes():
            assert "_dump_id" not in node.properties

    def test_tricky_values_survive(self, tmp_path):
        graph = Graph(Dialect.REVISED)
        graph.create_node(
            "Weird Label",
            text="semi;colon 'quoted' \\slash\\",
            flag=True,
            nums=[1, 2.5],
        )
        path = tmp_path / "weird.cypher"
        save_script(graph.store, path)
        restored = load_script(path)
        node = list(restored.nodes())[0]
        assert node.get("text") == "semi;colon 'quoted' \\slash\\"
        assert node.get("nums") == [1, 2.5]
        assert node.has_label("Weird Label")

    def test_empty_graph(self, tmp_path):
        graph = Graph(Dialect.REVISED)
        path = tmp_path / "empty.cypher"
        save_script(graph.store, path)
        restored = load_script(path)
        assert restored.node_count() == 0

    def test_script_is_runnable_by_the_shell(self, tmp_path, capsys):
        from repro.tools.shell import main

        store = figure1_graph()
        path = tmp_path / "fig1.cypher"
        save_script(store, path)
        assert main([str(path)]) == 0


class TestSplitStatements:
    def test_plain_split(self):
        assert split_statements("A; B;\nC") == ["A", "B", "C"]

    def test_semicolons_in_strings_preserved(self):
        statements = split_statements("CREATE (:N {t: 'a;b'}); RETURN 1")
        assert statements == ["CREATE (:N {t: 'a;b'})", "RETURN 1"]

    def test_comments_stripped(self):
        statements = split_statements(
            "// header\nCREATE (:N); /* mid; comment */ RETURN 1;"
        )
        assert statements == ["CREATE (:N)", "RETURN 1"]

    def test_escaped_quote_inside_string(self):
        statements = split_statements("RETURN 'it\\'s; fine' AS x;")
        assert statements == ["RETURN 'it\\'s; fine' AS x"]

    def test_backticks(self):
        statements = split_statements("MATCH (`a;b`) RETURN `a;b`;")
        assert statements == ["MATCH (`a;b`) RETURN `a;b`"]

    def test_missing_file(self, tmp_path):
        from repro.errors import LoadError

        with pytest.raises(LoadError):
            load_script(tmp_path / "missing.cypher")
