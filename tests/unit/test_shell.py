"""Unit tests for the interactive shell / script runner."""

import io

import pytest

from repro import Dialect, Graph
from repro.tools.shell import Shell, main


@pytest.fixture
def shell():
    out = io.StringIO()
    return Shell(Graph(Dialect.REVISED), out=out), out


class TestStatements:
    def test_single_statement(self, shell):
        sh, out = shell
        sh.feed("CREATE (:User {id: 1});")
        assert "+1 nodes" in out.getvalue()
        assert sh.graph.node_count() == 1

    def test_multi_line_statement(self, shell):
        sh, out = shell
        sh.feed("MATCH (n)")
        assert sh.prompt == "...... "
        sh.feed("RETURN count(n) AS c;")
        assert "c" in out.getvalue()
        assert sh.prompt == "cypher> "

    def test_query_prints_table(self, shell):
        sh, out = shell
        sh.feed("RETURN 1 + 1 AS two;")
        text = out.getvalue()
        assert "two" in text and "2" in text and "1 row(s)" in text

    def test_error_is_reported_not_raised(self, shell):
        sh, out = shell
        sh.feed("MATCH (n RETURN n;")
        assert "!! CypherSyntaxError" in out.getvalue()

    def test_semantic_error_reported(self, shell):
        sh, out = shell
        sh.feed("CREATE (:P {v: 1}), (:P {v: 2});")
        sh.feed("MATCH (a:P), (b:P) SET a.v = b.v;")
        assert "PropertyConflictError" in out.getvalue()

    def test_blank_lines_ignored(self, shell):
        sh, out = shell
        sh.feed("")
        sh.feed("   ")
        assert out.getvalue() == ""

    def test_feed_script_without_trailing_semicolon(self, shell):
        sh, __ = shell
        sh.feed_script("CREATE (:A);\nCREATE (:B)")
        assert sh.graph.node_count() == 2


class TestCommands:
    def test_help(self, shell):
        sh, out = shell
        sh.feed(":help")
        assert ":dialect" in out.getvalue()

    def test_quit(self, shell):
        sh, __ = shell
        sh.feed(":quit")
        assert sh.done

    def test_dialect_show_and_switch(self, shell):
        sh, out = shell
        sh.feed(":dialect")
        assert "revised" in out.getvalue()
        sh.feed(":dialect cypher9")
        assert sh.graph.dialect is Dialect.CYPHER9
        sh.feed(":dialect bogus")
        assert "unknown dialect" in out.getvalue()

    def test_dialect_switch_keeps_data(self, shell):
        sh, __ = shell
        sh.feed("CREATE (:A);")
        sh.feed(":dialect cypher9")
        assert sh.graph.node_count() == 1

    def test_stats(self, shell):
        sh, out = shell
        sh.feed("CREATE (:A)-[:T]->(:B);")
        sh.feed(":stats")
        assert "nodes: 2" in out.getvalue()

    def test_dump_and_dot(self, shell):
        sh, out = shell
        sh.feed("CREATE (:A)-[:T]->(:B);")
        sh.feed(":dump")
        assert "[:T]" in out.getvalue()
        sh.feed(":dot")
        assert "digraph" in out.getvalue()

    def test_schema(self, shell):
        sh, out = shell
        sh.feed(":schema")
        assert "no constraints" in out.getvalue()
        sh.graph.create_unique_constraint("User", "id")
        sh.feed(":schema")
        assert "UNIQUE :User(id)" in out.getvalue()

    def test_save_and_load(self, shell, tmp_path):
        sh, out = shell
        sh.feed("CREATE (:A {v: 1});")
        path = tmp_path / "g.json"
        sh.feed(f":save {path}")
        assert "saved" in out.getvalue()
        sh.feed(":clear")
        assert sh.graph.node_count() == 0
        sh.feed(f":load {path}")
        assert sh.graph.node_count() == 1

    def test_load_missing_file(self, shell, tmp_path):
        sh, out = shell
        sh.feed(f":load {tmp_path}/nope.json")
        assert "!!" in out.getvalue()

    def test_unknown_command(self, shell):
        sh, out = shell
        sh.feed(":frobnicate")
        assert "unknown command" in out.getvalue()


class TestMain:
    def test_script_execution(self, tmp_path, capsys):
        script = tmp_path / "s.cypher"
        script.write_text(
            "CREATE (:User {id: 1});\n"
            "MATCH (u:User) RETURN u.id AS id;\n"
        )
        assert main([str(script)]) == 0
        captured = capsys.readouterr().out
        assert "id" in captured and "1 row(s)" in captured

    def test_script_with_graph_load(self, tmp_path, capsys):
        from repro.io.graph_json import save_graph
        from repro.paper import figure1_graph

        graph_path = tmp_path / "fig1.json"
        save_graph(figure1_graph(), graph_path)
        script = tmp_path / "s.cypher"
        script.write_text("MATCH (p:Product) RETURN count(p) AS c;")
        assert main(["--graph", str(graph_path), str(script)]) == 0
        assert "3" in capsys.readouterr().out

    def test_script_with_legacy_dialect(self, tmp_path, capsys):
        script = tmp_path / "s.cypher"
        script.write_text("MERGE (:User {id: 1});")
        assert main(["--dialect", "cypher9", str(script)]) == 0
        assert "+1 nodes" in capsys.readouterr().out


class TestShellTransactions:
    def test_begin_commit(self, shell):
        sh, out = shell
        sh.feed(":begin")
        sh.feed("CREATE (:N);")
        sh.feed(":commit")
        assert "committed" in out.getvalue()
        assert sh.graph.node_count() == 1

    def test_begin_rollback(self, shell):
        sh, out = shell
        sh.feed(":begin")
        sh.feed("CREATE (:N);")
        sh.feed(":rollback")
        assert "rolled back" in out.getvalue()
        assert sh.graph.node_count() == 0

    def test_double_begin_rejected(self, shell):
        sh, out = shell
        sh.feed(":begin")
        sh.feed(":begin")
        assert "already open" in out.getvalue()

    def test_commit_without_begin(self, shell):
        sh, out = shell
        sh.feed(":commit")
        assert "no open transaction" in out.getvalue()
        sh.feed(":rollback")
        assert out.getvalue().count("no open transaction") == 2
