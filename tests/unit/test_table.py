"""Unit tests for the driving table."""

import pytest

from repro.errors import CypherError
from repro.runtime.table import DrivingTable


class TestConstruction:
    def test_unit_table(self):
        table = DrivingTable.unit()
        assert len(table) == 1
        assert table.records == [{}]
        assert table.columns == ()

    def test_empty(self):
        table = DrivingTable.empty(("a", "b"))
        assert len(table) == 0
        assert table.columns == ("a", "b")

    def test_from_records(self):
        table = DrivingTable.from_records([{"a": 1}, {"a": 2}])
        assert table.columns == ("a",)
        assert table.column_values("a") == [1, 2]

    def test_records_must_be_consistent(self):
        with pytest.raises(CypherError):
            DrivingTable(("a",), [{"b": 1}])
        table = DrivingTable(("a",), [{"a": 1}])
        with pytest.raises(CypherError):
            table.add({"a": 1, "b": 2})

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CypherError):
            DrivingTable(("a", "a"))

    def test_add_infers_columns_when_empty(self):
        table = DrivingTable()
        table.add({"x": 1})
        assert table.columns == ("x",)


class TestBagSemantics:
    def test_duplicates_are_kept(self):
        table = DrivingTable(("a",), [{"a": 1}, {"a": 1}])
        assert len(table) == 2

    def test_bag_equality_ignores_order(self):
        one = DrivingTable(("a",), [{"a": 1}, {"a": 2}])
        two = DrivingTable(("a",), [{"a": 2}, {"a": 1}])
        assert one == two

    def test_bag_equality_counts_multiplicity(self):
        one = DrivingTable(("a",), [{"a": 1}, {"a": 1}])
        two = DrivingTable(("a",), [{"a": 1}])
        assert one != two

    def test_concat_adds_multiplicities(self):
        one = DrivingTable(("a",), [{"a": 1}])
        two = DrivingTable(("a",), [{"a": 1}, {"a": 2}])
        assert len(one.concat(two)) == 3

    def test_concat_requires_same_columns(self):
        with pytest.raises(CypherError):
            DrivingTable(("a",)).concat(DrivingTable(("b",)))

    def test_distinct(self):
        table = DrivingTable(
            ("a", "b"), [{"a": 1, "b": None}, {"a": 1, "b": None}, {"a": 2, "b": 0}]
        )
        assert len(table.distinct()) == 2

    def test_distinct_treats_equivalent_numbers_alike(self):
        table = DrivingTable(("a",), [{"a": 1}, {"a": 1.0}])
        assert len(table.distinct()) == 1


class TestOrderControls:
    def test_reversed(self):
        table = DrivingTable(("a",), [{"a": 1}, {"a": 2}, {"a": 3}])
        assert table.reversed().column_values("a") == [3, 2, 1]

    def test_shuffled_is_deterministic_per_seed(self):
        table = DrivingTable(("a",), [{"a": i} for i in range(10)])
        one = table.shuffled(seed=3).column_values("a")
        two = table.shuffled(seed=3).column_values("a")
        assert one == two
        assert sorted(one) == list(range(10))

    def test_copy_is_independent(self):
        table = DrivingTable(("a",), [{"a": 1}])
        clone = table.copy()
        clone.add({"a": 2})
        assert len(table) == 1


class TestTransforms:
    def test_filter(self):
        table = DrivingTable(("a",), [{"a": i} for i in range(5)])
        assert len(table.filter(lambda r: r["a"] % 2 == 0)) == 3

    def test_map(self):
        table = DrivingTable(("a",), [{"a": 1}])
        mapped = table.map(lambda r: {"b": r["a"] * 2})
        assert mapped.columns == ("b",)
        assert mapped.records == [{"b": 2}]


class TestPresentation:
    def test_pretty_contains_headers_and_nulls(self):
        table = DrivingTable(("name", "id"), [{"name": "x", "id": None}])
        text = table.pretty()
        assert "name" in text and "null" in text

    def test_pretty_truncates(self):
        table = DrivingTable(("a",), [{"a": i} for i in range(30)])
        assert "more rows" in table.pretty(max_rows=5)

    def test_repr(self):
        assert "2 records" in repr(DrivingTable(("a",), [{"a": 1}, {"a": 2}]))


class TestChunkedViews:
    def test_chunks_partition_without_copying_records(self):
        records = [{"a": i} for i in range(10)]
        table = DrivingTable(("a",), records)
        chunks = table.chunks(4)
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert [r for chunk in chunks for r in chunk.records] == records
        # Views share the record dicts (no per-row copies).
        assert chunks[0].records[0] is table.records[0]
        assert all(chunk.columns == table.columns for chunk in chunks)

    def test_chunks_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            DrivingTable(("a",), [{"a": 1}]).chunks(0)

    def test_chunks_of_empty_table(self):
        assert DrivingTable.empty(("a",)).chunks(3) == []

    def test_from_trusted_skips_validation(self):
        table = DrivingTable.from_trusted(("a",), [{"a": 1}, {"a": 2}])
        assert table.columns == ("a",)
        assert len(table) == 2
        assert table == DrivingTable(("a",), [{"a": 1}, {"a": 2}])


class TestExtendAndEquality:
    def test_extend_validates_every_record(self):
        table = DrivingTable(("a",), [{"a": 1}])
        with pytest.raises(CypherError):
            table.extend([{"a": 2}, {"b": 3}])

    def test_extend_infers_columns_from_first_record(self):
        table = DrivingTable()
        table.extend([{"x": 1}, {"x": 2}])
        assert table.columns == ("x",)
        assert len(table) == 2

    def test_extend_accepts_literal_none_values(self):
        table = DrivingTable(("a",))
        table.extend(iter([{"a": None}, {"a": 1}]))
        assert table.column_values("a") == [None, 1]

    def test_bag_equality_with_unhashable_values(self):
        # Lists and maps are not hashable; equality must not crash.
        one = DrivingTable(("a",), [{"a": [1, {"k": 2}]}, {"a": []}])
        two = DrivingTable(("a",), [{"a": []}, {"a": [1, {"k": 2}]}])
        assert one == two
        assert one != DrivingTable(("a",), [{"a": []}, {"a": [1]}])

    def test_bag_equality_with_entities(self):
        from repro.graph.store import GraphStore

        store = GraphStore()
        x = store.create_node(("A",), {})
        y = store.create_node(("A",), {})
        one = DrivingTable(
            ("n",), [{"n": store.node(x)}, {"n": store.node(y)}]
        )
        two = DrivingTable(
            ("n",), [{"n": store.node(y)}, {"n": store.node(x)}]
        )
        assert one == two
