"""Unit tests for the EXPLAIN-style plan descriptions."""

import pytest

from repro import Dialect, Graph


@pytest.fixture
def planned_graph():
    g = Graph(Dialect.REVISED, use_planner=True)
    g.run("UNWIND range(0, 99) AS i CREATE (:User {id: i})")
    g.run("CREATE (:Product {id: 1})")
    g.create_index("Product", "id")
    return g


class TestExplain:
    def test_mentions_dialect_and_planner(self, planned_graph):
        plan = planned_graph.explain("MATCH (n) RETURN n")
        assert "dialect: revised" in plan
        assert "planner: on" in plan

    def test_planner_reorients_path(self, planned_graph):
        plan = planned_graph.explain(
            "MATCH (u:User)-[:ORDERED]->(p:Product {id: 1}) RETURN u"
        )
        # The Product end anchors the walk (index-backed, 1 candidate).
        assert "index :Product(id)" in plan
        assert "est. 1 candidates" in plan

    def test_unplanned_keeps_order(self):
        g = Graph(Dialect.REVISED)
        g.run("CREATE (:Product {id: 1})")
        plan = g.explain(
            "MATCH (u:User)-[:ORDERED]->(p:Product {id: 1}) RETURN u"
        )
        assert "planner: off" in plan
        assert "(u:User)" in plan.split("\n")[2]

    def test_update_executor_names_by_dialect(self, planned_graph):
        revised = planned_graph.explain("MATCH (n) SET n.x = 1 DELETE n")
        assert "AtomicSet" in revised
        assert "StrictDelete" in revised
        legacy = planned_graph.with_dialect(Dialect.CYPHER9).explain(
            "MATCH (n) SET n.x = 1 DELETE n"
        )
        assert "LegacySet" in legacy
        assert "LegacyDelete" in legacy

    def test_merge_executors(self, planned_graph):
        plan = planned_graph.explain("MERGE SAME (a:A {x: 1})-[:T]->(b)")
        assert "MergeSame" in plan and "Strong Collapse" in plan
        plan = planned_graph.explain("MERGE ALL (a:A {x: 1})-[:T]->(b)")
        assert "MergeAll" in plan
        legacy = planned_graph.with_dialect(Dialect.CYPHER9).explain(
            "MERGE (a:A {x: 1})"
        )
        assert "reads own writes" in legacy

    def test_where_filter_shown(self, planned_graph):
        plan = planned_graph.explain("MATCH (n) WHERE n.x > 1 RETURN n")
        assert "filter n.x > 1" in plan

    def test_foreach_nested(self, planned_graph):
        plan = planned_graph.explain(
            "FOREACH (x IN [1, 2] | CREATE (:N {v: x}))"
        )
        assert "Foreach" in plan and "Create" in plan

    def test_union_branches(self, planned_graph):
        plan = planned_graph.explain(
            "MATCH (n) RETURN n.x AS x UNION MATCH (m) RETURN m.x AS x"
        )
        assert "union branch 1" in plan and "union branch 2" in plan

    def test_explain_does_not_execute(self, planned_graph):
        before = planned_graph.node_count()
        planned_graph.explain("CREATE (:Side {effect: true})")
        assert planned_graph.node_count() == before

    def test_shell_explain(self):
        import io

        from repro.tools.shell import Shell

        out = io.StringIO()
        shell = Shell(Graph(Dialect.REVISED), out=out)
        shell.feed(":explain MATCH (n) RETURN n;")
        assert "Match" in out.getvalue()
        shell.feed(":explain")
        assert "usage" in out.getvalue()
