"""Regression tests for the scalar-function fixes that shipped with
the server: ``split(s, '')``, exact round-half-up, and the ``range()``
materialisation cap.  Every case runs in both execution modes --
compiled closures and the tree-walking interpreter -- because the two
paths share :mod:`repro.runtime.functions` and must not drift.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import CypherEvaluationError, ResourceLimitError
from repro.graph.store import GraphStore
from repro.parser import parse_expression
from repro.runtime import compiler
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate
from repro.runtime.limits import (
    DEFAULT_MAX_LIST_LENGTH,
    list_length_limit,
    max_list_length,
)


@pytest.fixture
def ctx():
    return EvalContext(store=GraphStore())


@pytest.fixture(params=["compiled", "interpreted"])
def ev(ctx, request):
    """Evaluate one expression in the mode the param names."""

    def run(source, record=None):
        expression = parse_expression(source)
        if request.param == "compiled":
            return compiler.compile_expression(expression)(
                ctx, record or {}
            )
        with compiler.compilation_disabled():
            return evaluate(ctx, expression, record or {})

    return run


class TestSplitEmptySeparator:
    def test_empty_separator_splits_into_characters(self, ev):
        assert ev("split('abc', '')") == ["a", "b", "c"]

    def test_empty_string_empty_separator(self, ev):
        assert ev("split('', '')") == []

    def test_empty_string_nonempty_separator(self, ev):
        assert ev("split('', ',')") == [""]

    def test_unicode_characters(self, ev):
        assert ev("split('héllo', '')") == ["h", "é", "l", "l", "o"]

    def test_normal_split_unchanged(self, ev):
        assert ev("split('a,b,c', ',')") == ["a", "b", "c"]

    def test_null_propagates(self, ev):
        assert ev("split(null, '')") is None
        assert ev("split('abc', null)") is None

    def test_never_leaks_value_error(self, ev):
        # the original bug: str.split('') raised a raw ValueError
        try:
            ev("split('xyz', '')")
        except ValueError as error:  # pragma: no cover - the regression
            pytest.fail(f"raw ValueError leaked: {error}")


class TestRoundHalfUp:
    def test_basic_half_up(self, ev):
        assert ev("round(2.5)") == 3.0
        assert ev("round(0.5)") == 1.0
        assert ev("round(1.4)") == 1.0
        assert ev("round(1.6)") == 2.0

    def test_negative_half_rounds_toward_positive(self, ev):
        # round-half-up on negatives: -0.5 -> 0.0, -1.5 -> -1.0
        assert ev("round(-0.5)") == 0.0
        assert ev("round(-1.5)") == -1.0
        assert ev("round(-2.5)") == -2.0
        assert ev("round(-1.6)") == -2.0

    def test_prior_double_rounding_bug(self, ev):
        # 0.49999999999999994 + 0.5 rounds *up* to 1.0 in IEEE 754,
        # so floor(x + 0.5) wrongly produced 1.0; the true value is
        # below one half and must round down.
        assert ev("round(0.49999999999999994)") == 0.0

    def test_huge_magnitudes_keep_integrality(self, ev):
        # at 1e16 adding 0.5 can perturb the value; integral floats
        # must round to themselves exactly
        assert ev("round(10000000000000000.0)") == 1e16
        assert ev("round(-10000000000000000.0)") == -1e16

    def test_integer_input_passes_through(self, ev):
        assert ev("round(7)") == 7.0
        assert ev("round(-3)") == -3.0

    def test_non_finite_passthrough(self, ev):
        assert math.isnan(ev("round(0.0 / 0.0)"))
        assert ev("round(1.0 / 0.0)") == math.inf
        assert ev("round(-1.0 / 0.0)") == -math.inf

    def test_null_propagates(self, ev):
        assert ev("round(null)") is None


class TestRangeCap:
    def test_unbounded_range_is_rejected(self, ev):
        with pytest.raises(ResourceLimitError) as excinfo:
            ev("range(0, 4611686018427387904)")
        assert "range()" in str(excinfo.value)
        assert str(DEFAULT_MAX_LIST_LENGTH) in str(excinfo.value)

    def test_limit_error_is_an_evaluation_error(self, ev):
        # servers map ResourceLimitError specially, but embedded
        # callers catching CypherEvaluationError keep working
        with pytest.raises(CypherEvaluationError):
            ev("range(0, 4611686018427387904)")

    def test_negative_step_huge_range_rejected(self, ev):
        with pytest.raises(ResourceLimitError):
            ev("range(4611686018427387904, 0, -1)")

    def test_normal_ranges_unchanged(self, ev):
        assert ev("range(1, 5)") == [1, 2, 3, 4, 5]
        assert ev("range(5, 1, -2)") == [5, 3, 1]
        assert ev("range(3, 1)") == []

    def test_scoped_limit_tightens_and_restores(self, ev):
        assert max_list_length() == DEFAULT_MAX_LIST_LENGTH
        with list_length_limit(10):
            assert max_list_length() == 10
            with pytest.raises(ResourceLimitError):
                ev("range(1, 11)")
            assert ev("range(1, 10)") == list(range(1, 11))
            with list_length_limit(3):
                assert max_list_length() == 3
                with pytest.raises(ResourceLimitError):
                    ev("range(1, 4)")
            assert max_list_length() == 10
        assert max_list_length() == DEFAULT_MAX_LIST_LENGTH

    def test_empty_range_never_trips_cap(self, ev):
        with list_length_limit(1):
            assert ev("range(10, 1)") == []


class TestPowerOverflow:
    """``^`` follows IEEE-754 pow: saturate to infinity, NaN for
    negative base with fractional exponent -- CPython's ``float **
    float`` instead raises OverflowError / returns complex."""

    def test_huge_exponent_saturates_to_inf(self, ev):
        assert ev("2 ^ 9223372036854775807") == math.inf

    def test_huge_base_saturates_to_inf(self, ev):
        assert ev("1e308 ^ 2") == math.inf

    def test_negative_base_odd_exponent_saturates_negative(self, ev):
        assert ev("(-2.0) ^ 9999999999999.0") == -math.inf

    def test_negative_base_even_exponent_saturates_positive(self, ev):
        assert ev("(-2.0) ^ 10000000000000.0") == math.inf

    def test_negative_base_fractional_exponent_is_nan(self, ev):
        assert math.isnan(ev("(-2.0) ^ 0.5"))

    def test_tiny_result_underflows_to_zero(self, ev):
        assert ev("2 ^ (-9223372036854775807)") == 0.0

    def test_normal_powers_unchanged(self, ev):
        assert ev("2 ^ 10") == 1024.0
        assert ev("(-2.0) ^ 3") == -8.0
        assert ev("9 ^ 0.5") == 3.0

    def test_null_propagates(self, ev):
        assert ev("null ^ 2") is None
        assert ev("2 ^ null") is None
