"""Unit tests for CSV and JSON import/export."""

import pytest

from repro.errors import LoadError
from repro.graph.comparison import isomorphic
from repro.io.csv_io import read_csv_rows, read_driving_table, write_csv
from repro.io.graph_json import (
    dict_to_store,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.paper import figure1_graph


class TestCsv:
    def test_round_trip_with_headers(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, ["id", "name"], [[1, "Bob"], [2, None]])
        rows = read_csv_rows(path, with_headers=True)
        assert rows == [
            {"id": "1", "name": "Bob"},
            {"id": "2", "name": None},
        ]

    def test_rows_without_headers(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,b\nc,d\n")
        assert read_csv_rows(path) == [["a", "b"], ["c", "d"]]

    def test_short_rows_padded_with_null(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b\n1\n")
        rows = read_csv_rows(path, with_headers=True)
        assert rows == [{"a": "1", "b": None}]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LoadError):
            read_csv_rows(tmp_path / "missing.csv")

    def test_headers_required_nonempty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(LoadError):
            read_csv_rows(path, with_headers=True)

    def test_driving_table_coercion(self, tmp_path):
        path = tmp_path / "orders.csv"
        path.write_text("cid,pid,flag,note\n98,125,true,hello\n99,,false,\n")
        table = read_driving_table(path)
        assert table.columns == ("cid", "pid", "flag", "note")
        assert table.records[0] == {
            "cid": 98,
            "pid": 125,
            "flag": True,
            "note": "hello",
        }
        assert table.records[1]["pid"] is None
        assert table.records[1]["note"] is None

    def test_driving_table_without_coercion(self, tmp_path):
        path = tmp_path / "orders.csv"
        path.write_text("cid\n98\n")
        table = read_driving_table(path, coerce=False)
        assert table.records == [{"cid": "98"}]

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("a;b\n1;2\n")
        table = read_driving_table(path, delimiter=";")
        assert table.records == [{"a": 1, "b": 2}]


class TestGraphJson:
    def test_round_trip(self, tmp_path):
        store = figure1_graph()
        path = tmp_path / "graph.json"
        save_graph(store, path)
        loaded = load_graph(path)
        assert isomorphic(store.snapshot(), loaded.snapshot())

    def test_dict_shape(self):
        data = graph_to_dict(figure1_graph())
        assert len(data["nodes"]) == 6
        assert len(data["relationships"]) == 5
        assert all("labels" in node for node in data["nodes"])

    def test_malformed_json_raises(self):
        with pytest.raises(LoadError):
            dict_to_store({"nodes": [{"bad": True}], "relationships": []})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LoadError):
            load_graph(tmp_path / "missing.json")

    def test_snapshot_input(self, tmp_path):
        snapshot = figure1_graph().snapshot()
        path = tmp_path / "snap.json"
        save_graph(snapshot, path)
        assert isomorphic(load_graph(path).snapshot(), snapshot)
