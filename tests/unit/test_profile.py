"""Unit tests for the PROFILE observability layer.

Covers the counter hooks (zero-overhead no-op by default), the
per-clause profile tree, db-hit attribution, the acceptance criterion
that an index shrinks the hits of a filtered MATCH, and the three
surfaces: ``Graph.profile``, ``CypherEngine.execute(profile=True)``,
and the shell's ``:profile`` command.
"""

import io

import pytest

from repro import Graph, NO_COUNTERS, QueryProfile
from repro.errors import CypherEvaluationError
from repro.graph.counters import DbHits, HitCounters
from repro.graph.store import GraphStore


@pytest.fixture
def graph():
    return Graph()


class TestDbHits:
    def test_arithmetic(self):
        a = DbHits(node_reads=2, property_reads=1)
        b = DbHits(node_reads=1, writes=3)
        assert (a + b).node_reads == 3
        assert (a + b).writes == 3
        assert (a + b - b) == a
        assert a.total == 3

    def test_to_dict_has_total(self):
        hits = DbHits(index_lookups=2, rel_reads=1)
        data = hits.to_dict()
        assert data["index_lookups"] == 2
        assert data["total"] == 3

    def test_compact_rendering(self):
        text = DbHits(node_reads=5, property_reads=7).compact()
        assert text.startswith("12 ")
        assert "node 5" in text and "prop 7" in text


class TestCounterHooks:
    def test_fresh_store_shares_the_noop_singleton(self):
        # The "profiling off" regime must not allocate per store.
        assert GraphStore().counters is NO_COUNTERS
        assert GraphStore().counters is GraphStore().counters
        assert NO_COUNTERS.active is False

    def test_noop_counters_never_accumulate(self):
        NO_COUNTERS.node_read()
        NO_COUNTERS.write(5)
        assert NO_COUNTERS.snapshot() == DbHits()

    def test_install_and_reset(self):
        store = GraphStore()
        counters = HitCounters()
        store.install_counters(counters)
        assert store.counters is counters
        store.create_node(("L",), {})
        assert counters.snapshot().writes == 1
        store.reset_counters()
        assert store.counters is NO_COUNTERS

    def test_index_lookups_counted(self):
        store = GraphStore()
        store.create_index("L", "k")
        counters = HitCounters()
        store.install_counters(counters)
        node = store.create_node(("L",), {"k": 1})
        assert list(store.property_index("L", "k").lookup(1)) == [node]
        assert counters.snapshot().index_lookups == 1

    def test_rollback_is_not_a_write(self):
        store = GraphStore()
        counters = HitCounters()
        store.install_counters(counters)
        mark = store.mark()
        store.create_node(("L",), {})
        before = counters.snapshot().writes
        store.rollback_to(mark)
        assert counters.snapshot().writes == before


class TestGraphProfile:
    def test_returns_a_clause_tree(self, graph):
        graph.run("CREATE (:L {k: 1})")
        profile = graph.profile("MATCH (n:L {k: 1}) RETURN n")
        assert isinstance(profile, QueryProfile)
        labels = [entry.label for entry in profile.clauses]
        assert labels[0].startswith("Match ")
        assert labels[1].startswith("Return ")
        assert profile.result.values("n")[0].get("k") == 1

    def test_rows_in_and_out(self, graph):
        graph.run("CREATE (:L), (:L), (:L)")
        profile = graph.profile("MATCH (n:L) RETURN n LIMIT 2")
        match = profile.clauses[0]
        assert match.rows_in == 1
        assert match.rows_out == 3

    def test_index_shrinks_db_hits(self):
        # The ISSUE's acceptance criterion.
        def build():
            g = Graph()
            for i in range(50):
                g.run("CREATE (:L {k: $i})", {"i": i})
            return g

        unindexed = build()
        indexed = build()
        indexed.create_index("L", "k")
        query = "MATCH (n:L {k: 1}) RETURN n"
        slow = unindexed.profile(query)
        fast = indexed.profile(query)
        assert [dict(r["n"].properties) for r in slow.result.records] == [
            dict(r["n"].properties) for r in fast.result.records
        ]
        assert fast.total_db_hits < slow.total_db_hits
        assert fast.hits.index_lookups >= 1

    def test_writes_attributed_to_create(self, graph):
        profile = graph.profile("CREATE (:A {x: 1})-[:R]->(:B)")
        create = profile.clauses[0]
        assert create.label.startswith("Create ")
        # two nodes + one relationship (property maps ride along)
        assert create.hits.writes == 3

    def test_foreach_children_nest(self, graph):
        profile = graph.profile(
            "FOREACH (x IN [1, 2, 3] | CREATE (:N {v: x}))"
        )
        foreach = profile.clauses[0]
        assert foreach.label.startswith("Foreach x IN")
        assert len(foreach.children) == 1
        assert foreach.children[0].label.startswith("Create ")
        # parent metrics are inclusive of the child's
        assert foreach.hits.writes == foreach.children[0].hits.writes == 3

    def test_counters_reset_after_profiling(self, graph):
        graph.profile("RETURN 1 AS x")
        assert graph.store.counters is NO_COUNTERS

    def test_counters_reset_after_error(self, graph):
        with pytest.raises(CypherEvaluationError):
            graph.profile("RETURN 1 / 0 AS x")
        assert graph.store.counters is NO_COUNTERS

    def test_plain_run_attaches_no_profile(self, graph):
        result = graph.run("RETURN 1 AS x")
        assert result.profile is None
        assert graph.store.counters is NO_COUNTERS

    def test_engine_flag_attaches_profile_to_result(self, graph):
        result = graph.engine.execute("RETURN 1 AS x", profile=True)
        assert result.profile is not None
        assert result.profile.result is result

    def test_schema_statement_profiles(self, graph):
        profile = graph.profile("CREATE INDEX ON :L(k)")
        assert profile.clauses[0].label.startswith("SchemaCommand")

    def test_to_dict_round_trips_to_json(self, graph):
        import json

        graph.run("CREATE (:L {k: 1})")
        profile = graph.profile("MATCH (n:L) RETURN n")
        data = json.loads(json.dumps(profile.to_dict()))
        assert data["statement"] == "MATCH (n:L) RETURN n"
        assert data["db_hits"]["total"] == profile.total_db_hits
        assert data["clauses"][0]["label"].startswith("Match ")


class TestRenderProfile:
    def test_render_contains_metrics(self, graph):
        graph.run("CREATE (:L {k: 1})")
        profile = graph.profile("MATCH (n:L {k: 1}) RETURN n AS m")
        text = profile.render()
        assert "profile: dialect revised" in text
        assert "db hits" in text
        assert "rows 1 -> 1" in text
        assert "total:" in text

    def test_render_indents_foreach_children(self, graph):
        text = graph.profile(
            "FOREACH (x IN [1] | CREATE (:N))"
        ).render()
        lines = text.splitlines()
        foreach = next(l for l in lines if "Foreach" in l)
        create = next(l for l in lines if "Create" in l)
        indent = len(create) - len(create.lstrip())
        assert indent > len(foreach) - len(foreach.lstrip())


class TestShellProfile:
    def test_profile_command(self):
        out = io.StringIO()
        from repro.tools.shell import Shell

        shell = Shell(out=out)
        shell.feed("CREATE (:L {k: 1});")
        shell.feed(":profile MATCH (n:L) RETURN n.k AS k")
        text = out.getvalue()
        assert "db hits" in text
        assert "total:" in text

    def test_profile_command_reports_errors(self):
        out = io.StringIO()
        from repro.tools.shell import Shell

        shell = Shell(out=out)
        shell.feed(":profile RETURN 1 / 0 AS x")
        assert "CypherEvaluationError" in out.getvalue()

    def test_profile_command_usage(self):
        out = io.StringIO()
        from repro.tools.shell import Shell

        shell = Shell(out=out)
        shell.feed(":profile")
        assert "usage" in out.getvalue()
