"""The fuzz-case generator: determinism, validity, anomaly coverage."""

from repro.dialect import Dialect
from repro.parser import ast
from repro.parser.parser import parse
from repro.parser.unparse import unparse
from repro.runtime.scoping import check_statement
from repro.testing.generator import (
    KINDS,
    FuzzCase,
    build_store,
    case_for,
    cases,
)
from repro.testing.invariants import check_invariants


def test_same_seed_same_cases():
    assert cases(0, 40) == cases(0, 40)
    assert cases(7, 40) == cases(7, 40)


def test_different_seeds_differ():
    assert cases(0, 40) != cases(1, 40)


def test_case_for_matches_stream_position():
    stream = cases(3, 10)
    for index, case in enumerate(stream):
        assert case == case_for(3, index)
        assert case.seed_key == f"3:{index}"


def test_kinds_rotate():
    stream = cases(0, 9)
    assert [case.kind for case in stream] == list(KINDS) * 3


def test_statements_are_scope_valid():
    for index in range(60):
        case = case_for(5, index)
        for statement in case.statements:
            check_statement(statement)


def test_statements_are_dialect_valid():
    """unparse -> parse under the case's own dialect must succeed."""
    for index in range(60):
        case = case_for(6, index)
        dialect = Dialect.parse(case.dialect)
        for statement in case.statements:
            parse(unparse(statement), dialect, extended_merge=True)


def test_legacy_cases_use_cypher9_shapes():
    for index in range(60):
        case = case_for(2, index)
        if case.kind != "legacy":
            continue
        assert case.dialect == Dialect.CYPHER9.value
        for statement in case.statements:
            for clause in statement.query.clauses:
                if isinstance(clause, ast.MergeClause):
                    assert clause.semantics == ast.MERGE_LEGACY


def test_revised_cases_never_use_legacy_merge():
    for index in range(60):
        case = case_for(2, index)
        if case.kind != "revised":
            continue
        for statement in case.statements:
            for clause in statement.query.clauses:
                if isinstance(clause, ast.MergeClause):
                    assert clause.semantics != ast.MERGE_LEGACY


def test_built_stores_pass_invariants():
    for index in range(30):
        case = case_for(4, index)
        store = build_store(case)
        check_invariants(store)


def test_merge_payloads_have_duplicates_or_nulls_somewhere():
    """The Example 3/5 bias: across a batch, tables repeat rows and
    contain nulls (any single table may be clean)."""
    saw_duplicate = saw_null = False
    for index in range(60):
        case = case_for(0, index)
        if case.kind != "merge":
            continue
        rows = [
            tuple(sorted(record.items()))
            for record in case.merge_table["records"]
        ]
        if len(set(rows)) < len(rows):
            saw_duplicate = True
        if any(value is None for row in rows for __, value in row):
            saw_null = True
    assert saw_duplicate and saw_null


def test_anomaly_clauses_appear_in_corpus():
    """DELETE, FOREACH, MERGE and multi-item SET all occur."""
    seen = set()
    for index in range(120):
        case = case_for(0, index)
        for statement in case.statements:
            for clause in statement.query.clauses:
                seen.add(type(clause).__name__)
                if isinstance(clause, ast.SetClause) and len(clause.items) > 1:
                    seen.add("MultiSet")
    for required in (
        "MatchClause",
        "CreateClause",
        "SetClause",
        "DeleteClause",
        "MergeClause",
        "ForeachClause",
        "UnwindClause",
        "WithClause",
        "MultiSet",
    ):
        assert required in seen, f"corpus never produced {required}"


def test_statement_sources_round_trip():
    case = case_for(0, 0)
    assert isinstance(case, FuzzCase)
    sources = case.statement_sources()
    assert len(sources) == len(case.statements)
    for text, statement in zip(sources, case.statements):
        assert unparse(statement) == text
