"""Unit tests for schema DDL statements (indexes and constraints)."""

import pytest

from repro import Dialect, Graph
from repro.errors import ConstraintViolationError, CypherSyntaxError
from repro.parser import ast, parse
from repro.parser.unparse import unparse


class TestParsing:
    @pytest.mark.parametrize(
        "source, kind",
        [
            ("CREATE INDEX ON :User(id)", "create_index"),
            ("DROP INDEX ON :User(id)", "drop_index"),
            (
                "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE",
                "create_unique_constraint",
            ),
            (
                "DROP CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE",
                "drop_unique_constraint",
            ),
        ],
    )
    def test_kinds(self, source, kind):
        for dialect in (Dialect.CYPHER9, Dialect.REVISED):
            statement = parse(source, dialect)
            assert isinstance(statement, ast.SchemaStatement)
            assert statement.kind == kind
            assert statement.label == "User"
            assert statement.key == "id"

    def test_case_insensitive(self):
        statement = parse("create index on :User(id)")
        assert isinstance(statement, ast.SchemaStatement)

    def test_constraint_variable_mismatch_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("CREATE CONSTRAINT ON (u:User) ASSERT x.id IS UNIQUE")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("CREATE INDEX ON :User(id) RETURN 1")

    def test_plain_create_still_parses(self):
        statement = parse("CREATE (index:Node {constraint: 1})")
        assert isinstance(statement, ast.Statement)

    def test_unparse_round_trip(self):
        for source in (
            "CREATE INDEX ON :User(id)",
            "DROP CONSTRAINT ON (n:User) ASSERT n.id IS UNIQUE",
        ):
            text = unparse(parse(source))
            assert unparse(parse(text)) == text


class TestExecution:
    def test_create_index_statement(self, revised_graph):
        revised_graph.run("CREATE INDEX ON :User(id)")
        assert revised_graph.store.property_index("User", "id") is not None

    def test_drop_index_statement(self, revised_graph):
        revised_graph.run("CREATE INDEX ON :User(id)")
        revised_graph.run("DROP INDEX ON :User(id)")
        assert revised_graph.store.property_index("User", "id") is None

    def test_constraint_statement_enforced(self, revised_graph):
        revised_graph.run(
            "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE"
        )
        revised_graph.run("CREATE (:User {id: 1})")
        with pytest.raises(ConstraintViolationError):
            revised_graph.run("CREATE (:User {id: 1})")

    def test_drop_constraint_statement(self, revised_graph):
        revised_graph.run(
            "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE"
        )
        revised_graph.run(
            "DROP CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE"
        )
        revised_graph.run("CREATE (:User {id: 1}), (:User {id: 1})")
        assert revised_graph.node_count() == 2

    def test_schema_result_is_empty(self, revised_graph):
        result = revised_graph.run("CREATE INDEX ON :User(id)")
        assert len(result) == 0
        assert not result.counters.contains_updates

    def test_constraint_creation_validates_existing_data(self, revised_graph):
        revised_graph.run("CREATE (:User {id: 1}), (:User {id: 1})")
        with pytest.raises(ConstraintViolationError):
            revised_graph.run(
                "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE"
            )

    def test_explain_describes_schema_command(self, revised_graph):
        text = revised_graph.explain("CREATE INDEX ON :User(id)")
        assert "create_index" in text

    def test_shell_accepts_ddl(self):
        import io

        from repro.tools.shell import Shell

        out = io.StringIO()
        shell = Shell(Graph(Dialect.REVISED), out=out)
        shell.feed("CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE;")
        shell.feed(":schema")
        assert "UNIQUE :User(id)" in out.getvalue()
