"""Unit tests for the dialect-aware parser."""

import pytest

from repro.dialect import Dialect
from repro.errors import CypherSyntaxError, MergeSyntaxError
from repro.parser import ast, parse, parse_expression


def clauses(source, dialect=Dialect.REVISED, **kw):
    return parse(source, dialect, **kw).branches()[0].clauses


class TestQueries:
    def test_match_return(self):
        match, ret = clauses("MATCH (n:User) RETURN n")
        assert isinstance(match, ast.MatchClause)
        assert not match.optional
        assert isinstance(ret, ast.ReturnClause)

    def test_optional_match_where(self):
        (match, __) = clauses("OPTIONAL MATCH (n) WHERE n.x = 1 RETURN n")
        assert match.optional
        assert isinstance(match.where, ast.Binary)

    def test_union(self):
        statement = parse(
            "MATCH (n) RETURN n.x AS x UNION MATCH (m) RETURN m.x AS x"
        )
        assert isinstance(statement.query, ast.UnionQuery)
        assert not statement.query.all
        assert len(statement.branches()) == 2

    def test_union_all(self):
        statement = parse(
            "MATCH (n) RETURN n.x AS x UNION ALL MATCH (m) RETURN m.y AS x"
        )
        assert statement.query.all

    def test_statement_must_consume_all_input(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) RETURN n extra")

    def test_trailing_semicolon_allowed(self):
        parse("MATCH (n) RETURN n;")


class TestPatterns:
    def test_node_pattern_full(self):
        (match, __) = clauses("MATCH (n:A:B {x: 1, y: 'z'}) RETURN n")
        node = match.pattern.paths[0].elements[0]
        assert node.variable == "n"
        assert node.labels == ("A", "B")
        assert node.properties.keys() == ("x", "y")

    def test_anonymous_node(self):
        (match, __) = clauses("MATCH (:User) RETURN 1 AS one")
        node = match.pattern.paths[0].elements[0]
        assert node.variable is None

    def test_relationship_directions(self):
        (match, __) = clauses("MATCH (a)-[:X]->(b)<-[:Y]-(c)-[:Z]-(d) RETURN a")
        rels = match.pattern.paths[0].relationships
        assert [r.direction for r in rels] == [ast.OUT, ast.IN, ast.BOTH]

    def test_relationship_without_brackets(self):
        (match, __) = clauses("MATCH (a)-->(b)<--(c)--(d) RETURN a")
        rels = match.pattern.paths[0].relationships
        assert [r.direction for r in rels] == [ast.OUT, ast.IN, ast.BOTH]
        assert all(r.types == () for r in rels)

    def test_multiple_types(self):
        (match, __) = clauses("MATCH (a)-[r:X|Y]->(b) RETURN r")
        rel = match.pattern.paths[0].relationships[0]
        assert rel.types == ("X", "Y")

    def test_var_length(self):
        cases = {
            "*": (None, None),
            "*2": (2, 2),
            "*1..3": (1, 3),
            "*..4": (None, 4),
            "*2..": (2, None),
        }
        for spec, expected in cases.items():
            (match, __) = clauses(f"MATCH (a)-[{spec}]->(b) RETURN a")
            rel = match.pattern.paths[0].relationships[0]
            assert rel.var_length == expected, spec

    def test_named_path(self):
        (match, __) = clauses("MATCH p = (a)-[:T]->(b) RETURN p")
        assert match.pattern.paths[0].variable == "p"

    def test_pattern_tuple(self):
        (match, __) = clauses("MATCH (a), (b)-[:T]->(c) RETURN a")
        assert len(match.pattern.paths) == 2

    def test_both_arrowheads_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a)<-[:T]->(b) RETURN a")

    def test_soft_keyword_variables(self):
        (match, *__) = clauses(
            "MATCH (user)-[order:ORDERED]->(product) RETURN order",
            Dialect.CYPHER9,
        )
        rel = match.pattern.paths[0].relationships[0]
        assert rel.variable == "order"


class TestProjections:
    def test_return_star(self):
        (__, ret) = clauses("MATCH (n) RETURN *")
        assert ret.body.include_existing

    def test_distinct_order_skip_limit(self):
        (__, ret) = clauses(
            "MATCH (n) RETURN DISTINCT n.x AS x ORDER BY x DESC, n.y SKIP 2 LIMIT 5"
        )
        body = ret.body
        assert body.distinct
        assert len(body.order_by) == 2
        assert not body.order_by[0].ascending
        assert body.order_by[1].ascending
        assert isinstance(body.skip, ast.Literal)
        assert isinstance(body.limit, ast.Literal)

    def test_with_where(self):
        (__, with_clause, __ret) = clauses(
            "MATCH (n) WITH n.x AS x WHERE x > 1 RETURN x"
        )
        assert isinstance(with_clause, ast.WithClause)
        assert with_clause.where is not None

    def test_unwind(self):
        (unwind, __) = clauses("UNWIND [1, 2] AS x RETURN x")
        assert unwind.variable == "x"


class TestUpdateClauses:
    def test_create(self):
        (create,) = clauses("CREATE (a:User {id: 1})-[:KNOWS]->(b)")
        assert isinstance(create, ast.CreateClause)

    def test_create_requires_direction(self):
        with pytest.raises(CypherSyntaxError):
            parse("CREATE (a)-[:T]-(b)")

    def test_create_requires_single_type(self):
        with pytest.raises(CypherSyntaxError):
            parse("CREATE (a)-[:T|S]->(b)")
        with pytest.raises(CypherSyntaxError):
            parse("CREATE (a)-[]->(b)")

    def test_create_rejects_var_length(self):
        with pytest.raises(CypherSyntaxError):
            parse("CREATE (a)-[:T*2]->(b)")

    def test_delete_variants(self):
        (match, delete) = clauses("MATCH (n) DELETE n", Dialect.CYPHER9)
        assert not delete.detach
        (match, delete) = clauses("MATCH (n) DETACH DELETE n")
        assert delete.detach

    def test_set_items(self):
        (__, set_clause) = clauses(
            "MATCH (n) SET n.x = 1, n += {y: 2}, n = {z: 3}, n:Label"
        )
        kinds = [type(item).__name__ for item in set_clause.items]
        assert kinds == [
            "SetProperty",
            "SetAdditiveProperties",
            "SetAllProperties",
            "SetLabels",
        ]

    def test_remove_items(self):
        (__, remove) = clauses("MATCH (n) REMOVE n.x, n:A:B")
        kinds = [type(item).__name__ for item in remove.items]
        assert kinds == ["RemoveProperty", "RemoveLabels"]

    def test_foreach(self):
        (foreach,) = clauses("FOREACH (x IN [1, 2] | CREATE (:N {v: x}))")
        assert isinstance(foreach, ast.ForeachClause)
        assert len(foreach.updates) == 1

    def test_foreach_rejects_reading_clauses(self):
        with pytest.raises(CypherSyntaxError):
            parse("FOREACH (x IN [1] | MATCH (n) RETURN n)")

    def test_nested_foreach(self):
        (foreach,) = clauses(
            "FOREACH (x IN [1] | FOREACH (y IN [2] | CREATE (:N)))"
        )
        assert isinstance(foreach.updates[0], ast.ForeachClause)

    def test_load_csv(self):
        (load, __) = clauses(
            "LOAD CSV WITH HEADERS FROM '/tmp/x.csv' AS row "
            "FIELDTERMINATOR ';' RETURN row"
        )
        assert load.with_headers
        assert load.field_terminator == ";"


class TestMergeDialects:
    def test_legacy_bare_merge(self):
        (merge,) = clauses("MERGE (n:User {id: 1})", Dialect.CYPHER9)
        assert merge.semantics == ast.MERGE_LEGACY

    def test_legacy_merge_on_create_on_match(self):
        (merge,) = clauses(
            "MERGE (n:User {id: 1}) "
            "ON CREATE SET n.created = true "
            "ON MATCH SET n.seen = true",
            Dialect.CYPHER9,
        )
        assert len(merge.on_create) == 1
        assert len(merge.on_match) == 1

    def test_legacy_merge_allows_undirected(self):
        (merge,) = clauses("MERGE (a)-[:T]-(b)", Dialect.CYPHER9)
        assert merge.pattern.paths[0].relationships[0].direction == ast.BOTH

    def test_legacy_merge_single_path_only(self):
        with pytest.raises(CypherSyntaxError):
            parse("MERGE (a), (b)", Dialect.CYPHER9)

    def test_legacy_rejects_merge_all(self):
        with pytest.raises(MergeSyntaxError):
            parse("MERGE ALL (a:X)-[:T]->(b)", Dialect.CYPHER9)

    def test_revised_rejects_bare_merge(self):
        with pytest.raises(MergeSyntaxError):
            parse("MERGE (n:User {id: 1})")

    def test_revised_merge_all_and_same(self):
        (merge,) = clauses("MERGE ALL (a:X {v: 1})-[:T]->(b)")
        assert merge.semantics == ast.MERGE_ALL
        (merge,) = clauses("MERGE SAME (a:X)-[:T]->(b), (c:Y)-[:S]->(d)")
        assert merge.semantics == ast.MERGE_SAME
        assert len(merge.pattern.paths) == 2

    def test_revised_merge_requires_direction(self):
        with pytest.raises(CypherSyntaxError):
            parse("MERGE SAME (a)-[:T]-(b)")

    def test_revised_merge_rejects_on_create(self):
        with pytest.raises(MergeSyntaxError):
            parse("MERGE ALL (a)-[:T]->(b) ON CREATE SET a.x = 1")

    def test_extended_variants_gated(self):
        for text in ("GROUPING", "WEAK COLLAPSE", "COLLAPSE", "ATOMIC"):
            source = f"MERGE {text} (a:X)-[:T]->(b)"
            with pytest.raises(MergeSyntaxError):
                parse(source)
            parse(source, extended_merge=True)

    def test_strong_collapse_alias(self):
        (merge,) = clauses(
            "MERGE STRONG COLLAPSE (a:X)-[:T]->(b)", extended_merge=True
        )
        assert merge.semantics == ast.MERGE_SAME


class TestClauseSequencing:
    def test_legacy_requires_with_after_updates(self):
        source = "CREATE (n) MATCH (m) RETURN m"
        with pytest.raises(CypherSyntaxError):
            parse(source, Dialect.CYPHER9)
        parse(source, Dialect.REVISED)

    def test_legacy_with_resets(self):
        parse("CREATE (n) WITH n MATCH (m) RETURN m", Dialect.CYPHER9)

    def test_query_must_end_with_return_or_update(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n)")
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) WITH n")

    def test_return_must_be_final(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) RETURN n MATCH (m) RETURN m")

    def test_update_after_return_in_union_branch_ok(self):
        parse(
            "MATCH (n) RETURN n UNION MATCH (m) RETURN m AS n",
            Dialect.REVISED,
        )


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3 ^ 2")
        assert isinstance(expr, ast.Binary) and expr.operator == "+"
        right = expr.right
        assert right.operator == "*"
        assert right.right.operator == "^"

    def test_power_right_associative(self):
        expr = parse_expression("2 ^ 3 ^ 4")
        assert expr.operator == "^"
        assert isinstance(expr.right, ast.Binary)

    def test_comparison_chain_becomes_conjunction(self):
        expr = parse_expression("1 < 2 < 3")
        assert expr.operator == "AND"
        assert expr.left.operator == "<"
        assert expr.right.operator == "<"

    def test_boolean_precedence(self):
        expr = parse_expression("a OR b XOR c AND NOT d")
        assert expr.operator == "OR"
        assert expr.right.operator == "XOR"

    def test_string_predicates(self):
        for op in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
            expr = parse_expression(f"a.name {op} 'x'")
            assert expr.operator == op

    def test_is_null(self):
        expr = parse_expression("n.x IS NOT NULL")
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_case_forms(self):
        simple = parse_expression("CASE n.x WHEN 1 THEN 'a' ELSE 'b' END")
        assert simple.operand is not None
        searched = parse_expression("CASE WHEN n.x = 1 THEN 'a' END")
        assert searched.operand is None and searched.default is None

    def test_list_comprehension(self):
        expr = parse_expression("[x IN [1,2,3] WHERE x > 1 | x * 2]")
        assert isinstance(expr, ast.ListComprehension)
        assert expr.predicate is not None and expr.projection is not None

    def test_quantifiers(self):
        for kind in ("any", "all", "none", "single"):
            expr = parse_expression(f"{kind}(x IN [1] WHERE x = 1)")
            assert isinstance(expr, ast.Quantifier)
            assert expr.kind == kind

    def test_reduce(self):
        expr = parse_expression("reduce(acc = 0, x IN [1,2] | acc + x)")
        assert isinstance(expr, ast.Reduce)
        assert expr.accumulator == "acc"
        assert expr.variable == "x"
        assert isinstance(expr.init, ast.Literal)
        assert isinstance(expr.source, ast.ListLiteral)
        assert isinstance(expr.expression, ast.Binary)

    def test_reduce_requires_the_full_shape(self):
        with pytest.raises(CypherSyntaxError):
            parse_expression("reduce(acc = 0, 1 IN [1] | acc)")
        with pytest.raises(CypherSyntaxError):
            parse_expression("reduce(acc = 0, x [1] | acc + x)")
        with pytest.raises(CypherSyntaxError):
            parse_expression("reduce(acc = 0, x IN [1] acc)")

    def test_reduce_without_accumulator_is_a_plain_call(self):
        # No 'var =' after the paren: not the reduce form, so it parses
        # as an ordinary (unknown) function call.
        expr = parse_expression("reduce(1, 2)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "reduce"

    def test_count_star_and_distinct(self):
        assert isinstance(parse_expression("count(*)"), ast.CountStar)
        call = parse_expression("count(DISTINCT n)")
        assert call.distinct

    def test_subscript_and_slice(self):
        assert isinstance(parse_expression("xs[0]"), ast.Subscript)
        sliced = parse_expression("xs[1..3]")
        assert isinstance(sliced, ast.Slice)
        assert isinstance(parse_expression("xs[..2]"), ast.Slice)
        assert isinstance(parse_expression("xs[1..]"), ast.Slice)

    def test_parameter(self):
        expr = parse_expression("$param")
        assert isinstance(expr, ast.Parameter) and expr.name == "param"

    def test_pattern_expression_in_where(self):
        (match, __) = clauses(
            "MATCH (n) WHERE (n)-[:KNOWS]->(:Person) RETURN n"
        )
        assert isinstance(match.where, ast.PatternExpression)

    def test_parenthesised_expression_not_a_pattern(self):
        (match, __) = clauses("MATCH (n) WHERE (n.x > 1) RETURN n")
        assert isinstance(match.where, ast.Binary)

    def test_exists_property_and_pattern(self):
        prop = parse_expression("exists(n.x)")
        assert isinstance(prop, ast.ExistsExpression)
        assert isinstance(prop.argument, ast.Property)
        pattern = parse_expression("exists((n)-[:T]->())")
        assert isinstance(pattern.argument, ast.PathPattern)

    def test_label_predicate(self):
        expr = parse_expression("n:User:Admin")
        assert isinstance(expr, ast.HasLabels)
        assert expr.labels == ("User", "Admin")

    def test_unary_minus_vs_arrow_ambiguity(self):
        expr = parse_expression("a < -b")
        assert expr.operator == "<"
        assert isinstance(expr.right, ast.Unary)
