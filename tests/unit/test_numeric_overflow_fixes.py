"""Regression tests for the numeric-function overflow fixes:
``toInteger`` results outside int64, ``exp`` overflow leaking a raw
Python ``OverflowError``, and ``toString`` rendering non-finite floats
with Python's names instead of Cypher's.  Every case runs in both
execution modes -- compiled closures and the tree-walking interpreter
-- because the two paths share :mod:`repro.runtime.functions` and must
not drift.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import CypherEvaluationError
from repro.graph.store import GraphStore
from repro.parser import parse_expression
from repro.runtime import compiler
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate


@pytest.fixture
def ctx():
    return EvalContext(store=GraphStore())


@pytest.fixture(params=["compiled", "interpreted"])
def ev(ctx, request):
    """Evaluate one expression in the mode the param names."""

    def run(source, record=None):
        expression = parse_expression(source)
        if request.param == "compiled":
            return compiler.compile_expression(expression)(
                ctx, record or {}
            )
        with compiler.compilation_disabled():
            return evaluate(ctx, expression, record or {})

    return run


class TestToIntegerOverflow:
    """``toInteger`` must stay inside the 64-bit Integer domain, the
    same guard ``abs(INT64_MIN)`` already has."""

    def test_huge_float_raises_overflow(self, ev):
        with pytest.raises(CypherEvaluationError) as excinfo:
            ev("toInteger(1e300)")
        assert "integer overflow" in str(excinfo.value)
        assert "toInteger()" in str(excinfo.value)

    def test_huge_negative_float_raises_overflow(self, ev):
        with pytest.raises(CypherEvaluationError):
            ev("toInteger(-1e300)")

    def test_just_past_int64_max_raises(self, ev):
        # 2^63 as a float (the first value past INT64_MAX)
        with pytest.raises(CypherEvaluationError):
            ev("toInteger(9223372036854775808.0)")

    def test_huge_integer_string_raises_overflow(self, ev):
        with pytest.raises(CypherEvaluationError):
            ev("toInteger('123456789012345678901234567890')")

    def test_huge_float_string_raises_overflow(self, ev):
        # the int(float(...)) string path the original fix missed
        with pytest.raises(CypherEvaluationError):
            ev("toInteger('1e300')")

    def test_overflowing_float_string_is_null_not_raw_error(self, ev):
        # float('1e999') is +inf; int(inf) leaked a raw OverflowError
        assert ev("toInteger('1e999')") is None
        assert ev("toInteger('-1e999')") is None

    def test_non_finite_float_is_null(self, ev):
        assert ev("toInteger(0.0 / 0.0)") is None
        assert ev("toInteger(1.0 / 0.0)") is None

    def test_boundaries_still_convert(self, ev):
        assert ev("toInteger('9223372036854775807')") == 2**63 - 1
        assert ev("toInteger('-9223372036854775808')") == -(2**63)
        # INT64_MIN is exactly representable as a double
        assert ev("toInteger(-9223372036854775808.0)") == -(2**63)

    def test_normal_conversions_unchanged(self, ev):
        assert ev("toInteger(3.9)") == 3
        assert ev("toInteger(-3.9)") == -3
        assert ev("toInteger('42')") == 42
        assert ev("toInteger('3.7')") == 3
        assert ev("toInteger('nope')") is None
        assert ev("toInteger(true)") == 1
        assert ev("toInteger(null)") is None


class TestExpOverflow:
    """``exp(746.0)`` leaked ``OverflowError: math range error``;
    IEEE-754 exp saturates to +Infinity."""

    def test_overflow_saturates_to_infinity(self, ev):
        assert ev("exp(746.0)") == math.inf

    def test_int_argument_overflow_saturates(self, ev):
        assert ev("exp(1000)") == math.inf

    def test_never_leaks_overflow_error(self, ev):
        try:
            ev("exp(100000.0)")
        except OverflowError as error:  # pragma: no cover - regression
            pytest.fail(f"raw OverflowError leaked: {error}")

    def test_non_finite_inputs(self, ev):
        assert ev("exp(1.0 / 0.0)") == math.inf
        assert ev("exp(-1.0 / 0.0)") == 0.0
        assert math.isnan(ev("exp(0.0 / 0.0)"))

    def test_normal_values_unchanged(self, ev):
        assert ev("exp(0)") == 1.0
        assert ev("exp(1)") == pytest.approx(math.e)
        assert ev("exp(null)") is None


class TestCeilFloorNonFinite:
    """Audit finding from the exp fix: ``math.ceil``/``math.floor``
    raise raw ValueError/OverflowError on non-finite floats."""

    def test_ceil_non_finite_passthrough(self, ev):
        assert ev("ceil(1.0 / 0.0)") == math.inf
        assert ev("ceil(-1.0 / 0.0)") == -math.inf
        assert math.isnan(ev("ceil(0.0 / 0.0)"))

    def test_floor_non_finite_passthrough(self, ev):
        assert ev("floor(1.0 / 0.0)") == math.inf
        assert ev("floor(-1.0 / 0.0)") == -math.inf
        assert math.isnan(ev("floor(0.0 / 0.0)"))

    def test_normal_values_unchanged(self, ev):
        assert ev("ceil(1.1)") == 2.0
        assert ev("floor(1.9)") == 1.0
        assert ev("ceil(-1.1)") == -1.0
        assert ev("floor(-1.1)") == -2.0


class TestSqrtLogAudit:
    """``sqrt``/``log``/``log10`` guard their domains already; pin the
    non-finite behaviour so the audit stays true."""

    def test_sqrt_domain_and_non_finite(self, ev):
        assert math.isnan(ev("sqrt(-1.0)"))
        assert ev("sqrt(1.0 / 0.0)") == math.inf
        assert math.isnan(ev("sqrt(0.0 / 0.0)"))

    def test_log_domain_and_non_finite(self, ev):
        assert math.isnan(ev("log(0.0)"))
        assert math.isnan(ev("log(-1.0)"))
        assert ev("log(1.0 / 0.0)") == math.inf
        assert math.isnan(ev("log10(-1.0)"))
        assert ev("log10(1.0 / 0.0)") == math.inf


class TestToStringNonFinite:
    """Cypher spells non-finite floats ``Infinity`` / ``-Infinity`` /
    ``NaN``, not Python's ``inf`` / ``nan``."""

    def test_positive_infinity(self, ev):
        assert ev("toString(1.0 / 0.0)") == "Infinity"

    def test_negative_infinity(self, ev):
        assert ev("toString(-1.0 / 0.0)") == "-Infinity"

    def test_nan(self, ev):
        assert ev("toString(0.0 / 0.0)") == "NaN"

    def test_via_exp_overflow(self, ev):
        # composition with the exp fix: a saturated result renders
        # with the Cypher name
        assert ev("toString(exp(746.0))") == "Infinity"

    def test_finite_floats_unchanged(self, ev):
        assert ev("toString(1.5)") == "1.5"
        assert ev("toString(-0.0)") == "-0.0"
        assert ev("toString(1e300)") == "1e+300"

    def test_other_types_unchanged(self, ev):
        assert ev("toString(42)") == "42"
        assert ev("toString(true)") == "true"
        assert ev("toString('s')") == "s"
        assert ev("toString(null)") is None
