"""The offline bulk loader: readers, load_store, CLI, checkpoint."""

import json

import pytest

from repro import Graph
from repro.bulkload import (
    emit_checkpoint,
    iter_nodes_csv,
    iter_nodes_csv_parallel,
    iter_nodes_jsonl,
    iter_rels_csv,
    iter_rels_csv_parallel,
    iter_rels_jsonl,
    load_store,
    main,
    write_synthetic_csv,
)
from repro.errors import LoadError, PersistenceError
from repro.graph.store import GraphStore
from repro.io.csv_io import write_csv
from repro.testing.invariants import canonical_graph_json, check_invariants


def write_nodes(path, rows):
    write_csv(path, ("id", "labels", "properties"), rows)


def write_rels(path, rows):
    write_csv(path, ("id", "type", "start", "end", "properties"), rows)


def small_files(tmp_path):
    nodes_path = tmp_path / "nodes.csv"
    rels_path = tmp_path / "rels.csv"
    write_nodes(
        nodes_path,
        [
            (0, "Person;Admin", json.dumps({"id": 0, "name": "a"})),
            (1, "Person", json.dumps({"id": 1, "name": "b"})),
            (2, "", "{}"),
        ],
    )
    write_rels(
        rels_path,
        [
            (0, "KNOWS", 0, 1, json.dumps({"w": 2})),
            (1, "KNOWS", 1, 0, "{}"),
            (2, "FOLLOWS", 1, 2, "{}"),
            (3, "FOLLOWS", 2, 2, "{}"),  # self-loop
        ],
    )
    return nodes_path, rels_path


class TestReaders:
    def test_csv_rows_roundtrip(self, tmp_path):
        nodes_path, rels_path = small_files(tmp_path)
        nodes = list(iter_nodes_csv(nodes_path))
        assert nodes[0][0] == 0
        assert tuple(nodes[0][1]) == ("Person", "Admin")
        assert nodes[0][2] == {"id": 0, "name": "a"}
        assert tuple(nodes[2][1]) == ()
        assert nodes[2][2] == {}
        rels = list(iter_rels_csv(rels_path))
        assert rels[0] == (0, "KNOWS", 0, 1, {"w": 2})
        assert rels[3] == (3, "FOLLOWS", 2, 2, {})

    def test_csv_shared_payloads_are_not_aliased_in_store(self, tmp_path):
        """Rows with identical property cells share parsed dicts, but
        the loaded store must keep independent per-entity maps."""
        nodes_path = tmp_path / "nodes.csv"
        rels_path = tmp_path / "rels.csv"
        write_nodes(nodes_path, [(0, "P", '{"k": 1}'), (1, "P", '{"k": 1}')])
        write_rels(rels_path, [])
        store = load_store(iter_nodes_csv(nodes_path), iter_rels_csv(rels_path))
        store.set_node_property(0, "k", 99)
        assert store.node_properties(1)["k"] == 1

    def test_csv_malformed_row(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        write_nodes(nodes_path, [("zero", "P", "{}")])
        with pytest.raises(LoadError, match="malformed node row"):
            list(iter_nodes_csv(nodes_path))

    def test_csv_invalid_properties_json(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        write_nodes(nodes_path, [(0, "P", "{nope")])
        with pytest.raises(LoadError, match="invalid properties JSON"):
            list(iter_nodes_csv(nodes_path))

    def test_csv_non_object_properties(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        write_nodes(nodes_path, [(0, "P", "[1, 2]")])
        with pytest.raises(LoadError, match="must be a JSON object"):
            list(iter_nodes_csv(nodes_path))

    def test_csv_missing_column(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        write_csv(nodes_path, ("id", "labels"), [(0, "P")])
        with pytest.raises(LoadError, match="missing column"):
            list(iter_nodes_csv(nodes_path))

    def test_csv_untyped_relationship(self, tmp_path):
        rels_path = tmp_path / "rels.csv"
        write_rels(rels_path, [(0, "", 0, 1, "{}")])
        with pytest.raises(LoadError, match="no type"):
            list(iter_rels_csv(rels_path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(LoadError, match="cannot read CSV file"):
            list(iter_nodes_csv(tmp_path / "absent.csv"))

    def test_jsonl_readers(self, tmp_path):
        nodes_path = tmp_path / "nodes.jsonl"
        rels_path = tmp_path / "rels.jsonl"
        nodes_path.write_text(
            '{"id": 0, "labels": ["P"], "properties": {"k": 1}}\n'
            '{"id": 1}\n'
        )
        rels_path.write_text(
            '{"id": 0, "type": "T", "start": 0, "end": 1}\n'
        )
        assert list(iter_nodes_jsonl(nodes_path)) == [
            (0, ["P"], {"k": 1}),
            (1, [], {}),
        ]
        assert list(iter_rels_jsonl(rels_path)) == [(0, "T", 0, 1, {})]

    def test_jsonl_missing_field(self, tmp_path):
        rels_path = tmp_path / "rels.jsonl"
        rels_path.write_text('{"id": 0, "type": "T", "start": 0}\n')
        with pytest.raises(LoadError, match="no end"):
            list(iter_rels_jsonl(rels_path))


class TestLoadStore:
    def test_load_and_verify(self, tmp_path):
        nodes_path, rels_path = small_files(tmp_path)
        store = load_store(
            iter_nodes_csv(nodes_path),
            iter_rels_csv(rels_path),
            indexes=[("Person", "id")],
        )
        assert store.node_count() == 3
        assert store.relationship_count() == 4
        assert store.nodes_with_label("Admin") == frozenset({0})
        assert store.adjacent_rel_ids(1, incoming=False) == [1, 2]
        assert store.adjacent_rel_ids(2, types=("FOLLOWS",)) == [2, 3]
        index = store.property_index("Person", "id")
        assert index is not None
        assert index.lookup(1) == frozenset({1})
        check_invariants(store)

    def test_requires_empty_store(self):
        store = GraphStore()
        store.create_node(["P"], {})
        with pytest.raises(PersistenceError, match="empty store"):
            store.bulk_load(iter(()), iter(()))

    def test_duplicate_node_id(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        write_nodes(nodes_path, [(0, "P", "{}"), (0, "P", "{}")])
        with pytest.raises(LoadError, match="duplicate node id 0"):
            load_store(iter_nodes_csv(nodes_path), iter(()))

    def test_negative_node_id(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        write_nodes(nodes_path, [(-4, "P", "{}")])
        with pytest.raises(LoadError, match="negative node id -4"):
            load_store(iter_nodes_csv(nodes_path), iter(()))

    def test_unknown_endpoint(self, tmp_path):
        nodes_path, __ = small_files(tmp_path)
        rels_path = tmp_path / "bad_rels.csv"
        write_rels(rels_path, [(0, "KNOWS", 0, 9, "{}")])
        with pytest.raises(LoadError, match="unknown target node 9"):
            load_store(iter_nodes_csv(nodes_path), iter_rels_csv(rels_path))

    def test_duplicate_rel_id(self, tmp_path):
        nodes_path, __ = small_files(tmp_path)
        rels_path = tmp_path / "bad_rels.csv"
        write_rels(
            rels_path,
            [(0, "KNOWS", 0, 1, "{}"), (0, "KNOWS", 1, 0, "{}")],
        )
        with pytest.raises(LoadError, match="duplicate relationship id 0"):
            load_store(iter_nodes_csv(nodes_path), iter_rels_csv(rels_path))

    def test_sparse_ids_leave_holes(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        rels_path = tmp_path / "rels.csv"
        write_nodes(nodes_path, [(5, "P", "{}"), (2, "P", "{}")])
        write_rels(rels_path, [(7, "T", 5, 2, "{}")])
        store = load_store(iter_nodes_csv(nodes_path), iter_rels_csv(rels_path))
        assert store.node_count() == 2
        assert store.relationship_count() == 1
        assert sorted(n.id for n in store.nodes()) == [2, 5]
        # Fresh ids continue past the sparse maximum.
        new = store.create_node([], {})
        assert new > 5
        check_invariants(store)

    def test_matches_statement_pipeline_output(self, tmp_path):
        nodes_path, rels_path = small_files(tmp_path)
        loaded = load_store(iter_nodes_csv(nodes_path), iter_rels_csv(rels_path))
        built = GraphStore()
        built.create_node(["Person", "Admin"], {"id": 0, "name": "a"})
        built.create_node(["Person"], {"id": 1, "name": "b"})
        built.create_node([], {})
        built.create_relationship("KNOWS", 0, 1, {"w": 2})
        built.create_relationship("KNOWS", 1, 0, {})
        built.create_relationship("FOLLOWS", 1, 2, {})
        built.create_relationship("FOLLOWS", 2, 2, {})
        assert canonical_graph_json(loaded) == canonical_graph_json(built)


class TestCheckpointAndCli:
    def test_emitted_checkpoint_opens_cleanly(self, tmp_path):
        nodes_path, rels_path = small_files(tmp_path)
        store = load_store(iter_nodes_csv(nodes_path), iter_rels_csv(rels_path))
        out = tmp_path / "db"
        out.mkdir()
        emit_checkpoint(out, store)
        graph = Graph.open(out)
        try:
            report = graph.recovery
            assert report.records_applied == 0
            assert report.torn_bytes == 0
            rows = graph.run(
                "MATCH (a:Person)-[:KNOWS]->(b:Person) "
                "RETURN a.name, b.name ORDER BY a.name"
            ).records
            assert rows == [
                {"a.name": "a", "b.name": "b"},
                {"a.name": "b", "b.name": "a"},
            ]
            check_invariants(graph.store)
        finally:
            graph.close()

    def test_cli_synthetic_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "db"
        code = main(
            [
                "--synthetic", "200",
                "--out", str(out),
                "--index", "Person:id",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["nodes"] == 200
        assert report["relationships"] == 400
        assert report["verified"] is True
        graph = Graph.open(out)
        try:
            assert graph.recovery.records_applied == 0
            count = graph.run(
                "MATCH (p:Person {id: 7})-[:FOLLOWS]->(q) RETURN q.id"
            ).records
            assert count == [{"q.id": 8}]
            check_invariants(graph.store)
        finally:
            graph.close()

    def test_cli_explicit_files(self, tmp_path, capsys):
        nodes_path, rels_path = small_files(tmp_path)
        out = tmp_path / "db"
        code = main(
            [
                "--nodes", str(nodes_path),
                "--rels", str(rels_path),
                "--out", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "loaded 3 nodes / 4 relationships" in printed
        assert "invariants: ok" in printed

    def test_cli_load_error_is_reported(self, tmp_path, capsys):
        nodes_path = tmp_path / "nodes.csv"
        write_nodes(nodes_path, [(0, "P", "{}"), (0, "P", "{}")])
        code = main(
            ["--nodes", str(nodes_path), "--out", str(tmp_path / "db")]
        )
        assert code == 1
        assert "bulk load failed" in capsys.readouterr().err

    def test_cli_bad_schema_pair(self, tmp_path, capsys):
        code = main(
            [
                "--synthetic", "10",
                "--out", str(tmp_path / "db"),
                "--index", "PersonOnly",
            ]
        )
        assert code == 1
        assert "LABEL:KEY" in capsys.readouterr().err

    def test_cli_constraint_flag(self, tmp_path, capsys):
        out = tmp_path / "db"
        code = main(
            [
                "--synthetic", "50",
                "--out", str(out),
                "--constraint", "Person:id",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["constraints"] == 1
        graph = Graph.open(out)
        try:
            assert graph.store.unique_constraints() == frozenset({("Person", "id")})
        finally:
            graph.close()

    def test_synthetic_writer_is_deterministic(self, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        n1, r1 = write_synthetic_csv(first, 100)
        n2, r2 = write_synthetic_csv(second, 100)
        assert n1.read_bytes() == n2.read_bytes()
        assert r1.read_bytes() == r2.read_bytes()


class TestParallelCsv:
    """Forked-chunk CSV parsing must be row-identical to the serial
    readers, in file order, for any chunk alignment."""

    def test_nodes_rows_identical_to_serial(self, tmp_path):
        nodes_path, __ = write_synthetic_csv(tmp_path, 500)
        serial = list(iter_nodes_csv(nodes_path))
        # tiny chunks force many ranges, workers > chunks included
        for chunk_bytes in (256, 1024, 1 << 20):
            parallel = list(
                iter_nodes_csv_parallel(
                    nodes_path, workers=3, chunk_bytes=chunk_bytes
                )
            )
            assert parallel == serial

    def test_rels_rows_identical_to_serial(self, tmp_path):
        __, rels_path = write_synthetic_csv(tmp_path, 500)
        serial = list(iter_rels_csv(rels_path))
        parallel = list(
            iter_rels_csv_parallel(rels_path, workers=4, chunk_bytes=512)
        )
        assert parallel == serial

    def test_quoted_cells_survive_chunking(self, tmp_path):
        # JSON property cells full of commas and quotes; boundaries
        # land mid-row and must re-align on the next newline
        nodes_path = tmp_path / "nodes.csv"
        rows = [
            (
                i,
                "Person",
                json.dumps({"name": f'x,"y",{i}', "tags": ["a", "b"]}),
            )
            for i in range(200)
        ]
        write_nodes(nodes_path, rows)
        serial = list(iter_nodes_csv(nodes_path))
        parallel = list(
            iter_nodes_csv_parallel(nodes_path, workers=2, chunk_bytes=128)
        )
        assert parallel == serial

    def test_single_chunk_falls_back_to_serial(self, tmp_path):
        nodes_path, __ = small_files(tmp_path)
        rows = list(
            iter_nodes_csv_parallel(
                nodes_path, workers=8, chunk_bytes=1 << 20
            )
        )
        assert rows == list(iter_nodes_csv(nodes_path))

    def test_malformed_row_raises_load_error(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        nodes_path.write_text(
            "id,labels,properties\n"
            + "".join(f"{i},Person,{{}}\n" for i in range(50))
            + "not-an-int,Person,{}\n"
        )
        with pytest.raises(LoadError):
            list(
                iter_nodes_csv_parallel(
                    nodes_path, workers=2, chunk_bytes=128
                )
            )

    def test_missing_header_column_raises(self, tmp_path):
        nodes_path = tmp_path / "nodes.csv"
        nodes_path.write_text("id,labels\n0,Person\n")
        with pytest.raises(LoadError, match="properties"):
            list(iter_nodes_csv_parallel(nodes_path, workers=2))

    def test_untyped_relationship_raises(self, tmp_path):
        rels_path = tmp_path / "rels.csv"
        rels_path.write_text(
            "id,type,start,end,properties\n"
            + "".join(f"{i},KNOWS,0,1,{{}}\n" for i in range(40))
            + "40,,0,1,{}\n"
        )
        with pytest.raises(LoadError, match="no type"):
            list(
                iter_rels_csv_parallel(rels_path, workers=2, chunk_bytes=64)
            )

    def test_cli_parallel_matches_serial_graph(self, tmp_path, capsys):
        serial_out = tmp_path / "serial"
        parallel_out = tmp_path / "parallel"
        assert main(["--synthetic", "300", "--out", str(serial_out)]) == 0
        assert (
            main(
                [
                    "--synthetic", "300",
                    "--out", str(parallel_out),
                    "--parallel", "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        first = Graph.open(serial_out)
        second = Graph.open(parallel_out)
        try:
            assert canonical_graph_json(first.store) == canonical_graph_json(
                second.store
            )
        finally:
            first.close()
            second.close()

    def test_cli_parallel_requires_csv(self, tmp_path):
        nodes_path = tmp_path / "nodes.jsonl"
        nodes_path.write_text('{"id": 0}\n')
        with pytest.raises(SystemExit):
            main(
                [
                    "--nodes", str(nodes_path),
                    "--format", "jsonl",
                    "--out", str(tmp_path / "db"),
                    "--parallel", "2",
                ]
            )
