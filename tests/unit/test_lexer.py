"""Unit tests for the tokenizer."""

import pytest

from repro.errors import CypherSyntaxError
from repro.parser.lexer import tokenize


def types_and_values(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_keywords_are_case_insensitive(self):
        assert types_and_values("match MATCH MaTcH") == [
            ("KEYWORD", "MATCH")
        ] * 3

    def test_keyword_preserves_original_text(self):
        token = tokenize("Order")[0]
        assert token.value == "ORDER"
        assert token.text == "Order"

    def test_identifiers(self):
        assert types_and_values("foo _bar x9") == [
            ("IDENT", "foo"),
            ("IDENT", "_bar"),
            ("IDENT", "x9"),
        ]

    def test_eof_token_is_last(self):
        tokens = tokenize("x")
        assert tokens[-1].type == "EOF"

    def test_positions(self):
        tokens = tokenize("MATCH\n  (n)")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestNumbers:
    def test_integer_and_float(self):
        assert types_and_values("42 3.14 1e3 2.5e-2") == [
            ("INTEGER", "42"),
            ("FLOAT", "3.14"),
            ("FLOAT", "1e3"),
            ("FLOAT", "2.5e-2"),
        ]

    def test_property_access_not_a_float(self):
        values = types_and_values("n.prop")
        assert values == [
            ("IDENT", "n"),
            ("PUNCT", "."),
            ("IDENT", "prop"),
        ]

    def test_range_dots_not_a_float(self):
        assert types_and_values("1..5") == [
            ("INTEGER", "1"),
            ("PUNCT", ".."),
            ("INTEGER", "5"),
        ]


class TestStrings:
    def test_single_and_double_quotes(self):
        assert types_and_values("'abc' \"def\"") == [
            ("STRING", "abc"),
            ("STRING", "def"),
        ]

    def test_escapes(self):
        token = tokenize(r"'a\n\t\\\' A'")[0]
        assert token.value == "a\n\t\\' A"

    def test_unterminated_string(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'abc")

    def test_invalid_escape(self):
        with pytest.raises(CypherSyntaxError):
            tokenize(r"'\q'")


class TestBacktick:
    def test_backtick_identifier(self):
        token = tokenize("`weird name`")[0]
        assert (token.type, token.value) == ("IDENT", "weird name")

    def test_escaped_backtick(self):
        token = tokenize("`a``b`")[0]
        assert token.value == "a`b"

    def test_unterminated(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("`abc")

    def test_empty_backtick_rejected(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("``")


class TestPunctuation:
    def test_multi_char_operators(self):
        assert types_and_values("<= >= <> += .. =~") == [
            ("PUNCT", "<="),
            ("PUNCT", ">="),
            ("PUNCT", "<>"),
            ("PUNCT", "+="),
            ("PUNCT", ".."),
            ("PUNCT", "=~"),
        ]

    def test_arrows_are_not_merged(self):
        # The parser assembles arrows; the lexer keeps <, -, > separate.
        assert types_and_values("-->") == [
            ("PUNCT", "-"),
            ("PUNCT", "-"),
            ("PUNCT", ">"),
        ]
        assert types_and_values("<-") == [("PUNCT", "<"), ("PUNCT", "-")]

    def test_unexpected_character(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("@")


class TestComments:
    def test_line_comment(self):
        assert types_and_values("x // comment\ny") == [
            ("IDENT", "x"),
            ("IDENT", "y"),
        ]

    def test_block_comment(self):
        assert types_and_values("x /* multi\nline */ y") == [
            ("IDENT", "x"),
            ("IDENT", "y"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("/* oops")
