"""Unit tests for ``repro.views``: analysis, registry, Graph facade.

The heavier equivalence guarantees live in
``tests/properties/test_view_maintenance.py`` and the ``--views``
fuzzer; this file pins the sharp edges -- shape classification, the
footprint's precision rules, the ``reverted_to`` snapshot-read guard,
registration rules, and the maintenance statistics surface.
"""

import pytest

from repro.dialect import Dialect
from repro.engine import CypherEngine
from repro.errors import CypherError, TransactionError
from repro.graph.store import GraphStore
from repro.parser.parser import parse
from repro.session import Graph
from repro.views import ViewRegistry, analyse


def analyse_source(source, dialect=Dialect.REVISED):
    return analyse(parse(source, dialect))


class TestAnalysis:
    """Shape classification: delta-maintained vs full-refresh."""

    @pytest.mark.parametrize(
        "source",
        [
            "MATCH (n:A) RETURN n AS n",
            "MATCH (a:A)-[r:T]->(b:B) RETURN a AS a, r.w AS w",
            "MATCH (a)-[r:T]->(a) RETURN a AS a",  # repeated variable
            "MATCH (n:A) WHERE n.i > 0 WITH n.i AS i RETURN i AS i",
            "MATCH (n:A) UNWIND [1, 2] AS x RETURN n.i AS i, x AS x",
            "MATCH (n:A) RETURN n.i AS i ORDER BY i DESC LIMIT 3",
            "MATCH (n:A) RETURN DISTINCT n.i AS i",
        ],
    )
    def test_delta_supported(self, source):
        assert analyse_source(source) is not None

    @pytest.mark.parametrize(
        "source",
        [
            "MATCH (n:A) RETURN count(*) AS c",  # aggregate
            "MATCH (a)-[:T*1..3]->(b) RETURN a AS a",  # var-length
            "MATCH p = (a)-[:T]->(b) RETURN p AS p",  # path variable
            "OPTIONAL MATCH (n:A) RETURN n AS n",
            "MATCH (a:A) MATCH (b:B) RETURN a AS a, b AS b",
            "UNWIND [1] AS x MATCH (n) RETURN n AS n, x AS x",
            "MATCH (n) WHERE (n)-[:T]->() RETURN n AS n",  # pattern expr
            "RETURN 1 AS one",  # no MATCH at all
        ],
    )
    def test_fallback_shapes(self, source):
        assert analyse_source(source) is None

    def test_footprint_create_node_needs_matching_label(self):
        plan = analyse_source("MATCH (n:A) RETURN n AS n")
        footprint = plan.footprint
        assert footprint.op_relevant(
            ("create_node", 9, ("A",), {}), set(), set()
        )
        assert not footprint.op_relevant(
            ("create_node", 9, ("Z",), {}), set(), set()
        )

    def test_footprint_lone_node_cannot_extend_a_path(self):
        """A pattern with relationship steps ignores bare node creates:
        the enabling ``create_rel`` is its own (relevant) op."""
        plan = analyse_source("MATCH (a:A)-[r:T]->(b) RETURN a AS a")
        footprint = plan.footprint
        assert not footprint.op_relevant(
            ("create_node", 9, ("A",), {}), set(), set()
        )
        assert footprint.op_relevant(
            ("create_rel", 9, "T", 0, 1, {}), set(), set()
        )
        assert not footprint.op_relevant(
            ("create_rel", 9, "Z", 0, 1, {}), set(), set()
        )

    def test_footprint_prop_ops_use_provenance(self):
        plan = analyse_source(
            "MATCH (n:A) WHERE n.i > 0 RETURN n.i AS i"
        )
        footprint = plan.footprint
        # key "i" on a node the view's rows touch: relevant
        assert footprint.op_relevant(
            ("set_node_prop", 4, "i", 1), {4}, set()
        )
        # same key on an untouched node: only relevant if the node
        # could *join* the view (label gate decides)
        assert not footprint.op_relevant(
            ("delete_node", 7), {4}, set()
        )


class TestRegistry:
    def setup_method(self):
        self.store = GraphStore()
        self.engine = CypherEngine(self.store, dialect=Dialect.REVISED)
        self.engine.execute("CREATE (:A {i: 1})-[:T]->(:B {i: 2})")
        self.registry = ViewRegistry(self.store)

    def teardown_method(self):
        self.registry.close()

    def test_register_rejects_writes_and_schema(self):
        with pytest.raises(CypherError):
            self.registry.register("CREATE (:A)")
        with pytest.raises(CypherError):
            self.registry.register("CREATE INDEX ON :A(i)")

    def test_register_inside_transaction_rejected(self):
        mark = self.store.begin_transaction()
        try:
            with pytest.raises(TransactionError):
                self.registry.register("MATCH (n:A) RETURN n AS n")
        finally:
            self.store.rollback_transaction(mark)

    def test_semantic_dedup_keys_on_query_and_parameters(self):
        one = self.registry.register(
            "MATCH (n:A) WHERE n.i = $x RETURN n AS n",
            parameters={"x": 1},
        )
        same = self.registry.register(
            "MATCH (n:A) WHERE n.i = $x RETURN n AS n",
            parameters={"x": 1},
        )
        other = self.registry.register(
            "MATCH (n:A) WHERE n.i = $x RETURN n AS n",
            parameters={"x": 2},
        )
        assert one is same
        assert other is not one
        assert len(self.registry) == 2

    def test_stats_counters_split_delta_and_skipped(self):
        view = self.registry.register(
            "MATCH (a:A)-[r:T]->(b:B) RETURN b.i AS i"
        )
        view.result()
        self.engine.execute("CREATE (:Z {z: 1})")  # irrelevant
        view.result()
        self.engine.execute(
            "MATCH (b:B) SET b.i = 9"
        )  # relevant: touches a bound node's key
        view.result()
        assert view.stats.batches_skipped >= 1
        assert view.stats.delta_refreshes >= 1
        assert view.result().to_dicts() == [{"i": 9}]

    def test_reverted_to_snapshot_read_serves_published_state(self):
        """The regression this PR fixes: a snapshot read bracketing a
        pending view refresh must see fully-published view state."""
        view = self.registry.register(
            "MATCH (n:A) RETURN n.i AS i"
        )
        published = view.result()
        mark = self.store.mark()
        self.engine.execute("MATCH (n:A) SET n.i = 42")
        # The commit is enqueued but not yet refreshed (lazy); a
        # snapshot reader rewinds the store to before the commit.
        with self.store.reverted_to(mark):
            assert self.store.in_reverted_read
            inside = view.result()
            # Served result is the last *published* one -- never a
            # half-applied refresh against the rewound store.
            assert inside is published
            assert inside.to_dicts() == [{"i": 1}]
        # After the bracket the pending batch is still there and the
        # refresh now sees the restored (committed) state.
        assert view.result().to_dicts() == [{"i": 42}]

    def test_refresh_inside_bracket_does_not_lose_batches(self):
        view = self.registry.register(
            "MATCH (n:A) RETURN n.i AS i"
        )
        view.result()
        mark = self.store.mark()
        self.engine.execute("MATCH (n:A) SET n.i = 7")
        self.engine.execute("CREATE (:A {i: 8})")
        with self.store.reverted_to(mark):
            view.result()  # guarded no-op
            view.result()
        rows = sorted(view.result().to_dicts(), key=lambda r: r["i"])
        assert rows == [{"i": 7}, {"i": 8}]


class TestGraphFacade:
    def test_register_view_result_stats_drop(self):
        graph = Graph()
        graph.run("CREATE (:User {name: 'ada'})")
        view = graph.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        assert graph.view_result(view.id).to_dicts() == [
            {"name": "ada"}
        ]
        graph.run("CREATE (:User {name: 'bob'})")
        assert sorted(
            row["name"] for row in graph.view_result(view.id).to_dicts()
        ) == ["ada", "bob"]
        stats = graph.views()
        assert stats and stats[0]["id"] == view.id
        graph.drop_view(view.id)
        assert graph.views() == []
        graph.close()

    def test_views_empty_without_registry(self):
        graph = Graph()
        assert graph.views() == []
        graph.close()

    def test_transaction_rollback_leaves_view_untouched(self):
        graph = Graph()
        graph.run("CREATE (:User {name: 'ada'})")
        view = graph.register_view(
            "MATCH (n:User) RETURN n.name AS name"
        )
        before = view.result()
        with pytest.raises(RuntimeError):
            with graph.transaction():
                graph.run("CREATE (:User {name: 'eve'})")
                raise RuntimeError("abort")
        assert view.result() is before
        graph.close()
