"""Unit tests for the expression evaluator."""

import math

import pytest

from repro.graph.values import INT64_MAX, INT64_MIN

from repro.errors import (
    CypherEvaluationError,
    CypherTypeError,
    ParameterMissingError,
    UnknownVariableError,
)
from repro.graph.store import GraphStore
from repro.parser import parse_expression
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate


@pytest.fixture
def ctx():
    return EvalContext(store=GraphStore())


def ev(ctx, source, record=None, parameters=None):
    if parameters:
        ctx = EvalContext(store=ctx.store, parameters=parameters)
    return evaluate(ctx, parse_expression(source), record or {})


class TestLiteralsAndVariables:
    def test_literals(self, ctx):
        assert ev(ctx, "42") == 42
        assert ev(ctx, "2.5") == 2.5
        assert ev(ctx, "'hi'") == "hi"
        assert ev(ctx, "true") is True
        assert ev(ctx, "null") is None
        assert ev(ctx, "[1, 'a', null]") == [1, "a", None]
        assert ev(ctx, "{a: 1, b: [2]}") == {"a": 1, "b": [2]}

    def test_variables(self, ctx):
        assert ev(ctx, "x", {"x": 7}) == 7
        with pytest.raises(UnknownVariableError):
            ev(ctx, "missing")

    def test_parameters(self, ctx):
        assert ev(ctx, "$p", parameters={"p": 3}) == 3
        with pytest.raises(ParameterMissingError):
            ev(ctx, "$q")


class TestArithmetic:
    def test_basic(self, ctx):
        assert ev(ctx, "1 + 2 * 3") == 7
        assert ev(ctx, "7 - 2") == 5
        assert ev(ctx, "2 ^ 10") == 1024.0

    def test_integer_division_truncates(self, ctx):
        assert ev(ctx, "7 / 2") == 3
        assert ev(ctx, "-7 / 2") == -3
        assert ev(ctx, "7.0 / 2") == 3.5

    def test_modulo(self, ctx):
        assert ev(ctx, "7 % 3") == 1
        assert ev(ctx, "-7 % 3") == -1

    def test_division_by_zero(self, ctx):
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "1 / 0")
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "1 % 0")

    def test_float_division_by_zero_is_ieee(self, ctx):
        # Floats follow IEEE 754: ±Infinity and NaN, never an error.
        assert ev(ctx, "1.0 / 0.0") == math.inf
        assert ev(ctx, "-1.0 / 0.0") == -math.inf
        assert math.isnan(ev(ctx, "0.0 / 0.0"))
        # Mixed operands are float division.
        assert ev(ctx, "1 / 0.0") == math.inf
        assert ev(ctx, "1.0 / 0") == math.inf
        assert ev(ctx, "-3 / 0.0") == -math.inf
        # The sign of a signed zero divisor matters.
        assert ev(ctx, "1.0 / -0.0") == -math.inf
        assert ev(ctx, "-1.0 / -0.0") == math.inf

    def test_float_modulo_by_zero_is_nan(self, ctx):
        assert math.isnan(ev(ctx, "1.0 % 0.0"))
        assert math.isnan(ev(ctx, "7 % 0.0"))
        assert math.isnan(ev(ctx, "7.5 % 0"))
        # Finite cases keep the dividend's sign (fmod semantics).
        assert ev(ctx, "-7.5 % 2") == -1.5
        assert ev(ctx, "7.5 % -2") == 1.5

    def test_integer_division_is_exact(self, ctx):
        # int(a / b) via floats loses precision above 2**53.
        assert ev(ctx, "9007199254740993 / 1") == 9007199254740993
        assert (
            ev(ctx, "9223372036854775807 / 3") == 3074457345618258602
        )

    def test_integer_overflow_errors(self, ctx):
        with pytest.raises(CypherEvaluationError, match="overflow"):
            ev(ctx, "9223372036854775807 + 1")
        with pytest.raises(CypherEvaluationError, match="overflow"):
            ev(ctx, "-9223372036854775807 - 2")
        with pytest.raises(CypherEvaluationError, match="overflow"):
            ev(ctx, "3037000500 * 3037000500")
        with pytest.raises(CypherEvaluationError, match="overflow"):
            ev(ctx, "-(-9223372036854775807 - 1)")
        with pytest.raises(CypherEvaluationError, match="overflow"):
            ev(ctx, "(-9223372036854775807 - 1) / -1")

    def test_integer_boundaries_are_legal(self, ctx):
        assert ev(ctx, "9223372036854775806 + 1") == INT64_MAX
        assert ev(ctx, "-9223372036854775807 - 1") == INT64_MIN
        assert ev(ctx, "-(9223372036854775807)") == -INT64_MAX

    def test_overflow_does_not_apply_to_floats(self, ctx):
        assert ev(ctx, "9223372036854775807 + 1.0") == float(2**63)
        assert ev(ctx, "2.0 ^ 100") == 2.0**100

    def test_null_propagation(self, ctx):
        assert ev(ctx, "1 + null") is None
        assert ev(ctx, "null * 3") is None
        assert ev(ctx, "-x", {"x": None}) is None

    def test_string_concatenation(self, ctx):
        assert ev(ctx, "'a' + 'b'") == "ab"
        assert ev(ctx, "'a' + 1") == "a1"
        assert ev(ctx, "1 + 'a'") == "1a"

    def test_list_concatenation(self, ctx):
        assert ev(ctx, "[1] + [2]") == [1, 2]
        assert ev(ctx, "[1] + 2") == [1, 2]
        assert ev(ctx, "0 + [1]") == [0, 1]

    def test_type_errors(self, ctx):
        with pytest.raises(CypherTypeError):
            ev(ctx, "true + 1")
        with pytest.raises(CypherTypeError):
            ev(ctx, "{a: 1} - 1")


class TestPredicates:
    def test_comparisons(self, ctx):
        assert ev(ctx, "1 < 2") is True
        assert ev(ctx, "1 >= 2") is False
        assert ev(ctx, "null = null") is None
        assert ev(ctx, "1 <> 2") is True

    def test_chained_comparison(self, ctx):
        assert ev(ctx, "1 < 2 < 3") is True
        assert ev(ctx, "1 < 2 > 5") is False

    def test_boolean_operators(self, ctx):
        assert ev(ctx, "true AND false") is False
        assert ev(ctx, "true OR null") is True
        assert ev(ctx, "null AND true") is None
        assert ev(ctx, "true XOR true") is False
        assert ev(ctx, "NOT null") is None

    def test_string_predicates(self, ctx):
        assert ev(ctx, "'hello' STARTS WITH 'he'") is True
        assert ev(ctx, "'hello' ENDS WITH 'lo'") is True
        assert ev(ctx, "'hello' CONTAINS 'ell'") is True
        assert ev(ctx, "'hello' CONTAINS null") is None
        with pytest.raises(CypherTypeError):
            ev(ctx, "'a' CONTAINS 1")

    def test_in(self, ctx):
        assert ev(ctx, "2 IN [1, 2]") is True
        assert ev(ctx, "3 IN [1, null]") is None

    def test_is_null(self, ctx):
        assert ev(ctx, "null IS NULL") is True
        assert ev(ctx, "1 IS NOT NULL") is True
        assert ev(ctx, "null IS NOT NULL") is False


class TestPropertyAccess:
    def test_node_property(self, ctx):
        node_id = ctx.store.create_node(("User",), {"name": "Bob"})
        node = ctx.store.node(node_id)
        assert ev(ctx, "n.name", {"n": node}) == "Bob"
        assert ev(ctx, "n.missing", {"n": node}) is None

    def test_map_property(self, ctx):
        assert ev(ctx, "m.a", {"m": {"a": 1}}) == 1
        assert ev(ctx, "m.z", {"m": {"a": 1}}) is None

    def test_null_subject(self, ctx):
        assert ev(ctx, "n.x", {"n": None}) is None

    def test_nested_access(self, ctx):
        assert ev(ctx, "m.a.b", {"m": {"a": {"b": 2}}}) == 2

    def test_non_map_subject_raises(self, ctx):
        with pytest.raises(CypherTypeError):
            ev(ctx, "x.a", {"x": 5})

    def test_label_predicate(self, ctx):
        node = ctx.store.node(ctx.store.create_node(("User", "Admin")))
        assert ev(ctx, "n:User:Admin", {"n": node}) is True
        assert ev(ctx, "n:Vendor", {"n": node}) is False
        assert ev(ctx, "n:User", {"n": None}) is None


class TestCollections:
    def test_subscript(self, ctx):
        assert ev(ctx, "xs[1]", {"xs": [10, 20]}) == 20
        assert ev(ctx, "xs[-1]", {"xs": [10, 20]}) == 20
        assert ev(ctx, "xs[9]", {"xs": [10]}) is None
        assert ev(ctx, "m['a']", {"m": {"a": 1}}) == 1
        assert ev(ctx, "xs[null]", {"xs": [1]}) is None

    def test_slice(self, ctx):
        xs = {"xs": [0, 1, 2, 3]}
        assert ev(ctx, "xs[1..3]", xs) == [1, 2]
        assert ev(ctx, "xs[..2]", xs) == [0, 1]
        assert ev(ctx, "xs[2..]", xs) == [2, 3]

    def test_list_comprehension(self, ctx):
        assert ev(ctx, "[x IN [1,2,3] WHERE x > 1 | x * 10]") == [20, 30]
        assert ev(ctx, "[x IN [1,2] | x]") == [1, 2]
        assert ev(ctx, "[x IN [1,2,3] WHERE x <> 2]") == [1, 3]
        assert ev(ctx, "[x IN null | x]") is None

    def test_quantifiers(self, ctx):
        assert ev(ctx, "any(x IN [1,2] WHERE x = 2)") is True
        assert ev(ctx, "all(x IN [1,2] WHERE x > 0)") is True
        assert ev(ctx, "none(x IN [1,2] WHERE x = 3)") is True
        assert ev(ctx, "single(x IN [1,2] WHERE x = 2)") is True
        assert ev(ctx, "single(x IN [2,2] WHERE x = 2)") is False
        assert ev(ctx, "any(x IN [null] WHERE x = 1)") is None
        assert ev(ctx, "all(x IN [1, null] WHERE x = 1)") is None

    def test_reduce(self, ctx):
        assert ev(ctx, "reduce(acc = 0, x IN [1,2,3] | acc + x)") == 6
        assert ev(ctx, "reduce(acc = 1, x IN [2,3,4] | acc * x)") == 24
        assert ev(ctx, "reduce(acc = '', x IN [1,2] | acc + x)") == "12"
        assert ev(ctx, "reduce(acc = 9, x IN [] | acc + x)") == 9

    def test_reduce_shadowing_and_nesting(self, ctx):
        # The accumulator and element shadow outer bindings.
        assert (
            ev(ctx, "reduce(x = 0, y IN xs | x + y)", {"xs": [1, 2]}) == 3
        )
        nested = (
            "reduce(acc = 0, x IN [1,2] | "
            "acc + reduce(a2 = x, y IN [10] | a2 + y))"
        )
        assert ev(ctx, nested) == 23  # (1 + 10) + (2 + 10)

    def test_reduce_null_and_type_errors(self, ctx):
        assert ev(ctx, "reduce(acc = 0, x IN null | acc + x)") is None
        with pytest.raises(CypherTypeError):
            ev(ctx, "reduce(acc = 0, x IN 1 | acc + x)")
        with pytest.raises(CypherTypeError):
            ev(ctx, "reduce(acc = 0, x IN 'abc' | acc + x)")


class TestCase:
    def test_simple_case(self, ctx):
        source = "CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END"
        assert ev(ctx, source, {"x": 1}) == "one"
        assert ev(ctx, source, {"x": 2}) == "two"
        assert ev(ctx, source, {"x": 9}) == "many"

    def test_searched_case(self, ctx):
        source = "CASE WHEN x > 1 THEN 'big' END"
        assert ev(ctx, source, {"x": 5}) == "big"
        assert ev(ctx, source, {"x": 0}) is None

    def test_null_operand_matches_nothing(self, ctx):
        source = "CASE x WHEN 1 THEN 'one' ELSE 'other' END"
        assert ev(ctx, source, {"x": None}) == "other"


class TestPatternPredicates:
    def test_exists_pattern(self, ctx):
        a = ctx.store.create_node(("User",))
        b = ctx.store.create_node(("Product",))
        ctx.store.create_relationship("ORDERED", a, b)
        node = ctx.store.node(a)
        assert ev(ctx, "exists((n)-[:ORDERED]->())", {"n": node}) is True
        assert ev(ctx, "exists((n)<-[:ORDERED]-())", {"n": node}) is False

    def test_bare_pattern_predicate(self, ctx):
        a = ctx.store.create_node(("User",))
        b = ctx.store.create_node(("Product",))
        ctx.store.create_relationship("ORDERED", a, b)
        node = ctx.store.node(a)
        assert ev(ctx, "(n)-[:ORDERED]->(:Product)", {"n": node}) is True
        assert ev(ctx, "(n)-[:ORDERED]->(:Vendor)", {"n": node}) is False

    def test_exists_property(self, ctx):
        node = ctx.store.node(ctx.store.create_node((), {"x": 1}))
        assert ev(ctx, "exists(n.x)", {"n": node}) is True
        assert ev(ctx, "exists(n.y)", {"n": node}) is False


class TestAggregateRejection:
    def test_aggregate_outside_projection_raises(self, ctx):
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "count(*)")
        with pytest.raises(CypherEvaluationError):
            ev(ctx, "sum(x)", {"x": 1})
