"""Unit tests for isomorphism-up-to-id-renaming."""

from repro.graph.comparison import (
    assert_isomorphic,
    describe,
    fingerprint,
    isomorphic,
    signature_counts,
)
from repro.graph.store import GraphStore

import pytest


def build(edges, node_attrs=None):
    """Tiny helper: build a graph from (src, type, dst) triples."""
    store = GraphStore()
    node_attrs = node_attrs or {}
    ids = {}

    def ensure(name):
        if name not in ids:
            labels, props = node_attrs.get(name, ((), {}))
            ids[name] = store.create_node(labels, dict(props))
        return ids[name]

    for source, rel_type, target in edges:
        store.create_relationship(rel_type, ensure(source), ensure(target))
    return store.snapshot()


class TestIsomorphic:
    def test_identical_up_to_renaming(self):
        left = build([("a", "T", "b"), ("b", "T", "c")])
        right = build([("x", "T", "y"), ("y", "T", "z")])
        assert isomorphic(left, right)
        assert fingerprint(left) == fingerprint(right)

    def test_different_shapes(self):
        chain = build([("a", "T", "b"), ("b", "T", "c")])
        fan = build([("a", "T", "b"), ("a", "T", "c")])
        assert not isomorphic(chain, fan)

    def test_direction_matters(self):
        left = build([("a", "T", "b")])
        right = build([("b", "T", "a")])
        # With no content on nodes these ARE isomorphic (swap a/b).
        assert isomorphic(left, right)

    def test_direction_with_content(self):
        attrs = {"a": (("A",), {}), "b": (("B",), {})}
        left = build([("a", "T", "b")], attrs)
        right = build([("b", "T", "a")], attrs)
        assert not isomorphic(left, right)

    def test_labels_and_properties_distinguish(self):
        one = build([], {"a": (("User",), {"id": 1})})
        # build() only creates nodes reachable from edges; use store directly
        store = GraphStore()
        store.create_node(("User",), {"id": 2})
        two = store.snapshot()
        store2 = GraphStore()
        store2.create_node(("User",), {"id": 1})
        one = store2.snapshot()
        assert not isomorphic(one, two)

    def test_parallel_edges_as_multisets(self):
        double = build([("a", "T", "b"), ("a", "T", "b")])
        single = build([("a", "T", "b")])
        assert not isomorphic(double, single)
        double2 = build([("x", "T", "y"), ("x", "T", "y")])
        assert isomorphic(double, double2)

    def test_parallel_edges_different_types(self):
        one = build([("a", "T", "b"), ("a", "S", "b")])
        two = build([("a", "T", "b"), ("a", "T", "b")])
        assert not isomorphic(one, two)

    def test_empty_graphs(self):
        assert isomorphic(GraphStore().snapshot(), GraphStore().snapshot())


class TestDiagnostics:
    def test_describe_mentions_counts(self):
        snapshot = build([("a", "T", "b")])
        text = describe(snapshot)
        assert "2 nodes" in text and "1 relationships" in text

    def test_assert_isomorphic_passes(self):
        left = build([("a", "T", "b")])
        right = build([("c", "T", "d")])
        assert_isomorphic(left, right)

    def test_assert_isomorphic_message(self):
        left = build([("a", "T", "b")])
        right = build([("a", "S", "b")])
        with pytest.raises(AssertionError) as excinfo:
            assert_isomorphic(left, right)
        assert "not isomorphic" in str(excinfo.value)

    def test_signature_counts_invariant(self):
        left = build([("a", "T", "b"), ("b", "T", "c")])
        right = build([("z", "T", "y"), ("y", "T", "x")])
        assert signature_counts(left) == signature_counts(right)


class TestValueSignature:
    """Total canonical signatures: record keying must never raise."""

    def test_scalars(self):
        from repro.graph.comparison import value_signature

        assert value_signature(None) == "null"
        assert value_signature(True) == "true"
        assert value_signature(False) == "false"
        assert value_signature("x") != value_signature(1)

    def test_numbers_normalise_across_int_and_float(self):
        from repro.graph.comparison import value_signature

        assert value_signature(1) == value_signature(1.0)
        assert value_signature(0.5) != value_signature(1)
        assert value_signature(float("nan")) == value_signature(float("nan"))
        assert value_signature(float("inf")) != value_signature(
            float("-inf")
        )

    def test_true_is_not_one(self):
        from repro.graph.comparison import value_signature

        assert value_signature(True) != value_signature(1)

    def test_containers_recurse_and_never_raise(self):
        from repro.graph.comparison import value_signature

        nested = [1, {"k": [None, "s"]}, [[2.0]]]
        assert value_signature(nested) == value_signature(
            [1.0, {"k": [None, "s"]}, [[2]]]
        )
        assert value_signature({"a": 1, "b": 2}) == value_signature(
            {"b": 2, "a": 1}
        )

    def test_entities_keyed_by_id(self):
        from repro.graph.comparison import value_signature

        store = GraphStore()
        x = store.create_node(("A",), {"p": 1})
        y = store.create_node(("A",), {"p": 1})
        assert value_signature(store.node(x)) != value_signature(
            store.node(y)
        )
        assert value_signature(store.node(x)) == value_signature(
            store.node(x)
        )

    def test_unrepresentable_fallback(self):
        from repro.graph.comparison import value_signature

        class Hostile:
            def __repr__(self):
                raise RuntimeError("no repr for you")

        assert "<unreprable>" in value_signature(Hostile())


class TestBacktrackingFallback:
    """The no-networkx isomorphism path must agree with VF2."""

    def test_fallback_accepts_renamings(self):
        from repro.graph.comparison import _isomorphic_backtracking

        left = build([("a", "T", "b"), ("b", "S", "c")])
        right = build([("z", "T", "y"), ("y", "S", "x")])
        assert _isomorphic_backtracking(left, right)

    def test_fallback_rejects_different_wiring(self):
        from repro.graph.comparison import _isomorphic_backtracking

        left = build([("a", "T", "b"), ("b", "T", "c")])
        right = build([("a", "T", "b"), ("a", "T", "c")])
        assert not _isomorphic_backtracking(left, right)

    def test_fallback_handles_parallel_edges_and_self_loops(self):
        from repro.graph.comparison import _isomorphic_backtracking

        left = build([("a", "T", "a"), ("a", "T", "b"), ("a", "T", "b")])
        right = build([("x", "T", "x"), ("x", "T", "y"), ("x", "T", "y")])
        assert _isomorphic_backtracking(left, right)
        skew = build([("x", "T", "x"), ("x", "T", "y"), ("y", "T", "x")])
        assert not _isomorphic_backtracking(left, skew)

    def test_fallback_agrees_with_vf2_on_random_graphs(self):
        import random

        from repro.graph.comparison import (
            _isomorphic_backtracking,
            isomorphic,
        )

        for trial in range(60):
            rng = random.Random(trial)
            n = rng.randint(1, 5)
            edges = [
                (
                    f"n{rng.randrange(n)}",
                    rng.choice(["T", "S"]),
                    f"n{rng.randrange(n)}",
                )
                for _ in range(rng.randint(0, 6))
            ]
            mutated = list(edges)
            if mutated and rng.random() < 0.5:
                source, __, target = mutated[0]
                mutated[0] = (source, "X", target)
            left = build(edges)
            for right in (build(list(reversed(edges))), build(mutated)):
                assert isomorphic(left, right) == _isomorphic_backtracking(
                    left, right
                )
