"""Unit tests for isomorphism-up-to-id-renaming."""

from repro.graph.comparison import (
    assert_isomorphic,
    describe,
    fingerprint,
    isomorphic,
    signature_counts,
)
from repro.graph.store import GraphStore

import pytest


def build(edges, node_attrs=None):
    """Tiny helper: build a graph from (src, type, dst) triples."""
    store = GraphStore()
    node_attrs = node_attrs or {}
    ids = {}

    def ensure(name):
        if name not in ids:
            labels, props = node_attrs.get(name, ((), {}))
            ids[name] = store.create_node(labels, dict(props))
        return ids[name]

    for source, rel_type, target in edges:
        store.create_relationship(rel_type, ensure(source), ensure(target))
    return store.snapshot()


class TestIsomorphic:
    def test_identical_up_to_renaming(self):
        left = build([("a", "T", "b"), ("b", "T", "c")])
        right = build([("x", "T", "y"), ("y", "T", "z")])
        assert isomorphic(left, right)
        assert fingerprint(left) == fingerprint(right)

    def test_different_shapes(self):
        chain = build([("a", "T", "b"), ("b", "T", "c")])
        fan = build([("a", "T", "b"), ("a", "T", "c")])
        assert not isomorphic(chain, fan)

    def test_direction_matters(self):
        left = build([("a", "T", "b")])
        right = build([("b", "T", "a")])
        # With no content on nodes these ARE isomorphic (swap a/b).
        assert isomorphic(left, right)

    def test_direction_with_content(self):
        attrs = {"a": (("A",), {}), "b": (("B",), {})}
        left = build([("a", "T", "b")], attrs)
        right = build([("b", "T", "a")], attrs)
        assert not isomorphic(left, right)

    def test_labels_and_properties_distinguish(self):
        one = build([], {"a": (("User",), {"id": 1})})
        # build() only creates nodes reachable from edges; use store directly
        store = GraphStore()
        store.create_node(("User",), {"id": 2})
        two = store.snapshot()
        store2 = GraphStore()
        store2.create_node(("User",), {"id": 1})
        one = store2.snapshot()
        assert not isomorphic(one, two)

    def test_parallel_edges_as_multisets(self):
        double = build([("a", "T", "b"), ("a", "T", "b")])
        single = build([("a", "T", "b")])
        assert not isomorphic(double, single)
        double2 = build([("x", "T", "y"), ("x", "T", "y")])
        assert isomorphic(double, double2)

    def test_parallel_edges_different_types(self):
        one = build([("a", "T", "b"), ("a", "S", "b")])
        two = build([("a", "T", "b"), ("a", "T", "b")])
        assert not isomorphic(one, two)

    def test_empty_graphs(self):
        assert isomorphic(GraphStore().snapshot(), GraphStore().snapshot())


class TestDiagnostics:
    def test_describe_mentions_counts(self):
        snapshot = build([("a", "T", "b")])
        text = describe(snapshot)
        assert "2 nodes" in text and "1 relationships" in text

    def test_assert_isomorphic_passes(self):
        left = build([("a", "T", "b")])
        right = build([("c", "T", "d")])
        assert_isomorphic(left, right)

    def test_assert_isomorphic_message(self):
        left = build([("a", "T", "b")])
        right = build([("a", "S", "b")])
        with pytest.raises(AssertionError) as excinfo:
            assert_isomorphic(left, right)
        assert "not isomorphic" in str(excinfo.value)

    def test_signature_counts_invariant(self):
        left = build([("a", "T", "b"), ("b", "T", "c")])
        right = build([("z", "T", "y"), ("y", "T", "x")])
        assert signature_counts(left) == signature_counts(right)
