"""Unit tests for uniqueness constraints."""

import pytest

from repro import Dialect, Graph
from repro.errors import ConstraintViolationError


@pytest.fixture
def constrained(revised_graph):
    revised_graph.run("CREATE (:User {id: 1}), (:User {id: 2})")
    revised_graph.create_unique_constraint("User", "id")
    return revised_graph


class TestConstraintCreation:
    def test_existing_duplicates_rejected(self, revised_graph):
        revised_graph.run("CREATE (:User {id: 1}), (:User {id: 1})")
        with pytest.raises(ConstraintViolationError):
            revised_graph.create_unique_constraint("User", "id")

    def test_constraint_listed(self, constrained):
        assert constrained.store.unique_constraints() == {("User", "id")}

    def test_drop_constraint(self, constrained):
        constrained.drop_unique_constraint("User", "id")
        constrained.run("CREATE (:User {id: 1})")  # duplicate now allowed
        assert constrained.node_count() == 3

    def test_nodes_without_key_are_unconstrained(self, constrained):
        constrained.run("CREATE (:User), (:User)")
        assert constrained.node_count() == 4


class TestEnforcement:
    def test_create_duplicate_rejected(self, constrained):
        with pytest.raises(ConstraintViolationError):
            constrained.run("CREATE (:User {id: 1})")
        assert constrained.node_count() == 2  # statement rolled back

    def test_whole_statement_rolls_back(self, constrained):
        with pytest.raises(ConstraintViolationError):
            constrained.run("CREATE (:Log), (:User {id: 2})")
        assert constrained.node_count() == 2  # the :Log create is undone

    def test_set_to_duplicate_rejected(self, constrained):
        with pytest.raises(ConstraintViolationError):
            constrained.run("MATCH (u:User {id: 2}) SET u.id = 1")
        ids = sorted(
            constrained.run("MATCH (u:User) RETURN u.id AS i").values("i")
        )
        assert ids == [1, 2]

    def test_set_to_own_value_is_fine(self, constrained):
        constrained.run("MATCH (u:User {id: 2}) SET u.id = 2")

    def test_label_addition_can_violate(self, constrained):
        constrained.run("CREATE (:Pending {id: 1})")
        with pytest.raises(ConstraintViolationError):
            constrained.run("MATCH (p:Pending) SET p:User")

    def test_other_labels_unaffected(self, constrained):
        constrained.run("CREATE (:Vendor {id: 1}), (:Vendor {id: 1})")
        assert constrained.node_count() == 4

    def test_direct_store_mutation_is_undone(self, constrained):
        store = constrained.store
        before = store.node_count()
        with pytest.raises(ConstraintViolationError):
            store.create_node(("User",), {"id": 1})
        assert store.node_count() == before
        # The index holds no trace of the rejected node.
        index = store.property_index("User", "id")
        assert len(index.lookup(1)) == 1

    def test_delete_then_reuse_value(self, constrained):
        constrained.run("MATCH (u:User {id: 1}) DELETE u")
        constrained.run("CREATE (:User {id: 1})")
        assert constrained.node_count() == 2


class TestConstraintsWithMerge:
    def test_merge_same_respects_constraint(self, constrained):
        constrained.run(
            "UNWIND [1, 1, 3] AS uid MERGE SAME (:User {id: uid})"
        )
        ids = sorted(
            constrained.run("MATCH (u:User) RETURN u.id AS i").values("i")
        )
        assert ids == [1, 2, 3]

    def test_merge_all_duplicate_creation_rejected(self, constrained):
        # Two identical failing rows: MERGE ALL would create two nodes
        # with id 7, which the constraint refuses.
        with pytest.raises(ConstraintViolationError):
            constrained.run(
                "UNWIND [7, 7] AS uid MERGE ALL (:User {id: uid})"
            )
        assert constrained.node_count() == 2

    def test_legacy_merge_with_constraint(self):
        g = Graph(Dialect.CYPHER9)
        g.create_unique_constraint("User", "id")
        g.run("UNWIND [1, 1, 2] AS uid MERGE (:User {id: uid})")
        assert g.node_count() == 2
