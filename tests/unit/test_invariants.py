"""The invariant oracle detects each kind of store corruption.

Each test corrupts one private structure directly and asserts
:func:`check_invariants` raises an :class:`InvariantViolation` naming
the right problem -- an oracle that cannot fail its own checks would
prove nothing when wired into the fuzzer.
"""

import pytest

from repro.graph.store import GraphStore
from repro.testing.invariants import (
    InvariantViolation,
    check_invariants,
    journal_roundtrip,
)


def _small_store():
    store = GraphStore()
    a = store.create_node(("A",), {"x": 1})
    b = store.create_node(("A", "B"), {"x": 2, "y": "s"})
    c = store.create_node((), {})
    r1 = store.create_relationship("T", a, b, {"w": 1})
    r2 = store.create_relationship("S", b, c)
    store.create_index("A", "x")
    return store, (a, b, c), (r1, r2)


def _violation(store, **kwargs):
    with pytest.raises(InvariantViolation) as info:
        check_invariants(store, **kwargs)
    return str(info.value)


def test_clean_store_passes():
    store, __, __ = _small_store()
    check_invariants(store)


def test_empty_store_passes():
    check_invariants(GraphStore())


def test_live_node_counter_drift():
    store, __, __ = _small_store()
    store._live_nodes += 1
    assert "live node counter" in _violation(store)


def test_live_rel_counter_drift():
    store, __, __ = _small_store()
    store._live_rels -= 1
    assert "live relationship counter" in _violation(store)


def test_id_reuse_detected():
    store, __, __ = _small_store()
    store._next_node_id = 0
    assert "next node id" in _violation(store)


def test_dangling_relationship_detected():
    store, (a, __, __), __ = _small_store()
    store.delete_node(a, allow_dangling=True)
    message = _violation(store)
    assert "deleted/missing" in message
    # ... but tolerated when the caller opts in (legacy mid-statement).
    check_invariants(store, allow_dangling=True)


def test_adjacency_extra_entry():
    store, (a, __, __), (r1, __) = _small_store()
    store._adj_out[a].add(store._strings.intern("T"), 999)
    assert "non-live relationship" in _violation(store)


def test_adjacency_missing_entry():
    store, (a, __, __), (r1, __) = _small_store()
    store._adj_out[a].discard(store._strings.intern("T"), r1)
    message = _violation(store)
    assert "missing" in message


def test_typed_adjacency_drift():
    store, (a, __, __), (r1, __) = _small_store()
    # Relabel the group so the flat array still holds r1 (untyped
    # recount passes) but under the wrong type.
    store._adj_out[a].types[0] = store._strings.intern("S")
    assert "typed out-adjacency" in _violation(store)


def test_adjacency_empty_group_detected():
    store, (a, __, __), (r1, __) = _small_store()
    half = store._adj_out[a]
    # Graft an empty type group by hand: offsets gain a zero-width span.
    half.types.append(store._strings.intern("S"))
    half.offsets.append(half.offsets[-1])
    assert "empty bucket" in _violation(store)


def test_adjacency_empty_groups_compacted():
    store, (__, b, c), (__, r2) = _small_store()
    # Deleting the last :S relationship must remove its group entirely.
    store.delete_relationship(r2)
    for node_id in (b, c):
        for half in (store._adj_out[node_id], store._adj_in[node_id]):
            if half is not None:
                assert store._strings.intern("S") not in set(half.types)
    check_invariants(store)


def test_adjacency_unsorted_segment_detected():
    store, (a, b, __), __ = _small_store()
    r3 = store.create_relationship("T", a, b)
    half = store._adj_out[a]
    group = list(half.types).index(store._strings.intern("T"))
    low, high = half.offsets[group], half.offsets[group + 1]
    half.rels[low], half.rels[high - 1] = half.rels[high - 1], half.rels[low]
    assert "ascending" in _violation(store)


def test_label_index_stale_bucket():
    store, (a, __, __), __ = _small_store()
    store._label_index._by_label["A"].discard(a)
    assert "label index for :A" in _violation(store)


def test_label_index_empty_bucket():
    store, __, __ = _small_store()
    store._label_index._by_label["Ghost"] = set()
    assert "empty bucket" in _violation(store)


def test_property_index_stale_entry():
    store, (a, __, __), __ = _small_store()
    index = store._property_indexes[("A", "x")]
    index._value_of[999] = index._value_of[a]
    assert "reverse map" in _violation(store)


def test_property_index_bucket_drift():
    store, (a, b, __), __ = _small_store()
    index = store._property_indexes[("A", "x")]
    # Move a node to the wrong bucket, keeping the reverse map intact.
    key_a = index._value_of[a]
    key_b = index._value_of[b]
    index._by_value[key_a].discard(a)
    index._by_value[key_b].add(a)
    assert "buckets" in _violation(store)


def test_unique_constraint_violation_detected():
    store = GraphStore()
    store.create_node(("A",), {"x": 1})
    store.create_unique_constraint("A", "x")
    # Bypass the constraint check by writing the record directly.
    node_id = store.create_node(("A",), {})
    store._node_props[node_id] = {"x": 1}
    index = store._property_indexes[("A", "x")]
    index.add(node_id, 1)
    assert "uniqueness constraint" in _violation(store)


def test_all_problems_reported_together():
    store, (a, __, __), (r1, __) = _small_store()
    store._live_nodes += 1
    store._adj_out[a].discard(store._strings.intern("T"), r1)
    with pytest.raises(InvariantViolation) as info:
        check_invariants(store)
    assert len(info.value.problems) >= 2


def test_journal_roundtrip_passes_through_result():
    store, __, __ = _small_store()
    store.commit_to(0)
    result = journal_roundtrip(
        store, lambda: store.create_node(("C",), {})
    )
    assert isinstance(result, int)
    assert store.label_count("C") == 0  # rolled back


def test_journal_roundtrip_detects_unrestored_state():
    store, __, __ = _small_store()
    store.commit_to(0)

    def sneaky():
        # Mutate and commit behind the bracket's back: rollback_to can
        # no longer undo it, so the helper must flag the difference.
        store.create_node(("C",), {})
        store.commit_to(0)

    with pytest.raises(InvariantViolation):
        journal_roundtrip(store, sneaky)
