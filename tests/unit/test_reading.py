"""Unit tests for MATCH / OPTIONAL MATCH / UNWIND / LOAD CSV clauses."""

import pytest

from repro.errors import CypherSemanticError
from repro.io.csv_io import write_csv


@pytest.fixture
def shop(revised_graph):
    revised_graph.run(
        "CREATE (:User {name: 'Bob'})-[:ORDERED]->(:Product {name: 'laptop'})"
    )
    revised_graph.run("CREATE (:User {name: 'Jane'})")
    return revised_graph


class TestMatch:
    def test_basic_match(self, shop):
        result = shop.run("MATCH (u:User) RETURN u.name AS n ORDER BY n")
        assert result.values("n") == ["Bob", "Jane"]

    def test_match_expands_per_record(self, shop):
        result = shop.run(
            "MATCH (u:User) MATCH (p:Product) "
            "RETURN u.name AS u, p.name AS p ORDER BY u"
        )
        assert result.records == [
            {"u": "Bob", "p": "laptop"},
            {"u": "Jane", "p": "laptop"},
        ]

    def test_non_matching_record_is_dropped(self, shop):
        result = shop.run(
            "MATCH (u:User) MATCH (u)-[:ORDERED]->(p) RETURN u.name AS n"
        )
        assert result.values("n") == ["Bob"]

    def test_where_filters(self, shop):
        result = shop.run(
            "MATCH (u:User) WHERE u.name STARTS WITH 'J' RETURN u.name AS n"
        )
        assert result.values("n") == ["Jane"]

    def test_where_null_is_dropped(self, shop):
        result = shop.run("MATCH (u:User) WHERE u.age > 10 RETURN u")
        assert result.records == []


class TestOptionalMatch:
    def test_optional_binds_nulls(self, shop):
        result = shop.run(
            "MATCH (u:User) OPTIONAL MATCH (u)-[:ORDERED]->(p) "
            "RETURN u.name AS u, p.name AS p ORDER BY u"
        )
        assert result.records == [
            {"u": "Bob", "p": "laptop"},
            {"u": "Jane", "p": None},
        ]

    def test_optional_where_inside_matching(self, shop):
        result = shop.run(
            "MATCH (u:User) OPTIONAL MATCH (u)-[:ORDERED]->(p) "
            "WHERE p.name = 'nope' "
            "RETURN u.name AS u, p ORDER BY u"
        )
        assert all(record["p"] is None for record in result.records)

    def test_optional_match_on_empty_graph(self, revised_graph):
        result = revised_graph.run("OPTIONAL MATCH (n) RETURN n")
        assert result.records == [{"n": None}]


class TestUnwind:
    def test_unwind_list(self, revised_graph):
        result = revised_graph.run("UNWIND [1, 2, 3] AS x RETURN x")
        assert result.values("x") == [1, 2, 3]

    def test_unwind_null_produces_no_rows(self, revised_graph):
        result = revised_graph.run("UNWIND null AS x RETURN x")
        assert result.records == []

    def test_unwind_scalar_is_single_row(self, revised_graph):
        result = revised_graph.run("UNWIND 5 AS x RETURN x")
        assert result.values("x") == [5]

    def test_unwind_empty_list(self, revised_graph):
        result = revised_graph.run("UNWIND [] AS x RETURN x")
        assert result.records == []

    def test_unwind_nested(self, revised_graph):
        result = revised_graph.run(
            "UNWIND [[1, 2], [3]] AS xs UNWIND xs AS x RETURN x"
        )
        assert result.values("x") == [1, 2, 3]

    def test_unwind_rejects_rebinding(self, revised_graph):
        with pytest.raises(CypherSemanticError):
            revised_graph.run("UNWIND [1] AS x UNWIND [2] AS x RETURN x")

    def test_unwind_parameter(self, revised_graph):
        result = revised_graph.run(
            "UNWIND $items AS x RETURN x * 2 AS y", items=[1, 2]
        )
        assert result.values("y") == [2, 4]


class TestLoadCsv:
    def test_with_headers(self, revised_graph, tmp_path):
        path = tmp_path / "users.csv"
        write_csv(path, ["id", "name"], [[1, "Bob"], [2, None]])
        result = revised_graph.run(
            f"LOAD CSV WITH HEADERS FROM '{path}' AS row "
            "RETURN row.id AS id, row.name AS name ORDER BY id"
        )
        assert result.records == [
            {"id": "1", "name": "Bob"},
            {"id": "2", "name": None},
        ]

    def test_without_headers(self, revised_graph, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,b\nc,d\n")
        result = revised_graph.run(
            f"LOAD CSV FROM '{path}' AS row RETURN row[0] AS x"
        )
        assert result.values("x") == ["a", "c"]

    def test_field_terminator(self, revised_graph, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("id;name\n1;Bob\n")
        result = revised_graph.run(
            f"LOAD CSV WITH HEADERS FROM '{path}' AS row "
            "FIELDTERMINATOR ';' RETURN row.name AS n"
        )
        assert result.values("n") == ["Bob"]

    def test_load_csv_then_create(self, revised_graph, tmp_path):
        path = tmp_path / "users.csv"
        write_csv(path, ["id"], [[1], [2], [3]])
        revised_graph.run(
            f"LOAD CSV WITH HEADERS FROM '{path}' AS row "
            "CREATE (:User {id: toInteger(row.id)})"
        )
        assert revised_graph.node_count() == 3
