"""Unit tests for the Graph façade and transactions."""

import pytest

from repro import Dialect, Graph, PropertyConflictError, Transaction
from repro.errors import TransactionError


class TestGraphFacade:
    def test_direct_creation(self, revised_graph):
        bob = revised_graph.create_node("User", id=1, name="Bob")
        laptop = revised_graph.create_node("Product", id=2)
        rel = revised_graph.create_relationship(bob, "ORDERED", laptop, qty=1)
        assert rel.start == bob and rel.end == laptop
        assert revised_graph.node_count() == 2
        assert revised_graph.relationship_count() == 1

    def test_relationship_by_id(self, revised_graph):
        a = revised_graph.create_node()
        b = revised_graph.create_node()
        rel = revised_graph.create_relationship(a.id, "T", b.id)
        assert rel.type == "T"

    def test_statistics(self, revised_graph):
        revised_graph.run("CREATE (:User)-[:ORDERED]->(:Product)")
        stats = revised_graph.statistics()
        assert stats.node_count == 2
        assert stats.relationship_types == {"ORDERED": 1}
        assert stats.average_degree == 1.0

    def test_copy_is_deep(self, revised_graph):
        revised_graph.run("CREATE (:N)")
        clone = revised_graph.copy()
        clone.run("CREATE (:N)")
        assert revised_graph.node_count() == 1
        assert clone.node_count() == 2

    def test_create_index_used_by_match(self, revised_graph):
        revised_graph.create_index("User", "id")
        revised_graph.run("UNWIND range(0, 99) AS i CREATE (:User {id: i})")
        result = revised_graph.run(
            "MATCH (u:User {id: 42}) RETURN u.id AS id"
        )
        assert result.values("id") == [42]

    def test_repr(self, revised_graph):
        assert "dialect=revised" in repr(revised_graph)


class TestTransactions:
    def test_commit_keeps_changes(self, revised_graph):
        with revised_graph.transaction():
            revised_graph.run("CREATE (:N)")
            revised_graph.run("CREATE (:N)")
        assert revised_graph.node_count() == 2

    def test_exception_rolls_back(self, revised_graph):
        with pytest.raises(RuntimeError):
            with revised_graph.transaction():
                revised_graph.run("CREATE (:N)")
                raise RuntimeError("boom")
        assert revised_graph.node_count() == 0

    def test_explicit_rollback(self, revised_graph):
        tx = revised_graph.transaction()
        revised_graph.run("CREATE (:N)")
        tx.rollback()
        assert revised_graph.node_count() == 0

    def test_statement_error_inside_transaction(self, revised_graph):
        # A failing statement rolls itself back; the transaction can
        # continue and commit the rest.
        revised_graph.run("CREATE (:P {v: 1}), (:P {v: 2})")
        with revised_graph.transaction():
            revised_graph.run("CREATE (:Extra)")
            with pytest.raises(PropertyConflictError):
                revised_graph.run("MATCH (a:P), (b:P) SET a.v = b.v")
        assert revised_graph.node_count() == 3

    def test_closed_transaction_rejects_reuse(self, revised_graph):
        tx = revised_graph.transaction()
        tx.commit()
        with pytest.raises(TransactionError):
            tx.commit()
        with pytest.raises(TransactionError):
            tx.rollback()

    def test_nested_transactions(self, revised_graph):
        with revised_graph.transaction():
            revised_graph.run("CREATE (:Outer)")
            inner = revised_graph.transaction()
            revised_graph.run("CREATE (:Inner)")
            inner.rollback()
        assert revised_graph.node_count() == 1
        labels = revised_graph.nodes()[0].labels
        assert labels == frozenset({"Outer"})

    def test_transaction_type(self, revised_graph):
        assert isinstance(revised_graph.transaction(), Transaction)
