"""Whole-graph io round-trips: graph_json and csv export -> import.

Every round-trip must produce a store that (a) passes the fuzzer's
invariant oracle and (b) compares equal to the original via
``graph/comparison.py`` -- both isomorphic and, because entity ids are
preserved, identical in canonical JSON form.
"""

import pytest

from repro.errors import LoadError
from repro.graph.comparison import assert_isomorphic, isomorphic
from repro.graph.store import GraphStore
from repro.io.csv_io import read_graph_csv, write_graph_csv
from repro.io.graph_json import (
    dict_to_store,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.testing.generator import build_store, case_for
from repro.testing.invariants import canonical_graph_json, check_invariants


def _example_store():
    store = GraphStore()
    a = store.create_node(("A",), {"i": 1, "name": "ann"})
    b = store.create_node(("A", "B"), {"i": 2.5, "flag": True})
    c = store.create_node((), {})
    store.create_relationship("T", a, b, {"w": 1})
    store.create_relationship("S", b, c)
    store.create_relationship("T", c, a, {"list": [1, 2, "x"]})
    return store


def _assert_same_graph(original, restored):
    check_invariants(restored)
    assert_isomorphic(restored.snapshot(), original.snapshot())
    assert canonical_graph_json(restored) == canonical_graph_json(original)


class TestGraphJsonRoundTrip:
    def test_example_store(self, tmp_path):
        store = _example_store()
        path = tmp_path / "graph.json"
        save_graph(store, path)
        _assert_same_graph(store, load_graph(path))

    def test_dict_round_trip(self):
        store = _example_store()
        _assert_same_graph(store, dict_to_store(graph_to_dict(store)))

    def test_empty_store(self, tmp_path):
        store = GraphStore()
        path = tmp_path / "empty.json"
        save_graph(store, path)
        restored = load_graph(path)
        check_invariants(restored)
        assert isomorphic(restored.snapshot(), store.snapshot())

    @pytest.mark.parametrize("index", range(0, 12, 3))
    def test_fuzz_generated_graphs(self, index, tmp_path):
        store = build_store(case_for(3, index))
        path = tmp_path / "fuzz.json"
        save_graph(store, path)
        _assert_same_graph(store, load_graph(path))


class TestGraphCsvRoundTrip:
    def test_example_store(self, tmp_path):
        store = _example_store()
        nodes, rels = tmp_path / "nodes.csv", tmp_path / "rels.csv"
        write_graph_csv(store, nodes, rels)
        _assert_same_graph(store, read_graph_csv(nodes, rels))

    def test_empty_store(self, tmp_path):
        store = GraphStore()
        nodes, rels = tmp_path / "nodes.csv", tmp_path / "rels.csv"
        write_graph_csv(store, nodes, rels)
        restored = read_graph_csv(nodes, rels)
        check_invariants(restored)
        assert restored.snapshot().order() == 0
        assert restored.snapshot().size() == 0

    @pytest.mark.parametrize("index", range(0, 12, 3))
    def test_fuzz_generated_graphs(self, index, tmp_path):
        store = build_store(case_for(4, index))
        nodes, rels = tmp_path / "nodes.csv", tmp_path / "rels.csv"
        write_graph_csv(store, nodes, rels)
        _assert_same_graph(store, read_graph_csv(nodes, rels))

    def test_csv_and_json_agree(self, tmp_path):
        """Both io paths restore the same canonical graph."""
        store = build_store(case_for(5, 3))
        json_path = tmp_path / "g.json"
        nodes, rels = tmp_path / "nodes.csv", tmp_path / "rels.csv"
        save_graph(store, json_path)
        write_graph_csv(store, nodes, rels)
        assert canonical_graph_json(
            load_graph(json_path)
        ) == canonical_graph_json(read_graph_csv(nodes, rels))

    def test_rejects_bad_property_json(self, tmp_path):
        nodes, rels = tmp_path / "nodes.csv", tmp_path / "rels.csv"
        nodes.write_text('id,labels,properties\n0,A,"{broken"\n')
        rels.write_text("id,type,start,end,properties\n")
        with pytest.raises(LoadError):
            read_graph_csv(nodes, rels)

    def test_rejects_non_integer_id(self, tmp_path):
        nodes, rels = tmp_path / "nodes.csv", tmp_path / "rels.csv"
        nodes.write_text("id,labels,properties\nzero,A,{}\n")
        rels.write_text("id,type,start,end,properties\n")
        with pytest.raises(LoadError):
            read_graph_csv(nodes, rels)

    def test_rejects_unknown_endpoint(self, tmp_path):
        nodes, rels = tmp_path / "nodes.csv", tmp_path / "rels.csv"
        nodes.write_text("id,labels,properties\n0,A,{}\n")
        rels.write_text("id,type,start,end,properties\n0,T,0,7,{}\n")
        with pytest.raises(LoadError):
            read_graph_csv(nodes, rels)
