"""Unit tests for the server's building blocks: the route table, the
wire format, the snapshot-read store primitive, and the group
committer's batching logic.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import PersistenceError
from repro.graph.store import GraphStore
from repro.persistence import GroupCommitter, PersistenceManager
from repro.server.routers import ROUTES, match_route
from repro.server.wire import from_wire, to_wire
from repro.session import Graph


class TestRouter:
    def test_static_routes(self):
        assert match_route("GET", "/health") == ("handle_health", {})
        assert match_route("POST", "/query") == ("handle_query", {})
        assert match_route("POST", "/admin/checkpoint") == (
            "handle_checkpoint",
            {},
        )

    def test_path_parameters(self):
        handler, params = match_route("POST", "/sessions/abc123/query")
        assert handler == "handle_session_query"
        assert params == {"id": "abc123"}
        handler, params = match_route("DELETE", "/sessions/abc123")
        assert handler == "handle_session_close"
        assert params == {"id": "abc123"}

    def test_query_strings_ignored(self):
        assert match_route("GET", "/health?probe=1") == (
            "handle_health",
            {},
        )

    def test_method_mismatch(self):
        with pytest.raises(LookupError):
            match_route("DELETE", "/query")

    def test_unknown_path(self):
        with pytest.raises(LookupError):
            match_route("GET", "/sessions/abc/unknown")

    def test_every_route_names_a_real_handler(self):
        from repro.server.service import GraphService

        for _method, _pattern, handler in ROUTES:
            assert callable(getattr(GraphService, handler))


class TestWireScalars:
    def test_scalars_pass_through(self):
        for value in (None, True, 1, 2.5, "x", [1, [2]], {"a": 1}):
            assert from_wire(to_wire(value)) == value

    def test_tilde_map_escape_roundtrip(self):
        value = {"~kind": "node", "nested": {"~kind": "map"}}
        assert from_wire(to_wire(value)) == value


class TestRevertedTo:
    def test_rewinds_and_restores_uncommitted_work(self):
        graph = Graph()
        graph.run("CREATE (:A {v: 1})")
        store = graph.store
        mark = store.begin_transaction()
        graph.run("CREATE (:A {v: 2})")
        graph.run("MATCH (a:A {v: 1}) SET a.v = 10")
        with store.reverted_to(mark):
            values = sorted(
                graph.run("MATCH (x:A) RETURN x.v").values("x.v")
            )
            assert values == [1]
        # uncommitted work restored exactly
        values = sorted(
            graph.run("MATCH (x:A) RETURN x.v").values("x.v")
        )
        assert values == [2, 10]
        store.commit_transaction(mark)

    def test_rejects_future_mark(self):
        store = GraphStore()
        with pytest.raises(PersistenceError):
            with store.reverted_to(99):
                pass

    def test_writes_inside_revert_are_undone(self):
        graph = Graph()
        graph.run("CREATE (:A)")
        store = graph.store
        mark = store.begin_transaction()
        graph.run("CREATE (:A)")
        with store.reverted_to(mark):
            # a (buggy) write during a snapshot read must not leak
            graph.run("CREATE (:B)")
        assert store.node_count() == 2
        count = graph.run("MATCH (b:B) RETURN count(b) AS c")
        assert count.values("c") == [0]
        store.rollback_transaction(mark)


class TestGroupCommitter:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_immediate_return_for_durable_lsn(self, tmp_path):
        manager = PersistenceManager(tmp_path, fsync="off")
        manager.attach(GraphStore())
        committer = GroupCommitter(manager)

        async def scenario():
            await committer.wait_durable(0)  # nothing to wait for
            assert committer.batches == 0

        self._run(scenario())
        manager.close()

    def test_one_fsync_covers_many_waiters(self, tmp_path):
        graph = Graph(path=tmp_path, fsync="off")
        manager = graph.persistence
        committer = GroupCommitter(manager)

        async def writer(i: int) -> None:
            graph.run("CREATE (:N {i: $i})", {"i": i})
            await committer.wait_durable(manager.lsn)

        async def scenario():
            await asyncio.gather(*(writer(i) for i in range(10)))

        self._run(scenario())
        assert committer.synced_waiters == 10
        assert committer.durable_lsn == manager.lsn
        # batching happened: far fewer fsyncs than waiters
        assert committer.batches < 10
        assert committer.max_batch > 1
        graph.close()

    def test_stats_shape(self, tmp_path):
        manager = PersistenceManager(tmp_path, fsync="off")
        manager.attach(GraphStore())
        committer = GroupCommitter(manager)
        stats = committer.stats()
        assert set(stats) == {
            "batches",
            "synced_waiters",
            "max_batch",
            "durable_lsn",
            "pending_waiters",
        }
        manager.close()

    def test_waiters_released_in_lsn_order_semantics(self, tmp_path):
        graph = Graph(path=tmp_path, fsync="off")
        manager = graph.persistence
        committer = GroupCommitter(manager)
        released: list[int] = []

        async def writer(i: int) -> None:
            graph.run("CREATE (:N {i: $i})", {"i": i})
            lsn = manager.lsn
            await committer.wait_durable(lsn)
            assert committer.durable_lsn >= lsn
            released.append(i)

        async def scenario():
            await asyncio.gather(*(writer(i) for i in range(6)))

        self._run(scenario())
        assert sorted(released) == list(range(6))
        graph.close()
