"""StringPool interning semantics through the store's life cycle.

Satellite coverage for the columnar refactor: pooled label/type/key
strings must stay stable across checkpoint round-trips, survive
journal undo of the mutation that first interned them, and leave the
observable graph byte-identical through graph_json and CSV round
trips.
"""

import pytest

from repro.errors import EntityNotFoundError
from repro.graph.store import GraphStore
from repro.graph.strings import StringPool
from repro.io.csv_io import read_graph_csv, write_graph_csv
from repro.io.graph_json import dict_to_store, graph_to_dict
from repro.persistence.checkpoint import (
    load_checkpoint,
    restore_checkpoint,
    write_checkpoint,
)
from repro.testing.invariants import canonical_graph_json, check_invariants


def social_store() -> GraphStore:
    store = GraphStore()
    alice = store.create_node(["Person", "Admin"], {"name": "alice", "age": 31})
    bob = store.create_node(["Person"], {"name": "bob"})
    carol = store.create_node([], {"notes": ["x", 1, True]})
    store.create_relationship("KNOWS", alice, bob, {"since": 2019})
    store.create_relationship("KNOWS", bob, alice, {})
    store.create_relationship("FOLLOWS", bob, carol, {"w": 0.5})
    return store


class TestPoolBasics:
    def test_intern_is_stable_and_dense(self):
        pool = StringPool()
        assert pool.intern("Person") == 0
        assert pool.intern("KNOWS") == 1
        assert pool.intern("Person") == 0
        assert pool.text(0) == "Person"
        assert len(pool) == 2
        assert list(pool) == ["Person", "KNOWS"]
        assert pool.check() == []

    def test_id_of_never_allocates(self):
        pool = StringPool()
        assert pool.id_of("Ghost") is None
        assert len(pool) == 0
        pool.intern("Ghost")
        assert pool.id_of("Ghost") == 0

    def test_canon_returns_the_pooled_object(self):
        pool = StringPool()
        first = pool.canon("na" + "me")
        second = pool.canon("nam" + "e")
        assert first == "name"
        assert first is second

    def test_store_property_keys_share_one_object(self):
        store = GraphStore()
        a = store.create_node(["P"], {"k" + "ey": 1})
        b = store.create_node(["P"], {"ke" + "y": 2})
        (key_a,) = store.node_properties(a)
        (key_b,) = store.node_properties(b)
        assert key_a is key_b


class TestCheckpointRoundTrip:
    def test_pool_recovers_with_identical_graph(self, tmp_path):
        store = social_store()
        write_checkpoint(tmp_path, store, 17)
        payload = load_checkpoint(tmp_path)
        assert payload["lsn"] == 17
        restored = GraphStore()
        restore_checkpoint(restored, payload)
        assert canonical_graph_json(restored) == canonical_graph_json(store)
        check_invariants(restored)
        assert restored.string_pool.check() == []

    def test_restored_pool_reinterns_in_replay_order(self, tmp_path):
        store = social_store()
        write_checkpoint(tmp_path, store, 1)
        restored = GraphStore()
        restore_checkpoint(restored, load_checkpoint(tmp_path))
        # The mapping may differ; every live label/type/key must be
        # present, and pooled key objects must be shared again.
        for needed in ("Person", "Admin", "KNOWS", "FOLLOWS", "name"):
            assert needed in restored.string_pool
        name_keys = set()
        for node in restored.nodes():
            for key in restored.node_properties(node.id):
                if key == "name":
                    name_keys.add(id(key))
        assert len(name_keys) == 1

    def test_roundtrip_after_mutations_on_restored_store(self, tmp_path):
        store = social_store()
        write_checkpoint(tmp_path, store, 0)
        restored = GraphStore()
        restore_checkpoint(restored, load_checkpoint(tmp_path))
        node = restored.create_node(["Person"], {"name": "dave"})
        restored.set_node_property(node, "age", 20)
        check_invariants(restored)


class TestJournalUndo:
    def test_rollback_of_first_label_keeps_pool_and_tables_consistent(self):
        store = GraphStore()
        store.create_node(["Seed"], {})
        mark = store.mark()
        ghost = store.create_node(["Ghost", "Phantom"], {"k": 1})
        assert "Ghost" in store.string_pool
        store.rollback_to(mark)
        with pytest.raises(EntityNotFoundError):
            store.node_labels(ghost)
        # Pool ids are never freed -- the strings stay interned, the
        # labelset tables stay internally consistent, and nothing
        # references the rolled-back node.
        assert "Ghost" in store.string_pool
        assert "Phantom" in store.string_pool
        assert store.nodes_with_label("Ghost") == frozenset()
        check_invariants(store)

    def test_rollback_of_first_type_keeps_adjacency_clean(self):
        store = GraphStore()
        a = store.create_node([], {})
        b = store.create_node([], {})
        mark = store.mark()
        store.create_relationship("NEVER", a, b, {})
        store.rollback_to(mark)
        assert "NEVER" in store.string_pool
        assert store.adjacent_rel_ids(a) == []
        assert store.adjacent_rel_ids(b) == []
        assert store.degree(a) == 0
        check_invariants(store)

    def test_reinterning_after_rollback_reuses_the_old_id(self):
        store = GraphStore()
        a = store.create_node([], {})
        b = store.create_node([], {})
        mark = store.mark()
        store.create_relationship("EDGE", a, b, {})
        old_id = store.string_pool.id_of("EDGE")
        store.rollback_to(mark)
        rel = store.create_relationship("EDGE", a, b, {})
        assert store.string_pool.id_of("EDGE") == old_id
        assert store.adjacent_rel_ids(a, incoming=False) == [rel]
        check_invariants(store)


class TestSerializationRoundTrips:
    def test_graph_json_roundtrip_is_byte_identical(self):
        store = social_store()
        clone = dict_to_store(graph_to_dict(store))
        assert canonical_graph_json(clone) == canonical_graph_json(store)
        check_invariants(clone)

    def test_csv_roundtrip_is_byte_identical(self, tmp_path):
        store = social_store()
        nodes_path = tmp_path / "nodes.csv"
        rels_path = tmp_path / "rels.csv"
        write_graph_csv(store, nodes_path, rels_path)
        clone = read_graph_csv(nodes_path, rels_path)
        assert canonical_graph_json(clone) == canonical_graph_json(store)
        check_invariants(clone)

    def test_bulk_load_matches_statement_built_store(self, tmp_path):
        from repro.bulkload import iter_nodes_csv, iter_rels_csv, load_store

        store = social_store()
        nodes_path = tmp_path / "nodes.csv"
        rels_path = tmp_path / "rels.csv"
        write_graph_csv(store, nodes_path, rels_path)
        loaded = load_store(
            iter_nodes_csv(nodes_path), iter_rels_csv(rels_path)
        )
        assert canonical_graph_json(loaded) == canonical_graph_json(store)
        check_invariants(loaded)
