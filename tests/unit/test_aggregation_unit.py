"""Direct unit tests for AggregateAccumulator and aggregate detection."""

import math

import pytest

from repro.errors import CypherEvaluationError, CypherTypeError
from repro.parser import parse_expression
from repro.runtime.aggregation import (
    AggregateAccumulator,
    contains_aggregate,
    is_aggregate_call,
)


def feed(name, values, distinct=False, percentile=None):
    accumulator = AggregateAccumulator(name, distinct=distinct)
    for value in values:
        accumulator.add(value)
    return accumulator.result(percentile)


class TestAccumulators:
    def test_count_star_counts_everything(self):
        accumulator = AggregateAccumulator("count(*)")
        for value in (1, None, "x"):
            accumulator.add(value)
        assert accumulator.result() == 3

    def test_count_skips_nulls(self):
        assert feed("count", [1, None, 2]) == 2

    def test_count_distinct(self):
        assert feed("count", [1, 1.0, 2, None], distinct=True) == 2

    def test_sum_and_avg(self):
        assert feed("sum", [1, 2, 3]) == 6
        assert feed("avg", [1, 2, 3]) == 2.0
        assert feed("sum", []) == 0
        assert feed("avg", []) is None

    def test_sum_rejects_non_numbers(self):
        with pytest.raises(CypherTypeError):
            feed("sum", ["a"])

    def test_min_max_mixed_orderable(self):
        assert feed("min", [3, 1, 2]) == 1
        assert feed("max", [3, 1, 2]) == 3
        assert feed("min", []) is None
        # strings order before numbers in the global sort order
        assert feed("min", [1, "a"]) == "a"

    def test_collect_preserves_order_and_skips_nulls(self):
        assert feed("collect", [1, None, 2]) == [1, 2]

    def test_collect_distinct(self):
        assert feed("collect", [1, 1, 2], distinct=True) == [1, 2]

    def test_stdev(self):
        assert feed("stdev", [1]) == 0.0
        assert feed("stdev", []) is None
        sample = feed("stdev", [2, 4, 4, 4, 5, 5, 7, 9])
        population = feed("stdevp", [2, 4, 4, 4, 5, 5, 7, 9])
        assert population == pytest.approx(2.0)
        assert sample > population

    def test_percentiles(self):
        values = [1, 2, 3, 4]
        assert feed("percentiledisc", values, percentile=0.5) == 2
        assert feed("percentilecont", values, percentile=0.5) == 2.5
        assert feed("percentiledisc", values, percentile=1.0) == 4
        assert feed("percentiledisc", values, percentile=0.0) == 1
        assert feed("percentilecont", [7], percentile=0.3) == 7.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(CypherEvaluationError):
            feed("percentiledisc", [1], percentile=1.5)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(CypherEvaluationError):
            AggregateAccumulator("median")


class TestDetection:
    def test_is_aggregate_call(self):
        assert is_aggregate_call(parse_expression("count(*)"))
        assert is_aggregate_call(parse_expression("sum(x)"))
        assert not is_aggregate_call(parse_expression("size(x)"))

    def test_contains_aggregate_nested(self):
        assert contains_aggregate(parse_expression("1 + count(x) * 2"))
        assert contains_aggregate(
            parse_expression("coalesce(max(x), 0)")
        )
        assert not contains_aggregate(parse_expression("a + b"))

    def test_contains_aggregate_in_case(self):
        assert contains_aggregate(
            parse_expression("CASE WHEN count(*) > 0 THEN 1 ELSE 0 END")
        )
