"""Unit tests for the graph store: CRUD, journal, tombstones, indexes."""

import pytest

from repro.errors import (
    ConstraintViolationError,
    DanglingRelationshipError,
    DeletedEntityError,
    EntityNotFoundError,
)
from repro.graph.store import GraphStore


@pytest.fixture
def pair(store):
    """Two nodes connected by one relationship."""
    a = store.create_node(("User",), {"id": 1})
    b = store.create_node(("Product",), {"id": 2})
    r = store.create_relationship("ORDERED", a, b, {"qty": 3})
    return a, b, r


class TestCreation:
    def test_create_node_assigns_sequential_ids(self, store):
        assert store.create_node() == 0
        assert store.create_node() == 1

    def test_node_contents(self, store):
        node_id = store.create_node(("A", "B"), {"x": 1})
        assert store.node_labels(node_id) == frozenset({"A", "B"})
        assert store.node_properties(node_id) == {"x": 1}

    def test_relationship_contents(self, store, pair):
        a, b, r = pair
        assert store.rel_type(r) == "ORDERED"
        assert store.rel_source(r) == a
        assert store.rel_target(r) == b
        assert store.rel_properties(r) == {"qty": 3}

    def test_relationship_requires_type(self, store):
        a = store.create_node()
        with pytest.raises(ConstraintViolationError):
            store.create_relationship("", a, a)

    def test_relationship_requires_live_endpoints(self, store):
        a = store.create_node()
        with pytest.raises(EntityNotFoundError):
            store.create_relationship("T", a, 99)
        b = store.create_node()
        store.delete_node(b)
        with pytest.raises(EntityNotFoundError):
            store.create_relationship("T", a, b)

    def test_unknown_ids_raise(self, store):
        with pytest.raises(EntityNotFoundError):
            store.node_labels(7)
        with pytest.raises(EntityNotFoundError):
            store.rel_type(7)

    def test_self_loop_allowed(self, store):
        a = store.create_node()
        r = store.create_relationship("LOOP", a, a)
        assert store.degree(a) == 2  # out + in
        assert store.out_relationships(a) == {r}
        assert store.in_relationships(a) == {r}


class TestAdjacency:
    def test_out_in_sets(self, store, pair):
        a, b, r = pair
        assert store.out_relationships(a) == {r}
        assert store.in_relationships(b) == {r}
        assert store.in_relationships(a) == frozenset()
        assert store.degree(a) == 1

    def test_counts(self, store, pair):
        assert store.node_count() == 2
        assert store.relationship_count() == 1

    def test_iteration_is_id_ordered(self, store):
        ids = [store.create_node() for __ in range(5)]
        assert [n.id for n in store.nodes()] == ids


class TestDeletion:
    def test_strict_delete_refuses_attached(self, store, pair):
        a, __, __ = pair
        with pytest.raises(DanglingRelationshipError):
            store.delete_node(a)

    def test_delete_after_relationship_removed(self, store, pair):
        a, __, r = pair
        store.delete_relationship(r)
        store.delete_node(a)
        assert store.node_is_deleted(a)
        assert store.node_count() == 1

    def test_dangling_delete_leaves_relationship(self, store, pair):
        a, __, r = pair
        store.delete_node(a, allow_dangling=True)
        assert store.node_is_deleted(a)
        assert not store.rel_is_deleted(r)
        snapshot = store.snapshot()
        assert snapshot.has_dangling()

    def test_deleted_node_reports_empty(self, store, pair):
        a, __, r = pair
        store.delete_relationship(r)
        store.delete_node(a)
        assert store.node_labels(a) == frozenset()
        assert store.node_properties(a) == {}

    def test_delete_is_idempotent(self, store, pair):
        __, __, r = pair
        store.delete_relationship(r)
        store.delete_relationship(r)
        assert store.relationship_count() == 0

    def test_writes_to_deleted_raise(self, store, pair):
        a, __, r = pair
        store.delete_relationship(r)
        store.delete_node(a)
        with pytest.raises(DeletedEntityError):
            store.set_node_property(a, "x", 1)
        with pytest.raises(DeletedEntityError):
            store.add_label(a, "L")
        with pytest.raises(DeletedEntityError):
            store.set_rel_property(r, "x", 1)


class TestProperties:
    def test_set_and_remove(self, store):
        n = store.create_node()
        store.set_node_property(n, "x", 10)
        assert store.node_properties(n) == {"x": 10}
        store.set_node_property(n, "x", None)
        assert store.node_properties(n) == {}

    def test_labels_add_remove(self, store):
        n = store.create_node(("A",))
        store.add_label(n, "B")
        store.remove_label(n, "A")
        assert store.node_labels(n) == frozenset({"B"})
        assert store.nodes_with_label("A") == frozenset()
        assert store.nodes_with_label("B") == {n}


class TestJournal:
    def test_rollback_undoes_everything(self, store):
        a = store.create_node(("A",), {"x": 1})
        mark = store.mark()
        b = store.create_node(("B",))
        r = store.create_relationship("T", a, b)
        store.set_node_property(a, "x", 2)
        store.add_label(a, "Z")
        store.delete_relationship(r)
        store.rollback_to(mark)
        assert store.node_count() == 1
        assert store.node_properties(a) == {"x": 1}
        assert store.node_labels(a) == frozenset({"A"})
        with pytest.raises(EntityNotFoundError):
            store.node_labels(b)

    def test_rollback_restores_deleted_entities(self, store):
        a = store.create_node(("A",), {"x": 1})
        b = store.create_node()
        r = store.create_relationship("T", a, b)
        mark = store.mark()
        store.delete_relationship(r)
        store.delete_node(a)
        store.rollback_to(mark)
        assert not store.node_is_deleted(a)
        assert not store.rel_is_deleted(r)
        assert store.nodes_with_label("A") == {a}
        assert store.out_relationships(a) == {r}

    def test_commit_trims_journal_without_changes(self, store):
        mark = store.mark()
        store.create_node()
        store.commit_to(mark)
        assert store.journal_length() == mark
        assert store.node_count() == 1

    def test_nested_marks(self, store):
        outer = store.mark()
        store.create_node()
        inner = store.mark()
        store.create_node()
        store.rollback_to(inner)
        assert store.node_count() == 1
        store.rollback_to(outer)
        assert store.node_count() == 0

    def test_rollback_of_label_and_property_changes(self, store):
        n = store.create_node(("A",), {"x": 1})
        mark = store.mark()
        store.remove_label(n, "A")
        store.set_node_property(n, "x", None)
        store.set_node_property(n, "y", 5)
        store.rollback_to(mark)
        assert store.node_labels(n) == frozenset({"A"})
        assert store.node_properties(n) == {"x": 1}


class TestPropertyIndex:
    def test_index_backfills_existing_nodes(self, store):
        a = store.create_node(("User",), {"id": 1})
        b = store.create_node(("User",), {"id": 2})
        index = store.create_index("User", "id")
        assert index.lookup(1) == {a}
        assert index.lookup(2) == {b}

    def test_index_tracks_mutations(self, store):
        index = store.create_index("User", "id")
        n = store.create_node(("User",), {"id": 1})
        assert index.lookup(1) == {n}
        store.set_node_property(n, "id", 9)
        assert index.lookup(1) == frozenset()
        assert index.lookup(9) == {n}
        store.remove_label(n, "User")
        assert index.lookup(9) == frozenset()
        store.add_label(n, "User")
        assert index.lookup(9) == {n}

    def test_index_survives_rollback(self, store):
        index = store.create_index("User", "id")
        n = store.create_node(("User",), {"id": 1})
        mark = store.mark()
        store.set_node_property(n, "id", 2)
        store.rollback_to(mark)
        assert index.lookup(1) == {n}
        assert index.lookup(2) == frozenset()

    def test_numeric_equivalence_in_lookup(self, store):
        index = store.create_index("User", "id")
        n = store.create_node(("User",), {"id": 1})
        assert index.lookup(1.0) == {n}

    def test_deleted_node_leaves_index(self, store):
        index = store.create_index("User", "id")
        n = store.create_node(("User",), {"id": 1})
        store.delete_node(n)
        assert index.lookup(1) == frozenset()

    def test_drop_index(self, store):
        store.create_index("User", "id")
        store.drop_index("User", "id")
        assert store.property_index("User", "id") is None


class TestSnapshotsAndCopies:
    def test_snapshot_excludes_tombstones(self, store, pair):
        a, b, r = pair
        store.delete_relationship(r)
        store.delete_node(a)
        snapshot = store.snapshot()
        assert snapshot.nodes == {b}
        assert snapshot.relationships == frozenset()

    def test_snapshot_without_dangling(self, store, pair):
        a, __, r = pair
        store.delete_node(a, allow_dangling=True)
        assert store.snapshot().size() == 1
        assert store.snapshot(include_dangling=False).size() == 0

    def test_copy_is_independent(self, store, pair):
        clone = store.copy()
        store.create_node()
        assert clone.node_count() == 2
        assert store.node_count() == 3

    def test_load_snapshot_round_trip(self, store, pair):
        from repro.graph.comparison import isomorphic

        snapshot = store.snapshot()
        other = GraphStore()
        other.load_snapshot(snapshot)
        assert isomorphic(other.snapshot(), snapshot)


class TestTypedAdjacency:
    def test_typed_lookup(self, store):
        a = store.create_node()
        b = store.create_node()
        t = store.create_relationship("T", a, b)
        s = store.create_relationship("S", a, b)
        assert store.out_relationships_of_types(a, ("T",)) == {t}
        assert store.out_relationships_of_types(a, ("T", "S")) == {t, s}
        assert store.in_relationships_of_types(b, ("S",)) == {s}
        assert store.out_relationships_of_types(a, ("X",)) == frozenset()

    def test_typed_lookup_tracks_deletion(self, store):
        a = store.create_node()
        b = store.create_node()
        t = store.create_relationship("T", a, b)
        store.delete_relationship(t)
        assert store.out_relationships_of_types(a, ("T",)) == frozenset()

    def test_typed_lookup_tracks_rollback(self, store):
        a = store.create_node()
        b = store.create_node()
        t = store.create_relationship("T", a, b)
        mark = store.mark()
        store.delete_relationship(t)
        store.rollback_to(mark)
        assert store.out_relationships_of_types(a, ("T",)) == {t}
        mark = store.mark()
        s = store.create_relationship("S", a, b)
        store.rollback_to(mark)
        assert store.out_relationships_of_types(a, ("S",)) == frozenset()

    def test_typed_agrees_with_plain_scan(self, store):
        a = store.create_node()
        b = store.create_node()
        for i in range(6):
            store.create_relationship("T" if i % 2 else "S", a, b)
        for rel_type in ("T", "S"):
            expected = frozenset(
                r
                for r in store.out_relationships(a)
                if store.rel_type(r) == rel_type
            )
            assert store.out_relationships_of_types(a, (rel_type,)) == expected
