"""Unit tests for static scope checking."""

import pytest

from repro import Dialect, Graph
from repro.errors import CypherSemanticError, UnknownVariableError


@pytest.fixture
def g():
    return Graph(Dialect.REVISED)


class TestTyposCaughtEagerly:
    def test_typo_in_return_with_empty_match(self, g):
        # No :User nodes exist, so the runtime would never evaluate the
        # RETURN; the static check still catches the typo.
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (user:User) RETURN usr.name AS n")

    def test_typo_in_where(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (n) WHERE m.x = 1 RETURN n")

    def test_typo_in_set(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (n) SET m.x = 1")

    def test_typo_in_delete(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (n) DELETE m")

    def test_typo_in_order_by(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (n) RETURN n.x AS x ORDER BY y")

    def test_typo_inside_foreach(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("FOREACH (x IN [1] | CREATE (:N {v: y}))")

    def test_typo_in_merge_property(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("MERGE ALL (:User {id: cid})")


class TestScopeNarrowing:
    def test_with_drops_unprojected_variables(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (n)-[r]->(m) WITH n RETURN r")

    def test_with_star_keeps_everything(self, g):
        g.run("CREATE (:A)-[:T]->(:B)")
        result = g.run("MATCH (n)-[r]->(m) WITH * RETURN n, r, m")
        assert len(result) == 1

    def test_order_by_in_with_may_use_old_scope(self, g):
        g.run("CREATE (:A {v: 1})")
        g.run("MATCH (n) WITH n.v AS v ORDER BY n.v RETURN v")

    def test_where_in_with_sees_only_new_scope(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (n) WITH n.v AS v WHERE n.v > 1 RETURN v")

    def test_return_ends_scope_per_branch(self, g):
        # Each UNION branch checks independently.
        with pytest.raises(UnknownVariableError):
            g.run("MATCH (n) RETURN n UNION MATCH (m) RETURN n")


class TestRebinding:
    def test_unwind_rebinding_rejected(self, g):
        with pytest.raises(CypherSemanticError):
            g.run("UNWIND [1] AS x UNWIND [2] AS x RETURN x")

    def test_foreach_rebinding_rejected(self, g):
        with pytest.raises(CypherSemanticError):
            g.run("UNWIND [1] AS x FOREACH (x IN [2] | CREATE (:N))")

    def test_path_variable_rebinding_rejected(self, g):
        with pytest.raises(CypherSemanticError):
            g.run("MATCH p = (a)-[:T]->(b) MATCH p = (c)-[:S]->(d) RETURN p")

    def test_foreach_variable_scoped_to_body(self, g):
        with pytest.raises(UnknownVariableError):
            g.run("FOREACH (x IN [1] | CREATE (:N)) CREATE (:M {v: x})")


class TestLegitimatePatternsStillPass:
    def test_bound_variable_reuse_in_pattern(self, g):
        g.run("CREATE (:A)-[:T]->(:B)")
        g.run("MATCH (a:A) MATCH (a)-[:T]->(b) RETURN b")

    def test_existential_pattern_predicate(self, g):
        g.run("CREATE (:A)-[:T]->(:B)")
        # `m` is unbound in the predicate: existential, not an error.
        result = g.run("MATCH (n:A) WHERE (n)-[:T]->(m) RETURN n")
        assert len(result) == 1

    def test_comprehension_locals(self, g):
        g.run("RETURN [x IN [1, 2] WHERE x > 1 | x] AS xs")

    def test_quantifier_locals(self, g):
        g.run("RETURN all(x IN [1] WHERE x = 1) AS ok")

    def test_initial_table_columns_are_in_scope(self, g):
        from repro import DrivingTable

        table = DrivingTable(("cid",), [{"cid": 1}])
        result = g.run("RETURN cid * 2 AS x", table=table)
        assert result.values("x") == [2]

    def test_parameters_are_not_variables(self, g):
        result = g.run("RETURN $p AS x", p=1)
        assert result.values("x") == [1]

    def test_merge_on_create_sees_pattern_variables(self):
        g = Graph(Dialect.CYPHER9)
        g.run("MERGE (n:User {id: 1}) ON CREATE SET n.new = true")

    def test_explain_does_not_scope_check(self, g):
        # explain() describes rather than validates; it must not raise.
        g.explain("MATCH (n) RETURN typo_var")
