"""Unit tests for RETURN/WITH projection, aggregation, ordering."""

import pytest

from repro.errors import CypherEvaluationError, CypherSemanticError
from repro import Graph


@pytest.fixture
def numbers(revised_graph):
    revised_graph.run(
        "UNWIND [1, 2, 3, 4] AS n CREATE (:Num {v: n, parity: n % 2})"
    )
    return revised_graph


class TestProjection:
    def test_aliases(self, numbers):
        result = numbers.run("MATCH (x:Num) RETURN x.v AS value ORDER BY value")
        assert result.columns == ("value",)
        assert result.values("value") == [1, 2, 3, 4]

    def test_generated_column_names(self, numbers):
        result = numbers.run("MATCH (x:Num) RETURN x.v ORDER BY x.v LIMIT 1")
        assert result.columns == ("x.v",)

    def test_return_star(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) WITH x.v AS v, x.parity AS p RETURN * ORDER BY v LIMIT 1"
        )
        assert set(result.columns) == {"v", "p"}

    def test_return_star_plus_items(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) WITH x.v AS v RETURN *, v * 10 AS big ORDER BY v LIMIT 1"
        )
        assert result.records[0] == {"v": 1, "big": 10}

    def test_duplicate_column_rejected(self, numbers):
        with pytest.raises(CypherSemanticError):
            numbers.run("MATCH (x:Num) RETURN x.v AS a, x.parity AS a")

    def test_with_requires_alias_for_expressions(self, numbers):
        with pytest.raises(CypherSemanticError):
            numbers.run("MATCH (x:Num) WITH x.v RETURN 1 AS one")

    def test_with_passes_variables(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) WITH x WHERE x.v > 2 RETURN count(*) AS c"
        )
        assert result.records == [{"c": 2}]


class TestDistinctOrderSkipLimit:
    def test_distinct(self, numbers):
        result = numbers.run("MATCH (x:Num) RETURN DISTINCT x.parity AS p")
        assert sorted(result.values("p")) == [0, 1]

    def test_order_desc(self, numbers):
        result = numbers.run("MATCH (x:Num) RETURN x.v AS v ORDER BY v DESC")
        assert result.values("v") == [4, 3, 2, 1]

    def test_order_by_multiple_keys(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) RETURN x.parity AS p, x.v AS v ORDER BY p DESC, v"
        )
        assert result.records[0] == {"p": 1, "v": 1}
        assert result.records[-1] == {"p": 0, "v": 4}

    def test_order_by_input_variable(self, numbers):
        # ORDER BY can reference x even though only x.v is projected.
        result = numbers.run("MATCH (x:Num) RETURN x.v AS v ORDER BY x.v DESC")
        assert result.values("v") == [4, 3, 2, 1]

    def test_skip_limit(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) RETURN x.v AS v ORDER BY v SKIP 1 LIMIT 2"
        )
        assert result.values("v") == [2, 3]

    def test_negative_skip_rejected(self, numbers):
        with pytest.raises(CypherEvaluationError):
            numbers.run("MATCH (x:Num) RETURN x.v AS v SKIP -1")

    def test_nulls_sort_last(self, revised_graph):
        revised_graph.run("CREATE (:X {v: 2}), (:X), (:X {v: 1})")
        result = revised_graph.run("MATCH (x:X) RETURN x.v AS v ORDER BY v")
        assert result.values("v") == [1, 2, None]


class TestAggregation:
    def test_count_star_and_column(self, numbers):
        result = numbers.run("MATCH (x:Num) RETURN count(*) AS c")
        assert result.records == [{"c": 4}]

    def test_count_skips_nulls(self, revised_graph):
        revised_graph.run("CREATE (:X {v: 1}), (:X)")
        result = revised_graph.run(
            "MATCH (x:X) RETURN count(x.v) AS c, count(*) AS all"
        )
        assert result.records == [{"c": 1, "all": 2}]

    def test_implicit_grouping(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) RETURN x.parity AS p, sum(x.v) AS total ORDER BY p"
        )
        assert result.records == [
            {"p": 0, "total": 6},
            {"p": 1, "total": 4},
        ]

    def test_sum_avg_min_max(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) "
            "RETURN sum(x.v) AS s, avg(x.v) AS a, min(x.v) AS lo, max(x.v) AS hi"
        )
        assert result.records == [{"s": 10, "a": 2.5, "lo": 1, "hi": 4}]

    def test_collect(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) WITH x.v AS v ORDER BY v RETURN collect(v) AS vs"
        )
        assert result.records == [{"vs": [1, 2, 3, 4]}]

    def test_collect_distinct(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) RETURN collect(DISTINCT x.parity) AS ps"
        )
        assert sorted(result.records[0]["ps"]) == [0, 1]

    def test_count_distinct(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) RETURN count(DISTINCT x.parity) AS c"
        )
        assert result.records == [{"c": 2}]

    def test_aggregate_inside_expression(self, numbers):
        result = numbers.run("MATCH (x:Num) RETURN count(*) + 1 AS c")
        assert result.records == [{"c": 5}]

    def test_empty_group_without_keys_yields_one_row(self, revised_graph):
        result = revised_graph.run(
            "MATCH (x:Missing) RETURN count(*) AS c, collect(x) AS xs, sum(x.v) AS s"
        )
        assert result.records == [{"c": 0, "xs": [], "s": 0}]

    def test_empty_group_with_keys_yields_no_rows(self, revised_graph):
        result = revised_graph.run(
            "MATCH (x:Missing) RETURN x.v AS v, count(*) AS c"
        )
        assert result.records == []

    def test_avg_of_empty_is_null(self, revised_graph):
        result = revised_graph.run("MATCH (x:Missing) RETURN avg(x.v) AS a")
        assert result.records == [{"a": None}]

    def test_stdev(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) RETURN stDev(x.v) AS s, stDevP(x.v) AS p"
        )
        assert result.records[0]["s"] == pytest.approx(1.2909944, rel=1e-6)
        assert result.records[0]["p"] == pytest.approx(1.1180340, rel=1e-6)

    def test_percentiles(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) RETURN percentileDisc(x.v, 0.5) AS d, "
            "percentileCont(x.v, 0.5) AS c"
        )
        assert result.records == [{"d": 2, "c": 2.5}]

    def test_null_grouping_key_groups_together(self, revised_graph):
        revised_graph.run("CREATE (:X), (:X), (:X {g: 1})")
        result = revised_graph.run(
            "MATCH (x:X) RETURN x.g AS g, count(*) AS c ORDER BY g"
        )
        assert result.records == [{"g": 1, "c": 1}, {"g": None, "c": 2}]


class TestWithPipelines:
    def test_with_aggregation_then_filter(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) "
            "WITH x.parity AS p, count(*) AS c WHERE c > 1 "
            "RETURN p, c ORDER BY p"
        )
        assert result.records == [{"p": 0, "c": 2}, {"p": 1, "c": 2}]

    def test_with_shadows_previous_scope(self, numbers):
        with pytest.raises(Exception):
            numbers.run("MATCH (x:Num) WITH x.v AS v RETURN x")

    def test_with_order_limit(self, numbers):
        result = numbers.run(
            "MATCH (x:Num) WITH x ORDER BY x.v DESC LIMIT 2 "
            "RETURN collect(x.v) AS top"
        )
        assert sorted(result.records[0]["top"]) == [3, 4]
