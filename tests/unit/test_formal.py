"""Unit tests for the formal reference semantics (Section 8)."""

import pytest

from repro import Dialect
from repro.errors import DanglingRelationshipError, PropertyConflictError
from repro.formal import semantics as F
from repro.parser import parse


def pattern_of(source):
    statement = parse(source, Dialect.REVISED, extended_merge=True)
    return statement.branches()[0].clauses[0].pattern


def small_graph():
    builder = F._Builder()
    builder.nodes.update({0, 1})
    builder.labels[0] = frozenset({"User"})
    builder.labels[1] = frozenset({"Product"})
    builder.node_props[0] = {"id": 1}
    builder.node_props[1] = {"id": 2}
    builder.rels.add(0)
    builder.source[0] = 0
    builder.target[0] = 1
    builder.types[0] = "ORDERED"
    builder.rel_props[0] = {}
    return builder.snapshot()


class TestMatchRelation:
    def test_match_simple_pattern(self):
        graph = small_graph()
        pattern = pattern_of("MERGE ALL (u:User)-[:ORDERED]->(p:Product)")
        rows = list(F.match_rows(graph, pattern, {}))
        assert rows == [{"u": ("node", 0), "p": ("node", 1)}]

    def test_match_respects_bound_variables(self):
        graph = small_graph()
        pattern = pattern_of("MERGE ALL (u)-[:ORDERED]->(p)")
        assert list(F.match_rows(graph, pattern, {"u": F.node_tag(1)})) == []
        rows = list(F.match_rows(graph, pattern, {"u": F.node_tag(0)}))
        assert len(rows) == 1

    def test_null_property_never_matches(self):
        graph = small_graph()
        pattern = pattern_of("MERGE ALL (u:User {id: x})")
        assert list(F.match_rows(graph, pattern, {"x": None})) == []

    def test_trail_uniqueness(self):
        graph = small_graph()
        pattern = pattern_of(
            "MERGE ALL (a)-[:ORDERED]->(b), (c)-[:ORDERED]->(d)"
        )
        assert list(F.match_rows(graph, pattern, {})) == []


class TestCreate:
    def test_creates_per_row(self):
        pattern = pattern_of("MERGE ALL (:N {v: x})")
        outcome = F.create(F.empty_graph(), pattern, ({"x": 1}, {"x": 2}))
        assert outcome.graph.order() == 2
        assert len(outcome.created_nodes) == 2

    def test_binds_variables_in_table(self):
        pattern = pattern_of("MERGE ALL (n:N)")
        outcome = F.create(F.empty_graph(), pattern, ({},))
        assert outcome.table[0]["n"][0] == "node"

    def test_null_property_absent(self):
        pattern = pattern_of("MERGE ALL (:N {v: x})")
        outcome = F.create(F.empty_graph(), pattern, ({"x": None},))
        node_id = next(iter(outcome.graph.nodes))
        assert outcome.graph.node_properties[node_id] == {}

    def test_direction(self):
        pattern = pattern_of("MERGE ALL (:A)<-[:T]-(:B)")
        outcome = F.create(F.empty_graph(), pattern, ({},))
        rel = next(iter(outcome.graph.relationships))
        source = outcome.graph.source[rel]
        assert outcome.graph.labels[source] == frozenset({"B"})


class TestMergeAll:
    def test_matching_rows_do_not_create(self):
        graph = small_graph()
        pattern = pattern_of("MERGE ALL (u:User)-[:ORDERED]->(p:Product)")
        outcome = F.merge_all(graph, pattern, ({},))
        assert outcome.graph.order() == graph.order()
        assert len(outcome.table) == 1

    def test_failing_rows_create(self):
        graph = small_graph()
        pattern = pattern_of("MERGE ALL (u:User {id: 99})")
        outcome = F.merge_all(graph, pattern, ({},))
        assert outcome.graph.order() == 3


class TestCollapseDefinitions:
    def test_original_entities_never_collapse(self):
        graph = small_graph()
        pattern = pattern_of("MERGE ALL (:User {id: 1})-[:X]->(:Q)")
        outcome = F.merge_same(graph, pattern, ({},))
        # A new User{id:1} node is created (pattern fails due to :X) and
        # must NOT merge with the existing one.
        users = [
            n
            for n in outcome.graph.nodes
            if outcome.graph.labels.get(n) == frozenset({"User"})
        ]
        assert len(users) == 2

    def test_quotient_retags_table(self):
        pattern = pattern_of("MERGE ALL (n:N {v: 1})")
        outcome = F.merge_same(F.empty_graph(), pattern, ({}, {}))
        tags = {row["n"] for row in outcome.table}
        assert len(tags) == 1

    def test_self_loop_from_collapse(self):
        pattern = pattern_of("MERGE ALL (:N)-[:T]->(:N)")
        outcome = F.merge_same(F.empty_graph(), pattern, ({},))
        assert outcome.graph.order() == 1
        rel = next(iter(outcome.graph.relationships))
        assert outcome.graph.source[rel] == outcome.graph.target[rel]

    def test_weak_collapse_respects_positions(self):
        pattern = pattern_of("MERGE ALL (:N)-[:T]->(:N)")
        outcome = F.merge_variant(
            F.empty_graph(), pattern, ({},), "weak_collapse"
        )
        assert outcome.graph.order() == 2


class TestFormalSetDelete:
    def test_set_conflict(self):
        graph = small_graph()
        with pytest.raises(PropertyConflictError):
            F.set_properties(
                graph,
                (
                    (F.node_tag(0), "id", 7),
                    (F.node_tag(0), "id", 8),
                ),
            )

    def test_set_applies_all_at_once(self):
        graph = small_graph()
        result = F.set_properties(
            graph,
            (
                (F.node_tag(0), "id", 2),
                (F.node_tag(1), "id", 1),
            ),
        )
        assert result.node_properties[0]["id"] == 2
        assert result.node_properties[1]["id"] == 1

    def test_set_null_removes(self):
        graph = small_graph()
        result = F.set_properties(graph, ((F.node_tag(0), "id", None),))
        assert "id" not in result.node_properties[0]

    def test_strict_delete_raises_on_dangling(self):
        graph = small_graph()
        with pytest.raises(DanglingRelationshipError):
            F.delete_entities(graph, frozenset({0}), frozenset())

    def test_delete_with_relationship(self):
        graph = small_graph()
        result = F.delete_entities(graph, frozenset({0}), frozenset({0}))
        assert result.nodes == frozenset({1})
        assert result.relationships == frozenset()

    def test_detach_delete(self):
        graph = small_graph()
        result = F.delete_entities(
            graph, frozenset({0}), frozenset(), detach=True
        )
        assert result.relationships == frozenset()


class TestFormalRemove:
    def test_remove_label_and_property(self):
        graph = small_graph()
        result = F.remove_items(
            graph,
            label_removals=((0, "User"),),
            property_removals=(((("node", 0)), "id"),),
        )
        assert result.labels[0] == frozenset()
        assert "id" not in result.node_properties[0]

    def test_remove_is_idempotent(self):
        graph = small_graph()
        once = F.remove_items(graph, label_removals=((0, "User"),))
        twice = F.remove_items(once, label_removals=((0, "User"),))
        assert once == twice

    def test_remove_missing_is_noop(self):
        graph = small_graph()
        result = F.remove_items(
            graph, property_removals=((("node", 1), "nope"),)
        )
        assert result.node_properties[1] == graph.node_properties[1]

    def test_engine_remove_agrees(self):
        from repro import Dialect, DrivingTable, Graph
        from repro.graph.comparison import isomorphic

        graph = Graph(Dialect.REVISED)
        node = graph.create_node("User", id=1)
        other = graph.create_node("Product", id=2)
        graph.create_relationship(node, "ORDERED", other)
        table = DrivingTable(("n",), [{"n": node}])
        graph.run("REMOVE n:User, n.id", table=table)
        formal = F.remove_items(
            small_graph(),
            label_removals=((0, "User"),),
            property_removals=((("node", 0), "id"),),
        )
        assert isomorphic(graph.snapshot(), formal)
