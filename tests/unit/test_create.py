"""Unit tests for the CREATE clause (both dialects share it)."""

import pytest

from repro.errors import CypherSemanticError, CypherTypeError


class TestCreateNodes:
    def test_create_single_node(self, revised_graph):
        result = revised_graph.run("CREATE (n:User {id: 1})")
        assert result.counters.nodes_created == 1
        node = revised_graph.nodes()[0]
        assert node.labels == frozenset({"User"})
        assert node.get("id") == 1

    def test_create_per_record(self, revised_graph):
        revised_graph.run("UNWIND [1, 2, 3] AS i CREATE (:N {v: i})")
        assert revised_graph.node_count() == 3

    def test_null_property_is_absent(self, revised_graph):
        revised_graph.run("CREATE (n:N {a: 1, b: null})")
        node = revised_graph.nodes()[0]
        assert dict(node.properties) == {"a": 1}

    def test_property_expressions_evaluated_per_record(self, revised_graph):
        revised_graph.run("UNWIND [1, 2] AS i CREATE (:N {v: i * 10})")
        values = sorted(n.get("v") for n in revised_graph.nodes())
        assert values == [10, 20]

    def test_create_binds_variable_for_later_clauses(self, revised_graph):
        result = revised_graph.run("CREATE (n:N {v: 5}) RETURN n.v AS v")
        assert result.records == [{"v": 5}]

    def test_create_multiple_paths(self, revised_graph):
        revised_graph.run("CREATE (a:A), (b:B), (a)-[:T]->(b)")
        assert revised_graph.node_count() == 2
        assert revised_graph.relationship_count() == 1


class TestCreateRelationships:
    def test_create_path(self, revised_graph):
        revised_graph.run("CREATE (:A)-[:T {w: 1}]->(:B)<-[:S]-(:C)")
        assert revised_graph.node_count() == 3
        rels = revised_graph.relationships()
        assert sorted(r.type for r in rels) == ["S", "T"]

    def test_direction_is_respected(self, revised_graph):
        revised_graph.run("CREATE (a:A)<-[:T]-(b:B)")
        rel = revised_graph.relationships()[0]
        assert rel.start.has_label("B")
        assert rel.end.has_label("A")

    def test_create_reuses_bound_node(self, revised_graph):
        revised_graph.run("CREATE (:User {id: 1})")
        revised_graph.run(
            "MATCH (u:User {id: 1}) CREATE (u)-[:ORDERED]->(:Product)"
        )
        assert revised_graph.node_count() == 2
        rel = revised_graph.relationships()[0]
        assert rel.start.has_label("User")

    def test_bound_node_with_labels_rejected(self, revised_graph):
        revised_graph.run("CREATE (:User {id: 1})")
        with pytest.raises(CypherSemanticError):
            revised_graph.run("MATCH (u:User) CREATE (u:Admin)-[:T]->(:X)")

    def test_bound_relationship_variable_rejected(self, revised_graph):
        revised_graph.run("CREATE (:A)-[:T]->(:B)")
        with pytest.raises(CypherSemanticError):
            revised_graph.run("MATCH ()-[r:T]->() CREATE (:X)-[r:T]->(:Y)")

    def test_variable_reused_within_pattern(self, revised_graph):
        revised_graph.run("CREATE (a:A), (a)-[:T]->(b:B), (b)-[:S]->(a)")
        assert revised_graph.node_count() == 2
        assert revised_graph.relationship_count() == 2

    def test_bound_variable_must_be_node(self, revised_graph):
        with pytest.raises(CypherTypeError):
            revised_graph.run("UNWIND [1] AS x CREATE (x)-[:T]->(:B)")

    def test_named_path_in_create_rejected(self, revised_graph):
        with pytest.raises(CypherSemanticError):
            revised_graph.run("CREATE p = (:A)-[:T]->(:B)")


class TestCreateCounters:
    def test_counters(self, revised_graph):
        result = revised_graph.run("CREATE (:A)-[:T]->(:B)")
        assert result.counters.nodes_created == 2
        assert result.counters.relationships_created == 1
        assert result.counters.contains_updates

    def test_empty_driving_table_creates_nothing(self, revised_graph):
        result = revised_graph.run("MATCH (missing:Nope) CREATE (:N)")
        assert result.counters.nodes_created == 0
