"""Unit tests for the revised MERGE (all five semantics)."""

import pytest

from repro import Dialect, DrivingTable, Graph, MergeSemantics
from repro.core.merge import merge
from repro.parser import parse
from repro.runtime.context import EvalContext


def pattern_of(source):
    statement = parse(source, Dialect.REVISED, extended_merge=True)
    return statement.branches()[0].clauses[0].pattern


def run_merge(graph, pattern_source, rows, semantics, columns=None):
    table = DrivingTable(columns or tuple(rows[0]), rows)
    ctx = EvalContext(store=graph.store)
    return merge(ctx, pattern_of("MERGE ALL " + pattern_source), table, semantics)


class TestMergeAllReadPhase:
    def test_matching_rows_do_not_create(self, revised_graph):
        revised_graph.run("CREATE (:User {id: 1})")
        result = revised_graph.run(
            "UNWIND [1] AS uid MERGE ALL (u:User {id: uid}) RETURN u.id AS id"
        )
        assert revised_graph.node_count() == 1
        assert result.values("id") == [1]

    def test_failing_rows_create(self, revised_graph):
        revised_graph.run(
            "UNWIND [1, 2] AS uid MERGE ALL (u:User {id: uid})"
        )
        assert revised_graph.node_count() == 2

    def test_row_with_multiple_matches_multiplies(self, revised_graph):
        revised_graph.run("CREATE (:User {id: 1}), (:User {id: 1})")
        result = revised_graph.run(
            "UNWIND [1] AS uid MERGE ALL (u:User {id: uid}) RETURN u"
        )
        assert len(result) == 2

    def test_no_read_own_writes(self, revised_graph):
        # Two identical rows: both fail against the input graph, so the
        # ATOMIC semantics creates two copies (never one matching the
        # other's creation).
        revised_graph.run(
            "UNWIND [1, 1] AS uid MERGE ALL (u:User {id: uid})"
        )
        assert revised_graph.node_count() == 2

    def test_duplicate_row_multiplicity_preserved(self, revised_graph):
        result = revised_graph.run(
            "UNWIND [1, 1] AS uid MERGE ALL (u:User {id: uid}) RETURN u.id AS i"
        )
        assert result.values("i") == [1, 1]

    def test_merge_same_deduplicates_identical_rows(self, revised_graph):
        revised_graph.run(
            "UNWIND [1, 1] AS uid MERGE SAME (u:User {id: uid})"
        )
        assert revised_graph.node_count() == 1

    def test_statement_level_counters(self, revised_graph):
        result = revised_graph.run(
            "UNWIND [1, 2] AS uid MERGE SAME (:User {id: uid})"
        )
        assert result.counters.nodes_created == 2

    def test_pattern_tuple(self, revised_graph):
        revised_graph.run("MERGE ALL (:A {x: 1}), (:B {y: 2})")
        labels = sorted(
            "".join(node.labels) for node in revised_graph.nodes()
        )
        assert labels == ["A", "B"]

    def test_merge_binds_new_variables(self, revised_graph):
        result = revised_graph.run(
            "MERGE ALL (u:User {id: 7}) RETURN u.id AS id"
        )
        assert result.values("id") == [7]


class TestVariantSeparation:
    """Driving-table shapes that tell all five semantics apart."""

    ROWS = [
        {"cid": 1, "pid": 10, "noise": "a"},
        {"cid": 1, "pid": 10, "noise": "b"},  # duplicate pair, new noise
        {"cid": 2, "pid": 10, "noise": "c"},
    ]
    PATTERN = "(:U {id: cid})-[:R]->(:P {id: pid})"

    def counts(self, semantics):
        graph = Graph(Dialect.REVISED)
        run_merge(graph, self.PATTERN, self.ROWS, semantics)
        snapshot = graph.snapshot()
        return snapshot.order(), snapshot.size()

    def test_atomic_ignores_nothing(self):
        assert self.counts(MergeSemantics.ATOMIC) == (6, 3)

    def test_grouping_ignores_noise_column(self):
        assert self.counts(MergeSemantics.GROUPING) == (4, 2)

    def test_weak_collapse_collapses_within_position(self):
        # The two :P{id:10} nodes of different groups share a position.
        assert self.counts(MergeSemantics.WEAK_COLLAPSE) == (3, 2)

    def test_collapse_and_strong_same_here(self):
        assert self.counts(MergeSemantics.COLLAPSE) == (3, 2)
        assert self.counts(MergeSemantics.STRONG_COLLAPSE) == (3, 2)


class TestCrossPositionCollapse:
    def test_collapse_across_positions(self, revised_graph):
        rows = [{"x": 1}]
        run_merge(
            revised_graph,
            "(:N {id: x})-[:T]->(:N {id: x})",
            rows,
            MergeSemantics.COLLAPSE,
        )
        # Both positions have identical content: Collapse makes a loop.
        assert revised_graph.node_count() == 1
        rel = revised_graph.relationships()[0]
        assert rel.start == rel.end

    def test_weak_collapse_keeps_positions_apart(self, revised_graph):
        rows = [{"x": 1}]
        run_merge(
            revised_graph,
            "(:N {id: x})-[:T]->(:N {id: x})",
            rows,
            MergeSemantics.WEAK_COLLAPSE,
        )
        assert revised_graph.node_count() == 2

    def test_strong_collapses_parallel_rels_across_positions(
        self, revised_graph
    ):
        a = revised_graph.create_node("X", name="a")
        b = revised_graph.create_node("X", name="b")
        rows = [{"p": a, "q": b}]
        run_merge(
            revised_graph,
            "(p)-[:T]->(q), (p)-[:T]->(q)",
            rows,
            MergeSemantics.STRONG_COLLAPSE,
            columns=("p", "q"),
        )
        assert revised_graph.relationship_count() == 1

    def test_collapse_keeps_parallel_rels_in_distinct_positions(
        self, revised_graph
    ):
        a = revised_graph.create_node("X", name="a")
        b = revised_graph.create_node("X", name="b")
        rows = [{"p": a, "q": b}]
        run_merge(
            revised_graph,
            "(p)-[:T]->(q), (p)-[:T]->(q)",
            rows,
            MergeSemantics.COLLAPSE,
            columns=("p", "q"),
        )
        assert revised_graph.relationship_count() == 2


class TestNullHandling:
    def test_null_id_rows_create_propertyless_nodes(self, revised_graph):
        run_merge(
            revised_graph,
            "(:U {id: cid})",
            [{"cid": None}],
            MergeSemantics.ATOMIC,
        )
        node = revised_graph.nodes()[0]
        assert dict(node.properties) == {}

    def test_null_rows_never_match_existing(self, revised_graph):
        revised_graph.run("CREATE (:U)")  # a propertyless :U exists
        run_merge(
            revised_graph,
            "(:U {id: cid})",
            [{"cid": None}],
            MergeSemantics.ATOMIC,
        )
        # {id: null} cannot match, so a second node is created.
        assert revised_graph.node_count() == 2

    def test_nulls_collapse_together(self, revised_graph):
        run_merge(
            revised_graph,
            "(:U {id: cid})",
            [{"cid": None}, {"cid": None}],
            MergeSemantics.STRONG_COLLAPSE,
        )
        assert revised_graph.node_count() == 1

    def test_nulls_group_together(self, revised_graph):
        run_merge(
            revised_graph,
            "(:U {id: cid})",
            [{"cid": None}, {"cid": None}],
            MergeSemantics.GROUPING,
        )
        assert revised_graph.node_count() == 1


class TestExistingEntitiesNeverCollapse:
    def test_two_equal_existing_nodes_stay(self, revised_graph):
        revised_graph.run("CREATE (:U {id: 1}), (:U {id: 1})")
        revised_graph.run(
            "UNWIND [2] AS uid MERGE SAME (:U {id: uid})"
        )
        # The two pre-existing duplicates survive (Definition 1 (iii)).
        assert revised_graph.node_count() == 3

    def test_created_node_never_collapses_with_existing(self, revised_graph):
        revised_graph.run("CREATE (:U {id: 1})-[:R]->(:P)")
        # Row fails to match because of the relationship type.
        revised_graph.run(
            "UNWIND [1] AS uid MERGE SAME (:U {id: uid})-[:S]->(:Q)"
        )
        assert revised_graph.node_count() == 4


class TestMergeSyntaxViaEngine:
    def test_merge_same_statement(self, revised_graph):
        revised_graph.run(
            "UNWIND [{c: 1, p: 2}, {c: 1, p: 2}] AS row "
            "MERGE SAME (:User {id: row.c})-[:ORDERED]->(:Product {id: row.p})"
        )
        assert revised_graph.node_count() == 2
        assert revised_graph.relationship_count() == 1

    def test_extended_merge_keywords(self, extended_graph):
        extended_graph.run(
            "UNWIND [1, 1] AS x MERGE GROUPING (:N {v: x})"
        )
        assert extended_graph.node_count() == 1

    def test_bare_merge_rejected_at_execution_in_revised(self, revised_graph):
        from repro.errors import CypherSyntaxError

        with pytest.raises(CypherSyntaxError):
            revised_graph.run("MERGE (n:N)")


class TestLiteralNullRejected:
    """``MERGE ... {p: null}`` is a semantic error in every variant.

    A literal null in the pattern map can never match (``n.p = null``
    is null), so the clause would be an unconditional CREATE.  Only
    *literal* nulls are rejected; null-valued variables keep the
    paper's Example 5 behaviour (see TestNullHandling above).
    """

    def test_create_path_raises(self, revised_graph):
        from repro.errors import CypherSemanticError

        with pytest.raises(CypherSemanticError, match="null property"):
            revised_graph.run("MERGE ALL (n:T {p: null})")
        assert revised_graph.node_count() == 0

    def test_match_path_raises(self, revised_graph):
        from repro.errors import CypherSemanticError

        revised_graph.run("CREATE (:T)")
        with pytest.raises(CypherSemanticError, match="null property"):
            revised_graph.run("MERGE ALL (n:T {p: null})")
        assert revised_graph.node_count() == 1

    def test_all_revised_variants_raise(self, extended_graph):
        from repro.errors import CypherSemanticError

        for statement in (
            "MERGE ALL (n:T {p: null})",
            "MERGE SAME (n:T {p: null})",
            "MERGE GROUPING (n:T {p: null})",
            "MERGE WEAK COLLAPSE (n:T {p: null})",
            "MERGE COLLAPSE (n:T {p: null})",
        ):
            with pytest.raises(CypherSemanticError, match="null property"):
                extended_graph.run(statement)

    def test_legacy_merge_raises(self, legacy_graph):
        from repro.errors import CypherSemanticError

        with pytest.raises(CypherSemanticError, match="null property"):
            legacy_graph.run("MERGE (n:T {p: null})")

    def test_relationship_property_null_raises(self, revised_graph):
        from repro.errors import CypherSemanticError

        with pytest.raises(CypherSemanticError, match="'w'"):
            revised_graph.run("MERGE ALL (:A)-[r:R {w: null}]->(:B)")

    def test_null_via_variable_still_allowed(self, revised_graph):
        # Example 5: a null *value* creates a property-less node.
        revised_graph.run(
            "UNWIND [null] AS cid MERGE ALL (n:U {id: cid})"
        )
        assert revised_graph.node_count() == 1
        assert dict(revised_graph.nodes()[0].properties) == {}

    def test_null_via_parameter_still_allowed(self, revised_graph):
        revised_graph.run("MERGE ALL (n:U {id: $cid})", {"cid": None})
        assert revised_graph.node_count() == 1

    def test_formal_semantics_raises_too(self):
        from repro.errors import CypherSemanticError
        from repro.formal.semantics import merge_all, merge_variant
        from repro.graph.store import GraphStore

        snapshot = GraphStore().snapshot()
        pattern = pattern_of("MERGE ALL (n:T {p: null})")
        with pytest.raises(CypherSemanticError, match="null property"):
            merge_all(snapshot, pattern, ({},))
        with pytest.raises(CypherSemanticError, match="null property"):
            merge_variant(snapshot, pattern, ({},), "grouping")
