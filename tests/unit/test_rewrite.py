"""Unit tests for the rewrite pass: pushdown shapes and hoisting.

Equivalence with the serial executor is enforced end-to-end by the
differential fuzzer (a ``rewrites=on`` variant compared exactly) and
the planner suites (rewrites ride along with ``use_planner``); these
tests pin the *shapes*: which WHERE conjuncts move into pattern maps,
which stay, and which subtrees get hoisted.
"""

import pytest

from repro.dialect import Dialect
from repro.parser import ast
from repro.parser.parser import parse
from repro.parser.unparse import unparse
from repro.runtime.aggregation import children
from repro.runtime.rewrite import rewrite_statement, rewrites_disabled
from repro.session import Graph


def rewritten_clauses(source, *, parameters=(), columns=()):
    statement = parse(source, Dialect.REVISED)
    result = rewrite_statement(
        statement,
        initial_columns=tuple(columns),
        parameters=frozenset(parameters),
    )
    return result.branches()[0].clauses


def first_match(clauses):
    return next(c for c in clauses if isinstance(c, ast.MatchClause))


def map_keys(element):
    return tuple(element.properties.keys()) if element.properties else ()


def hoisted_nodes(expression):
    found = []
    if isinstance(expression, ast.HoistedExpression):
        found.append(expression)
    for child in children(expression):
        found.extend(hoisted_nodes(child))
    return found


class TestPredicatePushdown:
    def test_literal_equality_moves_into_the_map(self):
        clauses = rewritten_clauses(
            "MATCH (p:P) WHERE p.id = 3 RETURN p"
        )
        match = first_match(clauses)
        assert match.where is None
        node = match.pattern.paths[0].elements[0]
        assert map_keys(node) == ("id",)

    def test_reversed_equality_also_moves(self):
        match = first_match(
            rewritten_clauses("MATCH (p:P) WHERE 3 = p.id RETURN p")
        )
        assert match.where is None
        assert map_keys(match.pattern.paths[0].elements[0]) == ("id",)

    def test_conjunction_of_pushable_equalities_moves_whole(self):
        match = first_match(
            rewritten_clauses(
                "MATCH (a:A)-[r:T]->(b) "
                "WHERE a.x = 1 AND b.y = 2 AND r.z = 3 RETURN a"
            )
        )
        assert match.where is None
        path = match.pattern.paths[0]
        assert map_keys(path.elements[0]) == ("x",)
        assert map_keys(path.elements[1]) == ("z",)
        assert map_keys(path.elements[2]) == ("y",)

    def test_supplied_parameter_is_pushable(self):
        match = first_match(
            rewritten_clauses(
                "MATCH (p:P) WHERE p.id = $v RETURN p", parameters=("v",)
            )
        )
        assert match.where is None

    def test_missing_parameter_is_not_pushable(self):
        match = first_match(
            rewritten_clauses("MATCH (p:P) WHERE p.id = $v RETURN p")
        )
        assert match.where is not None
        assert map_keys(match.pattern.paths[0].elements[0]) == ()

    def test_variable_bound_by_earlier_clause_is_pushable(self):
        clauses = rewritten_clauses(
            "WITH 3 AS x MATCH (p:P) WHERE p.id = x RETURN p"
        )
        assert first_match(clauses).where is None

    def test_same_clause_variable_is_not_pushable(self):
        # b is fresh in the same MATCH: b.y may be evaluated before b
        # binds, so the conjunct must stay a WHERE.
        match = first_match(
            rewritten_clauses(
                "MATCH (a:A), (b:B) WHERE a.x = b.y RETURN a"
            )
        )
        assert match.where is not None

    def test_partial_conjunction_stays_whole(self):
        match = first_match(
            rewritten_clauses(
                "MATCH (p:P) WHERE p.id = 3 AND p.name < 'z' RETURN p"
            )
        )
        assert match.where is not None
        assert map_keys(match.pattern.paths[0].elements[0]) == ()

    def test_var_length_relationship_is_not_a_target(self):
        match = first_match(
            rewritten_clauses(
                "MATCH (a)-[rs:T*1..2]->(b) WHERE rs.k = 1 RETURN a"
            )
        )
        assert match.where is not None

    def test_existing_map_key_is_not_overwritten(self):
        match = first_match(
            rewritten_clauses(
                "MATCH (p:P {id: 1}) WHERE p.id = 2 RETURN p"
            )
        )
        assert match.where is not None
        assert map_keys(match.pattern.paths[0].elements[0]) == ("id",)

    def test_already_bound_pattern_variable_is_not_a_target(self):
        clauses = rewritten_clauses(
            "MATCH (a:A) MATCH (a)-[r:T]->(b) WHERE a.x = 1 RETURN b"
        )
        second = [
            c for c in clauses if isinstance(c, ast.MatchClause)
        ][1]
        assert second.where is not None

    def test_pushdown_result_still_executes(self):
        graph = Graph(Dialect.REVISED, use_rewrites=True)
        for index in range(6):
            graph.run("CREATE (:P {id: $i, v: $i})", i=index)
        rows = graph.run(
            "MATCH (p:P) WHERE p.id = 4 RETURN p.v AS v"
        ).records
        assert rows == [{"v": 4}]


class TestHoisting:
    def test_record_invariant_call_is_hoisted(self):
        match = first_match(
            rewritten_clauses(
                "MATCH (a) WHERE a.i < size([1, 2, 3]) RETURN a"
            )
        )
        hoisted = hoisted_nodes(match.where)
        assert len(hoisted) == 1
        assert isinstance(hoisted[0].expression, ast.FunctionCall)

    def test_hoisting_is_unparse_transparent(self):
        clauses = rewritten_clauses(
            "MATCH (a) RETURN a.i + abs(-2) AS v"
        )
        projected = clauses[-1].body.items[0]
        assert hoisted_nodes(projected.expression)
        assert unparse(projected.expression) == "a.i + abs(-2)"

    def test_record_dependent_subtrees_stay_put(self):
        match = first_match(
            rewritten_clauses("MATCH (a) WHERE a.i + 1 > 2 RETURN a")
        )
        assert hoisted_nodes(match.where) == []

    def test_comprehension_binder_counts_as_local(self):
        clauses = rewritten_clauses(
            "UNWIND [1] AS k RETURN [x IN [1, 2] | x * 10] AS l"
        )
        item = clauses[-1].body.items[0]
        assert isinstance(item.expression, ast.HoistedExpression)

    def test_comprehension_over_record_values_hoists_only_invariants(
        self,
    ):
        clauses = rewritten_clauses(
            "MATCH (a) RETURN [x IN [1, 2] | x * a.i] AS l"
        )
        item = clauses[-1].body.items[0]
        assert not isinstance(item.expression, ast.HoistedExpression)
        inner = hoisted_nodes(item.expression)
        assert len(inner) == 1
        assert isinstance(inner[0].expression, ast.ListLiteral)

    def test_aggregating_items_are_left_alone(self):
        clauses = rewritten_clauses(
            "MATCH (a) RETURN count(a) + size([1]) AS c"
        )
        assert hoisted_nodes(clauses[-1].body.items[0].expression) == []

    def test_pattern_predicates_are_never_hoisted(self):
        match = first_match(
            rewritten_clauses(
                "MATCH (a) WHERE exists((a)-[:T]->()) RETURN a"
            )
        )
        assert hoisted_nodes(match.where) == []

    def test_unwind_source_is_hoisted(self):
        clauses = rewritten_clauses(
            "UNWIND range(1, 3) AS k RETURN k"
        )
        unwind = clauses[0]
        assert isinstance(unwind.expression, ast.HoistedExpression)

    def test_hoisted_expression_evaluates_lazily_per_statement(self):
        graph = Graph(Dialect.REVISED, use_rewrites=True)
        graph.run("CREATE (:A {i: 1}), (:A {i: 2})")
        rows = graph.run(
            "MATCH (a:A) RETURN a.i + size([0, 0]) AS v ORDER BY v"
        ).records
        assert rows == [{"v": 3}, {"v": 4}]
        # Zero input records: the invariant subtree never evaluates,
        # so an always-raising hoisted expression must not raise.
        assert (
            graph.run(
                "MATCH (z:Missing) RETURN z.i / 0 + 1 AS v"
            ).records
            == []
        )


class TestWiring:
    def test_rewrites_disabled_passes_statements_through(self):
        statement = parse(
            "MATCH (p:P) WHERE p.id = 3 RETURN p", Dialect.REVISED
        )
        with rewrites_disabled():
            assert rewrite_statement(statement) is statement

    def test_use_rewrites_defaults_follow_use_planner(self):
        from repro.engine import CypherEngine
        from repro.graph.store import GraphStore

        store = GraphStore()
        assert CypherEngine(store, use_planner=True).use_rewrites
        assert not CypherEngine(store, use_planner=False).use_rewrites
        assert CypherEngine(
            store, use_planner=True, use_rewrites=False
        ).use_rewrites is False
        assert CypherEngine(
            store, use_planner=False, use_rewrites=True
        ).use_rewrites is True

    def test_unknown_scope_stops_rewriting_downstream(self):
        # FOREACH does not change scope but a clause the rewriter does
        # not model must freeze the rest of the statement verbatim;
        # CALL-like clauses do not exist here, so exercise the bail via
        # a mutating clause followed by a pushable MATCH (scope *is*
        # modelled, the downstream MATCH still rewrites).
        clauses = rewritten_clauses(
            "MATCH (a:A) SET a.x = 1 WITH a "
            "MATCH (b:B) WHERE b.id = 3 RETURN b"
        )
        second = [
            c for c in clauses if isinstance(c, ast.MatchClause)
        ][1]
        assert second.where is None

    def test_invalid_parallel_mode_is_rejected(self):
        with pytest.raises(ValueError):
            Graph(Dialect.REVISED, parallel="rocket")
