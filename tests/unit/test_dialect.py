"""Unit tests for dialect selection and the public API surface."""

import pytest

import repro
from repro import Dialect


class TestDialectParse:
    def test_from_string(self):
        assert Dialect.parse("cypher9") is Dialect.CYPHER9
        assert Dialect.parse("REVISED") is Dialect.REVISED

    def test_identity(self):
        assert Dialect.parse(Dialect.CYPHER9) is Dialect.CYPHER9

    def test_unknown_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            Dialect.parse("cypher10")
        assert "cypher9" in str(excinfo.value)

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            Dialect.parse(42)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_merge_semantics_enum_complete(self):
        values = {semantics.value for semantics in repro.MergeSemantics}
        assert values == {
            "atomic",
            "grouping",
            "weak_collapse",
            "collapse",
            "strong_collapse",
        }

    def test_match_mode_enum(self):
        assert repro.MatchMode("trail") is repro.MatchMode.TRAIL
        assert repro.MatchMode("homomorphism") is repro.MatchMode.HOMOMORPHISM
