"""Unit tests for Node / Relationship / Path handles and snapshots."""

import pytest

from repro.graph.model import GraphSnapshot, Node, Path, Relationship
from repro.graph.store import GraphStore


@pytest.fixture
def store_with_pair():
    store = GraphStore()
    a = store.create_node(("User",), {"id": 1, "name": "Bob"})
    b = store.create_node(("Product",), {"id": 2})
    r = store.create_relationship("ORDERED", a, b, {"qty": 3})
    return store, a, b, r


class TestNodeHandle:
    def test_accessors(self, store_with_pair):
        store, a, __, __ = store_with_pair
        node = store.node(a)
        assert node.id == a
        assert node.labels == frozenset({"User"})
        assert node.get("name") == "Bob"
        assert node["id"] == 1
        assert node.get("missing") is None
        assert node.has_label("User")
        assert not node.has_label("Vendor")
        assert node.degree() == 1

    def test_handles_reflect_current_state(self, store_with_pair):
        store, a, __, __ = store_with_pair
        node = store.node(a)
        store.set_node_property(a, "name", "Alice")
        assert node.get("name") == "Alice"

    def test_equality_and_hash(self, store_with_pair):
        store, a, b, __ = store_with_pair
        assert store.node(a) == store.node(a)
        assert store.node(a) != store.node(b)
        assert len({store.node(a), store.node(a), store.node(b)}) == 2

    def test_properties_view_is_read_only(self, store_with_pair):
        store, a, __, __ = store_with_pair
        with pytest.raises(TypeError):
            store.node(a).properties["x"] = 1

    def test_repr_contains_labels_and_props(self, store_with_pair):
        store, a, __, __ = store_with_pair
        text = repr(store.node(a))
        assert ":User" in text and "Bob" in text


class TestRelationshipHandle:
    def test_accessors(self, store_with_pair):
        store, a, b, r = store_with_pair
        rel = store.relationship(r)
        assert rel.type == "ORDERED"
        assert rel.start.id == a
        assert rel.end.id == b
        assert rel.get("qty") == 3
        assert rel["qty"] == 3

    def test_other_end(self, store_with_pair):
        store, a, b, r = store_with_pair
        rel = store.relationship(r)
        assert rel.other_end(store.node(a)).id == b
        assert rel.other_end(store.node(b)).id == a

    def test_other_end_of_loop(self):
        store = GraphStore()
        n = store.create_node()
        r = store.create_relationship("L", n, n)
        rel = store.relationship(r)
        assert rel.other_end(store.node(n)).id == n

    def test_node_and_rel_never_equal(self, store_with_pair):
        store, a, __, r = store_with_pair
        assert store.node(a) != store.relationship(r)


class TestPath:
    def test_construction_and_accessors(self, store_with_pair):
        store, a, b, r = store_with_pair
        path = Path([store.node(a), store.node(b)], [store.relationship(r)])
        assert len(path) == 1
        assert path.start.id == a
        assert path.end.id == b
        assert [n.id for n in path.nodes] == [a, b]
        assert [x.id for x in path.relationships] == [r]

    def test_zero_length_path(self, store_with_pair):
        store, a, __, __ = store_with_pair
        path = Path([store.node(a)], [])
        assert len(path) == 0
        assert path.start == path.end

    def test_invalid_shape_rejected(self, store_with_pair):
        store, a, __, r = store_with_pair
        with pytest.raises(ValueError):
            Path([store.node(a)], [store.relationship(r)])

    def test_equality_by_ids(self, store_with_pair):
        store, a, b, r = store_with_pair
        one = Path([store.node(a), store.node(b)], [store.relationship(r)])
        two = Path([store.node(a), store.node(b)], [store.relationship(r)])
        assert one == two
        assert hash(one) == hash(two)


class TestGraphSnapshot:
    def test_signatures(self, store_with_pair):
        store, a, __, r = store_with_pair
        snapshot = store.snapshot()
        labels, props = snapshot.node_signature(a)
        assert labels == ("User",)
        assert dict(props) == {"id": 1, "name": "Bob"}
        rel_type, rel_props = snapshot.rel_signature(r)
        assert rel_type == "ORDERED"
        assert dict(rel_props) == {"qty": 3}

    def test_order_and_size(self, store_with_pair):
        store, *_ = store_with_pair
        snapshot = store.snapshot()
        assert snapshot.order() == 2
        assert snapshot.size() == 1

    def test_adjacency_iterators(self, store_with_pair):
        store, a, b, r = store_with_pair
        snapshot = store.snapshot()
        assert list(snapshot.out_relationships(a)) == [r]
        assert list(snapshot.in_relationships(b)) == [r]
        assert list(snapshot.out_relationships(b)) == []

    def test_has_dangling(self):
        snapshot = GraphSnapshot(
            nodes=frozenset({0}),
            relationships=frozenset({0}),
            source={0: 0},
            target={0: 99},  # endpoint not in nodes
            types={0: "T"},
        )
        assert snapshot.has_dangling()
