"""Unit tests for rendering and statistics helpers."""

from repro.graph.statistics import collect_statistics
from repro.paper import figure1_graph
from repro.tools.render import to_dot, to_text


class TestRender:
    def test_dot_contains_nodes_and_edges(self):
        dot = to_dot(figure1_graph())
        assert dot.startswith("digraph")
        assert ":Vendor" in dot
        assert "OFFERS" in dot
        assert "->" in dot

    def test_text_listing(self):
        text = to_text(figure1_graph())
        assert ":Product" in text
        assert "[:ORDERED]" in text
        assert len(text.splitlines()) == 11  # 6 nodes + 5 relationships

    def test_accepts_snapshot(self):
        snapshot = figure1_graph().snapshot()
        assert "digraph" in to_dot(snapshot)
        assert ":User" in to_text(snapshot)


class TestStatistics:
    def test_figure1_statistics(self):
        stats = collect_statistics(figure1_graph())
        assert stats.node_count == 6
        assert stats.relationship_count == 5
        assert stats.labels == {"Vendor": 1, "Product": 3, "User": 2}
        assert stats.relationship_types == {"OFFERS": 2, "ORDERED": 3}
        assert stats.node_property_keys["id"] == 6
        assert stats.max_degree == 2
        assert stats.degree_histogram == {1: 2, 2: 4}

    def test_empty_graph(self):
        from repro.graph.store import GraphStore

        stats = collect_statistics(GraphStore())
        assert stats.node_count == 0
        assert stats.average_degree == 0.0
        assert stats.max_degree == 0

    def test_summary_text(self):
        text = collect_statistics(figure1_graph()).summary()
        assert "nodes: 6" in text
        assert ":Product x3" in text
