"""Unit tests for the error hierarchy and error reporting quality."""

import pytest

from repro import (
    CypherError,
    CypherSyntaxError,
    DanglingRelationshipError,
    Dialect,
    Graph,
    MergeSyntaxError,
    PropertyConflictError,
)
from repro.errors import (
    CypherEvaluationError,
    CypherSemanticError,
    CypherTypeError,
    EntityNotFoundError,
    LoadError,
    ParameterMissingError,
    TransactionError,
    UnknownVariableError,
    UpdateError,
)
from repro.parser import parse


class TestHierarchy:
    def test_everything_is_a_cypher_error(self):
        for exc_type in (
            CypherSyntaxError,
            MergeSyntaxError,
            CypherSemanticError,
            UnknownVariableError,
            CypherTypeError,
            CypherEvaluationError,
            ParameterMissingError,
            UpdateError,
            PropertyConflictError,
            DanglingRelationshipError,
            EntityNotFoundError,
            TransactionError,
            LoadError,
        ):
            assert issubclass(exc_type, CypherError), exc_type

    def test_merge_syntax_is_syntax(self):
        assert issubclass(MergeSyntaxError, CypherSyntaxError)

    def test_conflict_and_dangling_are_update_errors(self):
        assert issubclass(PropertyConflictError, UpdateError)
        assert issubclass(DanglingRelationshipError, UpdateError)

    def test_one_except_clause_suffices(self):
        g = Graph(Dialect.REVISED)
        for statement in (
            "MATCH (n",                      # syntax
            "RETURN missing_var",            # unknown variable
            "RETURN 1 / 0 AS x",             # evaluation
            "RETURN $nope AS x",             # parameter
        ):
            with pytest.raises(CypherError):
                g.run(statement)


class TestSyntaxErrorPositions:
    def test_line_and_column_reported(self):
        with pytest.raises(CypherSyntaxError) as excinfo:
            parse("MATCH (n)\nRETURN n <")
        error = excinfo.value
        assert error.line == 2
        assert "line 2" in str(error)

    def test_lexer_position(self):
        with pytest.raises(CypherSyntaxError) as excinfo:
            parse("MATCH (n) WHERE n.x = @ RETURN n")
        assert excinfo.value.column > 0

    def test_unexpected_token_named(self):
        with pytest.raises(CypherSyntaxError) as excinfo:
            parse("MATCH (n) RETURN n n")
        assert "'n'" in str(excinfo.value)


class TestErrorPayloads:
    def test_property_conflict_carries_details(self):
        error = PropertyConflictError("node#3", "name", "a", "b")
        assert error.key == "name"
        assert error.first == "a" and error.second == "b"
        assert "name" in str(error)

    def test_dangling_error_lists_relationships(self):
        error = DanglingRelationshipError(7, (1, 2))
        assert error.relationships == (1, 2)
        assert "DETACH DELETE" in str(error)

    def test_unknown_variable_names_the_variable(self):
        g = Graph(Dialect.REVISED)
        with pytest.raises(UnknownVariableError) as excinfo:
            g.run("RETURN whom AS x")
        assert "whom" in str(excinfo.value)

    def test_unknown_function_named(self):
        g = Graph(Dialect.REVISED)
        with pytest.raises(CypherEvaluationError) as excinfo:
            g.run("RETURN frobnicate(1) AS x")
        assert "frobnicate" in str(excinfo.value)


class TestErrorAtomicity:
    """Every error class leaves the graph untouched."""

    @pytest.mark.parametrize(
        "statement",
        [
            "CREATE (:X) WITH 1 AS one RETURN 1 / 0 AS boom",
            "CREATE (:X) WITH 1 AS one RETURN $missing AS boom",
            "CREATE (:X) WITH 1 AS one RETURN nope AS boom",
            "CREATE (:X) WITH 1 AS one UNWIND true + 1 AS boom RETURN boom",
        ],
    )
    def test_failed_statements_leave_no_trace(self, statement):
        g = Graph(Dialect.REVISED)
        with pytest.raises(CypherError):
            g.run(statement)
        assert g.node_count() == 0
