"""Property-based tests for the value model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.values import (
    cypher_eq,
    equivalent,
    grouping_key,
    sort_key,
    tri_and,
    tri_not,
    tri_or,
    tri_xor,
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    st.text(max_size=12),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=12,
)

ternary = st.sampled_from([True, False, None])


class TestTernaryLogicLaws:
    @given(a=ternary, b=ternary)
    def test_and_or_de_morgan(self, a, b):
        assert tri_not(tri_and(a, b)) == tri_or(tri_not(a), tri_not(b))

    @given(a=ternary, b=ternary)
    def test_commutativity(self, a, b):
        assert tri_and(a, b) == tri_and(b, a)
        assert tri_or(a, b) == tri_or(b, a)
        assert tri_xor(a, b) == tri_xor(b, a)

    @given(a=ternary, b=ternary, c=ternary)
    def test_associativity(self, a, b, c):
        assert tri_and(tri_and(a, b), c) == tri_and(a, tri_and(b, c))
        assert tri_or(tri_or(a, b), c) == tri_or(a, tri_or(b, c))

    @given(a=ternary)
    def test_double_negation(self, a):
        assert tri_not(tri_not(a)) == a


class TestEquivalenceLaws:
    @given(v=values)
    def test_reflexive(self, v):
        assert equivalent(v, v)

    @given(a=values, b=values)
    def test_symmetric(self, a, b):
        assert equivalent(a, b) == equivalent(b, a)

    @given(a=values, b=values)
    @settings(max_examples=300)
    def test_grouping_key_characterizes_equivalence(self, a, b):
        assert (grouping_key(a) == grouping_key(b)) == equivalent(a, b)

    @given(a=values, b=values)
    def test_ternary_true_implies_equivalent(self, a, b):
        # cypher_eq can be None (nulls) or False where equivalence holds
        # (e.g. null = null), but True always implies equivalence...
        if cypher_eq(a, b) is True:
            assert equivalent(a, b)


class TestSortOrderLaws:
    @given(xs=st.lists(values, max_size=8))
    def test_sort_key_total(self, xs):
        ordered = sorted(xs, key=sort_key)
        keys = [sort_key(v) for v in ordered]
        assert keys == sorted(keys)

    @given(xs=st.lists(values, min_size=1, max_size=8))
    def test_nulls_sort_after_everything(self, xs):
        ordered = sorted(xs + [None], key=sort_key)
        tail = ordered[-(xs.count(None) + 1):]
        assert all(v is None for v in tail)

    @given(a=values, b=values)
    def test_equivalent_values_share_sort_position(self, a, b):
        if equivalent(a, b):
            has_nan_a = _contains_nan(a)
            if not has_nan_a:
                assert sort_key(a) == sort_key(b)


def _contains_nan(value):
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, list):
        return any(_contains_nan(v) for v in value)
    if isinstance(value, dict):
        return any(_contains_nan(v) for v in value.values())
    return False
