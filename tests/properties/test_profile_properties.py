"""Property-based tests of the PROFILE layer.

Invariants checked on random small graphs and queries:

* profiling is an *observer*: ``Graph.profile(q)`` returns the same
  records as ``Graph.run(q)`` and leaves the graph untouched for
  read-only queries;
* results are invariant under ``use_planner`` -- the planner may only
  change *how many* db-hits a query costs (documented delta: an
  index-backed scan replaces a full label scan), never the records;
* the no-op counter singleton is shared by every store and never
  accumulates, so the profiling-off regime has no per-store state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph, NO_COUNTERS
from repro.graph.counters import DbHits
from repro.graph.store import GraphStore

#: A random small labelled graph: nodes carrying an indexed-looking
#: integer key, plus a few edges.
graphs = st.builds(
    lambda nodes, edges: (nodes, edges),
    st.lists(
        st.tuples(
            st.sampled_from(["A", "B"]),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=6,
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=6,
    ),
)

QUERIES = [
    "MATCH (n:A) RETURN n.k AS k ORDER BY k",
    "MATCH (n:A {k: 1}) RETURN n.k AS k",
    "MATCH (a)-[r:T]->(b) RETURN a.k AS x, b.k AS y ORDER BY x, y",
    "MATCH (n) RETURN count(n) AS c",
    "MATCH (n:B) WHERE n.k > 0 RETURN n.k AS k ORDER BY k",
]


def build_graph(spec, **kwargs):
    nodes, edges = spec
    graph = Graph(**kwargs)
    ids = [
        graph.store.create_node((label,), {"k": k}) for label, k in nodes
    ]
    for source, target in edges:
        if source < len(ids) and target < len(ids):
            graph.store.create_relationship(
                "T", ids[source], ids[target], {}
            )
    return graph, ids, edges


class TestProfileIsAnObserver:
    @given(spec=graphs, query=st.sampled_from(QUERIES))
    @settings(max_examples=60)
    def test_profile_matches_run_and_mutates_nothing(self, spec, query):
        graph, _, _ = build_graph(spec)
        plain = graph.run(query)
        before = (graph.node_count(), graph.relationship_count())
        profile = graph.profile(query)
        assert profile.result.records == plain.records
        assert (graph.node_count(), graph.relationship_count()) == before
        assert graph.store.counters is NO_COUNTERS

    @given(spec=graphs, query=st.sampled_from(QUERIES))
    @settings(max_examples=60)
    def test_results_invariant_under_planner(self, spec, query):
        unplanned, _, _ = build_graph(spec, use_planner=False)
        planned, _, _ = build_graph(spec, use_planner=True)
        planned.create_index("A", "k")
        p_off = unplanned.profile(query)
        p_on = planned.profile(query)
        # Same records either way; only the db-hit account may differ
        # (an index lookup replaces part of a label scan).
        assert p_on.result.records == p_off.result.records
        assert p_on.total_db_hits >= 0 and p_off.total_db_hits >= 0

    @given(spec=graphs)
    @settings(max_examples=30)
    def test_indexed_lookup_never_costs_more_reads(self, spec):
        query = "MATCH (n:A {k: 1}) RETURN n.k AS k"
        scan, _, _ = build_graph(spec)
        lookup, _, _ = build_graph(spec)
        lookup.create_index("A", "k")
        hits_scan = scan.profile(query).hits
        hits_lookup = lookup.profile(query).hits
        assert hits_lookup.node_reads <= hits_scan.node_reads
        assert hits_lookup.property_reads <= hits_scan.property_reads


class TestNoOpCountersRegression:
    def test_singleton_is_shared_and_inert(self):
        assert GraphStore().counters is GraphStore().counters
        assert GraphStore().counters is NO_COUNTERS

    @given(n=st.integers(min_value=0, max_value=20))
    @settings(max_examples=20)
    def test_unprofiled_work_never_accumulates(self, n):
        graph = Graph()
        for i in range(n):
            graph.run("CREATE (:L {k: $i})", {"i": i})
        graph.run("MATCH (n:L) RETURN count(n) AS c")
        assert graph.store.counters is NO_COUNTERS
        assert NO_COUNTERS.snapshot() == DbHits()
