"""Streaming (format-2) vs blob (format-1) checkpoint equivalence.

The two formats must be interchangeable: a graph checkpointed either
way and restored through either path has to come back byte-identical
under ``canonical_graph_json``.  Hypothesis drives the store through
random update scripts (creates, deletes, property/label churn, holes
from deleted ids, schema objects) so the column iterators see every
tombstone shape, then the suite round-trips through both formats and
both readers, plus the crash-injection scenario at every streaming-
record boundary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PersistenceError
from repro.graph.store import GraphStore
from repro.persistence.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_NAME,
    LEGACY_CHECKPOINT_FORMAT,
    checkpoint_format,
    checkpoint_payload,
    checkpoint_record_boundaries,
    load_checkpoint,
    read_checkpoint_records,
    restore_checkpoint,
    restore_checkpoint_file,
    write_checkpoint,
)
from repro.testing.invariants import canonical_graph_json, check_invariants

LABELS = ("Person", "Item", "Tag")
TYPES = ("KNOWS", "OWNS")

#: (op, a, b) decoded against current store state
OPS = (
    "create_node",
    "create_rel",
    "delete_rel",
    "delete_node",
    "set_prop",
    "add_label",
    "schema",
)

scripts = st.lists(
    st.tuples(
        st.sampled_from(OPS),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
    ),
    max_size=40,
)


def build_store(script) -> GraphStore:
    """Drive a store through *script*, leaving holes and tombstones."""
    store = GraphStore()
    nodes: list[int] = []
    rels: list[int] = []
    for op, a, b in script:
        if op == "create_node":
            nodes.append(
                store.create_node(
                    labels=[LABELS[a % len(LABELS)]],
                    properties={"k": a, "s": f"v{b}"} if b % 3 else {},
                )
            )
        elif op == "create_rel" and nodes:
            rels.append(
                store.create_relationship(
                    TYPES[(a + b) % len(TYPES)],
                    nodes[a % len(nodes)],
                    nodes[b % len(nodes)],
                    {"w": b} if b % 2 else {},
                )
            )
        elif op == "delete_rel" and rels:
            rel_id = rels.pop(a % len(rels))
            store.delete_relationship(rel_id)
        elif op == "delete_node" and nodes:
            node_id = nodes[a % len(nodes)]
            if not store.adjacent_rel_ids(node_id):
                nodes.remove(node_id)
                store.delete_node(node_id)
        elif op == "set_prop" and nodes:
            store.set_node_property(
                nodes[a % len(nodes)], "p", [1, "x", None][b % 3]
            )
        elif op == "add_label" and nodes:
            store.add_label(nodes[a % len(nodes)], LABELS[b % len(LABELS)])
        elif op == "schema":
            store.create_index(LABELS[a % len(LABELS)], "k")
    return store


def roundtrip(directory, store: GraphStore, *, format: int) -> GraphStore:
    write_checkpoint(directory, store, 7, format=format)
    recovered = GraphStore()
    info = restore_checkpoint_file(
        recovered, directory / CHECKPOINT_NAME
    )
    assert info == {"lsn": 7, "format": format}
    return recovered


class TestFormatEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(scripts)
    def test_stream_roundtrip_is_byte_identical(self, tmp_path_factory, script):
        directory = tmp_path_factory.mktemp("ckpt")
        store = build_store(script)
        wanted = canonical_graph_json(store)
        recovered = roundtrip(directory, store, format=CHECKPOINT_FORMAT)
        assert canonical_graph_json(recovered) == wanted
        check_invariants(recovered)
        # allocators survive so later ids never collide
        assert recovered._next_node_id == store._next_node_id
        assert recovered._next_rel_id == store._next_rel_id

    @settings(max_examples=60, deadline=None)
    @given(scripts)
    def test_blob_and_stream_restore_identically(
        self, tmp_path_factory, script
    ):
        store = build_store(script)
        blob_dir = tmp_path_factory.mktemp("blob")
        stream_dir = tmp_path_factory.mktemp("stream")
        via_blob = roundtrip(
            blob_dir, store, format=LEGACY_CHECKPOINT_FORMAT
        )
        via_stream = roundtrip(
            stream_dir, store, format=CHECKPOINT_FORMAT
        )
        assert canonical_graph_json(via_blob) == canonical_graph_json(
            via_stream
        )
        assert set(via_blob._property_indexes) == set(
            via_stream._property_indexes
        )

    @settings(max_examples=40, deadline=None)
    @given(scripts)
    def test_load_checkpoint_materialises_the_blob_shape(
        self, tmp_path_factory, script
    ):
        # the compat loader rebuilds the format-1 payload from the
        # stream: graph, schema and allocators all agree
        store = build_store(script)
        directory = tmp_path_factory.mktemp("ckpt")
        write_checkpoint(directory, store, 7)
        payload = load_checkpoint(directory)
        legacy = checkpoint_payload(store, 7)
        assert payload["lsn"] == 7
        assert payload["indexes"] == legacy["indexes"]
        assert payload["constraints"] == legacy["constraints"]
        assert payload["next_node_id"] == legacy["next_node_id"]
        assert payload["next_rel_id"] == legacy["next_rel_id"]
        restored = GraphStore()
        restore_checkpoint(restored, payload)
        assert canonical_graph_json(restored) == canonical_graph_json(
            store
        )


class TestStreamIntegrity:
    def populated(self, tmp_path) -> GraphStore:
        store = build_store(
            [("create_node", i, i) for i in range(8)]
            + [("create_rel", i, i + 1) for i in range(6)]
            + [("schema", 0, 0)]
        )
        write_checkpoint(tmp_path, store, 3)
        return store

    def test_sniffed_formats(self, tmp_path):
        store = self.populated(tmp_path)
        path = tmp_path / CHECKPOINT_NAME
        assert checkpoint_format(path) == CHECKPOINT_FORMAT
        write_checkpoint(
            tmp_path, store, 3, format=LEGACY_CHECKPOINT_FORMAT
        )
        assert checkpoint_format(path) == LEGACY_CHECKPOINT_FORMAT

    def test_record_stream_shape(self, tmp_path):
        self.populated(tmp_path)
        records = list(
            read_checkpoint_records(tmp_path / CHECKPOINT_NAME)
        )
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "header"
        assert kinds[-1] == "end"
        assert set(kinds[1:-1]) <= {"nodes", "rels"}
        header = records[0]
        assert header["format"] == CHECKPOINT_FORMAT
        assert header["lsn"] == 3
        end = records[-1]
        assert end["nodes"] == 8
        assert end["rels"] == 6

    def test_every_truncation_fails_loudly(self, tmp_path):
        self.populated(tmp_path)
        path = tmp_path / CHECKPOINT_NAME
        data = path.read_bytes()
        torn = tmp_path / "torn.bin"
        cuts = set(checkpoint_record_boundaries(path)) - {len(data)}
        cuts |= {0, 4, len(data) - 1}
        for cut in sorted(cuts):
            torn.write_bytes(data[:cut])
            with pytest.raises(PersistenceError):
                list(read_checkpoint_records(torn))

    def test_corrupt_record_fails_loudly(self, tmp_path):
        self.populated(tmp_path)
        path = tmp_path / CHECKPOINT_NAME
        data = bytearray(path.read_bytes())
        boundaries = checkpoint_record_boundaries(path)
        data[boundaries[1] + 8] ^= 0xFF
        corrupt = tmp_path / "corrupt.bin"
        corrupt.write_bytes(bytes(data))
        with pytest.raises(PersistenceError, match="CRC"):
            list(read_checkpoint_records(corrupt))

    def test_write_rejects_unknown_format(self, tmp_path):
        with pytest.raises(PersistenceError, match="format"):
            write_checkpoint(tmp_path, GraphStore(), 0, format=3)


class TestCheckpointCrashScenario:
    def test_streaming_boundary_kills_recover_cleanly(self, tmp_path):
        from repro.testing.crash import (
            run_checkpoint_crash_scenario,
            scenario_statements,
        )

        report = run_checkpoint_crash_scenario(
            0, tmp_path, statements=scenario_statements(0, 16)
        )
        assert report.ok, report.failures
        assert report.kill_points > 5
