"""Interpreter/compiler equivalence.

The expression compiler must be observationally identical to the
reference interpreter: same values *and* same errors (class and
message) for every expression form, including null propagation,
division by zero, int64 overflow, unknown variables and missing
parameters.  Checked two ways:

* a hand-written corpus covering every ``ast.Expression`` node type
  and every documented error condition;
* hypothesis-generated random operator trees over a mixed-type record.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CypherError
from repro.graph.model import Node, Path, Relationship
from repro.graph.store import GraphStore
from repro.parser import parse_expression
from repro.runtime import compiler
from repro.runtime.context import EvalContext
from repro.runtime.expressions import interpret
from repro.testing.invariants import check_invariants


def _make_context():
    store = GraphStore()
    a = store.create_node(("Person",), {"name": "Ann", "age": 30})
    b = store.create_node(("Person",), {"name": "Bob", "age": 25})
    store.create_relationship("KNOWS", a, b, {"since": 1999})
    ctx = EvalContext(store=store, parameters={"p": 7, "s": "abc"})
    record = {
        "n": store.node(a),
        "o": store.node(b),
        "m": None,
        "x": 5,
        "big": 9223372036854775807,
        "small": -9223372036854775808,
        "f": 2.5,
        "b": True,
        "s": "hello",
        "lst": [1, 2, 3],
        "mp": {"a": 1, "b": None},
    }
    return ctx, record


def canonical(value):
    """Type-aware, comparison-safe form of a result value.

    Distinguishes ``True``/``1``/``1.0`` (Python conflates them under
    ``==``), normalizes NaN (equal to itself here) and keeps float
    zero signs apart.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return (type(value).__name__, value)
    if isinstance(value, float):
        if math.isnan(value):
            return ("float", "nan")
        return ("float", value, math.copysign(1.0, value))
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, list):
        return ("list", tuple(canonical(item) for item in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(
                (key, canonical(item))
                for key, item in sorted(value.items())
            ),
        )
    if isinstance(value, (Node, Relationship)):
        return (type(value).__name__, value.id)
    if isinstance(value, Path):
        return ("path", tuple(n.id for n in value.nodes))
    return ("other", repr(value))


def outcome(thunk):
    """(tag, payload) summary of a computation: its value or its error."""
    try:
        return ("value", canonical(thunk()))
    except CypherError as error:
        return ("error", type(error).__name__, str(error))


def assert_equivalent(source):
    ctx, record = _make_context()
    expression = parse_expression(source)
    interpreted = outcome(lambda: interpret(ctx, expression, record))
    compiled_fn = compiler.compile_expression(expression)
    compiled = outcome(lambda: compiled_fn(ctx, record))
    assert compiled == interpreted, (
        f"{source!r}: interpreter {interpreted}, compiler {compiled}"
    )
    # Expression evaluation is read-only: neither evaluation strategy
    # may corrupt the store's cached structures.
    check_invariants(ctx.store)


CORPUS = [
    # literals
    "42",
    "2.5",
    "'hi'",
    "true",
    "false",
    "null",
    "[1, 'a', null, [2]]",
    "{a: 1, b: null, c: [2]}",
    # parameters (present / missing)
    "$p",
    "$s",
    "$does_not_exist",
    # variables (bound / unknown)
    "x",
    "never_bound",
    # property access
    "n.name",
    "n.missing",
    "m.name",
    "mp.a",
    "x.name",
    "s.name",
    # unary operators
    "-x",
    "+x",
    "-f",
    "-s",
    "+s",
    "NOT b",
    "NOT x",
    "NOT m",
    "-m",
    # arithmetic, null propagation, overflow, zero division
    "1 + 2",
    "x + f",
    "x + m",
    "m * 2",
    "big + 1",
    "big * 2",
    "small - 1",
    "0 - small",
    "7 / 2",
    "-7 / 2",
    "7 % 3",
    "-7 % 3",
    "1 / 0",
    "1 % 0",
    "1.0 / 0.0",
    "-1.0 / 0.0",
    "0.0 / 0.0",
    "1.0 % 0.0",
    "2 ^ 10",
    "2 ^ 0.5",
    "x + 'a'",
    "'a' + x",
    "'a' + 'b'",
    "true + 1",
    "lst + 4",
    "4 + lst",
    "lst + lst",
    "s - 1",
    "small / -1",
    # comparisons and membership
    "1 < 2",
    "2 <= 2",
    "3 > f",
    "x >= null",
    "1 = 1.0",
    "1 <> 'a'",
    "'a' < 'b'",
    "x IN lst",
    "9 IN lst",
    "null IN lst",
    "x IN null",
    "x IN s",
    # string predicates
    "'abc' STARTS WITH 'a'",
    "'abc' ENDS WITH 'c'",
    "'abc' CONTAINS 'b'",
    "'abc' CONTAINS x",
    "m STARTS WITH 'a'",
    "'abc' ENDS WITH m",
    # boolean connectives (both operands always evaluated)
    "true AND null",
    "false AND null",
    "true OR null",
    "false OR null",
    "null XOR true",
    "b AND x",
    "false AND 1 / 0 = 1",
    "true OR 1 / 0 = 1",
    # IS NULL
    "m IS NULL",
    "m IS NOT NULL",
    "x IS NULL",
    "null IS NULL",
    # label predicates
    "n:Person",
    "n:Person:Robot",
    "m:Person",
    "x:Person",
    # function calls
    "size('abc')",
    "size(lst)",
    "size(null)",
    "toUpper(s)",
    "abs(-3)",
    "coalesce(null, m, x)",
    "coalesce(null, null)",
    "range(1, 4)",
    "no_such_function(1)",
    "size()",
    "size('a', 'b')",
    "toInteger('12')",
    "split('a,b', ',')",
    # aggregates are rejected outside projections
    "count(x)",
    "sum(lst)",
    # CASE
    "CASE x WHEN 5 THEN 'five' WHEN 6 THEN 'six' ELSE 'other' END",
    "CASE x WHEN 99 THEN 'no' END",
    "CASE WHEN x > 1 THEN 'big' WHEN x > 0 THEN 'small' END",
    "CASE WHEN m THEN 'yes' ELSE 'no' END",
    "CASE m WHEN null THEN 'null' ELSE 'other' END",
    # list comprehensions
    "[i IN lst WHERE i > 1 | i * 2]",
    "[i IN lst | i + x]",
    "[i IN lst WHERE i > 99]",
    "[i IN m | i]",
    "[i IN x | i]",
    "[i IN lst WHERE i.name = 1 | i]",
    # quantifiers
    "any(i IN lst WHERE i = 2)",
    "all(i IN lst WHERE i > 0)",
    "none(i IN lst WHERE i > 99)",
    "single(i IN lst WHERE i = 2)",
    "any(i IN [1, null] WHERE i = 9)",
    "all(i IN [m] WHERE i = 1)",
    "single(i IN m WHERE i = 1)",
    "any(i IN x WHERE i = 1)",
    # subscripts
    "lst[0]",
    "lst[-1]",
    "lst[9]",
    "lst['a']",
    "mp['a']",
    "mp[x]",
    "n['name']",
    "x[0]",
    "lst[m]",
    # slices
    "lst[1..2]",
    "lst[..2]",
    "lst[1..]",
    "lst[-2..99]",
    "s[1..2]",
    "lst[m..2]",
    "lst['a'..2]",
    # reduce
    "reduce(acc = 0, i IN lst | acc + i)",
    "reduce(acc = 1, i IN lst | acc * i)",
    "reduce(acc = '', i IN lst | acc + i)",
    "reduce(acc = 0, i IN [] | acc + i)",
    "reduce(acc = 0, i IN m | acc + i)",
    "reduce(acc = 0, i IN x | acc + i)",
    "reduce(acc = x, i IN lst | acc + i * acc)",
    "reduce(acc = 0, i IN lst | acc + reduce(a2 = i, j IN lst | a2 + j))",
    # negative string-function positions raise, not index from the end
    "substring(s, -1)",
    "substring(s, 1, -1)",
    "substring(s, 1, 2)",
    "left(s, -2)",
    "left(s, 2)",
    "right(s, -2)",
    "right(s, 2)",
    # abs at the int64 boundary overflows
    "abs(small)",
    "abs(-9223372036854775807 - 1)",
    "abs(big)",
    "abs(-f)",
    # pattern predicates and EXISTS
    "(n)-[:KNOWS]->()",
    "(n)<-[:KNOWS]-()",
    "(n)-[:HATES]->()",
    "exists(n.name)",
    "exists(n.missing)",
    "exists((n)-[:KNOWS]->(o))",
]


@pytest.mark.parametrize("source", CORPUS)
def test_corpus_equivalence(source):
    assert_equivalent(source)


@pytest.mark.parametrize(
    "source",
    [
        "1 / 0",
        "big + 1",
        "never_bound",
        "$does_not_exist",
        "substring(s, -1)",
        "left(s, -2)",
        "right(s, -2)",
        "abs(small)",
        "reduce(acc = 0, i IN x | acc + i)",
    ],
)
def test_error_cases_compare_class_and_message(source):
    """The headline error conditions stay identical, class and text."""
    ctx, record = _make_context()
    expression = parse_expression(source)
    with pytest.raises(CypherError) as interpreted:
        interpret(ctx, expression, record)
    with pytest.raises(CypherError) as compiled:
        compiler.compile_expression(expression)(ctx, record)
    assert type(compiled.value) is type(interpreted.value)
    assert str(compiled.value) == str(interpreted.value)


# -- random operator trees --------------------------------------------------

_ATOMS = st.sampled_from(
    [
        "0",
        "1",
        "2",
        "null",
        "true",
        "false",
        "1.5",
        "0.0",
        "'a'",
        "x",
        "f",
        "m",
        "big",
        "lst",
        "9223372036854775807",
    ]
)

_BINARY = st.sampled_from(
    ["+", "-", "*", "/", "%", "^", "=", "<>", "<", "<=", ">", ">=",
     "AND", "OR", "XOR", "IN"]
)


def _combine(parts):
    left, op, right = parts
    return f"({left} {op} {right})"


_EXPRESSIONS = st.recursive(
    _ATOMS,
    lambda children: st.one_of(
        st.tuples(children, _BINARY, children).map(_combine),
        children.map(lambda e: f"(-{e})"),
        children.map(lambda e: f"(NOT {e})"),
        children.map(lambda e: f"({e} IS NULL)"),
        children.map(lambda e: f"size({e})"),
        st.tuples(children, children).map(
            lambda pair: f"coalesce({pair[0]}, {pair[1]})"
        ),
    ),
    max_leaves=12,
)


@given(_EXPRESSIONS)
def test_random_trees_equivalent(source):
    assert_equivalent(source)


@given(_EXPRESSIONS)
def test_interpreted_mode_matches_compiled(source):
    """compilation_disabled() routes evaluate() through the interpreter
    with, by construction, the same observable behaviour."""
    ctx, record = _make_context()
    expression = parse_expression(source)
    compiled = outcome(
        lambda: compiler.compile_expression(expression)(ctx, record)
    )
    with compiler.compilation_disabled():
        fallback = outcome(
            lambda: compiler.compile_expression(expression)(ctx, record)
        )
    assert fallback == compiled
