"""Planner-on vs planner-off equivalence of pattern matching.

The match planner may change the anchor and the path order of every
MATCH, so these tests hold it to the only contracts that matter:

* **revised dialects**: the same *multiset* of matches as the naive
  matcher, on a fixed pattern corpus and on hypothesis-generated
  graphs;
* **legacy dialect** (``preserve_match_order``): the same matches in
  the same *order* -- the naive matcher's ascending-id enumeration is
  observable through the legacy anomalies, so the planner must re-sort
  (or fall back) to it exactly;
* :func:`repro.runtime.match_planner.planner_disabled` routes matching
  through the naive reference even when planning is requested.

The corpus deliberately includes the planner's interesting cases:
selective anchors in non-leading position, multi-path patterns worth
reordering, variable-length steps (anchor pinned, order still
sortable), named paths (bindings must stay written-oriented), and
property maps referencing same-pattern variables (plan must keep the
validated evaluation order).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect import Dialect
from repro.graph.model import Node, Path, Relationship
from repro.graph.store import GraphStore
from repro.testing.invariants import check_invariants
from repro.parser import parse
from repro.runtime.context import EvalContext, MatchMode
from repro.runtime.match_planner import planner_disabled
from repro.runtime.matcher import match_paths
from repro.session import Graph

#: Random small graphs: up to 6 nodes labeled A/B, up to 10 typed edges.
graphs = st.builds(
    lambda node_specs, edge_specs: (node_specs, edge_specs),
    st.lists(st.sampled_from(["A", "B"]), min_size=1, max_size=6),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.sampled_from(["T", "S"]),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=10,
    ),
)

PATTERNS = [
    # single paths, anchors in every position
    "(a)-[r1:T]->(b)",
    "(a)-[r1:T]->(b:B {i: 0})",
    "(a:A {i: 1})-[r1]->(b)",
    "(a)-[r1]->(b)<-[r2:T]-(c:B {i: 0})",
    "(a)-[r1]-(b)",
    "(a)-[r1:T]->(a)",
    # multi-path patterns worth reordering
    "(a), (b:B {i: 0})-[r1:T]->(c)",
    "(a:A), (b:B)",
    "(a)-[r1:T]->(b), (c:A {i: 1})",
    "(x)-[r1:T]->(y), (y)-[r2:S]->(z)",
    # variable-length (anchor pinned to 0, order still reconstructible)
    "(a)-[rs:T*0..2]->(b)",
    "(a)-[rs:T*1..2]->(b:B {i: 0})",
    "(a), (b)-[rs:T*1..2]->(c:B {i: 0})",
    # ... reordered ahead of a scan: var-length sort keys are exercised
    "(a), (b:B {i: 0})-[rs:T*1..2]->(c)",
    "(a), (b:B {i: 0})-[r1:T]->(c)-[rs:S*0..2]->(d)",
    # named path: bindings must stay written-oriented
    "p = (a)-[r1:T]->(b:B {i: 0})",
    # property map referencing a same-pattern variable
    "(a:A)-[r1:T]->(b), (c {i: a.i})",
    "(a)-[r1:T]->(b {i: a.i})",
]


def build_store(spec):
    node_specs, edge_specs = spec
    store = GraphStore()
    ids = [
        store.create_node((label,), {"i": index})
        for index, label in enumerate(node_specs)
    ]
    for source, rel_type, target in edge_specs:
        if source < len(ids) and target < len(ids):
            store.create_relationship(rel_type, ids[source], ids[target])
    # Indexes make the planner actually prefer non-leading anchors.
    store.create_index("A", "i")
    store.create_index("B", "i")
    return store


def paths_of(source):
    statement = parse(f"MATCH {source} RETURN 1 AS one", Dialect.REVISED)
    return statement.branches()[0].clauses[0].pattern.paths


def canon(value):
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, Path):
        return (
            "path",
            tuple(n.id for n in value.nodes),
            tuple(r.id for r in value.relationships),
        )
    if isinstance(value, list):
        return ("list", tuple(canon(item) for item in value))
    return ("value", value)


def enumerate_matches(
    store,
    paths,
    *,
    planned,
    preserve=False,
    mode=MatchMode.TRAIL,
):
    ctx = EvalContext(
        store=store,
        match_mode=mode,
        use_planner=planned,
        preserve_match_order=preserve,
    )
    return [
        tuple(sorted((name, canon(value)) for name, value in bindings.items()))
        for bindings in match_paths(ctx, paths, {})
    ]


class TestCorpusEquivalence:
    """Fixed corpus over a deterministic graph, all three contracts."""

    def fixture_store(self):
        return build_store(
            (
                ["A", "B", "A", "B", "A", "B"],
                [
                    (0, "T", 1),
                    (1, "T", 2),
                    (2, "S", 3),
                    (3, "T", 0),
                    (4, "T", 4),
                    (0, "S", 5),
                    (5, "T", 1),
                    (2, "T", 1),
                ],
            )
        )

    def test_same_multiset_revised(self):
        store = self.fixture_store()
        for pattern in PATTERNS:
            paths = paths_of(pattern)
            naive = enumerate_matches(store, paths, planned=False)
            planned = enumerate_matches(store, paths, planned=True)
            assert Counter(planned) == Counter(naive), pattern

    def test_same_order_legacy(self):
        store = self.fixture_store()
        for pattern in PATTERNS:
            paths = paths_of(pattern)
            naive = enumerate_matches(store, paths, planned=False)
            planned = enumerate_matches(
                store, paths, planned=True, preserve=True
            )
            assert planned == naive, pattern

    def test_same_multiset_homomorphism(self):
        store = self.fixture_store()
        for pattern in PATTERNS:
            paths = paths_of(pattern)
            naive = enumerate_matches(
                store, paths, planned=False, mode=MatchMode.HOMOMORPHISM
            )
            planned = enumerate_matches(
                store, paths, planned=True, mode=MatchMode.HOMOMORPHISM
            )
            assert Counter(planned) == Counter(naive), pattern

    def test_planner_disabled_is_naive(self):
        store = self.fixture_store()
        for pattern in PATTERNS:
            paths = paths_of(pattern)
            naive = enumerate_matches(store, paths, planned=False)
            with planner_disabled():
                escaped = enumerate_matches(store, paths, planned=True)
            # Not just the same multiset: identical enumeration order,
            # because the escape hatch runs the reference matcher.
            assert escaped == naive, pattern


class TestHypothesisEquivalence:
    @given(spec=graphs, pattern=st.sampled_from(PATTERNS))
    @settings(max_examples=120, deadline=None)
    def test_same_multiset_revised(self, spec, pattern):
        store = build_store(spec)
        paths = paths_of(pattern)
        naive = enumerate_matches(store, paths, planned=False)
        planned = enumerate_matches(store, paths, planned=True)
        assert Counter(planned) == Counter(naive)
        # Matching is read-only: the store must come out uncorrupted.
        check_invariants(store)

    @given(spec=graphs, pattern=st.sampled_from(PATTERNS))
    @settings(max_examples=120, deadline=None)
    def test_same_order_legacy(self, spec, pattern):
        store = build_store(spec)
        paths = paths_of(pattern)
        naive = enumerate_matches(store, paths, planned=False)
        planned = enumerate_matches(
            store, paths, planned=True, preserve=True
        )
        assert planned == naive
        check_invariants(store)


class TestEndToEndLegacy:
    """The legacy executor's anomalies stay bit-for-bit reproducible."""

    @staticmethod
    def _seeded(use_planner):
        g = Graph(Dialect.CYPHER9, use_planner=use_planner)
        g.run("UNWIND range(0, 9) AS i CREATE (:A {i: i})")
        g.run("CREATE (:K {id: 0})")
        g.run("MATCH (a:A), (k:K) CREATE (k)-[:T]->(a)")
        g.create_index("K", "id")
        return g

    @staticmethod
    def _graph_fingerprint(g):
        return [
            (node.id, tuple(sorted(node.labels)), tuple(sorted(node.properties.items())))
            for node in g.store.nodes()
        ]

    def test_row_order_preserved(self):
        on, off = self._seeded(True), self._seeded(False)
        # The selective anchor is in second position: the planner wants
        # to run the (k)->(a) path first, so order preservation is
        # actually exercised.
        query = "MATCH (m:A), (k:K {id: 0})-[:T]->(a:A) RETURN m.i AS m, a.i AS a"
        assert on.run(query).records == off.run(query).records
        check_invariants(on.store)
        check_invariants(off.store)

    def test_legacy_merge_creation_order_preserved(self):
        on, off = self._seeded(True), self._seeded(False)
        # Legacy MERGE reads its own writes record by record, so which
        # node each record sees -- and therefore every created node id
        # -- depends on the driving-record order.
        query = (
            "MATCH (m:A), (k:K {id: 0})-[:T]->(a:A) "
            "MERGE (x:M {v: a.i})"
        )
        on.run(query)
        off.run(query)
        assert self._graph_fingerprint(on) == self._graph_fingerprint(off)
        check_invariants(on.store)
        check_invariants(off.store)

    def test_legacy_set_last_write_preserved(self):
        on, off = self._seeded(True), self._seeded(False)
        # Legacy SET applies per record in order; the surviving value
        # is the last record's, so it is order-observable.
        query = (
            "MATCH (m:A), (k:K {id: 0})-[:T]->(a:A) "
            "SET k.last = m.i * 100 + a.i"
        )
        on.run(query)
        off.run(query)
        assert self._graph_fingerprint(on) == self._graph_fingerprint(off)
        check_invariants(on.store)
        check_invariants(off.store)
