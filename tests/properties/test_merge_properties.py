"""Property-based tests of the MERGE semantics.

The heavy artillery of the reproduction: random driving tables are fed
through (a) the engine's cache-based implementation and (b) the literal
Section 8 create-then-quotient reference, and the resulting graphs must
agree up to id renaming -- for every one of the five variants, under
arbitrary record shuffles.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dialect, DrivingTable, Graph, MergeSemantics
from repro.core.merge import merge
from repro.formal import semantics as F
from repro.graph.comparison import isomorphic
from repro.parser import parse
from repro.runtime.context import EvalContext

PATTERNS = {
    "order": "MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})",
    "triple": (
        "MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})"
        "<-[:OFFERS]-(:User {id: vid})"
    ),
    "twin": "MERGE ALL (:N {id: cid})-[:T]->(:N {id: pid})",
    "named": (
        "MERGE ALL (u:User {id: cid})-[r:ORDERED]->(p:Product {id: pid})"
    ),
}


def pattern_of(name):
    statement = parse(PATTERNS[name], Dialect.REVISED)
    return statement.branches()[0].clauses[0].pattern


#: Small value pools make collisions (and therefore collapses) likely.
small_id = st.one_of(st.none(), st.integers(min_value=0, max_value=3))

rows = st.lists(
    st.fixed_dictionaries(
        {"cid": small_id, "pid": small_id, "vid": small_id}
    ),
    min_size=0,
    max_size=8,
)

semantics_strategy = st.sampled_from(list(MergeSemantics))
pattern_names = st.sampled_from(sorted(PATTERNS))


def run_engine(pattern_name, table_rows, semantics):
    graph = Graph(Dialect.REVISED)
    table = DrivingTable(("cid", "pid", "vid"), table_rows)
    ctx = EvalContext(store=graph.store)
    merge(ctx, pattern_of(pattern_name), table, semantics)
    return graph.snapshot()


def run_formal(pattern_name, table_rows, semantics):
    outcome = F.merge_variant(
        F.empty_graph(),
        pattern_of(pattern_name),
        tuple(dict(r) for r in table_rows),
        semantics.value,
    )
    return outcome.graph


class TestEngineMatchesFormalReference:
    @given(table_rows=rows, semantics=semantics_strategy, name=pattern_names)
    @settings(max_examples=120)
    def test_same_graph_up_to_id_renaming(self, table_rows, semantics, name):
        engine_graph = run_engine(name, table_rows, semantics)
        formal_graph = run_formal(name, table_rows, semantics)
        assert isomorphic(engine_graph, formal_graph)


class TestOrderInsensitivity:
    @given(
        table_rows=rows,
        semantics=semantics_strategy,
        name=pattern_names,
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=80)
    def test_shuffle_invariance(self, table_rows, semantics, name, seed):
        import random

        shuffled = list(table_rows)
        random.Random(seed).shuffle(shuffled)
        assert isomorphic(
            run_engine(name, table_rows, semantics),
            run_engine(name, shuffled, semantics),
        )


class TestVariantLattice:
    @given(table_rows=rows, name=pattern_names)
    @settings(max_examples=60)
    def test_sizes_decrease_along_the_proposals(self, table_rows, name):
        """Atomic >= Grouping >= Weak >= Collapse >= Strong, elementwise."""
        order = [
            MergeSemantics.ATOMIC,
            MergeSemantics.GROUPING,
            MergeSemantics.WEAK_COLLAPSE,
            MergeSemantics.COLLAPSE,
            MergeSemantics.STRONG_COLLAPSE,
        ]
        node_counts = []
        rel_counts = []
        for semantics in order:
            snapshot = run_engine(name, table_rows, semantics)
            node_counts.append(snapshot.order())
            rel_counts.append(snapshot.size())
        assert node_counts == sorted(node_counts, reverse=True)
        assert rel_counts == sorted(rel_counts, reverse=True)


class TestIdempotenceOfCollapse:
    @given(table_rows=rows, name=pattern_names)
    @settings(max_examples=60)
    def test_rerunning_merge_same_adds_nothing_for_nonnull_rows(
        self, table_rows, name
    ):
        non_null = [
            r
            for r in table_rows
            if r["cid"] is not None
            and r["pid"] is not None
            and r["vid"] is not None
        ]
        graph = Graph(Dialect.REVISED)
        table = DrivingTable(("cid", "pid", "vid"), non_null)
        ctx = EvalContext(store=graph.store)
        merge(ctx, pattern_of(name), table, MergeSemantics.STRONG_COLLAPSE)
        first = graph.snapshot()
        merge(
            ctx,
            pattern_of(name),
            DrivingTable(("cid", "pid", "vid"), non_null),
            MergeSemantics.STRONG_COLLAPSE,
        )
        second = graph.snapshot()
        assert isomorphic(first, second)


class TestMergeAllTableLaw:
    @given(table_rows=rows, name=pattern_names)
    @settings(max_examples=60)
    def test_output_has_at_least_input_cardinality(self, table_rows, name):
        # Every input record yields >= 1 output record (its matches or
        # its creation), per the MERGE ALL equation.
        graph = Graph(Dialect.REVISED)
        table = DrivingTable(("cid", "pid", "vid"), table_rows)
        ctx = EvalContext(store=graph.store)
        out = merge(ctx, pattern_of(name), table, MergeSemantics.ATOMIC)
        assert len(out) >= len(table_rows)


def _engine_table_signature(graph_snapshot, table):
    """Multiset of rows with entities replaced by content signatures."""
    from repro.graph.model import Node, Relationship

    rows = []
    for record in table:
        row = []
        for column in sorted(table.columns):
            value = record[column]
            if isinstance(value, Node):
                row.append(("node", graph_snapshot.node_signature(value.id)))
            elif isinstance(value, Relationship):
                row.append(("rel", graph_snapshot.rel_signature(value.id)))
            else:
                from repro.graph.values import grouping_key

                row.append(("val", repr(grouping_key(value))))
        rows.append(tuple(row))
    return sorted(map(repr, rows))


def _formal_table_signature(outcome):
    from repro.graph.values import grouping_key

    rows = []
    for record in outcome.table:
        row = []
        for column in sorted(record):
            value = record[column]
            if isinstance(value, tuple) and len(value) == 2 and value[0] in (
                "node",
                "rel",
            ):
                kind, entity_id = value
                if kind == "node":
                    row.append(("node", outcome.graph.node_signature(entity_id)))
                else:
                    row.append(("rel", outcome.graph.rel_signature(entity_id)))
            else:
                row.append(("val", repr(grouping_key(value))))
        rows.append(tuple(row))
    return sorted(map(repr, rows))


class TestOutputTablesAgree:
    """The MERGE output *tables* also agree, up to entity renaming.

    Rows are compared after replacing entities by their content
    signatures -- a necessary condition for the formal table equality
    that is insensitive to id choice.
    """

    @given(table_rows=rows, semantics=semantics_strategy, name=pattern_names)
    @settings(max_examples=80)
    def test_row_signatures_match(self, table_rows, semantics, name):
        graph = Graph(Dialect.REVISED)
        table = DrivingTable(("cid", "pid", "vid"), table_rows)
        ctx = EvalContext(store=graph.store)
        out = merge(ctx, pattern_of(name), table, semantics)
        engine_sig = _engine_table_signature(graph.snapshot(), out)

        outcome = F.merge_variant(
            F.empty_graph(),
            pattern_of(name),
            tuple(dict(r) for r in table_rows),
            semantics.value,
        )
        formal_sig = _formal_table_signature(outcome)
        assert engine_sig == formal_sig
