"""The grouped-adjacency arrays vs a naive dict-of-sets model.

The columnar store keeps per-(node, direction) relationship ids in
flat grouped arrays (``_AdjacencyHalf``); the matcher's candidate
enumeration (:meth:`GraphStore.adjacent_rel_ids`) promises ascending,
deduplicated ids for any direction/type filter.  This property test
drives the store through random interleaved create / delete / undo
scripts and checks the contract against an obviously-correct model:
one ``set`` of rel ids per (node, direction), rebuilt-free, with
snapshots taken at journal marks for undo.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.store import GraphStore
from repro.testing.invariants import check_invariants

TYPES = ("T1", "T2", "T3")

#: op kinds, decoded with two integer operands against current state
OPS = (
    "create_node",
    "create_rel",
    "create_self_loop",
    "delete_rel",
    "delete_node",
    "mark",
    "rollback",
)

scripts = st.lists(
    st.tuples(
        st.sampled_from(OPS),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
    ),
    max_size=40,
)


class Model:
    """Naive adjacency bookkeeping: sets only, no ordering tricks."""

    def __init__(self):
        self.out = {}  # node -> set of rel ids
        self.inn = {}  # node -> set of rel ids
        self.rel_type = {}  # rel -> type string
        self.rel_ends = {}  # rel -> (source, target)

    def add_node(self, node_id):
        self.out[node_id] = set()
        self.inn[node_id] = set()

    def add_rel(self, rel_id, rel_type, source, target):
        self.rel_type[rel_id] = rel_type
        self.rel_ends[rel_id] = (source, target)
        self.out[source].add(rel_id)
        self.inn[target].add(rel_id)

    def remove_rel(self, rel_id):
        source, target = self.rel_ends.pop(rel_id)
        del self.rel_type[rel_id]
        self.out[source].discard(rel_id)
        self.inn[target].discard(rel_id)

    def remove_node(self, node_id):
        del self.out[node_id]
        del self.inn[node_id]

    def expected(self, node_id, outgoing, incoming, types):
        ids = set()
        if outgoing:
            ids |= self.out.get(node_id, set())
        if incoming:
            ids |= self.inn.get(node_id, set())
        if types is not None:
            ids = {r for r in ids if self.rel_type[r] in types}
        return sorted(ids)


def assert_contract(store, model):
    """adjacent_rel_ids matches the model for every filter shape."""
    for node_id in model.out:
        for outgoing, incoming in (
            (True, True), (True, False), (False, True)
        ):
            for types in (None, ("T1",), ("T2", "T3"), ("T1", "T1")):
                got = store.adjacent_rel_ids(
                    node_id,
                    outgoing=outgoing,
                    incoming=incoming,
                    types=types,
                )
                want = model.expected(
                    node_id,
                    outgoing,
                    incoming,
                    None if types is None else set(types),
                )
                assert got == want, (
                    f"node {node_id} outgoing={outgoing} "
                    f"incoming={incoming} types={types}: "
                    f"{got} != {want}"
                )
        assert store.out_degree(node_id) == len(model.out[node_id])
        assert store.in_degree(node_id) == len(model.inn[node_id])
        assert store.degree(node_id) == len(model.out[node_id]) + len(
            model.inn[node_id]
        )


@settings(max_examples=120, deadline=None)
@given(scripts)
def test_adjacency_matches_naive_model(script):
    store = GraphStore()
    model = Model()
    #: (journal mark, deep-copied model) pairs for undo
    stack = []

    for op, a, b in script:
        nodes = sorted(model.out)
        rels = sorted(model.rel_type)
        if op == "create_node":
            node_id = store.create_node(("N",) if a % 2 else (), {})
            model.add_node(node_id)
        elif op == "create_rel" and nodes:
            source = nodes[a % len(nodes)]
            target = nodes[b % len(nodes)]
            rel_type = TYPES[(a + b) % len(TYPES)]
            rel_id = store.create_relationship(rel_type, source, target, {})
            model.add_rel(rel_id, rel_type, source, target)
        elif op == "create_self_loop" and nodes:
            node = nodes[a % len(nodes)]
            rel_type = TYPES[b % len(TYPES)]
            rel_id = store.create_relationship(rel_type, node, node, {})
            model.add_rel(rel_id, rel_type, node, node)
        elif op == "delete_rel" and rels:
            rel_id = rels[a % len(rels)]
            store.delete_relationship(rel_id)
            model.remove_rel(rel_id)
        elif op == "delete_node" and nodes:
            node = nodes[a % len(nodes)]
            if not model.out[node] and not model.inn[node]:
                store.delete_node(node)
                model.remove_node(node)
        elif op == "mark":
            stack.append((store.mark(), copy.deepcopy(model)))
        elif op == "rollback" and stack:
            index = a % len(stack)
            mark, saved = stack[index]
            del stack[index:]
            store.rollback_to(mark)
            model = saved
        assert_contract(store, model)

    check_invariants(store)
