"""Parse -> unparse -> parse round-trip over the fuzzer's AST corpus.

The generator builds :mod:`repro.parser.ast` values directly, so its
corpus exercises combinations the hand-written parser tests never
spell out.  The round-trip property is the front-end contract: the
canonical rendering of any generator statement re-parses to an equal
AST, and unparsing is idempotent on the reparse.  (Statement equality
ignores the ``source`` field, so this compares structure.)
"""

from __future__ import annotations

import pytest

from repro.dialect import Dialect
from repro.parser.parser import parse
from repro.parser.unparse import unparse
from repro.testing.generator import case_for

#: (seed, count) per parametrised batch; small enough for tier-1, wide
#: enough to hit every clause and expression production many times.
BATCHES = [(seed, 60) for seed in range(4)]


def _statements(seed: int, count: int):
    for index in range(count):
        case = case_for(seed, index)
        dialect = Dialect.parse(case.dialect)
        for position, statement in enumerate(case.statements):
            yield f"{case.seed_key}[{position}]", dialect, statement


@pytest.mark.parametrize("seed,count", BATCHES)
def test_roundtrip_over_generator_corpus(seed, count):
    checked = 0
    for label, dialect, statement in _statements(seed, count):
        text = unparse(statement)
        reparsed = parse(text, dialect, extended_merge=True)
        assert reparsed == statement, (
            f"{label}: parse(unparse(ast)) changed the tree\n"
            f"  text: {text}"
        )
        assert unparse(reparsed) == text, (
            f"{label}: unparse is not idempotent\n  text: {text}"
        )
        checked += 1
    assert checked > 0


@pytest.mark.parametrize("seed,count", BATCHES[:2])
def test_merge_payloads_parse_in_both_shapes(seed, count):
    """Merge-kind patterns parse under every semantics keyword."""
    for index in range(count):
        case = case_for(seed, index)
        if case.kind != "merge":
            continue
        for keyword, dialect in [
            ("MERGE ALL", Dialect.REVISED),
            ("MERGE SAME", Dialect.REVISED),
            ("MERGE GROUPING", Dialect.REVISED),
            ("MERGE WEAK COLLAPSE", Dialect.REVISED),
            ("MERGE COLLAPSE", Dialect.REVISED),
            ("MERGE", Dialect.CYPHER9),
        ]:
            source = (
                "UNWIND $rows AS row "
                "WITH row.cid AS cid, row.pid AS pid "
                f"{keyword} {case.merge_pattern}"
            )
            statement = parse(source, dialect, extended_merge=True)
            reparsed = parse(
                unparse(statement), dialect, extended_merge=True
            )
            assert reparsed == statement
