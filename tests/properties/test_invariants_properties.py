"""The store-invariant oracle holds through random mutate+undo runs.

Complements ``test_store_properties`` (rollback restores graph content)
by asserting the *derived* structures -- live-entity counters, label
index, property-index buckets and reverse maps, typed adjacency,
degrees -- all agree with a from-scratch recount after arbitrary
mutation scripts, after journal rollback, and after partial rollbacks
interleaved with further mutation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.store import GraphStore
from repro.testing.invariants import (
    canonical_graph_json,
    check_invariants,
    journal_roundtrip,
)

from tests.properties.test_store_properties import apply_script, operations


def _store_with_indexes():
    store = GraphStore()
    store.create_index("A", "x")
    store.create_index("B", "y")
    return store


class TestInvariantsUnderMutation:
    @given(setup=operations)
    @settings(max_examples=60)
    def test_invariants_after_mutation(self, setup):
        store = _store_with_indexes()
        apply_script(store, setup)
        # apply_script may delete with allow_dangling=True mid-script.
        check_invariants(store, allow_dangling=True)

    @given(setup=operations, mutations=operations)
    @settings(max_examples=60)
    def test_invariants_after_rollback(self, setup, mutations):
        store = _store_with_indexes()
        apply_script(store, setup)
        store.commit_to(0)
        before = canonical_graph_json(store)
        mark = store.mark()
        apply_script(store, mutations)
        store.rollback_to(mark)
        assert canonical_graph_json(store) == before
        check_invariants(store, allow_dangling=True)

    @given(
        setup=operations,
        first=operations,
        second=operations,
    )
    @settings(max_examples=40)
    def test_partial_rollback_interleaved(self, setup, first, second):
        """Roll back only the second half; the first half persists."""
        store = _store_with_indexes()
        apply_script(store, setup)
        apply_script(store, first)
        middle = canonical_graph_json(store)
        mark = store.mark()
        apply_script(store, second)
        check_invariants(store, allow_dangling=True)
        store.rollback_to(mark)
        assert canonical_graph_json(store) == middle
        check_invariants(store, allow_dangling=True)

    @given(setup=operations, mutations=operations)
    @settings(max_examples=40)
    def test_journal_roundtrip_helper(self, setup, mutations):
        store = _store_with_indexes()
        apply_script(store, setup)
        store.commit_to(0)
        journal_roundtrip(
            store,
            lambda: apply_script(store, mutations),
            allow_dangling=True,
        )
