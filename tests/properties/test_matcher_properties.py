"""Property-based tests of the pattern matcher.

Invariants checked on random small graphs:

* mirroring a path pattern (the planner's rewrite) preserves the match
  set exactly;
* trail matches never bind two relationship patterns to the same
  relationship;
* the homomorphism match set contains the trail match set;
* matching is insensitive to node creation order (determinism of the
  result *bag* given a graph).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect import Dialect
from repro.graph.store import GraphStore
from repro.parser import parse
from repro.runtime.context import EvalContext, MatchMode
from repro.runtime.matcher import match_paths
from repro.runtime.planner import reverse_path

#: A random small graph: up to 5 nodes with one of two labels, up to 8
#: edges with one of two types.
graphs = st.builds(
    lambda node_specs, edge_specs: (node_specs, edge_specs),
    st.lists(st.sampled_from(["A", "B"]), min_size=1, max_size=5),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.sampled_from(["T", "S"]),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=8,
    ),
)

PATTERNS = [
    "(a)-[r1:T]->(b)",
    "(a:A)-[r1]->(b)<-[r2:T]-(c)",
    "(a)-[r1:T]->(b)-[r2:S]->(c)",
    "(a)-[r1]->(a)",
    "(a:A)-[r1:T]-(b:B)",
]


def build_store(spec):
    node_specs, edge_specs = spec
    store = GraphStore()
    ids = [
        store.create_node((label,), {"i": index})
        for index, label in enumerate(node_specs)
    ]
    for source, rel_type, target in edge_specs:
        if source < len(ids) and target < len(ids):
            store.create_relationship(rel_type, ids[source], ids[target])
    return store


def path_of(source):
    statement = parse(f"MATCH {source} RETURN 1 AS one", Dialect.REVISED)
    return statement.branches()[0].clauses[0].pattern.paths[0]


def match_set(store, path, mode=MatchMode.TRAIL):
    ctx = EvalContext(store=store, match_mode=mode)
    result = set()
    for bindings in match_paths(ctx, (path,), {}):
        result.add(
            tuple(
                sorted(
                    (name, value.id, type(value).__name__)
                    for name, value in bindings.items()
                )
            )
        )
    return result


class TestMirrorInvariance:
    @given(spec=graphs, pattern=st.sampled_from(PATTERNS))
    @settings(max_examples=120)
    def test_reversed_pattern_same_matches(self, spec, pattern):
        store = build_store(spec)
        path = path_of(pattern)
        assert match_set(store, path) == match_set(store, reverse_path(path))


class TestTrailInvariants:
    @given(spec=graphs, pattern=st.sampled_from(PATTERNS[:3]))
    @settings(max_examples=120)
    def test_relationship_patterns_bind_distinct_relationships(
        self, spec, pattern
    ):
        store = build_store(spec)
        path = path_of(pattern)
        ctx = EvalContext(store=store)
        for bindings in match_paths(ctx, (path,), {}):
            rel_ids = [
                value.id
                for name, value in bindings.items()
                if name.startswith("r")
            ]
            assert len(rel_ids) == len(set(rel_ids))

    @given(spec=graphs, pattern=st.sampled_from(PATTERNS))
    @settings(max_examples=120)
    def test_homomorphism_contains_trail(self, spec, pattern):
        store = build_store(spec)
        path = path_of(pattern)
        trail = match_set(store, path, MatchMode.TRAIL)
        hom = match_set(store, path, MatchMode.HOMOMORPHISM)
        assert trail <= hom


class TestDeterminism:
    @given(spec=graphs, pattern=st.sampled_from(PATTERNS))
    @settings(max_examples=60)
    def test_two_runs_identical(self, spec, pattern):
        store = build_store(spec)
        path = path_of(pattern)
        ctx = EvalContext(store=store)
        first = [
            sorted((k, v.id) for k, v in m.items())
            for m in match_paths(ctx, (path,), {})
        ]
        second = [
            sorted((k, v.id) for k, v in m.items())
            for m in match_paths(ctx, (path,), {})
        ]
        assert first == second
