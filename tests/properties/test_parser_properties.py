"""Property-based round-trip tests of the parser/unparser.

Random ASTs are generated structurally, unparsed to text, re-parsed and
compared: ``parse(unparse(ast)) == ast`` for every statement the
generator can produce.  This exercises precedence printing, pattern
rendering and dialect keywords far beyond the hand-written cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect import Dialect
from repro.parser import ast, parse
from repro.parser.unparse import unparse

names = st.sampled_from(["a", "b", "n", "m", "x9", "user"])
labels = st.sampled_from(["User", "Product", "Vendor", "Order"])
rel_types = st.sampled_from(["T", "ORDERED", "OFFERS"])
keys = st.sampled_from(["id", "name", "v"])

literals = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=0, max_value=999),
    st.floats(
        min_value=0.0,
        max_value=100.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    st.text(
        alphabet="abc XYZ_0",
        max_size=6,
    ),
).map(ast.Literal)


def expressions():
    binary_ops = st.sampled_from(
        ["+", "-", "*", "/", "%", "^", "=", "<>", "<", "<=", ">", ">=",
         "AND", "OR", "XOR", "IN", "STARTS WITH", "ENDS WITH", "CONTAINS"]
    )

    def extend(children):
        return st.one_of(
            st.builds(ast.Binary, binary_ops, children, children),
            st.builds(
                ast.Unary, st.sampled_from(["NOT", "-", "+"]), children
            ),
            st.builds(ast.Property, st.builds(ast.Variable, names), keys),
            st.builds(ast.IsNull, children, st.booleans()),
            st.builds(
                ast.FunctionCall,
                st.sampled_from(["size", "coalesce", "toupper"]),
                st.tuples(children),
                st.just(False),
            ),
            st.builds(
                ast.ListLiteral, st.lists(children, max_size=3).map(tuple)
            ),
            st.builds(
                ast.CaseExpression,
                st.one_of(st.none(), children),
                st.lists(
                    st.tuples(children, children), min_size=1, max_size=2
                ).map(tuple),
                st.one_of(st.none(), children),
            ),
            st.builds(ast.Subscript, st.builds(ast.Variable, names), children),
        )

    return st.recursive(
        st.one_of(
            literals,
            st.builds(ast.Variable, names),
            st.builds(ast.Parameter, names),
        ),
        extend,
        max_leaves=10,
    )


property_maps = st.one_of(
    st.none(),
    st.builds(
        ast.MapLiteral,
        st.lists(st.tuples(keys, literals), max_size=2, unique_by=lambda t: t[0]).map(
            tuple
        ),
    ),
)

node_patterns = st.builds(
    ast.NodePattern,
    st.one_of(st.none(), names),
    st.lists(labels, max_size=2, unique=True).map(tuple),
    property_maps,
)

directed_rels = st.builds(
    ast.RelationshipPattern,
    st.one_of(st.none(), names),
    rel_types.map(lambda t: (t,)),
    property_maps,
    st.sampled_from([ast.OUT, ast.IN]),
    st.none(),
)


@st.composite
def directed_paths(draw):
    length = draw(st.integers(min_value=0, max_value=2))
    # Distinct relationship variables would shadow node variables; keep
    # pattern variables anonymous except for the nodes.
    elements = [draw(node_patterns)]
    for __ in range(length):
        rel = draw(directed_rels)
        elements.append(
            ast.RelationshipPattern(
                variable=None,
                types=rel.types,
                properties=rel.properties,
                direction=rel.direction,
            )
        )
        elements.append(draw(node_patterns))
    return ast.PathPattern(variable=None, elements=tuple(elements))


def merge_clauses():
    return st.builds(
        ast.MergeClause,
        st.builds(
            ast.Pattern,
            st.lists(directed_paths(), min_size=1, max_size=2).map(tuple),
        ),
        st.sampled_from([ast.MERGE_ALL, ast.MERGE_SAME]),
    )


statements = st.one_of(
    # MATCH ... RETURN expr AS x
    st.builds(
        lambda path, expr: ast.Statement(
            ast.SingleQuery(
                (
                    ast.MatchClause(ast.Pattern((path,))),
                    ast.ReturnClause(
                        ast.ProjectionBody(
                            items=(ast.ProjectionItem(expr, alias="out"),)
                        )
                    ),
                )
            )
        ),
        directed_paths(),
        expressions(),
    ),
    # CREATE pattern
    st.builds(
        lambda path: ast.Statement(
            ast.SingleQuery((ast.CreateClause(ast.Pattern((path,))),))
        ),
        directed_paths(),
    ),
    # MERGE ALL/SAME pattern tuple
    st.builds(
        lambda clause: ast.Statement(ast.SingleQuery((clause,))),
        merge_clauses(),
    ),
)


class TestRoundTrip:
    @given(statement=statements)
    @settings(max_examples=200)
    def test_parse_unparse_parse_fixpoint(self, statement):
        text = unparse(statement)
        reparsed = parse(text, Dialect.REVISED)
        assert unparse(reparsed) == text

    @given(expr=expressions())
    @settings(max_examples=200)
    def test_expression_round_trip(self, expr):
        from repro.parser import parse_expression

        text = unparse(expr)
        reparsed = parse_expression(text)
        assert unparse(reparsed) == text
