"""Fuzzing the front end: garbage in, CypherSyntaxError out.

Whatever bytes arrive, the lexer/parser must either produce a statement
or raise :class:`CypherSyntaxError` -- never an IndexError, RecursionError
or other internal failure.  Mutated real statements keep the fuzzer
close to the interesting grammar paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect import Dialect
from repro.errors import CypherError, CypherSyntaxError
from repro.parser import ast, parse
from repro.parser.lexer import tokenize

SEED_STATEMENTS = [
    "MATCH (u:User {id: 89}) CREATE (u)-[:ORDERED]->(:P {id: 0})",
    "MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})",
    "MATCH (a)-[:T*1..3]->(b) WHERE a.x > 1 RETURN count(*) AS c",
    "FOREACH (x IN [1, 2] | CREATE (:N {v: x}))",
    "MATCH (n) SET n.x = 1, n += {y: 2} REMOVE n:Old DETACH DELETE n",
    "UNWIND [1, 2] AS x WITH x WHERE x > 1 RETURN x ORDER BY x LIMIT 1",
    "CREATE CONSTRAINT ON (u:User) ASSERT u.id IS UNIQUE",
]

garbage = st.text(
    alphabet=st.sampled_from(
        list("()[]{}<>-=+*/%^.,:;|'\"`$ \n\tabzMATCHRETURNmergeall019_")
    ),
    max_size=60,
)


@st.composite
def mutated_statement(draw):
    source = draw(st.sampled_from(SEED_STATEMENTS))
    action = draw(st.integers(min_value=0, max_value=3))
    position = draw(st.integers(min_value=0, max_value=max(len(source) - 1, 0)))
    if action == 0:  # delete a span
        length = draw(st.integers(min_value=1, max_value=5))
        return source[:position] + source[position + length:]
    if action == 1:  # insert noise
        noise = draw(garbage)
        return source[:position] + noise + source[position:]
    if action == 2:  # duplicate a span
        length = draw(st.integers(min_value=1, max_value=8))
        span = source[position : position + length]
        return source[:position] + span + source[position:]
    return source[::-1]  # reverse everything


class TestParserNeverCrashes:
    @given(source=garbage)
    @settings(max_examples=300)
    def test_random_text(self, source):
        self._try(source)

    @given(source=mutated_statement())
    @settings(max_examples=300)
    def test_mutated_statements(self, source):
        self._try(source)

    @staticmethod
    def _try(source):
        for dialect in (Dialect.CYPHER9, Dialect.REVISED):
            try:
                statement = parse(source, dialect)
            except CypherSyntaxError:
                continue
            except RecursionError:
                # Deeply nested inputs may legitimately exhaust the
                # recursive-descent stack; that is an accepted limit,
                # not a crash with corrupted state.
                continue
            assert isinstance(statement, (ast.Statement, ast.SchemaStatement))


class TestLexerNeverCrashes:
    @given(source=st.text(max_size=80))
    @settings(max_examples=300)
    def test_arbitrary_unicode(self, source):
        try:
            tokens = tokenize(source)
        except CypherSyntaxError:
            return
        assert tokens[-1].type == "EOF"


class TestExecutionOfParsedGarbage:
    """If mutated text parses, executing it must still fail cleanly."""

    @given(source=mutated_statement())
    @settings(max_examples=150)
    def test_execute_or_cypher_error(self, source):
        from repro import Graph

        graph = Graph(Dialect.REVISED)
        graph.run("CREATE (:User {id: 89})-[:ORDERED]->(:P {id: 0})")
        before = graph.snapshot()
        try:
            graph.run(source)
        except CypherError:
            from repro.graph.comparison import isomorphic

            assert isomorphic(graph.snapshot(), before)
        except RecursionError:
            pass
