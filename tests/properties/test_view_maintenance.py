"""Incremental view maintenance == re-execution, as a property.

Three promises from ``repro.views`` under random write scripts:

* **Equivalence**: after every committed statement, each registered
  view's maintained result equals a fresh execution of its query on
  the same store -- exactly (rows, order, entity ids) for Cypher 9
  views, as a row multiset for revised ones.
* **Invalidation precision**: commits whose redo ops are provably
  irrelevant to a view's footprint return the *same cached object*
  from :meth:`View.result` -- callers may use identity as a
  no-change fast path.
* **Rollback isolation**: statements inside a rolled-back transaction
  never reach a view; the published result object is untouched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect import Dialect
from repro.engine import CypherEngine
from repro.errors import CypherError
from repro.graph.store import GraphStore
from repro.testing.differential import canonical_rows
from repro.views import ViewRegistry

#: (source, dialect) pairs mixing delta-maintained and fallback shapes.
VIEWS = (
    ("MATCH (a:A)-[r:T]->(b) RETURN a AS a, r AS r, b AS b", "revised"),
    ("MATCH (n:A) RETURN n AS n, n.i AS i, n.k AS k", "cypher9"),
    ("MATCH (n:B) RETURN count(*) AS c", "revised"),
    ("MATCH (a:A)-[:T]->(b:B) WHERE b.i > 1 RETURN b.i AS i", "cypher9"),
)

#: op templates, instantiated with two small integers (x, y)
WRITES = (
    "CREATE (:A {{i: {x}}})",
    "CREATE (:B {{i: {x}}})",
    "MATCH (a:A {{i: {x}}}) MATCH (b:B) CREATE (a)-[:T {{w: {y}}}]->(b)",
    "MATCH (n:A {{i: {x}}}) SET n.k = {y}",
    "MATCH (n:A {{i: {x}}}) SET n:B",
    "MATCH (n:B {{i: {x}}}) REMOVE n:B",
    "MATCH (n {{i: {x}}}) DETACH DELETE n",
    "MATCH ()-[r:T]->() WHERE r.w = {y} DELETE r",
)

scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(WRITES) - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=14,
)


def _setup(views=VIEWS):
    store = GraphStore()
    engine = CypherEngine(
        store, dialect=Dialect.REVISED, extended_merge=True
    )
    for statement in (
        "CREATE (:A {i: 0})-[:T {w: 0}]->(:B {i: 1})",
        "CREATE (:A {i: 1, k: 2})",
        "CREATE (:B {i: 2})",
    ):
        engine.execute(statement)
    registry = ViewRegistry(store)
    registered = [
        registry.register(source, dialect=dialect)
        for source, dialect in views
    ]
    return store, engine, registry, registered


def _recompute(store, view):
    engine = CypherEngine(
        store,
        dialect=view.dialect,
        extended_merge=True,
        use_planner=False,
    )
    return engine.execute(view.statement, view.parameters)


def _assert_equivalent(store, view):
    maintained = view.result()
    recomputed = _recompute(store, view)
    assert tuple(recomputed.columns) == tuple(maintained.columns)
    want = canonical_rows(recomputed.records, with_ids=True)
    got = canonical_rows(list(maintained.records), with_ids=True)
    if view.dialect is Dialect.CYPHER9:
        assert got == want
    else:
        assert sorted(map(repr, got)) == sorted(map(repr, want))


@settings(max_examples=40, deadline=None)
@given(scripts)
def test_maintained_equals_recomputed_after_every_commit(script):
    store, engine, registry, views = _setup()
    try:
        for op, x, y in script:
            try:
                engine.execute(WRITES[op].format(x=x, y=y))
            except CypherError:
                continue
            for view in views:
                _assert_equivalent(store, view)
    finally:
        registry.close()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_irrelevant_commits_preserve_object_identity(script):
    """Writes touching only :Z never invalidate an :A-:B path view."""
    irrelevant = (
        "CREATE (:Z {{z: {x}}})",
        "MATCH (n:Z) SET n.z = {x}",
        "MATCH (n:Z {{z: {x}}}) DETACH DELETE n",
    )
    store, engine, registry, views = _setup(
        views=(
            (
                "MATCH (a:A)-[:T]->(b:B) RETURN a.i AS ai, b.i AS bi",
                "revised",
            ),
        )
    )
    view = views[0]
    try:
        baseline = view.result()
        for op, x in script:
            try:
                engine.execute(irrelevant[op].format(x=x))
            except CypherError:
                continue
            current = view.result()
            assert current is baseline
            assert current.lsn >= baseline.lsn
        # ...and the cached result is still the true one.
        _assert_equivalent(store, view)
    finally:
        registry.close()


@settings(max_examples=25, deadline=None)
@given(scripts)
def test_rollback_leaves_views_untouched(script):
    store, engine, registry, views = _setup()
    try:
        before = [view.result() for view in views]
        mark = store.begin_transaction()
        try:
            for op, x, y in script:
                try:
                    engine.execute(WRITES[op].format(x=x, y=y))
                except CypherError:
                    continue
                # Mid-transaction reads serve the last published
                # result; uncommitted effects must stay invisible.
                for view, published in zip(views, before):
                    assert view.result() is published
        finally:
            store.rollback_transaction(mark)
        for view, published in zip(views, before):
            assert view.result() is published
            _assert_equivalent(store, view)
    finally:
        registry.close()
