"""Property-based cross-validation of SET / DELETE / CREATE.

Random workloads run through the engine's implementations and through
the pure formal reference of :mod:`repro.formal`; outcomes (including
error outcomes) must agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dialect, DrivingTable, Graph
from repro.errors import DanglingRelationshipError, PropertyConflictError
from repro.formal import semantics as F
from repro.graph.comparison import isomorphic
from repro.parser import parse


def pattern_of(source):
    statement = parse(
        "MERGE ALL " + source, Dialect.REVISED, extended_merge=True
    )
    return statement.branches()[0].clauses[0].pattern


def base_graph():
    """Three :N nodes (ids 0..2) with a property, plus one edge 0->1."""
    graph = Graph(Dialect.REVISED)
    for i in range(3):
        graph.create_node("N", id=i, v=i * 10)
    graph.create_relationship(0, "T", 1, w=1)
    graph.store.commit_to(0)
    return graph


def base_snapshot():
    return base_graph().snapshot()


#: Random write sets: (node index, key, value-or-None).
writes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["v", "x"]),
        st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    ),
    max_size=6,
)


class TestAtomicSetAgreesWithFormal:
    @given(ws=writes)
    @settings(max_examples=150)
    def test_same_outcome(self, ws):
        # Formal reference.
        formal_error = None
        formal_graph = None
        try:
            formal_graph = F.set_properties(
                base_snapshot(),
                tuple(
                    (F.node_tag(node), key, value)
                    for node, key, value in ws
                ),
            )
        except PropertyConflictError:
            formal_error = True
        # Engine: drive the same writes through an atomic SET clause,
        # one SetProperty item per write over a one-row table.
        graph = base_graph()
        table = DrivingTable(
            ("n0", "n1", "n2"),
            [{f"n{i}": graph.store.node(i) for i in range(3)}],
        )
        items = ", ".join(
            f"n{node}.{key} = "
            + ("null" if value is None else str(value))
            for node, key, value in ws
        )
        engine_error = None
        if ws:
            try:
                graph.run(f"SET {items}", table=table)
            except PropertyConflictError:
                engine_error = True
        assert engine_error == formal_error
        if formal_error is None and formal_graph is not None:
            assert isomorphic(graph.snapshot(), formal_graph)


#: Random deletion requests over the 3-node/1-edge base graph.
deletions = st.tuples(
    st.sets(st.integers(min_value=0, max_value=2), max_size=3),
    st.booleans(),  # also delete the edge?
    st.booleans(),  # detach?
)


class TestStrictDeleteAgreesWithFormal:
    @given(request=deletions)
    @settings(max_examples=150)
    def test_same_outcome(self, request):
        nodes, delete_edge, detach = request
        formal_error = None
        formal_graph = None
        try:
            formal_graph = F.delete_entities(
                base_snapshot(),
                frozenset(nodes),
                frozenset({0} if delete_edge else set()),
                detach=detach,
            )
        except DanglingRelationshipError:
            formal_error = True

        graph = base_graph()
        record = {f"n{i}": graph.store.node(i) for i in range(3)}
        record["r"] = graph.store.relationship(0)
        table = DrivingTable(tuple(record), [record])
        targets = [f"n{i}" for i in sorted(nodes)]
        if delete_edge:
            targets.append("r")
        engine_error = None
        if targets:
            keyword = "DETACH DELETE" if detach else "DELETE"
            try:
                graph.run(f"{keyword} {', '.join(targets)}", table=table)
            except DanglingRelationshipError:
                engine_error = True
        assert engine_error == formal_error
        if formal_error is None and formal_graph is not None:
            assert isomorphic(graph.snapshot(), formal_graph)


#: Random CREATE rows for a two-node path pattern.
create_rows = st.lists(
    st.fixed_dictionaries(
        {
            "a": st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
            "b": st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
        }
    ),
    max_size=5,
)


class TestCreateAgreesWithFormal:
    @given(rows=create_rows)
    @settings(max_examples=100)
    def test_same_graph(self, rows):
        pattern = pattern_of("(:A {x: a})-[:T {y: b}]->(:B {x: b})")
        formal = F.create(
            F.empty_graph(), pattern, tuple(dict(r) for r in rows)
        )
        graph = Graph(Dialect.REVISED)
        if rows:
            graph.run(
                "CREATE (:A {x: a})-[:T {y: b}]->(:B {x: b})",
                table=DrivingTable(("a", "b"), rows),
            )
        assert isomorphic(graph.snapshot(), formal.graph)
