"""Property-based tests of the store: rollback is a perfect inverse."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.errors import CypherError
from repro.graph.comparison import isomorphic
from repro.graph.store import GraphStore

#: Small pools of labels / keys / values keep collisions frequent.
labels = st.lists(
    st.sampled_from(["A", "B", "C"]), max_size=2, unique=True
)
keys = st.sampled_from(["x", "y", "z"])
prop_values = st.one_of(
    st.integers(min_value=0, max_value=5), st.sampled_from(["s", "t"])
)

#: A random mutation script: list of (op, args) tuples interpreted
#: against whatever entities exist at that point.
operations = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "create_node",
                "create_rel",
                "delete_rel",
                "delete_node",
                "set_prop",
                "add_label",
                "remove_label",
            ]
        ),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=25,
)


def apply_script(store, script):
    """Drive the store through a mutation script, ignoring misses."""
    for op, a, b in script:
        node_ids = [n.id for n in store.nodes()]
        rel_ids = [r.id for r in store.relationships()]
        try:
            if op == "create_node":
                store.create_node(("A",) if a % 2 else (), {"x": a})
            elif op == "create_rel" and len(node_ids) >= 1:
                store.create_relationship(
                    "T",
                    node_ids[a % len(node_ids)],
                    node_ids[b % len(node_ids)],
                    {"w": b},
                )
            elif op == "delete_rel" and rel_ids:
                store.delete_relationship(rel_ids[a % len(rel_ids)])
            elif op == "delete_node" and node_ids:
                store.delete_node(
                    node_ids[a % len(node_ids)], allow_dangling=bool(b % 2)
                )
            elif op == "set_prop" and node_ids:
                store.set_node_property(
                    node_ids[a % len(node_ids)],
                    "xyz"[b % 3],
                    a if a % 3 else None,
                )
            elif op == "add_label" and node_ids:
                store.add_label(node_ids[a % len(node_ids)], "ABC"[b % 3])
            elif op == "remove_label" and node_ids:
                store.remove_label(node_ids[a % len(node_ids)], "ABC"[b % 3])
        except CypherError:
            pass  # strict deletes of attached nodes etc.


class TestRollbackInverse:
    @given(setup=operations, mutations=operations)
    @settings(max_examples=80)
    def test_rollback_restores_snapshot(self, setup, mutations):
        store = GraphStore()
        apply_script(store, setup)
        before = store.snapshot()
        mark = store.mark()
        apply_script(store, mutations)
        store.rollback_to(mark)
        assert isomorphic(store.snapshot(), before)

    @given(setup=operations, mutations=operations)
    @settings(max_examples=40)
    def test_rollback_restores_label_index(self, setup, mutations):
        store = GraphStore()
        apply_script(store, setup)
        before = {
            label: store.nodes_with_label(label) for label in ("A", "B", "C")
        }
        mark = store.mark()
        apply_script(store, mutations)
        store.rollback_to(mark)
        after = {
            label: store.nodes_with_label(label) for label in ("A", "B", "C")
        }
        assert before == after

    @given(setup=operations)
    @settings(max_examples=40)
    def test_copy_round_trip(self, setup):
        store = GraphStore()
        apply_script(store, setup)
        # copy() skips dangling relationships, so compare against the
        # dangling-free projection of the original.
        assert isomorphic(
            store.copy().snapshot(),
            store.snapshot(include_dangling=False),
        )


class PropertyIndexMachine(RuleBasedStateMachine):
    """Stateful test: the property index always agrees with a rescan."""

    def __init__(self):
        super().__init__()
        self.store = GraphStore()
        self.index = self.store.create_index("A", "x")

    @initialize()
    def seed(self):
        self.store.create_node(("A",), {"x": 0})

    @rule(value=st.integers(min_value=0, max_value=3), labeled=st.booleans())
    def create(self, value, labeled):
        self.store.create_node(("A",) if labeled else (), {"x": value})

    @rule(pick=st.integers(min_value=0, max_value=30))
    def delete(self, pick):
        nodes = [n.id for n in self.store.nodes()]
        if nodes:
            self.store.delete_node(nodes[pick % len(nodes)])

    @rule(
        pick=st.integers(min_value=0, max_value=30),
        value=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    )
    def set_x(self, pick, value):
        nodes = [n.id for n in self.store.nodes()]
        if nodes:
            self.store.set_node_property(nodes[pick % len(nodes)], "x", value)

    @rule(pick=st.integers(min_value=0, max_value=30), add=st.booleans())
    def toggle_label(self, pick, add):
        nodes = [n.id for n in self.store.nodes()]
        if nodes:
            node_id = nodes[pick % len(nodes)]
            if add:
                self.store.add_label(node_id, "A")
            else:
                self.store.remove_label(node_id, "A")

    @invariant()
    def index_agrees_with_scan(self):
        for value in range(4):
            expected = frozenset(
                node.id
                for node in self.store.nodes()
                if node.has_label("A") and node.get("x") == value
            )
            assert self.index.lookup(value) == expected


TestPropertyIndexMachine = PropertyIndexMachine.TestCase


class TestTypedAdjacencyInvariant:
    @given(setup=operations, mutations=operations)
    @settings(max_examples=60)
    def test_typed_maps_agree_with_scans(self, setup, mutations):
        store = GraphStore()
        apply_script(store, setup)
        mark = store.mark()
        apply_script(store, mutations)
        store.rollback_to(mark)
        for node in store.nodes():
            for rel_type in ("T", "S"):
                expected_out = frozenset(
                    r
                    for r in store.out_relationships(node.id)
                    if store.rel_type(r) == rel_type
                )
                assert (
                    store.out_relationships_of_types(node.id, (rel_type,))
                    == expected_out
                )
                expected_in = frozenset(
                    r
                    for r in store.in_relationships(node.id)
                    if store.rel_type(r) == rel_type
                )
                assert (
                    store.in_relationships_of_types(node.id, (rel_type,))
                    == expected_in
                )
