"""Parallel-vs-serial equivalence of morsel-batched read execution.

The morsel scheduler claims *exact* agreement with the serial pipeline
-- same records, same order, same errors -- because every clause it
parallelises is record-local (see :mod:`repro.runtime.parallel`).
These tests hold it to that claim:

* a query corpus covering every record-local clause shape (and the
  serial suffixes behind them: aggregation, DISTINCT, ORDER BY, SKIP,
  LIMIT, mutation) on hypothesis-generated graphs, across worker
  counts 1/2/4, both dialects, planner on and off;
* the shrunk fuzz corpus replayed through the parallel variants;
* byte-identical ``to_json()`` output across repeated parallel runs
  (determinism is not just multiset equality);
* error ordering: the parallel scheduler raises exactly the error the
  serial executor would have hit first.

``parallel_min_rows(2)`` is active throughout so the small tables
these graphs produce still split into real morsels.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect import Dialect
from repro.errors import CypherError
from repro.runtime.parallel import parallel_min_rows
from repro.session import Graph

#: Random small graphs: up to 6 nodes labeled A/B, up to 10 typed edges.
graphs = st.builds(
    lambda node_specs, edge_specs: (node_specs, edge_specs),
    st.lists(st.sampled_from(["A", "B"]), min_size=1, max_size=6),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.sampled_from(["T", "S"]),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=10,
    ),
)

#: Read queries covering the record-local clause shapes and the serial
#: suffixes that must stay behind the parallel segment.
QUERIES = [
    "MATCH (a) RETURN a.i AS i",
    "MATCH (a:A)-[r:T]->(b) RETURN a.i AS x, b.i AS y",
    "MATCH (a)-[r]->(b) WHERE a.i < b.i RETURN a.i AS x, b.i AS y",
    "MATCH (a) OPTIONAL MATCH (a)-[r:T]->(b) RETURN a.i AS x, b.i AS y",
    "MATCH (a) OPTIONAL MATCH (a)-[r]->(b) WHERE b.i > 1 "
    "RETURN a.i AS x, b.i AS y",
    "MATCH (a) UNWIND [1, 2, 3] AS k RETURN a.i + k AS v",
    "UNWIND range(0, 9) AS k MATCH (a) WHERE a.i >= k RETURN k, a.i AS i",
    "MATCH (a) WITH a.i AS i WHERE i > 0 RETURN i",
    "MATCH (a) WITH a, a.i * 2 AS d MATCH (a)-[r]->(b) "
    "RETURN d, b.i AS y",
    "MATCH (a)-[rs:T*0..2]->(b) RETURN a.i AS x, b.i AS y, size(rs) AS n",
    "MATCH p = (a)-[r:T]->(b) RETURN length(p) AS n, a.i AS x",
    # serial suffixes: aggregation, DISTINCT, ORDER BY / SKIP / LIMIT
    "MATCH (a)-[r]->(b) RETURN count(*) AS c",
    "MATCH (a) RETURN a.i AS i, count(*) AS c",
    "MATCH (a)-[r]->(b) RETURN DISTINCT a.i AS i",
    "MATCH (a) RETURN a.i AS i ORDER BY i DESC SKIP 1 LIMIT 3",
    "MATCH (a) WITH a.i AS i ORDER BY i LIMIT 4 RETURN collect(i) AS c",
    # mutation behind a read prefix: the suffix must stay serial
    "MATCH (a:A) CREATE (a)-[:MADE]->(:C {j: a.i})",
    "MATCH (a) SET a.seen = true",
]


def build(spec) -> Graph:
    node_specs, edge_specs = spec
    graph = Graph(Dialect.REVISED)
    nodes = [
        graph.store.create_node((label,), {"i": index})
        for index, label in enumerate(node_specs)
    ]
    for source, rel_type, target in edge_specs:
        if source < len(nodes) and target < len(nodes):
            graph.store.create_relationship(
                rel_type, nodes[source], nodes[target]
            )
    return graph


def snapshot(graph: Graph):
    from repro.testing.invariants import canonical_graph_json

    return canonical_graph_json(graph.store)


def run_one(spec, query, *, workers, dialect, use_planner):
    """Execute *query* on a fresh build of *spec*; normalise the outcome."""
    graph = build(spec)
    session = Graph(
        dialect,
        use_planner=use_planner,
        workers=workers,
        store=graph.store,
    )
    with parallel_min_rows(2):
        try:
            result = session.run(query)
        except CypherError as error:
            return ("error", type(error).__name__, snapshot(graph))
    return ("ok", result.to_json(), snapshot(graph))


@settings(max_examples=60, deadline=None)
@given(
    spec=graphs,
    query=st.sampled_from(QUERIES),
    dialect=st.sampled_from([Dialect.CYPHER9, Dialect.REVISED]),
    use_planner=st.booleans(),
)
def test_parallel_matches_serial_exactly(spec, query, dialect, use_planner):
    serial = run_one(
        spec, query, workers=1, dialect=dialect, use_planner=use_planner
    )
    for workers in (2, 4):
        parallel = run_one(
            spec,
            query,
            workers=workers,
            dialect=dialect,
            use_planner=use_planner,
        )
        assert parallel == serial, (
            f"workers={workers} diverged on {query!r}"
        )


def test_fuzz_corpus_replays_under_parallel_variants():
    from repro.testing.corpus import iter_bundles, load_bundle
    from repro.testing.differential import run_case

    bundles = iter_bundles("tests/fuzz_corpus")
    assert bundles, "fuzz corpus is empty"
    for path in bundles:
        case, __ = load_bundle(path)
        for workers in (2, 4):
            result = run_case(case, workers=workers)
            assert result.ok, (path, workers, result.failures[:3])


def test_parallel_output_is_deterministic_byte_for_byte():
    graph = Graph(Dialect.REVISED, workers=4)
    for index in range(40):
        graph.run(
            "CREATE (:U {id: $i, name: $n})",
            i=index,
            n=f"user{index:02d}",
        )
    query = (
        "MATCH (u:U) WHERE u.id % 3 <> 1 "
        "RETURN u.name AS name, u.id * 7 AS k ORDER BY k DESC"
    )
    with parallel_min_rows(2):
        first = graph.run(query).to_json()
        for _ in range(3):
            assert graph.run(query).to_json() == first


def test_parallel_raises_the_first_serial_error():
    serial = Graph(Dialect.REVISED)
    fanned = Graph(Dialect.REVISED, workers=4, store=serial.store)
    # Record index 2 fails first; a later morsel (index 5) also fails.
    query = "UNWIND [9, 3, 0, 1, 6, 0] AS d RETURN 10 / d AS q"
    serial_error = None
    try:
        serial.run(query)
    except CypherError as error:
        serial_error = (type(error).__name__, str(error))
    assert serial_error is not None
    with parallel_min_rows(2):
        try:
            fanned.run(query)
        except CypherError as error:
            assert (type(error).__name__, str(error)) == serial_error
        else:
            raise AssertionError("parallel run did not raise")


def test_parallel_process_executor_smoke():
    from repro.runtime.parallel import _fork_available

    if not _fork_available():
        import pytest

        pytest.skip("fork start method unavailable")
    graph = Graph(Dialect.REVISED, workers=2, parallel="process")
    for index in range(12):
        graph.run(
            "CREATE (:U {id: $i})-[:OWNS]->(:Item {v: $i})", i=index
        )
    with parallel_min_rows(2):
        result = graph.run(
            "MATCH (u:U)-[o:OWNS]->(it:Item) WHERE u.id % 2 = 0 "
            "RETURN u, o, it.v AS v ORDER BY v"
        )
    assert [record["v"] for record in result.records] == [0, 2, 4, 6, 8, 10]
    # Entities came home as live handles bound to the parent store.
    assert result.records[1]["u"].properties == {"id": 2}
    assert result.records[1]["o"].type == "OWNS"
