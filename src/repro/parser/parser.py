"""Recursive-descent parser for Cypher statements.

The parser is *dialect-aware*, because the paper changes the grammar:

* ``Dialect.CYPHER9`` implements Figures 2-5: a bare ``MERGE`` with a
  single (possibly undirected) update pattern and optional ``ON CREATE
  SET`` / ``ON MATCH SET`` actions; reading clauses may not directly
  follow update clauses (a ``WITH`` is required in between).

* ``Dialect.REVISED`` implements Figure 10: ``MERGE ALL`` and ``MERGE
  SAME`` over tuples of *directed* update patterns, bare ``MERGE``
  rejected, and reading/update clauses freely interleaved.

Independently of dialect, ``extended_merge=True`` additionally accepts
the three Section 6 proposals that did not ship (``MERGE GROUPING``,
``MERGE WEAK COLLAPSE``, ``MERGE COLLAPSE``) plus the aliases
``MERGE ATOMIC`` (= ALL) and ``MERGE STRONG COLLAPSE`` (= SAME), which
the design-space benchmarks use.
"""

from __future__ import annotations

from typing import Optional

from repro.dialect import Dialect
from repro.errors import CypherSyntaxError, MergeSyntaxError
from repro.parser import ast
from repro.parser.lexer import Token, tokenize

#: IDENT-spelled quantifier names (ALL is a keyword, handled separately).
_QUANTIFIER_NAMES = {"ANY", "ALL", "NONE", "SINGLE"}

#: Keywords that may double as variable names where unambiguous.  These
#: never start a clause, never act as an operator, and never begin an
#: expression, so accepting them as variables cannot change the parse
#: of any other construct.  The paper itself relies on this: its
#: Section 4.2 query binds a relationship to the variable ``order``.
SOFT_VARIABLE_KEYWORDS = frozenset(
    """
    ASC ASCENDING ASSERT ATOMIC BY COLLAPSE CONSTRAINT CSV DESC
    DESCENDING FIELDTERMINATOR FROM GROUPING HEADERS INDEX LIMIT ON
    ORDER SAME SKIP STRONG UNIQUE WEAK
    """.split()
)


def parse(
    source: str,
    dialect: Dialect = Dialect.REVISED,
    *,
    extended_merge: bool = False,
) -> ast.Statement:
    """Parse *source* into a :class:`repro.parser.ast.Statement`."""
    return Parser(source, dialect, extended_merge=extended_merge).parse_statement()


def parse_expression(source: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and the REPL tools)."""
    parser = Parser(source, Dialect.REVISED)
    expression = parser._parse_expression()
    parser._expect_eof()
    return expression


class Parser:
    """One-statement recursive-descent parser over a token list."""

    def __init__(
        self,
        source: str,
        dialect: Dialect = Dialect.REVISED,
        *,
        extended_merge: bool = False,
    ):
        self._source = source
        self._dialect = dialect
        self._extended_merge = extended_merge
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type != "EOF":
            self._index += 1
        return token

    def _save(self) -> int:
        return self._index

    def _restore(self, mark: int) -> None:
        self._index = mark

    def _error(self, message: str, token: Optional[Token] = None) -> CypherSyntaxError:
        token = token or self._peek()
        return CypherSyntaxError(message, token.line, token.column)

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_punct(symbol):
            raise self._error(f"expected {symbol!r}, found {token.value!r}")
        return self._advance()

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            expected = " or ".join(names)
            raise self._error(f"expected {expected}, found {token.value!r}")
        return self._advance()

    def _accept_punct(self, symbol: str) -> bool:
        if self._peek().is_punct(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.type != "EOF" and not token.is_punct(";"):
            raise self._error(f"unexpected input {token.value!r}")

    def _expect_name(self, what: str = "identifier") -> str:
        """Consume an identifier (keywords allowed for schema names).

        Returns the original spelling, so a label ``:Order`` stays
        ``Order`` even though ORDER is a keyword.
        """
        token = self._peek()
        if token.type in ("IDENT", "KEYWORD"):
            self._advance()
            return token.text
        raise self._error(f"expected {what}, found {token.value!r}")

    def _is_variable_token(self, token: Token) -> bool:
        """True if *token* may serve as a variable name here."""
        return token.type == "IDENT" or (
            token.type == "KEYWORD" and token.value in SOFT_VARIABLE_KEYWORDS
        )

    def _expect_variable_name(self) -> str:
        """Consume a variable name (soft keywords allowed)."""
        token = self._peek()
        if self._is_variable_token(token):
            self._advance()
            return token.text
        raise self._error(f"expected a variable name, found {token.value!r}")

    # ------------------------------------------------------------------
    # Statements, queries, clause sequences
    # ------------------------------------------------------------------

    def parse_statement(self) -> "ast.Statement | ast.SchemaStatement":
        """Parse a statement: a query, UNION chain, or schema command."""
        schema = self._try_parse_schema_statement()
        if schema is not None:
            return schema
        query: ast.Query = self._parse_single_query()
        while self._peek().is_keyword("UNION"):
            self._advance()
            is_all = self._accept_keyword("ALL")
            right = self._parse_single_query()
            query = ast.UnionQuery(left=query, right=right, all=is_all)
        self._accept_punct(";")
        self._expect_eof()
        statement = ast.Statement(query=query, source=self._source)
        self._validate_statement(statement)
        return statement

    def _try_parse_schema_statement(self) -> Optional[ast.SchemaStatement]:
        """Parse CREATE/DROP INDEX/CONSTRAINT commands, if present.

        Grammar (shared by both dialects)::

            CREATE INDEX ON :Label(key)
            DROP INDEX ON :Label(key)
            CREATE CONSTRAINT ON (n:Label) ASSERT n.key IS UNIQUE
            DROP CONSTRAINT ON (n:Label) ASSERT n.key IS UNIQUE
        """
        token = self._peek()
        if not token.is_keyword("CREATE", "DROP"):
            return None
        follower = self._peek(1)
        if not follower.is_keyword("INDEX", "CONSTRAINT"):
            return None
        action = "create" if token.value == "CREATE" else "drop"
        self._advance()  # CREATE / DROP
        what = self._advance().value  # INDEX / CONSTRAINT
        self._expect_keyword("ON")
        if what == "INDEX":
            self._expect_punct(":")
            label = self._expect_name("label")
            self._expect_punct("(")
            key = self._expect_name("property key")
            self._expect_punct(")")
            kind = f"{action}_index"
        else:
            self._expect_punct("(")
            variable = self._expect_variable_name()
            self._expect_punct(":")
            label = self._expect_name("label")
            self._expect_punct(")")
            self._expect_keyword("ASSERT")
            bound = self._expect_variable_name()
            if bound != variable:
                raise self._error(
                    f"constraint must assert on '{variable}', "
                    f"found '{bound}'"
                )
            self._expect_punct(".")
            key = self._expect_name("property key")
            self._expect_keyword("IS")
            self._expect_keyword("UNIQUE")
            kind = f"{action}_unique_constraint"
        self._accept_punct(";")
        self._expect_eof()
        return ast.SchemaStatement(
            kind=kind, label=label, key=key, source=self._source
        )

    def _parse_single_query(self) -> ast.SingleQuery:
        clauses: list[ast.Clause] = []
        while True:
            clause = self._parse_clause()
            if clause is None:
                break
            clauses.append(clause)
            if isinstance(clause, ast.ReturnClause):
                break
        if not clauses:
            raise self._error("expected a clause")
        return ast.SingleQuery(clauses=tuple(clauses))

    def _parse_clause(self) -> Optional[ast.Clause]:
        token = self._peek()
        if token.type != "KEYWORD":
            return None
        keyword = token.value
        if keyword in ("MATCH", "OPTIONAL"):
            return self._parse_match()
        if keyword == "UNWIND":
            return self._parse_unwind()
        if keyword == "WITH":
            return self._parse_with()
        if keyword == "RETURN":
            return self._parse_return()
        if keyword == "CREATE":
            return self._parse_create()
        if keyword in ("DELETE", "DETACH"):
            return self._parse_delete()
        if keyword == "SET":
            return self._parse_set()
        if keyword == "REMOVE":
            return self._parse_remove()
        if keyword == "MERGE":
            return self._parse_merge()
        if keyword == "FOREACH":
            return self._parse_foreach()
        if keyword == "LOAD":
            return self._parse_load_csv()
        return None

    # ------------------------------------------------------------------
    # Reading clauses
    # ------------------------------------------------------------------

    def _parse_match(self) -> ast.MatchClause:
        optional = self._accept_keyword("OPTIONAL")
        self._expect_keyword("MATCH")
        pattern = self._parse_pattern()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.MatchClause(pattern=pattern, optional=optional, where=where)

    def _parse_unwind(self) -> ast.UnwindClause:
        self._expect_keyword("UNWIND")
        expression = self._parse_expression()
        self._expect_keyword("AS")
        variable = self._expect_variable_name()
        return ast.UnwindClause(expression=expression, variable=variable)

    def _parse_with(self) -> ast.WithClause:
        self._expect_keyword("WITH")
        body = self._parse_projection_body()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.WithClause(body=body, where=where)

    def _parse_return(self) -> ast.ReturnClause:
        self._expect_keyword("RETURN")
        return ast.ReturnClause(body=self._parse_projection_body())

    def _parse_load_csv(self) -> ast.LoadCsvClause:
        self._expect_keyword("LOAD")
        self._expect_keyword("CSV")
        with_headers = False
        if self._accept_keyword("WITH"):
            self._expect_keyword("HEADERS")
            with_headers = True
        self._expect_keyword("FROM")
        source = self._parse_expression()
        self._expect_keyword("AS")
        variable = self._expect_variable_name()
        terminator = None
        if self._accept_keyword("FIELDTERMINATOR"):
            token = self._peek()
            if token.type != "STRING":
                raise self._error("FIELDTERMINATOR expects a string literal")
            self._advance()
            terminator = token.value
        return ast.LoadCsvClause(
            source=source,
            variable=variable,
            with_headers=with_headers,
            field_terminator=terminator,
        )

    def _parse_projection_body(self) -> ast.ProjectionBody:
        distinct = self._accept_keyword("DISTINCT")
        include_existing = False
        items: list[ast.ProjectionItem] = []
        if self._accept_punct("*"):
            include_existing = True
            if self._accept_punct(","):
                items = self._parse_projection_items()
        else:
            items = self._parse_projection_items()
        order_by: tuple[ast.SortItem, ...] = ()
        if self._peek().is_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            sort_items = [self._parse_sort_item()]
            while self._accept_punct(","):
                sort_items.append(self._parse_sort_item())
            order_by = tuple(sort_items)
        skip = None
        if self._accept_keyword("SKIP"):
            skip = self._parse_expression()
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_expression()
        return ast.ProjectionBody(
            items=tuple(items),
            include_existing=include_existing,
            distinct=distinct,
            order_by=order_by,
            skip=skip,
            limit=limit,
        )

    def _parse_projection_items(self) -> list[ast.ProjectionItem]:
        items = [self._parse_projection_item()]
        while self._accept_punct(","):
            items.append(self._parse_projection_item())
        return items

    def _parse_projection_item(self) -> ast.ProjectionItem:
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_name("alias")
        return ast.ProjectionItem(expression=expression, alias=alias)

    def _parse_sort_item(self) -> ast.SortItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("DESC", "DESCENDING"):
            ascending = False
        else:
            self._accept_keyword("ASC", "ASCENDING")
        return ast.SortItem(expression=expression, ascending=ascending)

    # ------------------------------------------------------------------
    # Update clauses
    # ------------------------------------------------------------------

    def _parse_create(self) -> ast.CreateClause:
        self._expect_keyword("CREATE")
        pattern = self._parse_pattern()
        self._validate_update_pattern(pattern, "CREATE", require_directed=True)
        return ast.CreateClause(pattern=pattern)

    def _parse_delete(self) -> ast.DeleteClause:
        detach = self._accept_keyword("DETACH")
        self._expect_keyword("DELETE")
        expressions = [self._parse_expression()]
        while self._accept_punct(","):
            expressions.append(self._parse_expression())
        return ast.DeleteClause(expressions=tuple(expressions), detach=detach)

    def _parse_set(self) -> ast.SetClause:
        self._expect_keyword("SET")
        items = [self._parse_set_item()]
        while self._accept_punct(","):
            items.append(self._parse_set_item())
        return ast.SetClause(items=tuple(items))

    def _parse_set_item(self) -> ast.SetItem:
        target = self._parse_set_target()
        token = self._peek()
        if token.is_punct(":"):
            if not isinstance(target, ast.Variable):
                raise self._error("labels can only be set on a variable")
            labels = self._parse_label_list()
            return ast.SetLabels(target=target, labels=labels)
        if token.is_punct("+="):
            self._advance()
            value = self._parse_expression()
            return ast.SetAdditiveProperties(target=target, value=value)
        if token.is_punct("="):
            self._advance()
            value = self._parse_expression()
            if isinstance(target, ast.Property):
                return ast.SetProperty(target=target, value=value)
            return ast.SetAllProperties(target=target, value=value)
        raise self._error("expected ':', '=' or '+=' in SET item")

    def _parse_set_target(self) -> ast.Expression:
        """Parse the left side of a SET/REMOVE item.

        Restricted to variable + property/subscript chains so the ``=``
        that follows is not mistaken for the comparison operator.
        """
        expression: ast.Expression = ast.Variable(self._expect_variable_name())
        while True:
            if self._peek().is_punct("."):
                self._advance()
                key = self._expect_name("property key")
                expression = ast.Property(subject=expression, key=key)
            else:
                return expression

    def _parse_remove(self) -> ast.RemoveClause:
        self._expect_keyword("REMOVE")
        items = [self._parse_remove_item()]
        while self._accept_punct(","):
            items.append(self._parse_remove_item())
        return ast.RemoveClause(items=tuple(items))

    def _parse_remove_item(self) -> ast.RemoveItem:
        target = self._parse_set_target()
        if self._peek().is_punct(":"):
            if not isinstance(target, ast.Variable):
                raise self._error("labels can only be removed from a variable")
            labels = self._parse_label_list()
            return ast.RemoveLabels(target=target, labels=labels)
        if isinstance(target, ast.Property):
            return ast.RemoveProperty(target=target)
        raise self._error("REMOVE item must be a property or a label list")

    def _parse_label_list(self) -> tuple[str, ...]:
        labels: list[str] = []
        while self._accept_punct(":"):
            labels.append(self._expect_name("label"))
        if not labels:
            raise self._error("expected a label list")
        return tuple(labels)

    def _parse_merge(self) -> ast.MergeClause:
        merge_token = self._peek()
        self._expect_keyword("MERGE")
        semantics = self._parse_merge_semantics(merge_token)
        if semantics == ast.MERGE_LEGACY:
            pattern = ast.Pattern(paths=(self._parse_path_pattern(),))
            self._validate_update_pattern(
                pattern, "MERGE", require_directed=False
            )
            on_create: tuple[ast.SetItem, ...] = ()
            on_match: tuple[ast.SetItem, ...] = ()
            while self._peek().is_keyword("ON"):
                self._advance()
                event = self._expect_keyword("CREATE", "MATCH")
                set_clause = self._parse_set()
                if event.value == "CREATE":
                    on_create = on_create + set_clause.items
                else:
                    on_match = on_match + set_clause.items
            return ast.MergeClause(
                pattern=pattern,
                semantics=semantics,
                on_create=on_create,
                on_match=on_match,
            )
        pattern = self._parse_pattern()
        self._validate_update_pattern(pattern, "MERGE", require_directed=True)
        if self._peek().is_keyword("ON"):
            raise MergeSyntaxError(
                "ON CREATE / ON MATCH are not part of the revised MERGE",
                self._peek().line,
                self._peek().column,
            )
        return ast.MergeClause(pattern=pattern, semantics=semantics)

    def _parse_merge_semantics(self, merge_token: Token) -> str:
        """Determine which MERGE variant is being requested.

        Dialect rules (Section 7): Cypher 9 only accepts the bare
        MERGE; the revised dialect only accepts ``MERGE ALL`` and
        ``MERGE SAME``.  With ``extended_merge`` the remaining Section 6
        proposals are also recognised in the revised dialect.
        """
        token = self._peek()
        selected: Optional[str] = None
        extended = False
        if token.is_keyword("ALL"):
            self._advance()
            selected = ast.MERGE_ALL
        elif token.is_keyword("SAME"):
            self._advance()
            selected = ast.MERGE_SAME
        elif token.is_keyword("ATOMIC"):
            self._advance()
            selected, extended = ast.MERGE_ALL, True
        elif token.is_keyword("GROUPING"):
            self._advance()
            selected, extended = ast.MERGE_GROUPING, True
        elif token.is_keyword("WEAK"):
            self._advance()
            self._expect_keyword("COLLAPSE")
            selected, extended = ast.MERGE_WEAK_COLLAPSE, True
        elif token.is_keyword("STRONG"):
            self._advance()
            self._expect_keyword("COLLAPSE")
            selected, extended = ast.MERGE_SAME, True
        elif token.is_keyword("COLLAPSE"):
            self._advance()
            selected, extended = ast.MERGE_COLLAPSE, True

        if selected is None:
            if self._dialect is Dialect.REVISED:
                raise MergeSyntaxError(
                    "bare MERGE is not allowed in the revised dialect; "
                    "use MERGE ALL or MERGE SAME",
                    merge_token.line,
                    merge_token.column,
                )
            return ast.MERGE_LEGACY
        if self._dialect is Dialect.CYPHER9:
            raise MergeSyntaxError(
                f"MERGE {token.value} is not Cypher 9 syntax",
                token.line,
                token.column,
            )
        if extended and not self._extended_merge:
            raise MergeSyntaxError(
                f"MERGE {token.value} requires extended_merge=True "
                "(experimental Section 6 proposals)",
                token.line,
                token.column,
            )
        return selected

    def _parse_foreach(self) -> ast.ForeachClause:
        self._expect_keyword("FOREACH")
        self._expect_punct("(")
        variable = self._expect_variable_name()
        self._expect_keyword("IN")
        source = self._parse_expression()
        self._expect_punct("|")
        updates: list[ast.Clause] = []
        while not self._peek().is_punct(")"):
            clause = self._parse_clause()
            if clause is None:
                raise self._error("expected an update clause in FOREACH")
            if not ast.is_update_clause(clause):
                raise self._error("FOREACH may only contain update clauses")
            updates.append(clause)
        self._expect_punct(")")
        if not updates:
            raise self._error("FOREACH requires at least one update clause")
        return ast.ForeachClause(
            variable=variable, source=source, updates=tuple(updates)
        )

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------

    def _parse_pattern(self) -> ast.Pattern:
        paths = [self._parse_path_pattern()]
        while self._accept_punct(","):
            paths.append(self._parse_path_pattern())
        return ast.Pattern(paths=tuple(paths))

    def _parse_path_pattern(self) -> ast.PathPattern:
        variable = None
        if self._is_variable_token(self._peek()) and self._peek(1).is_punct(
            "="
        ):
            variable = self._advance().text
            self._advance()  # '='
        elements: list = [self._parse_node_pattern()]
        while self._peek().is_punct("<", "-"):
            elements.append(self._parse_relationship_pattern())
            elements.append(self._parse_node_pattern())
        return ast.PathPattern(variable=variable, elements=tuple(elements))

    def _parse_node_pattern(self) -> ast.NodePattern:
        self._expect_punct("(")
        variable = None
        if self._is_variable_token(self._peek()):
            variable = self._advance().text
        labels: tuple[str, ...] = ()
        if self._peek().is_punct(":"):
            labels = self._parse_label_list()
        properties = None
        if self._peek().is_punct("{"):
            properties = self._parse_map_literal()
        self._expect_punct(")")
        return ast.NodePattern(
            variable=variable, labels=labels, properties=properties
        )

    def _parse_relationship_pattern(self) -> ast.RelationshipPattern:
        points_left = False
        if self._accept_punct("<"):
            points_left = True
        self._expect_punct("-")
        variable = None
        types: tuple[str, ...] = ()
        properties = None
        var_length = None
        if self._accept_punct("["):
            if self._is_variable_token(self._peek()):
                variable = self._advance().text
            if self._peek().is_punct(":"):
                types = self._parse_type_list()
            if self._peek().is_punct("*"):
                var_length = self._parse_var_length()
            if self._peek().is_punct("{"):
                properties = self._parse_map_literal()
            self._expect_punct("]")
        self._expect_punct("-")
        points_right = self._accept_punct(">")
        if points_left and points_right:
            raise self._error("a relationship pattern cannot point both ways")
        if points_left:
            direction = ast.IN
        elif points_right:
            direction = ast.OUT
        else:
            direction = ast.BOTH
        return ast.RelationshipPattern(
            variable=variable,
            types=types,
            properties=properties,
            direction=direction,
            var_length=var_length,
        )

    def _parse_type_list(self) -> tuple[str, ...]:
        self._expect_punct(":")
        types = [self._expect_name("relationship type")]
        while self._accept_punct("|"):
            self._accept_punct(":")  # tolerate the `|:TYPE` spelling
            types.append(self._expect_name("relationship type"))
        return tuple(types)

    def _parse_var_length(self) -> tuple[Optional[int], Optional[int]]:
        self._expect_punct("*")
        lower: Optional[int] = None
        upper: Optional[int] = None
        if self._peek().type == "INTEGER":
            lower = int(self._advance().value)
        if self._accept_punct(".."):
            if self._peek().type == "INTEGER":
                upper = int(self._advance().value)
        else:
            # `*n` fixes both bounds; bare `*` leaves both open.
            upper = lower
        return (lower, upper)

    def _parse_map_literal(self) -> ast.MapLiteral:
        self._expect_punct("{")
        items: list[tuple[str, ast.Expression]] = []
        if not self._peek().is_punct("}"):
            while True:
                key = self._expect_name("property key")
                self._expect_punct(":")
                items.append((key, self._parse_expression()))
                if not self._accept_punct(","):
                    break
        self._expect_punct("}")
        return ast.MapLiteral(items=tuple(items))

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_xor()
        while self._peek().is_keyword("OR"):
            self._advance()
            left = ast.Binary("OR", left, self._parse_xor())
        return left

    def _parse_xor(self) -> ast.Expression:
        left = self._parse_and()
        while self._peek().is_keyword("XOR"):
            self._advance()
            left = ast.Binary("XOR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._peek().is_keyword("AND"):
            self._advance()
            left = ast.Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.Unary("NOT", self._parse_not())
        return self._parse_comparison()

    _COMPARISON_OPS = ("=", "<>", "<=", ">=", "<", ">")

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_predicated()
        comparisons: list[ast.Expression] = []
        while self._peek().is_punct(*self._COMPARISON_OPS):
            operator = self._advance().value
            right = self._parse_predicated()
            comparisons.append(ast.Binary(operator, left, right))
            left = right
        if not comparisons:
            return left
        # Chained comparisons (a < b < c) are the conjunction of the
        # pairwise comparisons, as in openCypher.
        result = comparisons[0]
        for comparison in comparisons[1:]:
            result = ast.Binary("AND", result, comparison)
        return result

    def _parse_predicated(self) -> ast.Expression:
        """Additive expression plus the postfix predicates.

        IN, STARTS WITH, ENDS WITH, CONTAINS and IS [NOT] NULL bind
        tighter than comparison, looser than arithmetic.
        """
        expression = self._parse_add_sub()
        while True:
            token = self._peek()
            if token.is_keyword("IN"):
                self._advance()
                expression = ast.Binary("IN", expression, self._parse_add_sub())
            elif token.is_keyword("STARTS"):
                self._advance()
                self._expect_keyword("WITH")
                expression = ast.Binary(
                    "STARTS WITH", expression, self._parse_add_sub()
                )
            elif token.is_keyword("ENDS"):
                self._advance()
                self._expect_keyword("WITH")
                expression = ast.Binary(
                    "ENDS WITH", expression, self._parse_add_sub()
                )
            elif token.is_keyword("CONTAINS"):
                self._advance()
                expression = ast.Binary(
                    "CONTAINS", expression, self._parse_add_sub()
                )
            elif token.is_keyword("IS"):
                self._advance()
                negated = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                expression = ast.IsNull(operand=expression, negated=negated)
            else:
                return expression

    def _parse_add_sub(self) -> ast.Expression:
        left = self._parse_mul_div()
        while self._peek().is_punct("+", "-"):
            operator = self._advance().value
            left = ast.Binary(operator, left, self._parse_mul_div())
        return left

    def _parse_mul_div(self) -> ast.Expression:
        left = self._parse_power()
        while self._peek().is_punct("*", "/", "%"):
            operator = self._advance().value
            left = ast.Binary(operator, left, self._parse_power())
        return left

    def _parse_power(self) -> ast.Expression:
        left = self._parse_unary()
        if self._peek().is_punct("^"):
            self._advance()
            # right-associative
            return ast.Binary("^", left, self._parse_power())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._peek().is_punct("-"):
            self._advance()
            return ast.Unary("-", self._parse_unary())
        if self._peek().is_punct("+"):
            self._advance()
            return ast.Unary("+", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_atom()
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._advance()
                key = self._expect_name("property key")
                expression = ast.Property(subject=expression, key=key)
            elif token.is_punct("["):
                self._advance()
                expression = self._parse_subscript_or_slice(expression)
            elif token.is_punct(":") and self._peek(1).type in (
                "IDENT",
                "KEYWORD",
            ):
                labels = self._parse_label_list()
                expression = ast.HasLabels(subject=expression, labels=labels)
            else:
                return expression

    def _parse_subscript_or_slice(
        self, subject: ast.Expression
    ) -> ast.Expression:
        start: Optional[ast.Expression] = None
        if not self._peek().is_punct(".."):
            start = self._parse_expression()
        if self._accept_punct(".."):
            end: Optional[ast.Expression] = None
            if not self._peek().is_punct("]"):
                end = self._parse_expression()
            self._expect_punct("]")
            return ast.Slice(subject=subject, start=start, end=end)
        self._expect_punct("]")
        if start is None:
            raise self._error("empty subscript")
        return ast.Subscript(subject=subject, index=start)

    def _parse_atom(self) -> ast.Expression:
        token = self._peek()
        if token.type == "INTEGER":
            self._advance()
            return ast.Literal(int(token.value))
        if token.type == "FLOAT":
            self._advance()
            return ast.Literal(float(token.value))
        if token.type == "STRING":
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_punct("$"):
            self._advance()
            return ast.Parameter(self._expect_name("parameter name"))
        if token.is_punct("["):
            return self._parse_list_atom()
        if token.is_punct("{"):
            return self._parse_map_literal()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            return self._parse_exists()
        if token.is_punct("("):
            return self._parse_paren_or_pattern()
        if token.type == "IDENT" or token.type == "KEYWORD":
            return self._parse_name_atom()
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_name_atom(self) -> ast.Expression:
        token = self._peek()
        name = token.value
        upper = name.upper()
        if self._peek(1).is_punct("("):
            if upper in _QUANTIFIER_NAMES:
                quantifier = self._try_parse_quantifier(upper.lower())
                if quantifier is not None:
                    return quantifier
            if upper == "REDUCE":
                reduce_expr = self._try_parse_reduce()
                if reduce_expr is not None:
                    return reduce_expr
            if upper == "COUNT" and self._peek(2).is_punct("*"):
                self._advance()  # name
                self._advance()  # (
                self._expect_punct("*")
                self._expect_punct(")")
                return ast.CountStar()
            return self._parse_function_call()
        if token.type == "KEYWORD":
            if token.value in SOFT_VARIABLE_KEYWORDS:
                self._advance()
                return ast.Variable(token.text)
            raise self._error(f"unexpected keyword {name!r} in expression")
        self._advance()
        return ast.Variable(name)

    def _try_parse_quantifier(self, kind: str) -> Optional[ast.Expression]:
        mark = self._save()
        self._advance()  # quantifier name
        self._advance()  # (
        token = self._peek()
        if not self._is_variable_token(token) or not self._peek(1).is_keyword(
            "IN"
        ):
            self._restore(mark)
            return None
        variable = self._advance().text
        self._advance()  # IN
        source = self._parse_expression()
        self._expect_keyword("WHERE")
        predicate = self._parse_expression()
        self._expect_punct(")")
        return ast.Quantifier(
            kind=kind, variable=variable, source=source, predicate=predicate
        )

    def _try_parse_reduce(self) -> Optional[ast.Expression]:
        mark = self._save()
        self._advance()  # REDUCE
        self._advance()  # (
        token = self._peek()
        if not self._is_variable_token(token) or not self._peek(1).is_punct(
            "="
        ):
            self._restore(mark)
            return None
        accumulator = self._advance().text
        self._advance()  # =
        init = self._parse_expression()
        self._expect_punct(",")
        variable_token = self._peek()
        if not self._is_variable_token(variable_token):
            raise self._error(
                f"expected iteration variable in reduce(), "
                f"found {variable_token.value!r}"
            )
        variable = self._advance().text
        self._expect_keyword("IN")
        source = self._parse_expression()
        self._expect_punct("|")
        expression = self._parse_expression()
        self._expect_punct(")")
        return ast.Reduce(
            accumulator=accumulator,
            init=init,
            variable=variable,
            source=source,
            expression=expression,
        )

    def _parse_function_call(self) -> ast.FunctionCall:
        name = self._advance().value
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT")
        args: list[ast.Expression] = []
        if not self._peek().is_punct(")"):
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(
            name=name.lower(), args=tuple(args), distinct=distinct
        )

    def _parse_list_atom(self) -> ast.Expression:
        self._expect_punct("[")
        if self._peek().is_punct("]"):
            self._advance()
            return ast.ListLiteral(items=())
        # Could be a list comprehension: [x IN expr ...]
        if self._is_variable_token(self._peek()) and self._peek(1).is_keyword(
            "IN"
        ):
            variable = self._advance().text
            self._advance()  # IN
            source = self._parse_expression()
            predicate = None
            projection = None
            if self._accept_keyword("WHERE"):
                predicate = self._parse_expression()
            if self._accept_punct("|"):
                projection = self._parse_expression()
            self._expect_punct("]")
            return ast.ListComprehension(
                variable=variable,
                source=source,
                predicate=predicate,
                projection=projection,
            )
        items = [self._parse_expression()]
        while self._accept_punct(","):
            items.append(self._parse_expression())
        self._expect_punct("]")
        return ast.ListLiteral(items=tuple(items))

    def _parse_case(self) -> ast.CaseExpression:
        self._expect_keyword("CASE")
        operand = None
        if not self._peek().is_keyword("WHEN"):
            operand = self._parse_expression()
        alternatives: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            alternatives.append((condition, result))
        if not alternatives:
            raise self._error("CASE requires at least one WHEN")
        default = None
        if self._accept_keyword("ELSE"):
            default = self._parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpression(
            operand=operand, alternatives=tuple(alternatives), default=default
        )

    def _parse_exists(self) -> ast.ExistsExpression:
        self._expect_keyword("EXISTS")
        self._expect_punct("(")
        pattern = self._try_parse_pattern_expression()
        if pattern is not None:
            self._expect_punct(")")
            return ast.ExistsExpression(argument=pattern.pattern)
        argument = self._parse_expression()
        self._expect_punct(")")
        return ast.ExistsExpression(argument=argument)

    def _parse_paren_or_pattern(self) -> ast.Expression:
        pattern = self._try_parse_pattern_expression()
        if pattern is not None:
            return pattern
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_punct(")")
        return expression

    def _try_parse_pattern_expression(self) -> Optional[ast.PatternExpression]:
        """Backtracking probe for a path pattern used as a predicate.

        Accepted only when the parse succeeds *and* contains at least
        one relationship, so plain ``(expr)`` grouping is unaffected.
        """
        if not self._peek().is_punct("("):
            return None
        mark = self._save()
        try:
            path = self._parse_path_pattern()
        except CypherSyntaxError:
            self._restore(mark)
            return None
        if not path.relationships:
            self._restore(mark)
            return None
        return ast.PatternExpression(pattern=path)

    # ------------------------------------------------------------------
    # Dialect validation
    # ------------------------------------------------------------------

    def _validate_update_pattern(
        self, pattern: ast.Pattern, clause: str, *, require_directed: bool
    ) -> None:
        """Enforce the Figure 5 / Figure 10 restrictions on update patterns."""
        for path in pattern.paths:
            for rel in path.relationships:
                if len(rel.types) != 1:
                    raise self._error(
                        f"{clause} requires exactly one relationship type "
                        f"per relationship pattern"
                    )
                if rel.is_var_length:
                    raise self._error(
                        f"variable-length relationships are not allowed "
                        f"in {clause}"
                    )
                if require_directed and rel.direction == ast.BOTH:
                    raise self._error(
                        f"{clause} requires directed relationship patterns"
                    )

    def _validate_statement(self, statement: ast.Statement) -> None:
        for branch in statement.branches():
            self._validate_clause_sequence(branch.clauses)

    def _validate_clause_sequence(
        self, clauses: tuple[ast.Clause, ...]
    ) -> None:
        """Enforce the clause-sequencing grammar of the active dialect.

        Both dialects: a query ends with RETURN or an update clause,
        and RETURN is final.  Cypher 9 additionally requires a WITH
        between update clauses and subsequent reading clauses
        (Figure 2); the revised grammar drops that rule (Figure 10).
        """
        last = clauses[-1]
        if not (isinstance(last, ast.ReturnClause) or ast.is_update_clause(last)):
            raise CypherSyntaxError(
                "a query must end with RETURN or an update clause"
            )
        seen_update_since_with = False
        for clause in clauses[:-1]:
            if isinstance(clause, ast.ReturnClause):
                raise CypherSyntaxError("RETURN must be the final clause")
            if isinstance(clause, ast.WithClause):
                seen_update_since_with = False
            elif ast.is_update_clause(clause):
                seen_update_since_with = True
            elif ast.is_reading_clause(clause):
                if (
                    self._dialect is Dialect.CYPHER9
                    and seen_update_since_with
                ):
                    raise CypherSyntaxError(
                        "Cypher 9 requires WITH between update clauses "
                        "and subsequent reading clauses"
                    )
