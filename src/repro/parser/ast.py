"""Abstract syntax trees for Cypher statements.

The node classes mirror the grammar of the paper: Figure 2 (queries and
clause sequences), Figure 3 (update clauses), Figure 4 (SET/REMOVE
items), Figure 5 (update patterns) and Figure 10 (the revised grammar
with ``MERGE ALL`` / ``MERGE SAME`` and freely interleaved clauses).
Reading-clause and expression forms follow the openCypher grammar the
paper's companion formalization [Francis et al. 2018] assumes.

All nodes are frozen dataclasses: an AST is a value, shared freely
between the two dialect executors, the formal reference semantics and
the unparser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    """A constant: null, boolean, integer, float or string.

    Equality and hashing are *type-aware*: under Python's numeric
    equality ``True == 1 == 1.0``, so the dataclass-generated ``__eq__``
    would conflate ``Literal(True)``, ``Literal(1)`` and
    ``Literal(1.0)`` -- semantically different constants.  Any cache
    keyed on AST structure (the expression compiler's closure memo)
    needs these to be distinct.  A literal wrapping an unhashable
    runtime value (lists/maps appear through aggregate substitution)
    simply raises ``TypeError`` from ``hash()``, which caches treat as
    uncacheable.
    """

    value: Any

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            type(self.value) is type(other.value)
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((Literal, type(self.value), self.value))


@dataclass(frozen=True)
class Parameter(Expression):
    """A statement parameter ``$name``."""

    name: str


@dataclass(frozen=True)
class Variable(Expression):
    """A reference to a bound variable."""

    name: str


@dataclass(frozen=True)
class Property(Expression):
    """Property access ``subject.key``."""

    subject: Expression
    key: str


@dataclass(frozen=True)
class ListLiteral(Expression):
    """A list expression ``[e1, e2, ...]``."""

    items: tuple[Expression, ...]


@dataclass(frozen=True)
class MapLiteral(Expression):
    """A map expression ``{k1: e1, ...}`` (also pattern property maps)."""

    items: tuple[tuple[str, Expression], ...]

    def keys(self) -> tuple[str, ...]:
        """The map's keys in source order."""
        return tuple(key for key, __ in self.items)


@dataclass(frozen=True)
class Unary(Expression):
    """Unary operator application: ``NOT``, ``-``, ``+``."""

    operator: str
    operand: Expression


@dataclass(frozen=True)
class Binary(Expression):
    """Binary operator application.

    Operators: arithmetic ``+ - * / % ^``, comparison
    ``= <> < <= > >=``, boolean ``AND OR XOR``, membership ``IN``, and
    string predicates ``STARTS WITH``, ``ENDS WITH``, ``CONTAINS``.
    """

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    """``e IS NULL`` / ``e IS NOT NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class HasLabels(Expression):
    """The label predicate ``n:Label1:Label2`` used in WHERE."""

    subject: Expression
    labels: tuple[str, ...]


@dataclass(frozen=True)
class FunctionCall(Expression):
    """``name(args)``; ``distinct`` marks aggregate DISTINCT."""

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class CountStar(Expression):
    """The aggregate ``count(*)``."""


@dataclass(frozen=True)
class CaseExpression(Expression):
    """Simple (with operand) or searched (operand=None) CASE."""

    operand: Optional[Expression]
    alternatives: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression] = None


@dataclass(frozen=True)
class ListComprehension(Expression):
    """``[x IN list WHERE pred | proj]``."""

    variable: str
    source: Expression
    predicate: Optional[Expression] = None
    projection: Optional[Expression] = None


@dataclass(frozen=True)
class Quantifier(Expression):
    """``any/all/none/single (x IN list WHERE pred)``."""

    kind: str  # "any" | "all" | "none" | "single"
    variable: str
    source: Expression
    predicate: Expression


@dataclass(frozen=True)
class Reduce(Expression):
    """``reduce(acc = init, x IN list | expr)``."""

    accumulator: str
    init: Expression
    variable: str
    source: Expression
    expression: Expression


@dataclass(frozen=True)
class Subscript(Expression):
    """Indexing ``subject[index]`` (lists and maps)."""

    subject: Expression
    index: Expression


@dataclass(frozen=True)
class Slice(Expression):
    """List slicing ``subject[start..end]``."""

    subject: Expression
    start: Optional[Expression] = None
    end: Optional[Expression] = None


@dataclass(frozen=True)
class PatternExpression(Expression):
    """A path pattern used as a predicate (true iff a match exists)."""

    pattern: "PathPattern"


@dataclass(frozen=True)
class ExistsExpression(Expression):
    """``exists(e)`` over a property (non-null test) or a pattern."""

    argument: Union[Expression, "PathPattern"]


@dataclass(frozen=True)
class HoistedExpression(Expression):
    """A rewrite marker: the wrapped expression is record-invariant.

    Never produced by the parser -- only by the common-subexpression
    hoisting pass in :mod:`repro.runtime.rewrite`.  The compiler turns
    it into a lazily-evaluated per-statement memo, so the inner
    expression runs (and raises) at most once per execution context
    instead of once per record.  Semantically transparent: evaluation,
    unparsing and traversal all behave as if the wrapper were absent.
    """

    expression: Expression


# ---------------------------------------------------------------------------
# Patterns (Figure 5 and the revised Figure 10 forms)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    """``( name? :Label* {map}? )``."""

    variable: Optional[str] = None
    labels: tuple[str, ...] = ()
    properties: Optional[MapLiteral] = None


#: Direction of a relationship pattern.  ``BOTH`` (undirected) is legal
#: in MATCH always, and in legacy MERGE (Figure 5); the revised grammar
#: (Figure 10) requires CREATE and MERGE patterns to be directed.
OUT = "out"
IN = "in"
BOTH = "both"


@dataclass(frozen=True)
class RelationshipPattern:
    """``-[ name? :TYPE|TYPE2* {map}? *min..max? ]->`` and variants."""

    variable: Optional[str] = None
    types: tuple[str, ...] = ()
    properties: Optional[MapLiteral] = None
    direction: str = BOTH
    var_length: Optional[tuple[Optional[int], Optional[int]]] = None

    @property
    def is_var_length(self) -> bool:
        """True for ``*``-quantified patterns."""
        return self.var_length is not None


@dataclass(frozen=True)
class PathPattern:
    """``name? = (n1)-[r1]->(n2)...``: alternating node/rel elements."""

    variable: Optional[str] = None
    elements: tuple[Union[NodePattern, RelationshipPattern], ...] = ()

    @property
    def nodes(self) -> tuple[NodePattern, ...]:
        """The node patterns, in order."""
        return tuple(e for e in self.elements if isinstance(e, NodePattern))

    @property
    def relationships(self) -> tuple[RelationshipPattern, ...]:
        """The relationship patterns, in order."""
        return tuple(
            e for e in self.elements if isinstance(e, RelationshipPattern)
        )

    def __post_init__(self) -> None:
        elements = self.elements
        if not elements or not isinstance(elements[0], NodePattern):
            raise ValueError("a path pattern must start with a node pattern")
        for index, element in enumerate(elements):
            expected = NodePattern if index % 2 == 0 else RelationshipPattern
            if not isinstance(element, expected):
                raise ValueError(
                    "path pattern elements must alternate node/relationship"
                )
        if not isinstance(elements[-1], NodePattern):
            raise ValueError("a path pattern must end with a node pattern")


@dataclass(frozen=True)
class Pattern:
    """A comma-separated tuple of path patterns."""

    paths: tuple[PathPattern, ...]


# ---------------------------------------------------------------------------
# Projections (RETURN / WITH bodies)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProjectionItem:
    """``expr [AS alias]``."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class SortItem:
    """``expr [ASC|DESC]`` inside ORDER BY."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class ProjectionBody:
    """The body shared by RETURN and WITH.

    ``include_existing`` encodes a leading ``*`` (RETURN *, WITH *).
    """

    items: tuple[ProjectionItem, ...] = ()
    include_existing: bool = False
    distinct: bool = False
    order_by: tuple[SortItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


class Clause:
    """Marker base class for all clause nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class MatchClause(Clause):
    """``[OPTIONAL] MATCH pattern [WHERE predicate]``."""

    pattern: Pattern
    optional: bool = False
    where: Optional[Expression] = None


@dataclass(frozen=True)
class UnwindClause(Clause):
    """``UNWIND expr AS variable``."""

    expression: Expression
    variable: str


@dataclass(frozen=True)
class WithClause(Clause):
    """``WITH body [WHERE predicate]``."""

    body: ProjectionBody
    where: Optional[Expression] = None


@dataclass(frozen=True)
class ReturnClause(Clause):
    """``RETURN body``."""

    body: ProjectionBody


@dataclass(frozen=True)
class LoadCsvClause(Clause):
    """``LOAD CSV [WITH HEADERS] FROM expr AS variable [FIELDTERMINATOR s]``."""

    source: Expression
    variable: str
    with_headers: bool = False
    field_terminator: Optional[str] = None


@dataclass(frozen=True)
class CreateClause(Clause):
    """``CREATE pattern`` (directed update patterns, Figure 5)."""

    pattern: Pattern


@dataclass(frozen=True)
class DeleteClause(Clause):
    """``[DETACH] DELETE expr, ...``."""

    expressions: tuple[Expression, ...]
    detach: bool = False


# --- SET items (Figure 4) --------------------------------------------------


@dataclass(frozen=True)
class SetProperty:
    """``SET e.k = value``."""

    target: Property
    value: Expression


@dataclass(frozen=True)
class SetAllProperties:
    """``SET e = map`` (replace the whole property map)."""

    target: Expression
    value: Expression


@dataclass(frozen=True)
class SetAdditiveProperties:
    """``SET e += map`` (merge into the property map)."""

    target: Expression
    value: Expression


@dataclass(frozen=True)
class SetLabels:
    """``SET e:Label1:Label2``."""

    target: Expression
    labels: tuple[str, ...]


SetItem = Union[SetProperty, SetAllProperties, SetAdditiveProperties, SetLabels]


@dataclass(frozen=True)
class SetClause(Clause):
    """``SET item, item, ...``."""

    items: tuple[SetItem, ...]


@dataclass(frozen=True)
class RemoveProperty:
    """``REMOVE e.k``."""

    target: Property


@dataclass(frozen=True)
class RemoveLabels:
    """``REMOVE e:Label1:Label2``."""

    target: Expression
    labels: tuple[str, ...]


RemoveItem = Union[RemoveProperty, RemoveLabels]


@dataclass(frozen=True)
class RemoveClause(Clause):
    """``REMOVE item, item, ...``."""

    items: tuple[RemoveItem, ...]


#: MERGE semantics selectors.  ``LEGACY`` is the bare Cypher 9 MERGE;
#: ``ALL`` and ``SAME`` are the decided revision (Section 7); the other
#: three are the remaining Section 6 proposals, accepted only when the
#: engine enables the extended experimental syntax.
MERGE_LEGACY = "legacy"
MERGE_ALL = "all"
MERGE_SAME = "same"
MERGE_GROUPING = "grouping"
MERGE_WEAK_COLLAPSE = "weak_collapse"
MERGE_COLLAPSE = "collapse"


@dataclass(frozen=True)
class MergeClause(Clause):
    """``MERGE [ALL|SAME|...] pattern``.

    Legacy merge takes a single, possibly undirected path pattern and
    optional ``ON CREATE SET`` / ``ON MATCH SET`` actions; revised merge
    takes a tuple of directed path patterns and no actions.
    """

    pattern: Pattern
    semantics: str = MERGE_LEGACY
    on_create: tuple[SetItem, ...] = ()
    on_match: tuple[SetItem, ...] = ()


@dataclass(frozen=True)
class ForeachClause(Clause):
    """``FOREACH (x IN list | update-clauses)``."""

    variable: str
    source: Expression
    updates: tuple[Clause, ...]


#: Clause categories used by the dialect-specific grammar checks
#: (Figure 2 vs Figure 10) and by the pipeline.
READING_CLAUSES = (MatchClause, UnwindClause, LoadCsvClause)
UPDATE_CLAUSES = (
    CreateClause,
    DeleteClause,
    SetClause,
    RemoveClause,
    MergeClause,
    ForeachClause,
)


def is_reading_clause(clause: Clause) -> bool:
    """True for MATCH / UNWIND / LOAD CSV."""
    return isinstance(clause, READING_CLAUSES)


def is_update_clause(clause: Clause) -> bool:
    """True for CREATE / DELETE / SET / REMOVE / MERGE / FOREACH."""
    return isinstance(clause, UPDATE_CLAUSES)


# ---------------------------------------------------------------------------
# Queries (Figure 2 / Figure 10)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SingleQuery:
    """A sequence of clauses (one UNION branch)."""

    clauses: tuple[Clause, ...]

    @property
    def return_clause(self) -> Optional[ReturnClause]:
        """The trailing RETURN clause, if any."""
        if self.clauses and isinstance(self.clauses[-1], ReturnClause):
            return self.clauses[-1]
        return None


@dataclass(frozen=True)
class UnionQuery:
    """``query UNION [ALL] query``."""

    left: Union["UnionQuery", SingleQuery]
    right: SingleQuery
    all: bool = False


Query = Union[SingleQuery, UnionQuery]


@dataclass(frozen=True)
class SchemaStatement:
    """A schema command: (CREATE|DROP) (INDEX|CONSTRAINT) on :label(key).

    ``kind`` is one of ``create_index``, ``drop_index``,
    ``create_unique_constraint``, ``drop_unique_constraint``.
    """

    kind: str
    label: str
    key: str
    source: str = field(default="", compare=False)


@dataclass(frozen=True)
class Statement:
    """The root of a parsed Cypher statement."""

    query: Query
    source: str = field(default="", compare=False)

    def branches(self) -> tuple[SingleQuery, ...]:
        """All UNION branches, left to right."""
        result: list[SingleQuery] = []

        def walk(query: Query) -> None:
            if isinstance(query, UnionQuery):
                walk(query.left)
                result.append(query.right)
            else:
                result.append(query)

        walk(self.query)
        return tuple(result)
