"""AST -> Cypher text.

The unparser produces a canonical rendering of any AST the parser can
build.  Round-tripping (parse, unparse, parse again, compare ASTs) is
used as a property test of the whole front end.
"""

from __future__ import annotations

from typing import Any

from repro.parser import ast

_MERGE_KEYWORDS = {
    ast.MERGE_LEGACY: "MERGE",
    ast.MERGE_ALL: "MERGE ALL",
    ast.MERGE_SAME: "MERGE SAME",
    ast.MERGE_GROUPING: "MERGE GROUPING",
    ast.MERGE_WEAK_COLLAPSE: "MERGE WEAK COLLAPSE",
    ast.MERGE_COLLAPSE: "MERGE COLLAPSE",
}

_IDENT_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _ident(name: str) -> str:
    """Quote an identifier with backticks when necessary."""
    if name and name[0].isalpha() and all(c in _IDENT_SAFE for c in name):
        return name
    escaped = name.replace("`", "``")
    return f"`{escaped}`"


def _string(value: str) -> str:
    escaped = (
        value.replace("\\", "\\\\")
        .replace("'", "\\'")
        .replace("\n", "\\n")
        .replace("\t", "\\t")
        .replace("\r", "\\r")
    )
    return f"'{escaped}'"


def unparse(node: Any) -> str:
    """Render a statement, query, clause, pattern or expression."""
    if isinstance(node, ast.SchemaStatement):
        return _unparse_schema(node)
    if isinstance(node, ast.Statement):
        return unparse(node.query)
    if isinstance(node, ast.UnionQuery):
        keyword = "UNION ALL" if node.all else "UNION"
        return f"{unparse(node.left)} {keyword} {unparse(node.right)}"
    if isinstance(node, ast.SingleQuery):
        return " ".join(unparse(clause) for clause in node.clauses)
    if isinstance(node, ast.Clause):
        return _unparse_clause(node)
    if isinstance(node, ast.Pattern):
        return ", ".join(unparse(path) for path in node.paths)
    if isinstance(node, ast.PathPattern):
        return _unparse_path(node)
    if isinstance(node, (ast.NodePattern, ast.RelationshipPattern)):
        return _unparse_pattern_element(node)
    if isinstance(node, ast.Expression):
        return _expr(node)
    raise TypeError(f"cannot unparse {type(node).__name__}")


def _unparse_schema(statement: ast.SchemaStatement) -> str:
    action = "CREATE" if statement.kind.startswith("create") else "DROP"
    label = _ident(statement.label)
    key = _ident(statement.key)
    if statement.kind.endswith("index"):
        return f"{action} INDEX ON :{label}({key})"
    return f"{action} CONSTRAINT ON (n:{label}) ASSERT n.{key} IS UNIQUE"


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------

def _unparse_clause(clause: ast.Clause) -> str:
    if isinstance(clause, ast.MatchClause):
        text = "OPTIONAL MATCH " if clause.optional else "MATCH "
        text += unparse(clause.pattern)
        if clause.where is not None:
            text += f" WHERE {_expr(clause.where)}"
        return text
    if isinstance(clause, ast.UnwindClause):
        return f"UNWIND {_expr(clause.expression)} AS {_ident(clause.variable)}"
    if isinstance(clause, ast.WithClause):
        text = "WITH " + _projection_body(clause.body)
        if clause.where is not None:
            text += f" WHERE {_expr(clause.where)}"
        return text
    if isinstance(clause, ast.ReturnClause):
        return "RETURN " + _projection_body(clause.body)
    if isinstance(clause, ast.LoadCsvClause):
        text = "LOAD CSV "
        if clause.with_headers:
            text += "WITH HEADERS "
        text += f"FROM {_expr(clause.source)} AS {_ident(clause.variable)}"
        if clause.field_terminator is not None:
            text += f" FIELDTERMINATOR {_string(clause.field_terminator)}"
        return text
    if isinstance(clause, ast.CreateClause):
        return "CREATE " + unparse(clause.pattern)
    if isinstance(clause, ast.DeleteClause):
        keyword = "DETACH DELETE" if clause.detach else "DELETE"
        exprs = ", ".join(_expr(e) for e in clause.expressions)
        return f"{keyword} {exprs}"
    if isinstance(clause, ast.SetClause):
        return "SET " + ", ".join(_set_item(item) for item in clause.items)
    if isinstance(clause, ast.RemoveClause):
        return "REMOVE " + ", ".join(
            _remove_item(item) for item in clause.items
        )
    if isinstance(clause, ast.MergeClause):
        text = _MERGE_KEYWORDS[clause.semantics] + " " + unparse(clause.pattern)
        if clause.on_create:
            text += " ON CREATE SET " + ", ".join(
                _set_item(item) for item in clause.on_create
            )
        if clause.on_match:
            text += " ON MATCH SET " + ", ".join(
                _set_item(item) for item in clause.on_match
            )
        return text
    if isinstance(clause, ast.ForeachClause):
        updates = " ".join(unparse(update) for update in clause.updates)
        return (
            f"FOREACH ({_ident(clause.variable)} IN "
            f"{_expr(clause.source)} | {updates})"
        )
    raise TypeError(f"cannot unparse clause {type(clause).__name__}")


def _projection_body(body: ast.ProjectionBody) -> str:
    parts: list[str] = []
    if body.distinct:
        parts.append("DISTINCT")
    item_texts: list[str] = []
    if body.include_existing:
        item_texts.append("*")
    for item in body.items:
        text = _expr(item.expression)
        if item.alias is not None:
            text += f" AS {_ident(item.alias)}"
        item_texts.append(text)
    parts.append(", ".join(item_texts))
    if body.order_by:
        sort_texts = [
            _expr(s.expression) + ("" if s.ascending else " DESC")
            for s in body.order_by
        ]
        parts.append("ORDER BY " + ", ".join(sort_texts))
    if body.skip is not None:
        parts.append(f"SKIP {_expr(body.skip)}")
    if body.limit is not None:
        parts.append(f"LIMIT {_expr(body.limit)}")
    return " ".join(parts)


def _set_item(item: ast.SetItem) -> str:
    if isinstance(item, ast.SetProperty):
        return f"{_expr(item.target)} = {_expr(item.value)}"
    if isinstance(item, ast.SetAllProperties):
        return f"{_expr(item.target)} = {_expr(item.value)}"
    if isinstance(item, ast.SetAdditiveProperties):
        return f"{_expr(item.target)} += {_expr(item.value)}"
    if isinstance(item, ast.SetLabels):
        labels = "".join(f":{_ident(label)}" for label in item.labels)
        return f"{_expr(item.target)}{labels}"
    raise TypeError(f"cannot unparse set item {type(item).__name__}")


def _remove_item(item: ast.RemoveItem) -> str:
    if isinstance(item, ast.RemoveProperty):
        return _expr(item.target)
    if isinstance(item, ast.RemoveLabels):
        labels = "".join(f":{_ident(label)}" for label in item.labels)
        return f"{_expr(item.target)}{labels}"
    raise TypeError(f"cannot unparse remove item {type(item).__name__}")


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

def _unparse_path(path: ast.PathPattern) -> str:
    text = ""
    if path.variable is not None:
        text += f"{_ident(path.variable)} = "
    text += "".join(
        _unparse_pattern_element(element) for element in path.elements
    )
    return text


def _unparse_pattern_element(element: Any) -> str:
    if isinstance(element, ast.NodePattern):
        inner = ""
        if element.variable is not None:
            inner += _ident(element.variable)
        inner += "".join(f":{_ident(label)}" for label in element.labels)
        if element.properties is not None and element.properties.items:
            if inner:
                inner += " "
            inner += _expr(element.properties)
        return f"({inner})"
    if isinstance(element, ast.RelationshipPattern):
        inner = ""
        if element.variable is not None:
            inner += _ident(element.variable)
        if element.types:
            inner += ":" + "|".join(_ident(t) for t in element.types)
        if element.var_length is not None:
            lower, upper = element.var_length
            if lower is not None and lower == upper:
                inner += f"*{lower}"
            else:
                inner += "*"
                if lower is not None:
                    inner += str(lower)
                if (lower, upper) != (None, None) and upper != lower:
                    inner += ".."
                    if upper is not None:
                        inner += str(upper)
        if element.properties is not None and element.properties.items:
            if inner:
                inner += " "
            inner += _expr(element.properties)
        body = f"[{inner}]" if inner else ""
        left = "<-" if element.direction == ast.IN else "-"
        right = "->" if element.direction == ast.OUT else "-"
        return f"{left}{body}{right}"
    raise TypeError(f"cannot unparse pattern element {type(element).__name__}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

#: Binding strength per operator, used to parenthesise only when needed.
_PRECEDENCE = {
    "OR": 1,
    "XOR": 2,
    "AND": 3,
    "NOT": 4,
    "=": 5, "<>": 5, "<": 5, "<=": 5, ">": 5, ">=": 5,
    "IN": 6, "STARTS WITH": 6, "ENDS WITH": 6, "CONTAINS": 6,
    "+": 7, "-": 7,
    "*": 8, "/": 8, "%": 8,
    "^": 9,
}

_ATOM_PRECEDENCE = 10


def _expr(node: ast.Expression, parent_precedence: int = 0) -> str:
    text, precedence = _expr_with_precedence(node)
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _expr_with_precedence(node: ast.Expression) -> tuple[str, int]:
    if isinstance(node, ast.Literal):
        return _literal(node.value), _ATOM_PRECEDENCE
    if isinstance(node, ast.Parameter):
        return f"${_ident(node.name)}", _ATOM_PRECEDENCE
    if isinstance(node, ast.Variable):
        return _ident(node.name), _ATOM_PRECEDENCE
    if isinstance(node, ast.Property):
        return (
            f"{_expr(node.subject, _ATOM_PRECEDENCE)}.{_ident(node.key)}",
            _ATOM_PRECEDENCE,
        )
    if isinstance(node, ast.ListLiteral):
        inner = ", ".join(_expr(item) for item in node.items)
        return f"[{inner}]", _ATOM_PRECEDENCE
    if isinstance(node, ast.MapLiteral):
        inner = ", ".join(
            f"{_ident(key)}: {_expr(value)}" for key, value in node.items
        )
        return f"{{{inner}}}", _ATOM_PRECEDENCE
    if isinstance(node, ast.Unary):
        if node.operator == "NOT":
            precedence = _PRECEDENCE["NOT"]
            return f"NOT {_expr(node.operand, precedence)}", precedence
        return (
            f"{node.operator}{_expr(node.operand, _ATOM_PRECEDENCE)}",
            _ATOM_PRECEDENCE,
        )
    if isinstance(node, ast.Binary):
        precedence = _PRECEDENCE[node.operator]
        if node.operator == "^":  # right-associative
            left = _expr(node.left, precedence + 1)
            right = _expr(node.right, precedence)
        elif precedence == 5:  # comparisons are non-associative
            left = _expr(node.left, precedence + 1)
            right = _expr(node.right, precedence + 1)
        else:
            left = _expr(node.left, precedence)
            right = _expr(node.right, precedence + 1)
        return f"{left} {node.operator} {right}", precedence
    if isinstance(node, ast.IsNull):
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        return f"{_expr(node.operand, 6)} {keyword}", 6
    if isinstance(node, ast.HasLabels):
        labels = "".join(f":{_ident(label)}" for label in node.labels)
        return f"{_expr(node.subject, _ATOM_PRECEDENCE)}{labels}", 6
    if isinstance(node, ast.FunctionCall):
        distinct = "DISTINCT " if node.distinct else ""
        args = ", ".join(_expr(arg) for arg in node.args)
        return f"{_ident(node.name)}({distinct}{args})", _ATOM_PRECEDENCE
    if isinstance(node, ast.CountStar):
        return "count(*)", _ATOM_PRECEDENCE
    if isinstance(node, ast.CaseExpression):
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(_expr(node.operand))
        for condition, result in node.alternatives:
            parts.append(f"WHEN {_expr(condition)} THEN {_expr(result)}")
        if node.default is not None:
            parts.append(f"ELSE {_expr(node.default)}")
        parts.append("END")
        return " ".join(parts), _ATOM_PRECEDENCE
    if isinstance(node, ast.ListComprehension):
        text = f"[{_ident(node.variable)} IN {_expr(node.source)}"
        if node.predicate is not None:
            text += f" WHERE {_expr(node.predicate)}"
        if node.projection is not None:
            text += f" | {_expr(node.projection)}"
        return text + "]", _ATOM_PRECEDENCE
    if isinstance(node, ast.Quantifier):
        return (
            f"{node.kind}({_ident(node.variable)} IN {_expr(node.source)} "
            f"WHERE {_expr(node.predicate)})",
            _ATOM_PRECEDENCE,
        )
    if isinstance(node, ast.Reduce):
        return (
            f"reduce({_ident(node.accumulator)} = {_expr(node.init)}, "
            f"{_ident(node.variable)} IN {_expr(node.source)} | "
            f"{_expr(node.expression)})",
            _ATOM_PRECEDENCE,
        )
    if isinstance(node, ast.Subscript):
        return (
            f"{_expr(node.subject, _ATOM_PRECEDENCE)}[{_expr(node.index)}]",
            _ATOM_PRECEDENCE,
        )
    if isinstance(node, ast.Slice):
        start = _expr(node.start) if node.start is not None else ""
        end = _expr(node.end) if node.end is not None else ""
        return (
            f"{_expr(node.subject, _ATOM_PRECEDENCE)}[{start}..{end}]",
            _ATOM_PRECEDENCE,
        )
    if isinstance(node, ast.PatternExpression):
        return _unparse_path(node.pattern), 6
    if isinstance(node, ast.ExistsExpression):
        if isinstance(node.argument, ast.PathPattern):
            return f"exists({_unparse_path(node.argument)})", _ATOM_PRECEDENCE
        return f"exists({_expr(node.argument)})", _ATOM_PRECEDENCE
    if isinstance(node, ast.HoistedExpression):
        # Rewrite marker: unparse transparently so RETURN column names
        # (derived from unparsed expressions) are unchanged by hoisting.
        return _expr_with_precedence(node.expression)
    raise TypeError(f"cannot unparse expression {type(node).__name__}")


def _literal(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return _string(value)
    if isinstance(value, float):
        text = repr(value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    return repr(value)
