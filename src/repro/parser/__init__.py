"""Cypher front end: lexer, AST, parser, unparser."""

from repro.parser.parser import parse, parse_expression

__all__ = ["parse", "parse_expression"]
