"""Hand-written tokenizer for Cypher statements.

Produces a flat list of :class:`Token` objects.  Notable choices:

* Keywords are case-insensitive and lexed as ``KEYWORD`` tokens carrying
  their canonical upper-case form; the parser freely treats keywords as
  identifiers where the grammar allows (function names, property keys,
  labels), mirroring how real Cypher lets you write ``n.count``.

* ``<-`` and ``->`` are *not* composite tokens: the pattern parser
  assembles arrows from ``<``, ``-``, ``>`` so that ``a < -b`` in
  expression position still lexes naturally.  Multi-character operators
  that are unambiguous (``<=``, ``>=``, ``<>``, ``+=``, ``..``) are
  merged by the lexer.

* Line comments ``//`` and block comments ``/* */`` are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CypherSyntaxError

#: Canonical keyword set (upper-case).
KEYWORDS = frozenset(
    """
    ALL AND AS ASC ASCENDING BY CASE CONTAINS CREATE CSV DELETE DESC
    DESCENDING DETACH DISTINCT ELSE END ENDS EXISTS FALSE FIELDTERMINATOR
    FOREACH FROM GROUPING HEADERS IN IS LIMIT LOAD MATCH MERGE NOT NULL
    ON OPTIONAL OR ORDER REMOVE RETURN SAME SET SKIP STARTS THEN TRUE
    UNION UNWIND WEAK WHEN WHERE WITH XOR STRONG COLLAPSE ATOMIC
    ASSERT CONSTRAINT DROP INDEX UNIQUE
    """.split()
)

#: Multi-character punctuation, longest first.
_MULTI_CHAR = ("<=", ">=", "<>", "+=", "..", "=~")

#: Single-character punctuation.
_SINGLE_CHAR = set("()[]{},.:;|+-*/%^=<>$")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based).

    For keywords, ``value`` is the canonical upper-case form and
    ``text`` the original spelling (needed when a *soft* keyword is
    used as a variable name, e.g. the paper's ``order`` variable).
    """

    type: str  # IDENT | KEYWORD | INTEGER | FLOAT | STRING | PUNCT | EOF
    value: str
    line: int
    column: int
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            object.__setattr__(self, "text", self.value)

    def is_keyword(self, *names: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.type == "KEYWORD" and self.value in names

    def is_punct(self, *symbols: str) -> bool:
        """True if this token is one of the given punctuation symbols."""
        return self.type == "PUNCT" and self.value in symbols

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{self.type}({self.value!r})@{self.line}:{self.column}"


class Lexer:
    """Single-pass tokenizer over a statement string."""

    def __init__(self, source: str):
        self._source = source
        self._length = len(source)
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Tokenize the whole statement, appending a final EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= self._length:
                tokens.append(Token("EOF", "", self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------

    def _error(self, message: str) -> CypherSyntaxError:
        return CypherSyntaxError(message, self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._source[index] if index < self._length else ""

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._pos : self._pos + count]
        for char in text:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < self._length:
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < self._length and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._column
                self._advance(2)
                while self._pos < self._length and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self._pos >= self._length:
                    raise CypherSyntaxError(
                        "unterminated block comment", start_line, start_col
                    )
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        char = self._peek()
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_word(line, column)
        if char in "'\"":
            return self._lex_string(line, column)
        if char == "`":
            return self._lex_backtick(line, column)
        for symbol in _MULTI_CHAR:
            if self._source.startswith(symbol, self._pos):
                # ``..`` must not swallow the dot of ``1.5``; the number
                # branch above already claimed digit-led dots.
                self._advance(len(symbol))
                return Token("PUNCT", symbol, line, column)
        if char in _SINGLE_CHAR:
            self._advance()
            return Token("PUNCT", char, line, column)
        raise self._error(f"unexpected character {char!r}")

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        # A dot starts a fraction only if followed by a digit; this keeps
        # ``n.prop`` and ``1..5`` (range) lexing correctly.
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        return Token("FLOAT" if is_float else "INTEGER", text, line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return Token("KEYWORD", upper, line, column, text=text)
        return Token("IDENT", text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        quote = self._advance()
        chars: list[str] = []
        while True:
            if self._pos >= self._length:
                raise CypherSyntaxError("unterminated string", line, column)
            char = self._advance()
            if char == quote:
                return Token("STRING", "".join(chars), line, column)
            if char == "\\":
                escape = self._advance()
                if escape == "u":
                    digits = self._advance(4)
                    if len(digits) != 4 or not all(
                        c in "0123456789abcdefABCDEF" for c in digits
                    ):
                        raise self._error("invalid \\u escape")
                    chars.append(chr(int(digits, 16)))
                elif escape in _ESCAPES:
                    chars.append(_ESCAPES[escape])
                else:
                    raise self._error(f"invalid escape \\{escape}")
            else:
                chars.append(char)

    def _lex_backtick(self, line: int, column: int) -> Token:
        self._advance()  # opening backtick
        chars: list[str] = []
        while True:
            if self._pos >= self._length:
                raise CypherSyntaxError(
                    "unterminated backtick identifier", line, column
                )
            char = self._advance()
            if char == "`":
                if self._peek() == "`":  # escaped backtick
                    chars.append(self._advance())
                    continue
                if not chars:
                    raise self._error("empty backtick identifier")
                return Token("IDENT", "".join(chars), line, column)
            chars.append(char)


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning tokens ending with EOF."""
    return Lexer(source).tokenize()
