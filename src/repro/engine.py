"""The query engine: parse, execute, guarantee statement atomicity.

:class:`CypherEngine` executes whole statements against a
:class:`~repro.graph.store.GraphStore` under a chosen
:class:`~repro.dialect.Dialect`.  Responsibilities:

* parsing (with a small AST cache keyed by source and dialect);
* running UNION branches and combining their outputs (Section 8.2:
  updates are side effects applied left to right; output tables are
  unioned, with ``UNION`` deduplicating and ``UNION ALL`` not);
* statement-level atomicity: every statement runs inside a journal
  bracket, and any error rolls the graph back to the statement start;
* the legacy dialect's *commit-time* well-formedness check: a statement
  may pass through dangling states (Section 4.2) but must not leave one
  behind -- if it does, the statement fails and rolls back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Optional

from repro.caching import LRUCache
from repro.dialect import Dialect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.profile import QueryProfile
from repro.errors import CypherError, UpdateError
from repro.graph.store import GraphStore
from repro.parser import ast
from repro.parser.parser import parse
from repro.runtime.context import EvalContext, MatchMode
from repro.runtime.pipeline import execute_clauses
from repro.runtime.table import DrivingTable


@dataclass(frozen=True)
class UpdateCounters:
    """What a statement changed, derived from the undo journal."""

    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    properties_set: int = 0
    labels_added: int = 0
    labels_removed: int = 0

    @property
    def contains_updates(self) -> bool:
        """True if anything changed."""
        return any(
            (
                self.nodes_created,
                self.nodes_deleted,
                self.relationships_created,
                self.relationships_deleted,
                self.properties_set,
                self.labels_added,
                self.labels_removed,
            )
        )


_JOURNAL_COUNTER_FIELDS = {
    "node_created": "nodes_created",
    "node_deleted": "nodes_deleted",
    "rel_created": "relationships_created",
    "rel_deleted": "relationships_deleted",
    "node_prop": "properties_set",
    "rel_prop": "properties_set",
    "label_added": "labels_added",
    "label_removed": "labels_removed",
}


@dataclass
class QueryResult:
    """Output of one statement: the result table plus update counters."""

    table: DrivingTable
    counters: UpdateCounters = field(default_factory=UpdateCounters)
    #: per-clause runtime profile; set only when executed in PROFILE mode
    profile: Optional["QueryProfile"] = None

    @property
    def columns(self) -> tuple[str, ...]:
        """Column names of the output table."""
        return self.table.columns

    @property
    def records(self) -> list[dict]:
        """The output records as plain dicts."""
        return self.table.to_dicts()

    def values(self, column: str) -> list[Any]:
        """All values of one output column."""
        return self.table.column_values(column)

    def single(self) -> dict:
        """The only record (raises unless exactly one)."""
        records = self.table.records
        if len(records) != 1:
            raise CypherError(
                f"expected exactly one record, got {len(records)}"
            )
        return dict(records[0])

    def pretty(self, max_rows: int = 20) -> str:
        """Fixed-width rendering of the result table."""
        return self.table.pretty(max_rows)

    def to_json(self) -> str:
        """JSON rendering; entities become their property maps."""
        import json

        return json.dumps(
            [_jsonable(record) for record in self.table.to_dicts()],
            sort_keys=True,
        )

    def to_csv(self) -> str:
        """CSV rendering with a header row (nulls as empty cells)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for record in self.table.to_dicts():
            writer.writerow(
                [
                    "" if record[column] is None else _jsonable(record[column])
                    for column in self.columns
                ]
            )
        return buffer.getvalue()

    def __iter__(self) -> Iterator[dict]:
        return iter(self.table.to_dicts())

    def __len__(self) -> int:
        return len(self.table)


def _jsonable(value):
    """Plain-data view of a result value (entities -> property maps)."""
    from repro.graph.model import Node, Path, Relationship

    if isinstance(value, (Node, Relationship)):
        return dict(value.properties)
    if isinstance(value, Path):
        return {
            "nodes": [dict(n.properties) for n in value.nodes],
            "relationships": [dict(r.properties) for r in value.relationships],
        }
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    return value


#: Clause types that never mutate the graph.  ``LOAD CSV`` reads the
#: filesystem but not the store, so it is read-only *for isolation
#: purposes* (the server gates it separately as a security limit).
_READ_ONLY_CLAUSES = (
    ast.MatchClause,
    ast.UnwindClause,
    ast.WithClause,
    ast.ReturnClause,
    ast.LoadCsvClause,
)


def statement_is_read_only(
    statement: ast.Statement | ast.SchemaStatement,
) -> bool:
    """True when *statement* cannot mutate the graph.

    Conservative and purely syntactic: any update clause (CREATE, SET,
    REMOVE, DELETE, MERGE, FOREACH) in any UNION branch, or a schema
    command, makes the statement a write.  The session layer uses this
    to decide whether a statement may run against a committed snapshot
    while another session holds an open write transaction, so a false
    "read-only" would break isolation -- unknown clause types count as
    writes.
    """
    if isinstance(statement, ast.SchemaStatement):
        return False

    def query_is_read_only(query: ast.Query) -> bool:
        if isinstance(query, ast.UnionQuery):
            return query_is_read_only(query.left) and query_is_read_only(
                query.right
            )
        return all(
            isinstance(clause, _READ_ONLY_CLAUSES)
            for clause in query.clauses
        )

    return query_is_read_only(statement.query)


class CypherEngine:
    """Executes Cypher statements against a graph store."""

    def __init__(
        self,
        store: GraphStore | None = None,
        dialect: Dialect | str = Dialect.REVISED,
        *,
        extended_merge: bool = False,
        match_mode: MatchMode | str = MatchMode.TRAIL,
        use_planner: bool = False,
        workers: int = 1,
        parallel: str = "thread",
        use_rewrites: bool | None = None,
    ):
        self.store = store if store is not None else GraphStore()
        self.dialect = Dialect.parse(dialect)
        self.extended_merge = extended_merge
        self.match_mode = (
            match_mode
            if isinstance(match_mode, MatchMode)
            else MatchMode(match_mode)
        )
        self.use_planner = use_planner
        #: Morsel workers for read-only segments (1 = serial executor);
        #: the effective count is further capped per scope by
        #: repro.runtime.parallel.worker_limit (the server's per-request
        #: cap).
        self.workers = max(1, int(workers))
        if parallel not in ("thread", "process"):
            raise ValueError(
                f"parallel must be 'thread' or 'process', got {parallel!r}"
            )
        self.parallel = parallel
        #: Plan rewrites (predicate pushdown + hoisting).  None -- the
        #: default -- follows use_planner, so optimised sessions get
        #: both cost-based planning and rewrites; pass True/False to
        #: decouple them.
        self.use_rewrites = (
            use_planner if use_rewrites is None else use_rewrites
        )
        self._ast_cache: LRUCache = LRUCache(capacity=1024)

    # ------------------------------------------------------------------

    def parse(self, source: str) -> ast.Statement:
        """Parse *source* under the engine's dialect (LRU-cached)."""
        key = (source, self.dialect, self.extended_merge)
        statement = self._ast_cache.get(key)
        if statement is None:
            statement = parse(
                source, self.dialect, extended_merge=self.extended_merge
            )
            self._ast_cache.put(key, statement)
        return statement

    def ast_cache_info(self) -> dict[str, int]:
        """Statement-cache counters (hits, misses, evictions, size)."""
        return self._ast_cache.info()

    def execute(
        self,
        source: str | ast.Statement,
        parameters: Mapping[str, Any] | None = None,
        table: DrivingTable | None = None,
        *,
        profile: bool = False,
    ) -> QueryResult:
        """Execute one statement atomically.

        *table* optionally replaces the initial unit table -- this is
        how the paper's examples feed "already populated" driving
        tables into update clauses.  On any error the graph is rolled
        back to its state before the statement.

        With ``profile=True`` the statement runs with db-hit counters
        installed on the store and a per-clause
        :class:`~repro.runtime.profile.QueryProfile` is attached to the
        result (``result.profile``).
        """
        statement = (
            source
            if isinstance(source, (ast.Statement, ast.SchemaStatement))
            else self.parse(source)
        )
        query_profile = (
            self._new_profile(source, statement) if profile else None
        )
        if isinstance(statement, ast.SchemaStatement):
            return self._execute_schema(statement, query_profile)
        initial = table.copy() if table is not None else DrivingTable.unit()
        # Eager scope checking: typos fail even on empty driving tables.
        from repro.runtime.scoping import check_statement

        check_statement(statement, frozenset(initial.columns))
        supplied = dict(parameters or {})
        executed = statement
        if self.use_rewrites:
            from repro.runtime.rewrite import rewrite_statement

            # Rewrites run after scope checking (they assume a valid
            # statement) and never change semantics -- see the module
            # docstring for the equivalence argument.
            executed = rewrite_statement(
                statement,
                initial_columns=tuple(initial.columns),
                parameters=frozenset(supplied),
            )
        ctx = EvalContext(
            store=self.store,
            parameters=supplied,
            match_mode=self.match_mode,
            use_planner=self.use_planner,
            preserve_match_order=self.dialect is Dialect.CYPHER9,
            profile=query_profile,
            workers=self.workers,
            parallel_executor=self.parallel,
        )
        mark = self.store.mark()
        compiler_before: dict[str, int] | None = None
        if query_profile is not None:
            self.store.install_counters(query_profile.counters)
            from repro.runtime.compiler import STATS as compiler_stats

            compiler_before = compiler_stats.snapshot()
        started = time.perf_counter()
        try:
            output = self._run_query(ctx, executed.query, initial)
            if self.dialect is Dialect.CYPHER9:
                self._check_commit_time_well_formedness()
        except Exception:
            self.store.rollback_to(mark)
            raise
        finally:
            if query_profile is not None:
                query_profile.time_ms = (
                    time.perf_counter() - started
                ) * 1000
                from repro.runtime.compiler import STATS as compiler_stats

                query_profile.compiler = {
                    name: value - compiler_before[name]
                    for name, value in compiler_stats.snapshot().items()
                }
                self.store.reset_counters()
        counters = self._counters_since(mark)
        # Publish the statement to the write-ahead log (if one is
        # attached) only after the counters were derived: commit
        # truncates the journal slice the counters read.
        self.store.commit_statement(mark)
        result = QueryResult(
            table=output, counters=counters, profile=query_profile
        )
        if query_profile is not None:
            query_profile.result = result
        return result

    run = execute  # convenient alias

    def profile(
        self,
        source: str | ast.Statement,
        parameters: Mapping[str, Any] | None = None,
        table: DrivingTable | None = None,
    ) -> QueryResult:
        """Execute with profiling on; the result carries ``.profile``."""
        return self.execute(source, parameters, table=table, profile=True)

    def _new_profile(
        self, source: str | ast.Statement, statement: ast.Statement
    ) -> "QueryProfile":
        from repro.parser.unparse import unparse
        from repro.runtime.profile import QueryProfile

        text = source if isinstance(source, str) else unparse(statement)
        return QueryProfile(
            text, self.dialect.value, planner=self.use_planner
        )

    def _execute_schema(
        self,
        statement: ast.SchemaStatement,
        query_profile: "QueryProfile | None" = None,
    ) -> QueryResult:
        """Apply a CREATE/DROP INDEX/CONSTRAINT command."""
        label, key = statement.label, statement.key
        entry = None
        if query_profile is not None:
            self.store.install_counters(query_profile.counters)
            entry = query_profile.begin(
                f"SchemaCommand {statement.kind} :{label}({key})", 0
            )
        started = time.perf_counter()
        try:
            if statement.kind == "create_index":
                self.store.create_index(label, key)
            elif statement.kind == "drop_index":
                self.store.drop_index(label, key)
            elif statement.kind == "create_unique_constraint":
                self.store.create_unique_constraint(label, key)
            elif statement.kind == "drop_unique_constraint":
                self.store.drop_unique_constraint(label, key)
            else:  # pragma: no cover - parser guarantees the kinds
                raise CypherError(f"unknown schema command {statement.kind}")
        finally:
            if query_profile is not None:
                query_profile.end(entry, 0)
                query_profile.time_ms = (
                    time.perf_counter() - started
                ) * 1000
                self.store.reset_counters()
        result = QueryResult(table=DrivingTable(), profile=query_profile)
        if query_profile is not None:
            query_profile.result = result
        return result

    def explain(self, source: str | ast.Statement) -> str:
        """Describe how a statement would execute (no execution)."""
        from repro.runtime.explain import explain_statement

        statement = (
            source
            if isinstance(source, (ast.Statement, ast.SchemaStatement))
            else self.parse(source)
        )
        if isinstance(statement, ast.SchemaStatement):
            return (
                f"schema command: {statement.kind} on "
                f":{statement.label}({statement.key})"
            )
        ctx = EvalContext(
            store=self.store,
            match_mode=self.match_mode,
            use_planner=self.use_planner,
        )
        return explain_statement(ctx, statement, self.dialect)

    def plan(self, source: str | ast.Statement) -> str:
        """Describe the match planner's choices for a statement.

        Like :meth:`explain` but with the planner forced on, so anchor
        and ordering decisions are shown even for an engine constructed
        without ``use_planner=True``.  No execution happens.
        """
        from repro.runtime.explain import explain_statement

        statement = (
            source
            if isinstance(source, (ast.Statement, ast.SchemaStatement))
            else self.parse(source)
        )
        if isinstance(statement, ast.SchemaStatement):
            return (
                f"schema command: {statement.kind} on "
                f":{statement.label}({statement.key})"
            )
        ctx = EvalContext(
            store=self.store,
            match_mode=self.match_mode,
            use_planner=True,
        )
        return explain_statement(ctx, statement, self.dialect)

    # ------------------------------------------------------------------

    def _run_query(
        self,
        ctx: EvalContext,
        query: ast.Query,
        initial: DrivingTable,
    ) -> DrivingTable:
        if isinstance(query, ast.UnionQuery):
            left = self._run_query(ctx, query.left, initial.copy())
            right = self._run_single(ctx, query.right, initial.copy())
            combined = left.concat(right)
            return combined if query.all else combined.distinct()
        return self._run_single(ctx, query, initial)

    def _run_single(
        self,
        ctx: EvalContext,
        query: ast.SingleQuery,
        initial: DrivingTable,
    ) -> DrivingTable:
        final = execute_clauses(ctx, query.clauses, initial, self.dialect)
        if query.return_clause is None:
            # Statements without RETURN output the empty table.
            return DrivingTable()
        return final

    def _check_commit_time_well_formedness(self) -> None:
        """Reject statements that leave dangling relationships behind.

        The legacy dialect tolerates dangling relationships *during* a
        statement (Section 4.2) but, like Neo4j, validates the graph at
        the statement boundary.
        """
        for rel in self.store.relationships():
            if rel.start.is_deleted or rel.end.is_deleted:
                raise UpdateError(
                    f"statement would leave dangling relationship "
                    f"{rel.id} ({rel.type}); delete it in the same statement"
                )

    def _counters_since(self, mark: int) -> UpdateCounters:
        counts: dict[str, int] = {}
        for entry in self.store._journal[mark:]:
            field_name = _JOURNAL_COUNTER_FIELDS.get(entry[0])
            if field_name:
                counts[field_name] = counts.get(field_name, 0) + 1
        return UpdateCounters(**counts)
