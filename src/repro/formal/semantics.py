"""Reference implementation of the Section 8 update semantics.

This module transcribes the paper's denotational definitions as
directly as possible, trading every optimisation for obviousness:

* graphs are immutable :class:`~repro.graph.model.GraphSnapshot` values
  and each operation builds a whole new snapshot;
* driving-table rows bind variables to scalars or to entity *tags*
  ``("node", id)`` / ``("rel", id)``;
* ``MERGE SAME`` is implemented literally as
  ``[[MERGE ALL]]`` followed by the quotient under the collapsibility
  relations of Definitions 1 and 2 -- equivalence classes are computed
  by *pairwise* comparison, exactly as defined, with no caching tricks.

The engine in :mod:`repro.core` implements the same semantics with an
entity cache (DESIGN.md decision 1); the property tests in
``tests/properties`` check the two against each other up to id
renaming.  Pattern property values here may be literals, parameters or
row variables (all the paper's examples fit this fragment).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import (
    CypherSemanticError,
    DanglingRelationshipError,
    PropertyConflictError,
)
from repro.graph.model import GraphSnapshot
from repro.graph.values import equivalent, grouping_key
from repro.parser import ast

NodeTag = tuple[str, int]


def node_tag(node_id: int) -> NodeTag:
    """The table representation of a node reference."""
    return ("node", node_id)


def rel_tag(rel_id: int) -> NodeTag:
    """The table representation of a relationship reference."""
    return ("rel", rel_id)


def empty_graph() -> GraphSnapshot:
    """The empty property graph."""
    return GraphSnapshot(nodes=frozenset(), relationships=frozenset())


@dataclass(frozen=True)
class MergeOutcome:
    """Result of a formal MERGE evaluation."""

    graph: GraphSnapshot
    table: tuple[dict, ...]
    #: (position, node id) of every node created by the CREATE phase
    created_nodes: tuple[tuple[tuple[int, int], int], ...] = ()
    #: (position, rel id) of every relationship created
    created_rels: tuple[tuple[tuple[int, int], int], ...] = ()


# ---------------------------------------------------------------------------
# Expression fragment
# ---------------------------------------------------------------------------

def eval_expression(expression: ast.Expression, row: Mapping[str, Any]) -> Any:
    """Evaluate the restricted expression fragment used in patterns."""
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Variable):
        if expression.name not in row:
            raise CypherSemanticError(
                f"formal semantics: unbound variable {expression.name!r}"
            )
        return row[expression.name]
    raise CypherSemanticError(
        "the formal reference semantics only evaluates literals and "
        f"variables in patterns, got {type(expression).__name__}"
    )


def _pattern_properties(
    properties: ast.MapLiteral | None, row: Mapping[str, Any]
) -> dict:
    if properties is None:
        return {}
    result = {}
    for key, expr in properties.items:
        value = eval_expression(expr, row)
        if value is not None:  # iota(x, k) = null encodes absence
            result[key] = value
    return result


# ---------------------------------------------------------------------------
# Pattern matching relation (p, G, u) |= pi  -- update patterns only
# ---------------------------------------------------------------------------

def match_rows(
    graph: GraphSnapshot, pattern: ast.Pattern, row: Mapping[str, Any]
) -> Iterator[dict]:
    """All extensions of *row* satisfying the (update) pattern.

    Update patterns are fixed-length and directed, so matching is a
    simple backtracking walk.  Relationship uniqueness (trail
    semantics) applies across the whole pattern.
    """
    paths = pattern.paths
    yield from _match_path_index(graph, paths, 0, dict(row), set())


def _match_path_index(
    graph: GraphSnapshot,
    paths: tuple[ast.PathPattern, ...],
    index: int,
    row: dict,
    used: set[int],
) -> Iterator[dict]:
    if index == len(paths):
        yield dict(row)
        return
    elements = paths[index].elements
    yield from _match_elements(
        graph, paths, index, elements, 0, None, row, used
    )


def _match_elements(
    graph: GraphSnapshot,
    paths: tuple,
    path_index: int,
    elements: tuple,
    element_index: int,
    current: int | None,
    row: dict,
    used: set[int],
) -> Iterator[dict]:
    if element_index >= len(elements):
        yield from _match_path_index(graph, paths, path_index + 1, row, used)
        return
    element = elements[element_index]
    if isinstance(element, ast.NodePattern):
        for node_id in _node_candidates(graph, element, row, current):
            added = _bind(row, element.variable, node_tag(node_id))
            yield from _match_elements(
                graph,
                paths,
                path_index,
                elements,
                element_index + 1,
                node_id,
                row,
                used,
            )
            _unbind(row, element.variable, added)
        return
    # Relationship element: enumerate edges leaving/entering `current`.
    for rel_id, next_node in _rel_candidates(graph, element, row, current):
        if rel_id in used:
            continue
        used.add(rel_id)
        added = _bind(row, element.variable, rel_tag(rel_id))
        # The node element after the relationship constrains next_node.
        node_element = elements[element_index + 1]
        if _node_satisfies(graph, node_element, row, next_node):
            node_added = _bind(row, node_element.variable, node_tag(next_node))
            yield from _match_elements(
                graph,
                paths,
                path_index,
                elements,
                element_index + 2,
                next_node,
                row,
                used,
            )
            _unbind(row, node_element.variable, node_added)
        _unbind(row, element.variable, added)
        used.discard(rel_id)


def _bind(row: dict, variable: str | None, value: Any) -> bool:
    if variable is None or variable in row:
        return False
    row[variable] = value
    return True


def _unbind(row: dict, variable: str | None, added: bool) -> None:
    if added and variable is not None:
        del row[variable]


def _node_candidates(
    graph: GraphSnapshot,
    element: ast.NodePattern,
    row: Mapping[str, Any],
    current: int | None,
) -> Iterator[int]:
    if element.variable is not None and element.variable in row:
        value = row[element.variable]
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and value[0] == "node"
            and value[1] in graph.nodes
            and _node_satisfies(graph, element, row, value[1])
        ):
            yield value[1]
        return
    for node_id in sorted(graph.nodes):
        if _node_satisfies(graph, element, row, node_id):
            yield node_id


def _node_satisfies(
    graph: GraphSnapshot,
    element: ast.NodePattern,
    row: Mapping[str, Any],
    node_id: int,
) -> bool:
    if element.variable is not None and element.variable in row:
        if row[element.variable] != node_tag(node_id):
            return False
    labels = graph.labels.get(node_id, frozenset())
    if not set(element.labels) <= labels:
        return False
    props = graph.node_properties.get(node_id, {})
    if element.properties is not None:
        for key, expr in element.properties.items:
            value = eval_expression(expr, row)
            if value is None:
                return False  # {k: null} never matches
            if key not in props or not equivalent(props[key], value):
                return False
    return True


def _rel_candidates(
    graph: GraphSnapshot,
    element: ast.RelationshipPattern,
    row: Mapping[str, Any],
    current: int | None,
) -> Iterator[tuple[int, int]]:
    assert current is not None
    for rel_id in sorted(graph.relationships):
        if element.types and graph.types[rel_id] not in element.types:
            continue
        if element.direction == ast.OUT:
            if graph.source[rel_id] != current:
                continue
            next_node = graph.target[rel_id]
        elif element.direction == ast.IN:
            if graph.target[rel_id] != current:
                continue
            next_node = graph.source[rel_id]
        else:
            raise CypherSemanticError(
                "update patterns must be directed in the formal semantics"
            )
        props = graph.rel_properties.get(rel_id, {})
        if element.properties is not None:
            satisfied = True
            for key, expr in element.properties.items:
                value = eval_expression(expr, row)
                if value is None or key not in props or not equivalent(
                    props[key], value
                ):
                    satisfied = False
                    break
            if not satisfied:
                continue
        yield rel_id, next_node


# ---------------------------------------------------------------------------
# CREATE (saturation + inductive creation)
# ---------------------------------------------------------------------------

@dataclass
class _Builder:
    """Functional graph builder accumulating one new snapshot."""

    nodes: set = field(default_factory=set)
    rels: set = field(default_factory=set)
    source: dict = field(default_factory=dict)
    target: dict = field(default_factory=dict)
    labels: dict = field(default_factory=dict)
    types: dict = field(default_factory=dict)
    node_props: dict = field(default_factory=dict)
    rel_props: dict = field(default_factory=dict)

    @classmethod
    def from_snapshot(cls, graph: GraphSnapshot) -> "_Builder":
        return cls(
            nodes=set(graph.nodes),
            rels=set(graph.relationships),
            source=dict(graph.source),
            target=dict(graph.target),
            labels=dict(graph.labels),
            types=dict(graph.types),
            node_props={k: dict(v) for k, v in graph.node_properties.items()},
            rel_props={k: dict(v) for k, v in graph.rel_properties.items()},
        )

    def fresh_node_id(self) -> int:
        return max(self.nodes, default=-1) + 1

    def fresh_rel_id(self) -> int:
        return max(self.rels, default=-1) + 1

    def snapshot(self) -> GraphSnapshot:
        return GraphSnapshot(
            nodes=frozenset(self.nodes),
            relationships=frozenset(self.rels),
            source=dict(self.source),
            target=dict(self.target),
            labels={k: frozenset(v) for k, v in self.labels.items()},
            types=dict(self.types),
            node_properties={k: dict(v) for k, v in self.node_props.items()},
            rel_properties={k: dict(v) for k, v in self.rel_props.items()},
        )


def create(
    graph: GraphSnapshot,
    pattern: ast.Pattern,
    table: tuple[dict, ...],
) -> MergeOutcome:
    """``[[CREATE pi]](G, T)``: one instance of *pattern* per row."""
    builder = _Builder.from_snapshot(graph)
    created_nodes: list = []
    created_rels: list = []
    out_rows: list[dict] = []
    for row in table:
        scope = dict(row)
        for path_index, path in enumerate(pattern.paths):
            previous: int | None = None
            pending: tuple[ast.RelationshipPattern, tuple[int, int]] | None = None
            for element_index, element in enumerate(path.elements):
                position = (path_index, element_index)
                if isinstance(element, ast.NodePattern):
                    node_id = _create_node(
                        builder, element, position, scope, created_nodes
                    )
                    if pending is not None:
                        rel_element, rel_position = pending
                        _create_rel(
                            builder,
                            rel_element,
                            rel_position,
                            previous,
                            node_id,
                            scope,
                            created_rels,
                        )
                        pending = None
                    previous = node_id
                else:
                    pending = (element, position)
        out_rows.append(scope)
    return MergeOutcome(
        graph=builder.snapshot(),
        table=tuple(out_rows),
        created_nodes=tuple(created_nodes),
        created_rels=tuple(created_rels),
    )


def _create_node(
    builder: _Builder,
    element: ast.NodePattern,
    position: tuple[int, int],
    scope: dict,
    created_nodes: list,
) -> int:
    variable = element.variable
    if variable is not None and variable in scope:
        value = scope[variable]
        if not (isinstance(value, tuple) and value[0] == "node"):
            raise CypherSemanticError(
                f"variable {variable!r} is not bound to a node"
            )
        return value[1]
    node_id = builder.fresh_node_id()
    builder.nodes.add(node_id)
    builder.labels[node_id] = frozenset(element.labels)
    builder.node_props[node_id] = _pattern_properties(
        element.properties, scope
    )
    created_nodes.append((position, node_id))
    if variable is not None:
        scope[variable] = node_tag(node_id)
    return node_id


def _create_rel(
    builder: _Builder,
    element: ast.RelationshipPattern,
    position: tuple[int, int],
    left: int,
    right: int,
    scope: dict,
    created_rels: list,
) -> int:
    if element.direction == ast.OUT:
        source, target = left, right
    elif element.direction == ast.IN:
        source, target = right, left
    else:
        raise CypherSemanticError("created relationships must be directed")
    rel_id = builder.fresh_rel_id()
    builder.rels.add(rel_id)
    builder.source[rel_id] = source
    builder.target[rel_id] = target
    builder.types[rel_id] = element.types[0]
    builder.rel_props[rel_id] = _pattern_properties(element.properties, scope)
    created_rels.append((position, rel_id))
    if element.variable is not None:
        scope[element.variable] = rel_tag(rel_id)
    return rel_id


# ---------------------------------------------------------------------------
# MERGE ALL  (Section 8.2, displayed equation)
# ---------------------------------------------------------------------------

def merge_all(
    graph: GraphSnapshot, pattern: ast.Pattern, table: tuple[dict, ...]
) -> MergeOutcome:
    """``[[MERGE ALL pi]](G, T) = (G_create, T_match |+| T_create)``."""
    from repro.core.merge import reject_null_merge_properties

    reject_null_merge_properties(pattern)
    t_match: list[dict] = []
    t_fail: list[dict] = []
    for row in table:
        matches = list(match_rows(graph, pattern, row))
        if matches:
            t_match.extend(matches)
        else:
            t_fail.append(dict(row))  # multiplicity preserved
    creation = create(graph, pattern, tuple(t_fail))
    return MergeOutcome(
        graph=creation.graph,
        table=tuple(t_match) + creation.table,
        created_nodes=creation.created_nodes,
        created_rels=creation.created_rels,
    )


# ---------------------------------------------------------------------------
# Collapsibility (Definitions 1 and 2) and the quotient
# ---------------------------------------------------------------------------

def _nodes_collapsible(
    graph: GraphSnapshot,
    original_nodes: frozenset[int],
    n1: int,
    n2: int,
    positions: Mapping[int, set],
    by_position: bool,
) -> bool:
    """Definition 1, extended with the Weak Collapse position condition."""
    if n1 == n2:
        return True
    # (iii) nodes of the original graph collapse only with themselves
    if n1 in original_nodes or n2 in original_nodes:
        return False
    # (i) same labels
    if graph.labels.get(n1, frozenset()) != graph.labels.get(n2, frozenset()):
        return False
    # (ii) same properties (iota agrees on every key; null = null)
    props1 = graph.node_properties.get(n1, {})
    props2 = graph.node_properties.get(n2, {})
    if grouping_key(dict(props1)) != grouping_key(dict(props2)):
        return False
    # Weak Collapse: only entities matched to the same pattern position
    if by_position and not (positions[n1] & positions[n2]):
        return False
    return True


def _rels_collapsible(
    graph: GraphSnapshot,
    original_rels: frozenset[int],
    node_rep: Mapping[int, int],
    r1: int,
    r2: int,
    positions: Mapping[int, set],
    by_position: bool,
) -> bool:
    """Definition 2, with the per-position restriction for Weak/Collapse."""
    if r1 == r2:
        return True
    if r1 in original_rels or r2 in original_rels:
        return False
    if graph.types[r1] != graph.types[r2]:
        return False
    props1 = graph.rel_properties.get(r1, {})
    props2 = graph.rel_properties.get(r2, {})
    if grouping_key(dict(props1)) != grouping_key(dict(props2)):
        return False
    if node_rep.get(graph.source[r1], graph.source[r1]) != node_rep.get(
        graph.source[r2], graph.source[r2]
    ):
        return False
    if node_rep.get(graph.target[r1], graph.target[r1]) != node_rep.get(
        graph.target[r2], graph.target[r2]
    ):
        return False
    if by_position and not (positions[r1] & positions[r2]):
        return False
    return True


def _partition(items: list[int], related) -> dict[int, int]:
    """Partition *items* into equivalence classes by pairwise relation.

    Returns item -> representative (the least id of its class).  The
    relation is assumed to be an equivalence, so a simple union-find
    over all pairs suffices (quadratic, faithful to the definition).
    """
    parent = {item: item for item in items}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in itertools.combinations(items, 2):
        if related(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
    return {item: find(item) for item in items}


def collapse(
    outcome: MergeOutcome,
    original: GraphSnapshot,
    *,
    collapse_nodes_by_position: bool,
    collapse_rels_by_position: bool,
) -> MergeOutcome:
    """Quotient the MERGE ALL output under Definitions 1-2.

    ``collapse_nodes_by_position=True`` gives Weak Collapse;
    rels-by-position True with nodes-by-position False gives Collapse;
    both False gives Strong Collapse (= MERGE SAME).
    """
    graph = outcome.graph
    node_positions: dict[int, set] = {}
    for position, node_id in outcome.created_nodes:
        node_positions.setdefault(node_id, set()).add(position)
    rel_positions: dict[int, set] = {}
    for position, rel_id in outcome.created_rels:
        rel_positions.setdefault(rel_id, set()).add(position)

    all_nodes = sorted(graph.nodes)
    node_rep = _partition(
        all_nodes,
        lambda a, b: _nodes_collapsible(
            graph,
            original.nodes,
            a,
            b,
            node_positions,
            collapse_nodes_by_position,
        ),
    )
    all_rels = sorted(graph.relationships)
    rel_rep = _partition(
        all_rels,
        lambda a, b: _rels_collapsible(
            graph,
            original.relationships,
            node_rep,
            a,
            b,
            rel_positions,
            collapse_rels_by_position,
        ),
    )
    kept_nodes = frozenset(node_rep.values())
    kept_rels = frozenset(rel_rep.values())
    quotient = GraphSnapshot(
        nodes=kept_nodes,
        relationships=kept_rels,
        source={r: node_rep[graph.source[r]] for r in kept_rels},
        target={r: node_rep[graph.target[r]] for r in kept_rels},
        labels={n: graph.labels.get(n, frozenset()) for n in kept_nodes},
        types={r: graph.types[r] for r in kept_rels},
        node_properties={
            n: dict(graph.node_properties.get(n, {})) for n in kept_nodes
        },
        rel_properties={
            r: dict(graph.rel_properties.get(r, {})) for r in kept_rels
        },
    )
    table = tuple(
        {
            key: _retag(value, node_rep, rel_rep)
            for key, value in row.items()
        }
        for row in outcome.table
    )
    return MergeOutcome(graph=quotient, table=table)


def _retag(value: Any, node_rep: Mapping[int, int], rel_rep: Mapping[int, int]) -> Any:
    if isinstance(value, tuple) and len(value) == 2:
        kind, entity_id = value
        if kind == "node" and entity_id in node_rep:
            return node_tag(node_rep[entity_id])
        if kind == "rel" and entity_id in rel_rep:
            return rel_tag(rel_rep[entity_id])
    return value


def merge_same(
    graph: GraphSnapshot, pattern: ast.Pattern, table: tuple[dict, ...]
) -> MergeOutcome:
    """``[[MERGE SAME]]`` = MERGE ALL followed by the Strong quotient."""
    return collapse(
        merge_all(graph, pattern, table),
        graph,
        collapse_nodes_by_position=False,
        collapse_rels_by_position=False,
    )


def merge_variant(
    graph: GraphSnapshot,
    pattern: ast.Pattern,
    table: tuple[dict, ...],
    variant: str,
) -> MergeOutcome:
    """Any of the five Section 6 semantics, by name.

    ``variant`` is one of ``atomic``, ``grouping``, ``weak_collapse``,
    ``collapse``, ``strong_collapse``.  Grouping is expressed as the
    quotient where only entities created for identical rows collapse,
    which the paper's Example 5 characterisation induces.
    """
    if variant == "atomic":
        return merge_all(graph, pattern, table)
    if variant == "grouping":
        return _merge_grouping(graph, pattern, table)
    flags = {
        "weak_collapse": (True, True),
        "collapse": (False, True),
        "strong_collapse": (False, False),
    }
    nodes_by_pos, rels_by_pos = flags[variant]
    return collapse(
        merge_all(graph, pattern, table),
        graph,
        collapse_nodes_by_position=nodes_by_pos,
        collapse_rels_by_position=rels_by_pos,
    )


def _merge_grouping(
    graph: GraphSnapshot, pattern: ast.Pattern, table: tuple[dict, ...]
) -> MergeOutcome:
    """Grouping MERGE: one created instance per expression-value group."""
    from repro.core.merge import reject_null_merge_properties

    reject_null_merge_properties(pattern)
    t_match: list[dict] = []
    failures: list[dict] = []
    for row in table:
        matches = list(match_rows(graph, pattern, row))
        if matches:
            t_match.extend(matches)
        else:
            failures.append(dict(row))
    groups: dict[tuple, list[dict]] = {}
    for row in failures:
        groups.setdefault(_group_key(pattern, row), []).append(row)
    builder_graph = graph
    out_rows: list[dict] = []
    created_nodes: list = []
    created_rels: list = []
    for rows in groups.values():
        creation = create(builder_graph, pattern, (rows[0],))
        builder_graph = creation.graph
        created_nodes.extend(creation.created_nodes)
        created_rels.extend(creation.created_rels)
        bound = creation.table[0]
        for row in rows:
            merged = dict(row)
            merged.update(
                {k: v for k, v in bound.items() if k not in row}
            )
            out_rows.append(merged)
    return MergeOutcome(
        graph=builder_graph,
        table=tuple(t_match) + tuple(out_rows),
        created_nodes=tuple(created_nodes),
        created_rels=tuple(created_rels),
    )


def _group_key(pattern: ast.Pattern, row: Mapping[str, Any]) -> tuple:
    parts: list = []
    for path in pattern.paths:
        for element in path.elements:
            if element.variable is not None and element.variable in row:
                value = row[element.variable]
                # Entity tags are already hashable identities.
                if isinstance(value, tuple):
                    parts.append(value)
                else:
                    parts.append(grouping_key(value))
            if element.properties is not None:
                for __, expr in element.properties.items:
                    parts.append(grouping_key(eval_expression(expr, row)))
    return tuple(parts)


# ---------------------------------------------------------------------------
# SET and DELETE (for cross-validation of the engine's atomic versions)
# ---------------------------------------------------------------------------

def set_properties(
    graph: GraphSnapshot,
    writes: tuple[tuple[NodeTag, str, Any], ...],
) -> GraphSnapshot:
    """Atomic SET over pre-evaluated (entity tag, key, value) writes.

    Implements the two-phase semantics: conflicting writes raise
    :class:`PropertyConflictError`; otherwise all writes apply to the
    input graph at once.  ``value=None`` removes the key.
    """
    collected: dict[tuple[NodeTag, str], Any] = {}
    for tag, key, value in writes:
        existing_key = (tag, key)
        if existing_key in collected and not equivalent(
            collected[existing_key], value
        ):
            raise PropertyConflictError(
                tag, key, collected[existing_key], value
            )
        collected[existing_key] = value
    builder = _Builder.from_snapshot(graph)
    for (tag, key), value in collected.items():
        kind, entity_id = tag
        target = builder.node_props if kind == "node" else builder.rel_props
        props = dict(target.get(entity_id, {}))
        if value is None:
            props.pop(key, None)
        else:
            props[key] = value
        target[entity_id] = props
    return builder.snapshot()


def remove_items(
    graph: GraphSnapshot,
    label_removals: tuple[tuple[int, str], ...] = (),
    property_removals: tuple[tuple[NodeTag, str], ...] = (),
) -> GraphSnapshot:
    """The REMOVE clause: conflict-free, applied left to right.

    Removal is idempotent, so order does not matter observably; the
    signature takes pre-evaluated (node, label) and (entity, key)
    pairs, mirroring how Section 8.2 treats removal items.
    """
    builder = _Builder.from_snapshot(graph)
    for node_id, label in label_removals:
        labels = set(builder.labels.get(node_id, frozenset()))
        labels.discard(label)
        builder.labels[node_id] = frozenset(labels)
    for (kind, entity_id), key in (
        ((tag[0], tag[1]), key) for tag, key in property_removals
    ):
        target = builder.node_props if kind == "node" else builder.rel_props
        props = dict(target.get(entity_id, {}))
        props.pop(key, None)
        target[entity_id] = props
    return builder.snapshot()


def delete_entities(
    graph: GraphSnapshot,
    nodes: frozenset[int],
    rels: frozenset[int],
    *,
    detach: bool = False,
) -> GraphSnapshot:
    """Atomic DELETE: strict unless *detach*; returns the new graph."""
    rels = set(rels)
    if detach:
        for rel_id in graph.relationships:
            if graph.source[rel_id] in nodes or graph.target[rel_id] in nodes:
                rels.add(rel_id)
    else:
        for rel_id in graph.relationships:
            if rel_id in rels:
                continue
            for endpoint in (graph.source[rel_id], graph.target[rel_id]):
                if endpoint in nodes:
                    raise DanglingRelationshipError(endpoint, (rel_id,))
    kept_nodes = graph.nodes - nodes
    kept_rels = graph.relationships - frozenset(rels)
    return GraphSnapshot(
        nodes=kept_nodes,
        relationships=kept_rels,
        source={r: graph.source[r] for r in kept_rels},
        target={r: graph.target[r] for r in kept_rels},
        labels={n: graph.labels.get(n, frozenset()) for n in kept_nodes},
        types={r: graph.types[r] for r in kept_rels},
        node_properties={
            n: dict(graph.node_properties.get(n, {})) for n in kept_nodes
        },
        rel_properties={
            r: dict(graph.rel_properties.get(r, {})) for r in kept_rels
        },
    )
