"""Reference implementation of the Section 8 formal semantics."""
