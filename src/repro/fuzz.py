"""``python -m repro.fuzz`` -- differential conformance fuzzer entrypoint.

See :mod:`repro.testing.cli` for the implementation and options.
"""

from __future__ import annotations

import sys

from repro.testing.cli import main

if __name__ == "__main__":
    sys.exit(main())
