"""Legacy Cypher 9 update semantics (Section 3, anomalies of Section 4).

The legacy executor processes the driving table **record by record**
("in a way similar to for-each-row triggers") and each update reads the
*current* working graph, i.e. it sees the writes made while processing
earlier records.  That is exactly the behaviour the paper diagnoses:

* ``SET`` applies its items sequentially per record, so the id swap of
  Example 1 degenerates into a no-op and the outcome of Example 2
  depends on record order;
* ``DELETE`` removes entities immediately, leaving dangling
  relationships in the working graph (Section 4.2); later ``SET`` on a
  deleted entity is silently lost and a returned deleted node renders
  as an empty node.  Well-formedness is only checked at the end of the
  statement (the engine does this), mirroring commit-time validation;
* ``MERGE`` does per-record match-or-create against the working graph,
  so it can match its own earlier writes -- the source of the
  Example 3 / Figure 6 nondeterminism.  ``ON CREATE SET`` and
  ``ON MATCH SET`` actions are applied immediately, legacy-style.

Record processing follows the table's list order; pre-ordering the
table (``DrivingTable.reversed`` / ``shuffled``) exposes the
order-dependence experimentally.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import CypherTypeError
from repro.graph.model import Node, Path, Relationship
from repro.graph.values import type_name
from repro.parser import ast
from repro.runtime.context import EvalContext
from repro.runtime.expressions import evaluate
from repro.runtime.matcher import match_pattern, pattern_variables
from repro.runtime.table import DrivingTable

from repro.core.create import instantiate_pattern
from repro.core.merge import reject_null_merge_properties


def execute_set_legacy(
    ctx: EvalContext, clause: ast.SetClause, table: DrivingTable
) -> DrivingTable:
    """Per-record, per-item sequential SET (reads its own writes)."""
    for record in table:
        apply_set_items(ctx, clause.items, record)
    return table


def apply_set_items(
    ctx: EvalContext, items: Iterable[ast.SetItem], record: dict
) -> None:
    """Apply SET items immediately, left to right, for one record."""
    for item in items:
        _apply_set_item(ctx, item, record)


def _apply_set_item(ctx: EvalContext, item: ast.SetItem, record: dict) -> None:
    if isinstance(item, ast.SetProperty):
        target = evaluate(ctx, item.target.subject, record)
        entity = _live_entity(target)
        if entity is None:
            return
        value = evaluate(ctx, item.value, record)
        _write_property(ctx, entity, item.target.key, value)
        return
    if isinstance(item, ast.SetAllProperties):
        target = evaluate(ctx, item.target, record)
        entity = _live_entity(target)
        if entity is None:
            return
        new_map = _as_map(ctx, item.value, record)
        for key in list(entity.properties):
            if key not in new_map:
                _write_property(ctx, entity, key, None)
        for key, value in new_map.items():
            _write_property(ctx, entity, key, value)
        return
    if isinstance(item, ast.SetAdditiveProperties):
        target = evaluate(ctx, item.target, record)
        entity = _live_entity(target)
        if entity is None:
            return
        for key, value in _as_map(ctx, item.value, record).items():
            _write_property(ctx, entity, key, value)
        return
    if isinstance(item, ast.SetLabels):
        target = evaluate(ctx, item.target, record)
        if target is None:
            return
        if not isinstance(target, Node):
            raise CypherTypeError(
                f"labels can only be set on a Node, got {type_name(target)}"
            )
        if target.is_deleted:
            return  # silently lost, as in Section 4.2
        for label in item.labels:
            ctx.store.add_label(target.id, label)
        return
    raise AssertionError(f"unknown SET item {type(item).__name__}")


def _live_entity(value: Any) -> Node | Relationship | None:
    """The target entity, or None when the write should be skipped.

    Legacy tolerance: writes to null or to already deleted entities are
    silently dropped (the paper's delete-then-set example "goes through
    without an error").
    """
    if value is None:
        return None
    if isinstance(value, (Node, Relationship)):
        return None if value.is_deleted else value
    raise CypherTypeError(
        f"SET expects a Node or Relationship, got {type_name(value)}"
    )


def _write_property(
    ctx: EvalContext, entity: Node | Relationship, key: str, value: Any
) -> None:
    if isinstance(entity, Node):
        ctx.store.set_node_property(entity.id, key, value)
    else:
        ctx.store.set_rel_property(entity.id, key, value)


def _as_map(ctx: EvalContext, expression: ast.Expression, record: dict) -> dict:
    value = evaluate(ctx, expression, record)
    if isinstance(value, (Node, Relationship)):
        value = dict(value.properties)
    if not isinstance(value, dict):
        raise CypherTypeError(
            f"SET with '=' or '+=' expects a Map, got {type_name(value)}"
        )
    return value


# ---------------------------------------------------------------------------
# DELETE
# ---------------------------------------------------------------------------

def execute_delete_legacy(
    ctx: EvalContext, clause: ast.DeleteClause, table: DrivingTable
) -> DrivingTable:
    """Per-record immediate deletion; dangling states are permitted.

    The working graph may become ill-formed (relationships whose
    endpoint is gone); the engine validates well-formedness only at the
    end of the whole statement.  The driving table keeps its references
    to the deleted entities (the "zombie" handles the paper describes).
    """
    for record in table:
        for expression in clause.expressions:
            value = evaluate(ctx, expression, record)
            _delete_value(ctx, value, clause.detach)
    return table


def _delete_value(ctx: EvalContext, value: Any, detach: bool) -> None:
    if value is None:
        return
    if isinstance(value, Relationship):
        ctx.store.delete_relationship(value.id)
        return
    if isinstance(value, Node):
        if value.is_deleted:
            return
        if detach:
            attached = ctx.store.out_relationships(
                value.id
            ) | ctx.store.in_relationships(value.id)
            for rel_id in sorted(attached):
                ctx.store.delete_relationship(rel_id)
        ctx.store.delete_node(value.id, allow_dangling=True)
        return
    if isinstance(value, Path):
        for rel in value.relationships:
            ctx.store.delete_relationship(rel.id)
        for node in value.nodes:
            if not node.is_deleted:
                ctx.store.delete_node(node.id, allow_dangling=True)
        return
    raise CypherTypeError(
        f"DELETE expects Nodes, Relationships or Paths, "
        f"got {type_name(value)}"
    )


# ---------------------------------------------------------------------------
# MERGE
# ---------------------------------------------------------------------------

def execute_merge_legacy(
    ctx: EvalContext, clause: ast.MergeClause, table: DrivingTable
) -> DrivingTable:
    """Per-record match-or-create against the *working* graph.

    Earlier records' creations are visible to later records (the clause
    "reads its own writes"), so the result depends on the record order
    -- exactly the behaviour Example 3 demonstrates.
    """
    reject_null_merge_properties(clause.pattern)
    new_variables = [
        name
        for name in pattern_variables(clause.pattern)
        if name not in table.columns
    ]
    output = DrivingTable(tuple(table.columns) + tuple(new_variables))
    # Legacy MERGE may carry undirected relationship patterns (Figure 5);
    # when it has to create, an undirected pattern is instantiated
    # left-to-right -- the direction nondeterminism the revised syntax
    # eliminates by requiring directed patterns.
    creation_pattern = _directed(clause.pattern)
    for record in table:
        matches = list(match_pattern(ctx, clause.pattern, record))
        if matches:
            for bindings in matches:
                if clause.on_match:
                    apply_set_items(ctx, clause.on_match, bindings)
                output.add(
                    {name: bindings.get(name) for name in output.columns}
                )
            continue
        instance = instantiate_pattern(ctx, creation_pattern, dict(record))
        extended = dict(record)
        extended.update(instance.bindings)
        if clause.on_create:
            scope = dict(extended)
            apply_set_items(ctx, clause.on_create, scope)
        output.add({name: extended.get(name) for name in output.columns})
    return output


def _directed(pattern: ast.Pattern) -> ast.Pattern:
    """Replace undirected relationship patterns with outgoing ones."""
    import dataclasses

    paths = []
    for path in pattern.paths:
        elements = tuple(
            dataclasses.replace(element, direction=ast.OUT)
            if isinstance(element, ast.RelationshipPattern)
            and element.direction == ast.BOTH
            else element
            for element in path.elements
        )
        paths.append(ast.PathPattern(variable=path.variable, elements=elements))
    return ast.Pattern(paths=tuple(paths))
