"""Legacy Cypher 9 update semantics (Sections 3-4)."""
