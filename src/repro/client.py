"""A thin client for the networked graph service.

Three transports, one client surface:

* :class:`HttpTransport` -- blocking HTTP over :mod:`http.client`
  (standard library) with keep-alive and one transparent reconnect
  for stale pooled connections.
* :class:`MockTransport` -- an in-process transport that runs a
  :class:`~repro.server.service.GraphService` on a private event loop
  thread and calls its ``handle`` coroutine directly.  No sockets:
  the whole HTTP-free server stack (routing, sessions, isolation,
  limits, durability) runs under the ordinary synchronous test suite.
* :class:`AsyncClient` -- an asyncio streams client used by the P7
  benchmark to drive hundreds of concurrent connections from one
  process.

Server-side errors come back as ``{"error": {"type", "message"}}``;
the client re-raises the matching class from :mod:`repro.errors` when
one exists (so ``except CypherSyntaxError:`` works identically
against a remote graph) and :class:`ServerError` otherwise.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from typing import Any, Iterator, Mapping

from repro import errors as _errors
from repro.engine import UpdateCounters
from repro.server.wire import counters_from_wire, from_wire


class ServerError(Exception):
    """A server-side error with no local exception class."""

    def __init__(self, error_type: str, message: str, status: int):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.status = status


def _revive_error(status: int, payload: dict) -> Exception:
    detail = payload.get("error") or {}
    error_type = detail.get("type", "ServerError")
    message = detail.get("message", f"server returned status {status}")
    local = getattr(_errors, error_type, None)
    if (
        isinstance(local, type)
        and issubclass(local, Exception)
        and local is not _errors.CypherError
    ):
        return local(message)
    return ServerError(error_type, message, status)


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------


class HttpTransport:
    """Blocking keep-alive HTTP transport (standard library only)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._connection: http.client.HTTPConnection | None = None

    @classmethod
    def from_url(cls, url: str, timeout: float = 30.0) -> "HttpTransport":
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {url!r}")
        return cls(
            parsed.hostname or "127.0.0.1",
            parsed.port or 7688,
            timeout,
        )

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        headers = {"Content-Type": "application/json"}
        with self._lock:
            for attempt in (0, 1):
                connection = self._connection
                if connection is None:
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                    self._connection = connection
                try:
                    connection.request(method, path, data, headers)
                    response = connection.getresponse()
                    raw = response.read()
                    break
                except (
                    http.client.HTTPException,
                    ConnectionError,
                    BrokenPipeError,
                ):
                    # Stale keep-alive connection: reconnect once.
                    connection.close()
                    self._connection = None
                    if attempt:
                        raise
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {
                "error": {
                    "type": "ServerError",
                    "message": f"non-JSON response: {raw[:200]!r}",
                }
            }
        return response.status, payload

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None


class MockTransport:
    """In-process transport: the service on a private loop thread.

    Synchronous callers (the test suite, several threads at once) call
    :meth:`request`; each call is submitted to the service's event
    loop, so the service observes exactly the concurrency semantics it
    has under the real HTTP listener -- one loop, interleaved awaits.
    """

    def __init__(self, service: Any):
        import asyncio

        self.service = service
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-mock-transport",
            daemon=True,
        )
        self._thread.start()
        self._closed = False

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        import asyncio

        if self._closed:
            raise RuntimeError("transport is closed")
        data = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        future = asyncio.run_coroutine_threadsafe(
            self.service.handle(method, path, data), self._loop
        )
        return future.result()

    def close(self) -> None:
        import asyncio

        if self._closed:
            return
        self._closed = True
        asyncio.run_coroutine_threadsafe(
            self.service.close(), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


class RemoteResult:
    """A fully materialised result from one statement."""

    def __init__(self, payload: dict):
        self.columns: list[str] = list(payload.get("columns", []))
        self.records: list[dict[str, Any]] = [
            dict(zip(self.columns, (from_wire(v) for v in row)))
            for row in payload.get("records", [])
        ]
        self.counters: UpdateCounters = counters_from_wire(
            payload.get("counters")
        )

    def values(self, column: str | None = None) -> list[Any]:
        if column is None:
            if len(self.columns) != 1:
                raise ValueError(
                    f"values() without a column needs exactly one "
                    f"column, result has {len(self.columns)}"
                )
            column = self.columns[0]
        return [record[column] for record in self.records]

    def single(self) -> dict[str, Any]:
        if len(self.records) != 1:
            raise ValueError(
                f"single() expects exactly one record, got "
                f"{len(self.records)}"
            )
        return self.records[0]

    def pretty(self, max_rows: int = 20) -> str:
        if not self.columns:
            return "(no columns)"
        widths = {c: len(c) for c in self.columns}
        shown = self.records[:max_rows]
        rendered = [
            {c: repr(record[c]) for c in self.columns}
            for record in shown
        ]
        for row in rendered:
            for column, text in row.items():
                widths[column] = max(widths[column], len(text))
        header = " | ".join(
            c.ljust(widths[c]) for c in self.columns
        )
        rule = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [header, rule]
        lines.extend(
            " | ".join(row[c].ljust(widths[c]) for c in self.columns)
            for row in rendered
        )
        if len(self.records) > max_rows:
            lines.append(f"... ({len(self.records)} rows)")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"<RemoteResult {len(self.records)} rows, "
            f"columns={self.columns}>"
        )


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class Client:
    """Synchronous client over any transport."""

    def __init__(self, transport: Any, *, owns_transport: bool = True):
        self._transport = transport
        self._owns_transport = owns_transport

    @classmethod
    def connect(cls, url: str, timeout: float = 30.0) -> "Client":
        """Connect to a server by URL (``http://host:port``)."""
        return cls(HttpTransport.from_url(url, timeout))

    @classmethod
    def in_process(cls, service: Any) -> "Client":
        """Wrap a :class:`GraphService` without any sockets."""
        return cls(MockTransport(service))

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        status, payload = self._transport.request(method, path, body)
        if status != 200:
            raise _revive_error(status, payload)
        return payload

    def run(
        self,
        statement: str,
        parameters: Mapping[str, Any] | None = None,
    ) -> RemoteResult:
        """Autocommit one statement outside any session."""
        return RemoteResult(
            self._request(
                "POST",
                "/query",
                {
                    "statement": statement,
                    "parameters": dict(parameters or {}),
                },
            )
        )

    def session(self) -> "RemoteSession":
        payload = self._request("POST", "/sessions")
        return RemoteSession(self, payload["session"])

    def register_view(
        self,
        statement: str,
        parameters: Mapping[str, Any] | None = None,
        *,
        dialect: str | None = None,
    ) -> "RemoteView":
        """Register *statement* as a server-maintained view."""
        body: dict[str, Any] = {
            "statement": statement,
            "parameters": dict(parameters or {}),
        }
        if dialect is not None:
            body["dialect"] = dialect
        payload = self._request("POST", "/views", body)
        return RemoteView(self, payload["view"], payload)

    def view(self, view_id: str) -> "RemoteView":
        """Handle to an already-registered view."""
        return RemoteView(self, view_id)

    def views(self) -> list[dict]:
        """Per-view maintenance statistics from the server."""
        return self._request("GET", "/views")["views"]

    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def schema(self) -> dict:
        return self._request("GET", "/schema")

    def checkpoint(self) -> dict:
        return self._request("POST", "/admin/checkpoint")

    def close(self) -> None:
        if self._owns_transport:
            self._transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class RemoteSession:
    """A server-side session: its own transaction scope."""

    def __init__(self, client: Client, session_id: str):
        self._client = client
        self.id = session_id
        self._closed = False

    def run(
        self,
        statement: str,
        parameters: Mapping[str, Any] | None = None,
    ) -> RemoteResult:
        payload = self._client._request(
            "POST",
            f"/sessions/{self.id}/query",
            {
                "statement": statement,
                "parameters": dict(parameters or {}),
            },
        )
        return RemoteResult(payload)

    def begin(self) -> None:
        self._client._request("POST", f"/sessions/{self.id}/begin")

    def commit(self) -> None:
        self._client._request("POST", f"/sessions/{self.id}/commit")

    def rollback(self) -> None:
        self._client._request("POST", f"/sessions/{self.id}/rollback")

    def transaction(self) -> "_RemoteTransaction":
        """``with session.transaction():`` begin/commit/rollback."""
        return _RemoteTransaction(self)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._client._request("DELETE", f"/sessions/{self.id}")

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class RemoteView:
    """A server-maintained view: read its result, subscribe to changes."""

    def __init__(
        self, client: Client, view_id: str, payload: dict | None = None
    ):
        self._client = client
        self.id = view_id
        #: mode ("delta"/"full") and covered LSN from the last payload
        self.mode = (payload or {}).get("mode")
        self.lsn = (payload or {}).get("covered_lsn")

    def result(self) -> RemoteResult:
        """The current maintained result (refreshing the LSN stamp)."""
        payload = self._client._request("GET", f"/views/{self.id}")
        self.mode = payload.get("mode")
        self.lsn = payload.get("covered_lsn")
        return RemoteResult(payload)

    def subscribe(self) -> "RemoteSubscription":
        """Open a change subscription seeded with the current result."""
        payload = self._client._request(
            "POST", f"/views/{self.id}/subscribe"
        )
        return RemoteSubscription(
            self._client, self.id, payload["subscription"], payload
        )

    def drop(self) -> None:
        self._client._request("DELETE", f"/views/{self.id}")


class RemoteSubscription:
    """A long-poll change feed over one view."""

    def __init__(
        self,
        client: Client,
        view_id: str,
        subscription_id: str,
        payload: dict,
    ):
        self._client = client
        self.view_id = view_id
        self.id = subscription_id
        #: the result snapshot the server seeded this subscription with
        self.baseline = RemoteResult(payload)
        #: covered LSN of the last delivered notification
        self.lsn = payload.get("covered_lsn", payload.get("lsn"))
        self._closed = False

    def changes(self, timeout: float = 5.0) -> dict:
        """Block until the view's result changes (or timeout).

        Returns ``{"added": [...], "removed": [...], "lsn": int,
        "timed_out": bool}`` with records revived into client handles.
        The LSN stamps the store state the diff covers: the view's
        result at that LSN is exactly baseline + added - removed.
        """
        payload = self._client._request(
            "POST",
            f"/views/{self.view_id}/changes",
            {"subscription": self.id, "timeout_s": timeout},
        )
        columns = payload.get("columns", [])
        revive = lambda rows: [  # noqa: E731
            dict(zip(columns, (from_wire(v) for v in row)))
            for row in rows
        ]
        self.lsn = payload["lsn"]
        return {
            "added": revive(payload.get("added", [])),
            "removed": revive(payload.get("removed", [])),
            "lsn": payload["lsn"],
            "timed_out": payload.get("timed_out", False),
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._client._request(
                "DELETE",
                f"/views/{self.view_id}/subscriptions/{self.id}",
            )

    def __enter__(self) -> "RemoteSubscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _RemoteTransaction:
    def __init__(self, session: RemoteSession):
        self._session = session

    def __enter__(self) -> RemoteSession:
        self._session.begin()
        return self._session

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        if exc_type is None:
            self._session.commit()
        else:
            self._session.rollback()


# ----------------------------------------------------------------------
# Async client (benchmark harness)
# ----------------------------------------------------------------------


class AsyncClient:
    """One keep-alive connection on the caller's event loop.

    Used by the P7 benchmark to hold hundreds of concurrent
    connections open from a single process; each instance is one
    connection and must only be used from one task at a time.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncClient":
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head + data)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else {})

    async def run(
        self,
        statement: str,
        parameters: Mapping[str, Any] | None = None,
        session_id: str | None = None,
    ) -> dict:
        path = (
            f"/sessions/{session_id}/query" if session_id else "/query"
        )
        status, payload = await self.request(
            "POST",
            path,
            {
                "statement": statement,
                "parameters": dict(parameters or {}),
            },
        )
        if status != 200:
            raise _revive_error(status, payload)
        return payload

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None
