"""Atomic checkpoints: a full snapshot that supersedes the WAL prefix.

A checkpoint is the whole-graph JSON (the same shape
:func:`repro.io.graph_json.graph_to_dict` produces) plus the store
state the graph dict cannot carry -- id allocators, property indexes
and uniqueness constraints -- stamped with the LSN of the last record
it covers.  It is written to a temporary file in the same directory,
fsynced, and atomically renamed over the previous checkpoint, so a
crash at any point leaves either the old or the new checkpoint intact,
never a half-written one.

Restoring uses :meth:`~repro.graph.store.GraphStore.apply_redo` so the
original entity ids survive; ``dict_to_store`` would remap them, which
would break WAL replay (records reference ids).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import PersistenceError
from repro.graph.store import GraphStore

#: file names inside a persistence directory
CHECKPOINT_NAME = "checkpoint.json"
WAL_NAME = "wal.log"

CHECKPOINT_FORMAT = 1


def checkpoint_payload(store: GraphStore, lsn: int) -> dict:
    """The JSON-serialisable checkpoint of *store* at *lsn*."""
    from repro.io.graph_json import graph_to_dict

    return {
        "format": CHECKPOINT_FORMAT,
        "lsn": lsn,
        "graph": graph_to_dict(store),
        "next_node_id": store._next_node_id,
        "next_rel_id": store._next_rel_id,
        "indexes": sorted(list(pair) for pair in store._property_indexes),
        "constraints": sorted(
            list(pair) for pair in store.unique_constraints()
        ),
    }


def write_checkpoint(
    directory: Path | str, store: GraphStore, lsn: int
) -> Path:
    """Atomically write the checkpoint file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / CHECKPOINT_NAME
    temporary = directory / (CHECKPOINT_NAME + ".tmp")
    payload = checkpoint_payload(store, lsn)
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, target)
    _fsync_directory(directory)
    return target


def _fsync_directory(directory: Path) -> None:
    # Make the rename itself durable where the platform allows it.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def load_checkpoint(directory: Path | str) -> dict | None:
    """The checkpoint payload, or ``None`` when none was written."""
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise PersistenceError(
            f"corrupt checkpoint {path}: {error}"
        ) from error
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise PersistenceError(
            f"unsupported checkpoint format {payload.get('format')!r} "
            f"in {path}"
        )
    return payload


def restore_checkpoint(store: GraphStore, payload: dict) -> None:
    """Rebuild *store* from a checkpoint payload, ids preserved."""
    graph = payload["graph"]
    for node in graph["nodes"]:
        store.apply_redo(
            (
                "create_node",
                node["id"],
                list(node["labels"]),
                dict(node["properties"]),
            )
        )
    for rel in graph["relationships"]:
        store.apply_redo(
            (
                "create_rel",
                rel["id"],
                rel["type"],
                rel["start"],
                rel["end"],
                dict(rel["properties"]),
            )
        )
    for label, key in payload.get("indexes", ()):
        store.create_index(label, key)
    for label, key in payload.get("constraints", ()):
        store.create_unique_constraint(label, key)
    store._next_node_id = max(
        store._next_node_id, payload.get("next_node_id", 0)
    )
    store._next_rel_id = max(
        store._next_rel_id, payload.get("next_rel_id", 0)
    )
