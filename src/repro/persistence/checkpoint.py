"""Atomic checkpoints: a full snapshot that supersedes the WAL prefix.

Format 2 (current) is a **streaming record file**: an 8-byte magic
(``RGCHKPT2``) followed by CRC-framed records, each framed exactly like
a WAL record (4-byte big-endian payload length, 4-byte big-endian
CRC-32, UTF-8 JSON payload):

======== ==============================================================
record   payload
======== ==============================================================
header   ``{"kind": "header", "format": 2, "lsn", "next_node_id",
         "next_rel_id", "indexes", "constraints"}``
nodes    ``{"kind": "nodes", "rows": [[id, labels, properties], ...]}``
         (at most :data:`BATCH_ROWS` rows per record)
rels     ``{"kind": "rels", "rows": [[id, type, start, end,
         properties], ...]}``
end      ``{"kind": "end", "nodes": N, "rels": M}`` -- row totals, so
         a truncated file is detected even when it ends on a frame
         boundary
======== ==============================================================

The writer streams rows straight out of the store's column iterators
(:meth:`~repro.graph.store.GraphStore.iter_node_records` /
``iter_rel_records``) so peak memory is one batch, not the graph; the
reader feeds :meth:`~repro.graph.store.GraphStore.apply_redo` record
by record with the same O(1) bound.  Both ends keep the original
contract: written to a temporary file in the same directory, fsynced,
atomically renamed over the previous checkpoint, directory fsynced --
a crash leaves either the old or the new checkpoint, never a torn one.

Format 1 (legacy) was one JSON blob (the
:func:`repro.io.graph_json.graph_to_dict` shape plus allocators,
indexes and constraints).  It is still read transparently -- the first
byte distinguishes the formats (``{`` = legacy JSON, magic = stream) --
and can still be written via ``write_checkpoint(..., format=1)`` for
downgrades.

Restoring uses ``apply_redo`` so the original entity ids survive;
``dict_to_store`` would remap them, which would break WAL replay
(records reference ids).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import IO, Any, Iterator

from repro.errors import PersistenceError
from repro.graph.store import GraphStore

#: file names inside a persistence directory
CHECKPOINT_NAME = "checkpoint.json"
WAL_NAME = "wal.log"

CHECKPOINT_FORMAT = 2
LEGACY_CHECKPOINT_FORMAT = 1

#: first 8 bytes of a format-2 checkpoint; legacy JSON starts with "{"
STREAM_MAGIC = b"RGCHKPT2"

#: node/relationship rows per framed record -- enough to amortise the
#: framing + JSON overhead, small enough that writer and reader stay
#: O(1) in graph size
BATCH_ROWS = 1024

_FRAME = struct.Struct(">II")  # payload length, CRC-32 (same as WAL)


# ----------------------------------------------------------------------
# Payloads (legacy blob shape, still the compat/test currency)
# ----------------------------------------------------------------------


def checkpoint_payload(store: GraphStore, lsn: int) -> dict:
    """The format-1 JSON-serialisable checkpoint of *store* at *lsn*.

    Materialises the whole graph -- use only for tests, tooling and
    explicit format-1 writes; the streaming writer never builds this.
    """
    from repro.io.graph_json import graph_to_dict

    return {
        "format": LEGACY_CHECKPOINT_FORMAT,
        "lsn": lsn,
        "graph": graph_to_dict(store),
        "next_node_id": store._next_node_id,
        "next_rel_id": store._next_rel_id,
        "indexes": sorted(list(pair) for pair in store._property_indexes),
        "constraints": sorted(
            list(pair) for pair in store.unique_constraints()
        ),
    }


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def write_checkpoint(
    directory: Path | str,
    store: GraphStore,
    lsn: int,
    *,
    format: int = CHECKPOINT_FORMAT,
) -> Path:
    """Atomically write the checkpoint file; returns its path.

    ``format=2`` (default) streams records with one-batch peak memory;
    ``format=1`` writes the legacy blob (materialises the graph).
    """
    if format not in (CHECKPOINT_FORMAT, LEGACY_CHECKPOINT_FORMAT):
        raise PersistenceError(
            f"cannot write checkpoint format {format!r}; "
            f"supported: {LEGACY_CHECKPOINT_FORMAT} (blob), "
            f"{CHECKPOINT_FORMAT} (stream)"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / CHECKPOINT_NAME
    temporary = directory / (CHECKPOINT_NAME + ".tmp")
    if format == LEGACY_CHECKPOINT_FORMAT:
        payload = checkpoint_payload(store, lsn)
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
    else:
        with open(temporary, "wb") as handle:
            _write_stream(handle, store, lsn)
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(temporary, target)
    _fsync_directory(directory)
    return target


def _write_stream(handle: IO[bytes], store: GraphStore, lsn: int) -> None:
    handle.write(STREAM_MAGIC)
    _write_record(
        handle,
        {
            "kind": "header",
            "format": CHECKPOINT_FORMAT,
            "lsn": lsn,
            "next_node_id": store._next_node_id,
            "next_rel_id": store._next_rel_id,
            "indexes": sorted(
                list(pair) for pair in store._property_indexes
            ),
            "constraints": sorted(
                list(pair) for pair in store.unique_constraints()
            ),
        },
    )
    nodes = 0
    batch: list[list] = []
    for node_id, labels, properties in store.iter_node_records():
        batch.append([node_id, labels, properties])
        nodes += 1
        if len(batch) >= BATCH_ROWS:
            _write_record(handle, {"kind": "nodes", "rows": batch})
            batch = []
    if batch:
        _write_record(handle, {"kind": "nodes", "rows": batch})
        batch = []
    rels = 0
    for rel_id, rel_type, start, end, properties in store.iter_rel_records():
        batch.append([rel_id, rel_type, start, end, properties])
        rels += 1
        if len(batch) >= BATCH_ROWS:
            _write_record(handle, {"kind": "rels", "rows": batch})
            batch = []
    if batch:
        _write_record(handle, {"kind": "rels", "rows": batch})
    _write_record(handle, {"kind": "end", "nodes": nodes, "rels": rels})


def _write_record(handle: IO[bytes], record: dict) -> None:
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
    handle.write(payload)


def _fsync_directory(directory: Path) -> None:
    # Make the rename itself durable where the platform allows it.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def checkpoint_format(path: Path | str) -> int:
    """The format of the checkpoint file at *path* (sniffed, cheap)."""
    path = Path(path)
    with open(path, "rb") as handle:
        head = handle.read(len(STREAM_MAGIC))
    if head[:1] == b"{":
        return LEGACY_CHECKPOINT_FORMAT
    if head == STREAM_MAGIC:
        return CHECKPOINT_FORMAT
    raise PersistenceError(
        f"corrupt checkpoint {path}: unrecognised leading bytes {head!r}"
    )


def read_checkpoint_records(path: Path | str) -> Iterator[dict]:
    """Yield the records of a format-2 checkpoint, one at a time.

    O(1) memory: one frame is held at a time.  Unlike the WAL -- where
    a torn tail is expected and silently dropped -- a checkpoint is
    only ever observed complete (the rename is atomic), so *any*
    truncation, CRC mismatch or missing ``end`` record raises
    :class:`PersistenceError`.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(STREAM_MAGIC))
        if magic != STREAM_MAGIC:
            raise PersistenceError(
                f"corrupt checkpoint {path}: bad magic {magic!r}"
            )
        saw_end = False
        while True:
            header = handle.read(_FRAME.size)
            if not header:
                break
            if len(header) < _FRAME.size:
                raise PersistenceError(
                    f"corrupt checkpoint {path}: truncated record frame"
                )
            length, expected_crc = _FRAME.unpack(header)
            payload = handle.read(length)
            if len(payload) < length:
                raise PersistenceError(
                    f"corrupt checkpoint {path}: truncated record payload"
                )
            if zlib.crc32(payload) != expected_crc:
                raise PersistenceError(
                    f"corrupt checkpoint {path}: record CRC mismatch"
                )
            try:
                record = json.loads(payload.decode("utf-8"))
            except ValueError as error:
                raise PersistenceError(
                    f"corrupt checkpoint {path}: {error}"
                ) from error
            if saw_end:
                raise PersistenceError(
                    f"corrupt checkpoint {path}: record after end marker"
                )
            if record.get("kind") == "end":
                saw_end = True
            yield record
        if not saw_end:
            raise PersistenceError(
                f"corrupt checkpoint {path}: missing end record"
            )


def checkpoint_record_boundaries(path: Path | str) -> list[int]:
    """Byte offsets after the magic and after each framed record.

    The crash-injection fuzzer truncates a copied checkpoint at each
    of these to prove torn checkpoints are detected loudly.
    """
    path = Path(path)
    boundaries: list[int] = []
    with open(path, "rb") as handle:
        magic = handle.read(len(STREAM_MAGIC))
        if magic != STREAM_MAGIC:
            raise PersistenceError(
                f"corrupt checkpoint {path}: bad magic {magic!r}"
            )
        boundaries.append(handle.tell())
        while True:
            header = handle.read(_FRAME.size)
            if len(header) < _FRAME.size:
                break
            length, _ = _FRAME.unpack(header)
            handle.seek(length, os.SEEK_CUR)
            boundaries.append(handle.tell())
    return boundaries


def load_checkpoint(directory: Path | str) -> dict | None:
    """The checkpoint payload, or ``None`` when none was written.

    Compat/tooling API: for a format-2 file this *materialises* the
    stream into the blob shape (O(graph) memory) with ``"format": 2``.
    Recovery never calls this -- it streams via
    :func:`restore_checkpoint_file`.
    """
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        return None
    if checkpoint_format(path) == LEGACY_CHECKPOINT_FORMAT:
        return _load_legacy(path)
    header: dict = {}
    nodes: list[dict] = []
    rels: list[dict] = []
    for record in read_checkpoint_records(path):
        kind = record.get("kind")
        if kind == "header":
            header = record
        elif kind == "nodes":
            nodes.extend(
                {"id": row[0], "labels": row[1], "properties": row[2]}
                for row in record["rows"]
            )
        elif kind == "rels":
            rels.extend(
                {
                    "id": row[0],
                    "type": row[1],
                    "start": row[2],
                    "end": row[3],
                    "properties": row[4],
                }
                for row in record["rows"]
            )
    return {
        "format": header.get("format", CHECKPOINT_FORMAT),
        "lsn": header["lsn"],
        "graph": {"nodes": nodes, "relationships": rels},
        "next_node_id": header.get("next_node_id", 0),
        "next_rel_id": header.get("next_rel_id", 0),
        "indexes": header.get("indexes", []),
        "constraints": header.get("constraints", []),
    }


def _load_legacy(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise PersistenceError(
            f"corrupt checkpoint {path}: {error}"
        ) from error
    if payload.get("format") != LEGACY_CHECKPOINT_FORMAT:
        raise PersistenceError(
            f"unsupported checkpoint format {payload.get('format')!r} "
            f"in {path}"
        )
    return payload


# ----------------------------------------------------------------------
# Restoring
# ----------------------------------------------------------------------


def restore_checkpoint_file(store: GraphStore, path: Path | str) -> dict:
    """Rebuild *store* from the checkpoint at *path*, ids preserved.

    Dispatches on the sniffed format; the format-2 path streams rows
    into :meth:`~repro.graph.store.GraphStore.apply_redo` without ever
    materialising the graph.  Returns ``{"lsn": ..., "format": ...}``.
    """
    path = Path(path)
    if checkpoint_format(path) == LEGACY_CHECKPOINT_FORMAT:
        payload = _load_legacy(path)
        restore_checkpoint(store, payload)
        return {
            "lsn": payload["lsn"],
            "format": LEGACY_CHECKPOINT_FORMAT,
        }
    apply_redo = store.apply_redo
    header: dict | None = None
    nodes = rels = 0
    for record in read_checkpoint_records(path):
        kind = record.get("kind")
        if kind == "header":
            if record.get("format") != CHECKPOINT_FORMAT:
                raise PersistenceError(
                    f"unsupported checkpoint format "
                    f"{record.get('format')!r} in {path}"
                )
            header = record
        elif kind == "nodes":
            for row in record["rows"]:
                apply_redo(("create_node", row[0], row[1], row[2]))
            nodes += len(record["rows"])
        elif kind == "rels":
            for row in record["rows"]:
                apply_redo(
                    ("create_rel", row[0], row[1], row[2], row[3], row[4])
                )
            rels += len(record["rows"])
        elif kind == "end":
            if header is None:
                raise PersistenceError(
                    f"corrupt checkpoint {path}: missing header record"
                )
            if record.get("nodes") != nodes or record.get("rels") != rels:
                raise PersistenceError(
                    f"corrupt checkpoint {path}: end record expects "
                    f"{record.get('nodes')} nodes / {record.get('rels')} "
                    f"relationships, stream carried {nodes} / {rels}"
                )
        else:
            raise PersistenceError(
                f"corrupt checkpoint {path}: unknown record kind {kind!r}"
            )
    # Schema and allocators last, matching the legacy restore order.
    for label, key in header.get("indexes", ()):
        store.create_index(label, key)
    for label, key in header.get("constraints", ()):
        store.create_unique_constraint(label, key)
    store._next_node_id = max(
        store._next_node_id, header.get("next_node_id", 0)
    )
    store._next_rel_id = max(
        store._next_rel_id, header.get("next_rel_id", 0)
    )
    return {"lsn": header["lsn"], "format": CHECKPOINT_FORMAT}


def restore_checkpoint(store: GraphStore, payload: dict) -> None:
    """Rebuild *store* from a materialised payload, ids preserved."""
    graph = payload["graph"]
    for node in graph["nodes"]:
        store.apply_redo(
            (
                "create_node",
                node["id"],
                list(node["labels"]),
                dict(node["properties"]),
            )
        )
    for rel in graph["relationships"]:
        store.apply_redo(
            (
                "create_rel",
                rel["id"],
                rel["type"],
                rel["start"],
                rel["end"],
                dict(rel["properties"]),
            )
        )
    for label, key in payload.get("indexes", ()):
        store.create_index(label, key)
    for label, key in payload.get("constraints", ()):
        store.create_unique_constraint(label, key)
    store._next_node_id = max(
        store._next_node_id, payload.get("next_node_id", 0)
    )
    store._next_rel_id = max(
        store._next_rel_id, payload.get("next_rel_id", 0)
    )
