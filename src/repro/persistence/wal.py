"""Append-only write-ahead log: framing, checksums, fsync policies.

Every committed statement becomes one *record*::

    +----------------+----------------+------------------------+
    | payload length | CRC32(payload) | payload (UTF-8 JSON)   |
    |  4 bytes, BE   |  4 bytes, BE   |  {"lsn": n, "ops": []} |
    +----------------+----------------+------------------------+

The payload carries a monotonically increasing log sequence number and
the statement's redo operations (see
:meth:`repro.graph.store.GraphStore.redo_ops`).  The LSN lets recovery
skip records already covered by a checkpoint, which makes a crash
between "checkpoint renamed" and "WAL truncated" harmless.

Reading stops at the first frame that is short, fails its checksum, or
does not decode -- everything from there on is a *torn tail* (a crash
mid-append) and is discarded, exactly as the paper's statement
atomicity demands: a statement whose record never fully reached disk
never happened.

Fsync policies trade durability for throughput:

* ``always`` -- ``fsync`` after every record; a committed statement
  survives an OS crash.
* ``batch``  -- ``fsync`` every ``batch_size`` records and on
  checkpoint/close; bounded loss window, much cheaper.
* ``off``    -- never ``fsync``; the OS page cache decides.  Still
  safe against *process* crashes (the write itself is buffered to the
  kernel on every append).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import PersistenceError

#: payload length + CRC32, both unsigned 32-bit big-endian
_HEADER = struct.Struct(">II")

#: the recognised fsync policies
FSYNC_POLICIES = ("always", "batch", "off")


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    ops: tuple


def encode_record(lsn: int, ops: list) -> bytes:
    """The on-disk bytes of one record."""
    payload = json.dumps(
        {"lsn": lsn, "ops": [list(op) for op in ops]},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_records(data: bytes) -> tuple[list[WalRecord], int]:
    """All intact records in *data*, plus the clean byte length.

    A clean length shorter than ``len(data)`` means the file has a
    torn or corrupt tail starting at that offset; the caller decides
    whether to truncate it away.
    """
    records: list[WalRecord] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            body = json.loads(payload.decode("utf-8"))
            lsn = body["lsn"]
            ops = tuple(tuple(op) for op in body["ops"])
        except (ValueError, KeyError, TypeError):
            break
        records.append(WalRecord(lsn=lsn, ops=ops))
        offset = end
    return records, offset


def read_wal(path: Path | str) -> tuple[list[WalRecord], int, int]:
    """Decode a WAL file: ``(records, clean_length, file_length)``."""
    path = Path(path)
    if not path.exists():
        return [], 0, 0
    data = path.read_bytes()
    records, clean = decode_records(data)
    return records, clean, len(data)


class WalWriter:
    """Appends framed records to a WAL file under an fsync policy."""

    def __init__(
        self,
        path: Path | str,
        *,
        fsync: str = "batch",
        batch_size: int = 32,
    ):
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {', '.join(FSYNC_POLICIES)}"
            )
        if batch_size < 1:
            raise PersistenceError("batch_size must be >= 1")
        self.path = Path(path)
        self.fsync = fsync
        self.batch_size = batch_size
        self._pending = 0
        self._file = open(self.path, "ab")

    def append(self, lsn: int, ops: list) -> None:
        """Write one record; durability depends on the fsync policy."""
        self._file.write(encode_record(lsn, ops))
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        elif self.fsync == "batch":
            self._pending += 1
            if self._pending >= self.batch_size:
                os.fsync(self._file.fileno())
                self._pending = 0

    def sync(self) -> None:
        """Flush and fsync pending records (explicit durability point).

        Honoured under every policy -- ``off`` only skips the *implicit*
        per-append fsync, not an explicit request.
        """
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending = 0

    def truncate(self, length: int = 0) -> None:
        """Shrink the log (0 after a checkpoint, or cut a torn tail)."""
        self._file.flush()
        self._file.truncate(length)
        self._file.seek(0, os.SEEK_END)
        os.fsync(self._file.fileno())
        self._pending = 0

    def close(self) -> None:
        """Flush, fsync (policy permitting) and close the file."""
        if self._file.closed:
            return
        self.sync()
        self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
