"""Durability: write-ahead logging, checkpoints, crash recovery.

The paper's statement atomicity (``[[C]] : (G, T) -> (G', T')``) is
enforced in memory by the store's undo journal; this package extends
it across process boundaries.  Every committed statement's journal
slice is re-expressed as *redo* operations and appended to an
append-only, checksummed write-ahead log; checkpoints snapshot the
whole graph atomically and truncate the log; recovery replays the log
over the latest checkpoint, discarding any torn tail, so the reopened
graph is byte-identical (canonical graph JSON) to the last committed
state before the crash.

Entry points: ``Graph(path=...)`` / ``Graph.open(path)`` in
:mod:`repro.session`, and the standalone ``python -m repro.recover``
CLI.
"""

from repro.persistence.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_NAME,
    LEGACY_CHECKPOINT_FORMAT,
    STREAM_MAGIC,
    WAL_NAME,
    checkpoint_format,
    checkpoint_payload,
    checkpoint_record_boundaries,
    load_checkpoint,
    read_checkpoint_records,
    restore_checkpoint,
    restore_checkpoint_file,
    write_checkpoint,
)
from repro.persistence.group_commit import GroupCommitter
from repro.persistence.manager import PersistenceManager, RecoveryReport
from repro.persistence.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalWriter,
    decode_records,
    encode_record,
    read_wal,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_NAME",
    "LEGACY_CHECKPOINT_FORMAT",
    "STREAM_MAGIC",
    "WAL_NAME",
    "FSYNC_POLICIES",
    "GroupCommitter",
    "PersistenceManager",
    "RecoveryReport",
    "WalRecord",
    "WalWriter",
    "checkpoint_format",
    "checkpoint_payload",
    "checkpoint_record_boundaries",
    "decode_records",
    "encode_record",
    "load_checkpoint",
    "read_checkpoint_records",
    "read_wal",
    "restore_checkpoint",
    "restore_checkpoint_file",
    "write_checkpoint",
]
