"""The durability coordinator: recovery, logging, checkpointing.

:class:`PersistenceManager` owns one persistence directory::

    <directory>/
        checkpoint.json   latest atomic snapshot (optional)
        wal.log           append-only record log since that snapshot

Lifecycle (what ``Graph(path=...)`` does):

1. :meth:`recover` -- load the checkpoint (if any) into the store,
   replay every intact WAL record whose LSN the checkpoint does not
   already cover, discard a torn/corrupt tail, and re-verify the
   result with the store-invariant oracle.
2. :meth:`attach` -- truncate the torn tail away, open the writer and
   install :meth:`log_commit` as the store's commit hook; from now on
   every committed statement appends one record.
3. :meth:`checkpoint` (any time) -- atomic snapshot, then WAL
   truncation; the stamped LSN makes a crash between those two steps
   harmless because replay skips covered records.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import PersistenceError
from repro.graph.store import GraphStore
from repro.persistence.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_NAME,
    WAL_NAME,
    restore_checkpoint_file,
    write_checkpoint,
)
from repro.persistence.wal import FSYNC_POLICIES, WalWriter, read_wal


@dataclass
class RecoveryReport:
    """What :meth:`PersistenceManager.recover` found and did."""

    checkpoint_lsn: int = 0
    checkpoint_format: int = 0  # 0 = no checkpoint found
    records_total: int = 0
    records_applied: int = 0
    records_skipped: int = 0
    operations_applied: int = 0
    torn_bytes: int = 0
    nodes: int = 0
    relationships: int = 0

    def summary(self) -> str:
        parts = [
            f"checkpoint lsn {self.checkpoint_lsn}",
            f"{self.records_applied}/{self.records_total} records replayed",
            f"{self.operations_applied} operations",
        ]
        if self.records_skipped:
            parts.append(
                f"{self.records_skipped} skipped (covered by checkpoint)"
            )
        if self.torn_bytes:
            parts.append(f"{self.torn_bytes} torn bytes discarded")
        parts.append(
            f"{self.nodes} nodes / {self.relationships} relationships"
        )
        return ", ".join(parts)


class PersistenceManager:
    """Write-ahead logging + checkpointing for one ``GraphStore``."""

    def __init__(
        self,
        directory: Path | str,
        *,
        fsync: str = "batch",
        batch_size: int = 32,
    ):
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {', '.join(FSYNC_POLICIES)}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / WAL_NAME
        self.fsync = fsync
        self.batch_size = batch_size
        self._lsn = 0
        self._clean_length: int | None = None
        self._writer: WalWriter | None = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(
        self, store: GraphStore, *, verify: bool = True
    ) -> RecoveryReport:
        """Rebuild *store* from checkpoint + WAL; returns a report.

        The store's commit hook must not be installed yet (recovery
        replays through :meth:`~repro.graph.store.GraphStore.apply_redo`
        and must not re-log anything).  With ``verify=True`` the
        recovered store is checked against the full store-invariant
        oracle and a violation raises :class:`PersistenceError`.
        """
        if store.commit_hook() is not None:
            raise PersistenceError(
                "recover() needs a store without a commit hook; "
                "attach the manager after recovery"
            )
        report = RecoveryReport()
        checkpoint_path = self.directory / CHECKPOINT_NAME
        if checkpoint_path.exists():
            # Streams format-2 record by record (O(1) memory); loads
            # a legacy format-1 blob transparently.
            info = restore_checkpoint_file(store, checkpoint_path)
            report.checkpoint_lsn = info["lsn"]
            report.checkpoint_format = info["format"]
        records, clean, total = read_wal(self.wal_path)
        self._clean_length = clean
        report.records_total = len(records)
        report.torn_bytes = total - clean
        last_lsn = report.checkpoint_lsn
        for record in records:
            if record.lsn <= report.checkpoint_lsn:
                report.records_skipped += 1
                last_lsn = max(last_lsn, record.lsn)
                continue
            for op in record.ops:
                store.apply_redo(op)
                report.operations_applied += 1
            report.records_applied += 1
            last_lsn = max(last_lsn, record.lsn)
        self._lsn = last_lsn
        report.nodes = store.node_count()
        report.relationships = store.relationship_count()
        if verify:
            from repro.testing.invariants import (
                InvariantViolation,
                check_invariants,
            )

            try:
                check_invariants(store)
            except InvariantViolation as violation:
                raise PersistenceError(
                    f"recovered store violates invariants: {violation}"
                ) from violation
        return report

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------

    def attach(self, store: GraphStore) -> None:
        """Open the writer and install the store's commit hook."""
        if self._writer is None:
            self._writer = WalWriter(
                self.wal_path,
                fsync=self.fsync,
                batch_size=self.batch_size,
            )
            if (
                self._clean_length is not None
                and self.wal_path.stat().st_size > self._clean_length
            ):
                # Cut the torn tail found during recovery so new
                # records append after the last intact one.
                self._writer.truncate(self._clean_length)
        store.set_commit_hook(self.log_commit)

    def log_commit(self, ops: list) -> None:
        """Append one record (the store's commit hook)."""
        if self._writer is None:
            raise PersistenceError(
                "persistence manager is not attached (or was closed)"
            )
        self._lsn += 1
        self._writer.append(self._lsn, ops)

    @property
    def lsn(self) -> int:
        """LSN of the most recently written (or recovered) record."""
        return self._lsn

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(
        self, store: GraphStore, *, format: int = CHECKPOINT_FORMAT
    ) -> Path:
        """Snapshot the store, then truncate the WAL; returns the path.

        Streams the format-2 record file by default (peak memory one
        batch, not the graph); pass ``format=1`` to write the legacy
        blob.  Safe against a crash at any point: the snapshot rename
        is atomic, and its stamped LSN makes replaying the not-yet
        truncated WAL a no-op (records with ``lsn <= checkpoint lsn``
        are skipped).
        """
        if store.in_transaction():
            raise PersistenceError(
                "cannot checkpoint inside an open transaction"
            )
        path = write_checkpoint(
            self.directory, store, self._lsn, format=format
        )
        if self._writer is not None:
            self._writer.truncate(0)
        else:
            open(self.wal_path, "wb").close()
        self._clean_length = 0
        return path

    def sync(self) -> None:
        """Force pending WAL records to disk (any fsync policy)."""
        if self._writer is not None:
            self._writer.sync()

    def close(self) -> None:
        """Flush and close the writer (the hook becomes unusable)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
