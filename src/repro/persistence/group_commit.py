"""Group commit: one ``fsync`` shared by a batch of concurrent writers.

Under ``fsync=always`` every committed statement pays a full disk
flush before it is acknowledged -- the P6 benchmark puts that at
~13.7x the in-memory cost, and it serialises the whole server behind
the disk.  But durability only requires that a statement's WAL record
is on disk *before the client sees the acknowledgement*; it does not
require a private flush.  Group commit exploits that:

* writers append their WAL record without syncing (the manager runs
  with the ``off`` policy, so appends are buffered writes);
* each writer then awaits :meth:`GroupCommitter.wait_durable` with the
  LSN its record received;
* the first waiter starts a drain task which captures the newest
  appended LSN, runs one ``fsync`` in a worker thread, and releases
  every waiter at or below the captured LSN.

While the fsync runs in the worker thread the event loop keeps
executing other sessions' statements, whose records pile up behind it;
the next fsync covers all of them at once.  Under load the batch size
approaches the number of concurrent writers, and the per-statement
fsync cost shrinks by the same factor -- with exactly the same
guarantee as ``fsync=always``: an acknowledged statement is on disk.

The drain loop and the waiters all live on one asyncio event loop;
only the ``fsync`` itself runs in a thread (appending to the WAL's
``BufferedWriter`` from the loop thread while the worker thread
flushes it is safe -- the writer locks internally, and records
appended mid-fsync are simply not counted as durable until the next
batch).
"""

from __future__ import annotations

import asyncio

from repro.errors import PersistenceError
from repro.persistence.manager import PersistenceManager


class GroupCommitter:
    """Batches durability waits for one :class:`PersistenceManager`."""

    def __init__(self, manager: PersistenceManager):
        self._manager = manager
        self._durable_lsn = manager.lsn
        self._waiters: list[tuple[int, asyncio.Future]] = []
        self._drain_task: asyncio.Task | None = None
        #: number of fsync batches issued
        self.batches = 0
        #: total waiters released (== durable statements acknowledged)
        self.synced_waiters = 0
        #: largest number of waiters released by a single fsync
        self.max_batch = 0

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known to be on disk."""
        return self._durable_lsn

    def stats(self) -> dict[str, int]:
        """Batch counters (for the admin/stats endpoint)."""
        return {
            "batches": self.batches,
            "synced_waiters": self.synced_waiters,
            "max_batch": self.max_batch,
            "durable_lsn": self._durable_lsn,
            "pending_waiters": len(self._waiters),
        }

    async def wait_durable(self, lsn: int) -> None:
        """Block until the record with *lsn* is on disk.

        Returns immediately when a previous batch already covered the
        LSN; otherwise joins the next batch.
        """
        if lsn <= self._durable_lsn:
            return
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._waiters.append((lsn, future))
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = loop.create_task(self._drain())
        await future

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while self._waiters:
            # Yield once so statements already scheduled on the loop
            # can commit and enqueue before the fsync is issued --
            # they ride this batch instead of paying for their own.
            await asyncio.sleep(0)
            target = self._manager.lsn
            try:
                await loop.run_in_executor(None, self._manager.sync)
            except Exception as error:  # pragma: no cover - disk failure
                failure = PersistenceError(
                    f"group commit fsync failed: {error}"
                )
                for __, future in self._waiters:
                    if not future.done():
                        future.set_exception(failure)
                self._waiters.clear()
                return
            self._durable_lsn = max(self._durable_lsn, target)
            released = [
                future for lsn, future in self._waiters if lsn <= target
            ]
            self._waiters = [
                (lsn, future)
                for lsn, future in self._waiters
                if lsn > target
            ]
            self.batches += 1
            self.synced_waiters += len(released)
            self.max_batch = max(self.max_batch, len(released))
            for future in released:
                if not future.done():
                    future.set_result(None)

    async def close(self) -> None:
        """Flush any pending batch and stop the drain task."""
        task = self._drain_task
        if task is not None and not task.done():
            await task
