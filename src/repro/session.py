"""User-facing façade: :class:`Graph` and :class:`Transaction`.

``Graph`` bundles a store with one engine per use and offers the
ergonomic entry points the examples and benchmarks use::

    from repro import Graph, Dialect

    g = Graph(dialect=Dialect.REVISED)
    g.run("CREATE (:User {id: 89, name: 'Bob'})")
    result = g.run("MATCH (u:User) RETURN u.name AS name")

Multi-statement transactions bracket several statements in one
rollback scope on top of the engine's per-statement atomicity::

    with g.transaction():
        g.run(...)
        g.run(...)        # an exception rolls back both

A graph opened with ``path=...`` (or :meth:`Graph.open`) is durable:
every committed statement is appended to a write-ahead log, recovery
replays it on reopen, and :meth:`Graph.checkpoint` compacts the log
into an atomic snapshot (see :mod:`repro.persistence`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Mapping, TypeVar

from repro.dialect import Dialect
from repro.engine import CypherEngine, QueryResult
from repro.errors import PersistenceError, TransactionError
from repro.graph.model import GraphSnapshot, Node, Relationship
from repro.graph.statistics import GraphStatistics, collect_statistics
from repro.graph.store import GraphStore
from repro.runtime.context import MatchMode
from repro.runtime.table import DrivingTable

_T = TypeVar("_T")


class Transaction:
    """A rollback scope over multiple statements.

    On a durable graph nothing reaches the write-ahead log until
    :meth:`commit`; a rolled-back transaction leaves no trace on disk.
    """

    def __init__(self, store: GraphStore):
        self._store = store
        self._mark = store.begin_transaction()
        self._closed = False

    @property
    def mark(self) -> int:
        """Journal position at transaction begin.

        The committed state is everything before this mark; the server
        session layer passes it to
        :meth:`~repro.graph.store.GraphStore.reverted_to` so reads
        from other sessions can observe the pre-transaction snapshot.
        """
        return self._mark

    @property
    def closed(self) -> bool:
        """True once the transaction committed or rolled back."""
        return self._closed

    def commit(self) -> None:
        """Keep all changes made inside the transaction."""
        if self._closed:
            raise TransactionError("transaction already closed")
        self._closed = True
        self._store.commit_transaction(self._mark)

    def rollback(self) -> None:
        """Undo all changes made inside the transaction."""
        if self._closed:
            raise TransactionError("transaction already closed")
        self._closed = True
        self._store.rollback_transaction(self._mark)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._closed:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        return False


class Graph:
    """A property graph plus a Cypher engine."""

    def __init__(
        self,
        dialect: Dialect | str = Dialect.REVISED,
        *,
        extended_merge: bool = False,
        match_mode: MatchMode | str = MatchMode.TRAIL,
        use_planner: bool = False,
        workers: int = 1,
        parallel: str = "thread",
        use_rewrites: bool | None = None,
        store: GraphStore | None = None,
        path: str | Path | None = None,
        fsync: str = "batch",
    ):
        self.store = store if store is not None else GraphStore()
        self.persistence = None
        self.recovery = None
        self._views = None
        if path is not None:
            from repro.persistence import (
                CHECKPOINT_NAME,
                PersistenceManager,
            )

            self.persistence = PersistenceManager(path, fsync=fsync)
            had_data = bool(
                self.store.has_records() or self.store._property_indexes
            )
            if had_data and (
                self.persistence.wal_path.exists()
                or (Path(path) / CHECKPOINT_NAME).exists()
            ):
                raise PersistenceError(
                    "cannot attach a pre-populated store to a directory "
                    "that already holds persisted data; pass a fresh "
                    "store or an empty directory"
                )
            self.recovery = self.persistence.recover(self.store)
            self.persistence.attach(self.store)
            if had_data:
                # A pre-populated store attached to a directory: take
                # an immediate checkpoint so the base state is on disk
                # (the WAL only covers statements from here on).
                self.persistence.checkpoint(self.store)
        self.engine = CypherEngine(
            self.store,
            dialect,
            extended_merge=extended_merge,
            match_mode=match_mode,
            use_planner=use_planner,
            workers=workers,
            parallel=parallel,
            use_rewrites=use_rewrites,
        )

    @classmethod
    def open(
        cls, path: str | Path, *, fsync: str = "batch", **kwargs: Any
    ) -> "Graph":
        """Open (or create) a durable graph backed by *path*."""
        return cls(path=path, fsync=fsync, **kwargs)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    @property
    def dialect(self) -> Dialect:
        """The dialect this graph's engine speaks."""
        return self.engine.dialect

    def run(
        self,
        statement: str,
        parameters: Mapping[str, Any] | None = None,
        *,
        table: DrivingTable | None = None,
        **kw_parameters: Any,
    ) -> QueryResult:
        """Execute one statement (parameters via mapping or keywords)."""
        merged = dict(parameters or {})
        merged.update(kw_parameters)
        return self.engine.execute(statement, merged, table=table)

    def profile(
        self,
        statement: str,
        parameters: Mapping[str, Any] | None = None,
        *,
        table: DrivingTable | None = None,
        **kw_parameters: Any,
    ):
        """Execute *statement* and return its per-clause runtime profile.

        The returned :class:`~repro.runtime.profile.QueryProfile` is a
        tree of per-clause metrics (rows in/out, wall time, db-hits);
        the query's :class:`~repro.engine.QueryResult` is available as
        ``profile.result``.  Profiling installs real hit counters for
        the duration of this one statement only -- other statements on
        the same graph keep the zero-overhead no-op counters.
        """
        merged = dict(parameters or {})
        merged.update(kw_parameters)
        result = self.engine.execute(
            statement, merged, table=table, profile=True
        )
        return result.profile

    def explain(self, statement: str) -> str:
        """Describe how *statement* would execute, without running it."""
        return self.engine.explain(statement)

    def plan(self, statement: str) -> str:
        """Show the match planner's anchor and ordering choices.

        Like :meth:`explain` but with the planner forced on, so the
        plan is visible even on a graph constructed without
        ``use_planner=True``.  Nothing is executed.
        """
        return self.engine.plan(statement)

    def transaction(self) -> Transaction:
        """Open a multi-statement rollback scope."""
        return Transaction(self.store)

    # ------------------------------------------------------------------
    # Materialized views
    # ------------------------------------------------------------------

    @property
    def view_registry(self):
        """The lazily-created :class:`~repro.views.ViewRegistry`."""
        if self._views is None:
            from repro.views import ViewRegistry

            if (
                self.persistence is None
                and self.store.commit_hook() is None
            ):
                # Bound journal growth for long-lived in-memory graphs
                # with views: committed statements need no undo once
                # their redo ops have been fanned out (the server does
                # the same for its in-memory graphs).
                self.store.set_commit_hook(lambda ops: None)
            self._views = ViewRegistry(
                self.store,
                match_mode=self.engine.match_mode,
                extended_merge=self.engine.extended_merge,
            )
        return self._views

    def register_view(
        self,
        statement: str,
        parameters: Mapping[str, Any] | None = None,
        **kw_parameters: Any,
    ):
        """Register a read-only query as an incrementally maintained view.

        Returns the :class:`~repro.views.View`; read it with
        :meth:`view_result` (or ``view.result()``).  Identical
        registrations share one materialization.
        """
        merged = dict(parameters or {})
        merged.update(kw_parameters)
        return self.view_registry.register(
            statement, dialect=self.engine.dialect, parameters=merged
        )

    def view_result(self, view_id: str):
        """Current :class:`~repro.views.ViewResult` of a registered view."""
        return self.view_registry.result(view_id)

    def views(self) -> list[dict]:
        """Per-view maintenance statistics (the ``:views`` surface)."""
        if self._views is None:
            return []
        return self._views.stats()

    def drop_view(self, view_id: str) -> None:
        """Unregister a view."""
        self.view_registry.drop(view_id)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self, *, format: int | None = None) -> None:
        """Snapshot the graph atomically and truncate the WAL.

        Streams the format-2 checkpoint by default; ``format=1``
        writes the legacy blob (see :mod:`repro.persistence.checkpoint`).
        """
        if self.persistence is None:
            raise PersistenceError(
                "graph has no persistence directory; "
                "open it with Graph(path=...)"
            )
        if format is None:
            self.persistence.checkpoint(self.store)
        else:
            self.persistence.checkpoint(self.store, format=format)

    def sync(self) -> None:
        """Force pending WAL records to disk (any fsync policy)."""
        if self.persistence is not None:
            self.persistence.sync()

    def close(self) -> None:
        """Flush and detach the persistence layer (idempotent)."""
        if self._views is not None:
            self._views.close()
            self._views = None
        if self.persistence is not None:
            self.persistence.close()
            self.store.set_commit_hook(None)
            self.persistence = None

    def __enter__(self) -> "Graph":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _direct(self, mutate: Callable[[], _T]) -> _T:
        """Run one direct store mutation as its own committed statement."""
        mark = self.store.mark()
        try:
            result = mutate()
        except Exception:
            self.store.rollback_to(mark)
            raise
        self.store.commit_statement(mark)
        return result

    def with_dialect(
        self, dialect: Dialect | str, *, extended_merge: bool | None = None
    ) -> "Graph":
        """A second view of the *same* store under another dialect."""
        return Graph(
            dialect,
            extended_merge=(
                self.engine.extended_merge
                if extended_merge is None
                else extended_merge
            ),
            match_mode=self.engine.match_mode,
            use_planner=self.engine.use_planner,
            workers=self.engine.workers,
            parallel=self.engine.parallel,
            use_rewrites=self.engine.use_rewrites,
            store=self.store,
        )

    # ------------------------------------------------------------------
    # Direct graph access
    # ------------------------------------------------------------------

    def create_node(
        self, *labels: str, **properties: Any
    ) -> Node:
        """Create a node directly (bypassing Cypher)."""
        node_id = self._direct(
            lambda: self.store.create_node(labels, properties)
        )
        return self.store.node(node_id)

    def create_relationship(
        self,
        source: Node | int,
        rel_type: str,
        target: Node | int,
        **properties: Any,
    ) -> Relationship:
        """Create a relationship directly (bypassing Cypher)."""
        source_id = source.id if isinstance(source, Node) else source
        target_id = target.id if isinstance(target, Node) else target
        rel_id = self._direct(
            lambda: self.store.create_relationship(
                rel_type, source_id, target_id, properties
            )
        )
        return self.store.relationship(rel_id)

    def nodes(self) -> list[Node]:
        """All live nodes."""
        return list(self.store.nodes())

    def relationships(self) -> list[Relationship]:
        """All live relationships."""
        return list(self.store.relationships())

    def node_count(self) -> int:
        """Number of live nodes."""
        return self.store.node_count()

    def relationship_count(self) -> int:
        """Number of live relationships."""
        return self.store.relationship_count()

    def snapshot(self) -> GraphSnapshot:
        """Immutable copy of the current graph."""
        return self.store.snapshot()

    def statistics(self) -> GraphStatistics:
        """Descriptive statistics of the current graph."""
        return collect_statistics(self.store)

    def create_index(self, label: str, key: str) -> None:
        """Create a property index on ``:label(key)``."""
        self.store.create_index(label, key)

    def create_unique_constraint(self, label: str, key: str) -> None:
        """Require ``:label(key)`` to be unique (index-backed)."""
        self.store.create_unique_constraint(label, key)

    def drop_unique_constraint(self, label: str, key: str) -> None:
        """Drop a uniqueness constraint."""
        self.store.drop_unique_constraint(label, key)

    def copy(self) -> "Graph":
        """Deep copy (same dialect, fresh store)."""
        return Graph(
            self.engine.dialect,
            extended_merge=self.engine.extended_merge,
            match_mode=self.engine.match_mode,
            use_planner=self.engine.use_planner,
            workers=self.engine.workers,
            parallel=self.engine.parallel,
            use_rewrites=self.engine.use_rewrites,
            store=self.store.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"Graph({self.store.node_count()} nodes, "
            f"{self.store.relationship_count()} relationships, "
            f"dialect={self.engine.dialect.value})"
        )
