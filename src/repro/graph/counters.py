"""Db-hit counters: the measurement hooks behind ``PROFILE``.

A *db-hit* is one access to the storage layer, in the spirit of
Neo4j's PROFILE output.  The taxonomy:

==================  =======================================================
counter             incremented when
==================  =======================================================
``node_reads``      a node record is fetched (handle creation, scans,
                    label reads)
``rel_reads``       a relationship record is fetched
``property_reads``  a node/relationship property map is read
``index_lookups``   a label-index or property-index bucket is consulted
``writes``          a mutation is journaled (create/delete/SET/label ops)
==================  =======================================================

Design: the store and both index classes always call
``self.counters.<hook>()``.  When profiling is off they share the
module-level :data:`NO_COUNTERS` singleton whose hooks are no-ops, so
the cost of the instrumentation is one no-op method call -- there is no
conditional logic on the hot paths and nothing accumulates.  Profiling
installs a fresh :class:`HitCounters` for the duration of one statement
(see :meth:`repro.graph.store.GraphStore.install_counters`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DbHits:
    """An immutable snapshot of the counter values."""

    node_reads: int = 0
    rel_reads: int = 0
    property_reads: int = 0
    index_lookups: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Sum over the whole taxonomy."""
        return (
            self.node_reads
            + self.rel_reads
            + self.property_reads
            + self.index_lookups
            + self.writes
        )

    def __add__(self, other: "DbHits") -> "DbHits":
        return DbHits(
            self.node_reads + other.node_reads,
            self.rel_reads + other.rel_reads,
            self.property_reads + other.property_reads,
            self.index_lookups + other.index_lookups,
            self.writes + other.writes,
        )

    def __sub__(self, other: "DbHits") -> "DbHits":
        return DbHits(
            self.node_reads - other.node_reads,
            self.rel_reads - other.rel_reads,
            self.property_reads - other.property_reads,
            self.index_lookups - other.index_lookups,
            self.writes - other.writes,
        )

    def to_dict(self) -> dict[str, int]:
        """Plain-dict form (harness JSON, ``QueryProfile.to_dict``)."""
        return {
            "node_reads": self.node_reads,
            "rel_reads": self.rel_reads,
            "property_reads": self.property_reads,
            "index_lookups": self.index_lookups,
            "writes": self.writes,
            "total": self.total,
        }

    def compact(self) -> str:
        """Short rendering: ``17 (node 5, rel 3, prop 7, idx 1, write 1)``."""
        return (
            f"{self.total} (node {self.node_reads}, rel {self.rel_reads}, "
            f"prop {self.property_reads}, idx {self.index_lookups}, "
            f"write {self.writes})"
        )


class HitCounters:
    """Mutable db-hit accumulator installed on a store while profiling."""

    __slots__ = (
        "node_reads",
        "rel_reads",
        "property_reads",
        "index_lookups",
        "writes",
    )

    #: True on real counters, False on the no-op singleton; lets callers
    #: (and tests) ask whether profiling is active without isinstance.
    active = True

    def __init__(self) -> None:
        self.node_reads = 0
        self.rel_reads = 0
        self.property_reads = 0
        self.index_lookups = 0
        self.writes = 0

    # Hooks -- one per taxonomy entry, called from the store/indexes.

    def node_read(self, count: int = 1) -> None:
        self.node_reads += count

    def rel_read(self, count: int = 1) -> None:
        self.rel_reads += count

    def property_read(self, count: int = 1) -> None:
        self.property_reads += count

    def index_lookup(self, count: int = 1) -> None:
        self.index_lookups += count

    def write(self, count: int = 1) -> None:
        self.writes += count

    def snapshot(self) -> DbHits:
        """Immutable copy of the current totals."""
        return DbHits(
            self.node_reads,
            self.rel_reads,
            self.property_reads,
            self.index_lookups,
            self.writes,
        )

    def __repr__(self) -> str:
        return f"HitCounters({self.snapshot().compact()})"


class NoOpCounters(HitCounters):
    """The profiling-off counters: every hook is a no-op.

    All stores share the single :data:`NO_COUNTERS` instance, so
    ``store.counters is NO_COUNTERS`` is the "profiling off" predicate.
    """

    active = False

    def node_read(self, count: int = 1) -> None:
        pass

    def rel_read(self, count: int = 1) -> None:
        pass

    def property_read(self, count: int = 1) -> None:
        pass

    def index_lookup(self, count: int = 1) -> None:
        pass

    def write(self, count: int = 1) -> None:
        pass

    def __repr__(self) -> str:
        return "NoOpCounters()"


#: The shared profiling-off singleton.
NO_COUNTERS = NoOpCounters()
