"""Graph comparison: equality up to id renaming.

The revised MERGE semantics is deterministic only *up to id renaming*
(Section 8: "the output graph-table pairs are the same up to id
renaming").  Verifying the paper's determinism claims -- e.g. that
Example 3 under MERGE SAME yields Figure 6b no matter how the driving
table is ordered -- therefore requires deciding property-graph
isomorphism with label/type/property-preserving bijections.

Graphs in this reproduction are small (the paper's figures have at most
a dozen nodes; the scaling benchmarks compare only counts), so we use
:mod:`networkx`'s VF2 matcher over content signatures, with a cheap
Weisfeiler-Lehman fingerprint as a fast-path filter.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from repro.graph.model import GraphSnapshot


def to_networkx(snapshot: GraphSnapshot) -> nx.MultiDiGraph:
    """Convert a snapshot to a MultiDiGraph with content signatures.

    Each node gets a ``sig`` attribute (labels + sorted properties) and
    each edge a ``sig`` attribute (type + sorted properties), so that
    categorical matching on ``sig`` decides property-graph isomorphism.
    Dangling relationships (legacy states) keep their missing endpoint
    as an extra node marked with a ``dangling`` signature.
    """
    graph = nx.MultiDiGraph()
    for node_id in snapshot.nodes:
        graph.add_node(node_id, sig=snapshot.node_signature(node_id))
    for rel_id in snapshot.relationships:
        source = snapshot.source[rel_id]
        target = snapshot.target[rel_id]
        for endpoint in (source, target):
            if endpoint not in graph:
                graph.add_node(endpoint, sig=("<deleted>",))
        graph.add_edge(source, target, key=rel_id, sig=snapshot.rel_signature(rel_id))
    return graph


def fingerprint(snapshot: GraphSnapshot) -> str:
    """A content hash invariant under id renaming.

    Two isomorphic graphs always share a fingerprint; unequal
    fingerprints prove non-isomorphism.  (Equal fingerprints are almost
    always isomorphic but are confirmed with :func:`isomorphic`.)
    """
    multi = to_networkx(snapshot)
    # The WL hash works on simple graphs with string attributes, so
    # bundle parallel edges into one edge labeled with the sorted
    # multiset of their signatures.
    graph = nx.DiGraph()
    for node, data in multi.nodes(data=True):
        graph.add_node(node, sig_str=repr(data["sig"]))
    bundles: dict[tuple, list] = {}
    for source, target, data in multi.edges(data=True):
        bundles.setdefault((source, target), []).append(data["sig"])
    for (source, target), sigs in bundles.items():
        graph.add_edge(source, target, sig_str=repr(sorted(map(repr, sigs))))
    return nx.weisfeiler_lehman_graph_hash(
        graph, node_attr="sig_str", edge_attr="sig_str"
    )


def isomorphic(left: GraphSnapshot, right: GraphSnapshot) -> bool:
    """True iff the two graphs are equal up to id renaming."""
    if left.order() != right.order() or left.size() != right.size():
        return False
    if signature_counts(left) != signature_counts(right):
        return False
    matcher = nx.algorithms.isomorphism.MultiDiGraphMatcher(
        to_networkx(left),
        to_networkx(right),
        node_match=lambda a, b: a["sig"] == b["sig"],
        edge_match=_edge_multiset_match,
    )
    return matcher.is_isomorphic()


def _edge_multiset_match(left_edges: dict, right_edges: dict) -> bool:
    """Match parallel-edge bundles as multisets of signatures."""
    left_sigs = Counter(data["sig"] for data in left_edges.values())
    right_sigs = Counter(data["sig"] for data in right_edges.values())
    return left_sigs == right_sigs


def signature_counts(snapshot: GraphSnapshot) -> tuple[Counter, Counter]:
    """Multisets of node and relationship content signatures.

    A cheap isomorphism invariant used both as a filter and to produce
    readable diffs in assertion messages.
    """
    node_sigs = Counter(
        snapshot.node_signature(n) for n in snapshot.nodes
    )
    rel_sigs = Counter(
        (
            snapshot.rel_signature(r),
            snapshot.node_signature(snapshot.source[r])
            if snapshot.source[r] in snapshot.nodes
            else ("<deleted>",),
            snapshot.node_signature(snapshot.target[r])
            if snapshot.target[r] in snapshot.nodes
            else ("<deleted>",),
        )
        for r in snapshot.relationships
    )
    return node_sigs, rel_sigs


def describe(snapshot: GraphSnapshot) -> str:
    """Human-readable one-line description (counts + signature summary)."""
    node_sigs, rel_sigs = signature_counts(snapshot)
    labels = Counter()
    for (label_tuple, __), count in node_sigs.items():
        labels[label_tuple or ("<none>",)] += count
    label_text = ", ".join(
        f"{'|'.join(label)}x{count}" for label, count in sorted(labels.items())
    )
    return (
        f"{snapshot.order()} nodes ({label_text}), "
        f"{snapshot.size()} relationships"
    )


def assert_isomorphic(left: GraphSnapshot, right: GraphSnapshot) -> None:
    """Assert isomorphism with a diff-style failure message."""
    if isomorphic(left, right):
        return
    left_nodes, left_rels = signature_counts(left)
    right_nodes, right_rels = signature_counts(right)
    lines = ["graphs are not isomorphic:"]
    lines.append(f"  left:  {describe(left)}")
    lines.append(f"  right: {describe(right)}")
    only_left = left_nodes - right_nodes
    only_right = right_nodes - left_nodes
    if only_left:
        lines.append(f"  node signatures only in left:  {dict(only_left)}")
    if only_right:
        lines.append(f"  node signatures only in right: {dict(only_right)}")
    only_left_rels = left_rels - right_rels
    only_right_rels = right_rels - left_rels
    if only_left_rels:
        lines.append(f"  rel signatures only in left:  {dict(only_left_rels)}")
    if only_right_rels:
        lines.append(f"  rel signatures only in right: {dict(only_right_rels)}")
    raise AssertionError("\n".join(lines))
