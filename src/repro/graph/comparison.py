"""Graph comparison: equality up to id renaming.

The revised MERGE semantics is deterministic only *up to id renaming*
(Section 8: "the output graph-table pairs are the same up to id
renaming").  Verifying the paper's determinism claims -- e.g. that
Example 3 under MERGE SAME yields Figure 6b no matter how the driving
table is ordered -- therefore requires deciding property-graph
isomorphism with label/type/property-preserving bijections.

Graphs in this reproduction are small (the paper's figures have at most
a dozen nodes; the scaling benchmarks compare only counts), so we use
:mod:`networkx`'s VF2 matcher over content signatures, with a cheap
Weisfeiler-Lehman fingerprint as a fast-path filter.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any

from repro.graph.model import GraphSnapshot

# networkx is imported lazily inside the functions that need it so the
# signature helpers below stay dependency-free (the core runtime keys
# driving-table records with value_signature).


def to_networkx(snapshot: GraphSnapshot) -> "nx.MultiDiGraph":
    """Convert a snapshot to a MultiDiGraph with content signatures.

    Each node gets a ``sig`` attribute (labels + sorted properties) and
    each edge a ``sig`` attribute (type + sorted properties), so that
    categorical matching on ``sig`` decides property-graph isomorphism.
    Dangling relationships (legacy states) keep their missing endpoint
    as an extra node marked with a ``dangling`` signature.
    """
    import networkx as nx

    graph = nx.MultiDiGraph()
    for node_id in snapshot.nodes:
        graph.add_node(node_id, sig=snapshot.node_signature(node_id))
    for rel_id in snapshot.relationships:
        source = snapshot.source[rel_id]
        target = snapshot.target[rel_id]
        for endpoint in (source, target):
            if endpoint not in graph:
                graph.add_node(endpoint, sig=("<deleted>",))
        graph.add_edge(source, target, key=rel_id, sig=snapshot.rel_signature(rel_id))
    return graph


def fingerprint(snapshot: GraphSnapshot) -> str:
    """A content hash invariant under id renaming.

    Two isomorphic graphs always share a fingerprint; unequal
    fingerprints prove non-isomorphism.  (Equal fingerprints are almost
    always isomorphic but are confirmed with :func:`isomorphic`.)
    """
    import networkx as nx

    multi = to_networkx(snapshot)
    # The WL hash works on simple graphs with string attributes, so
    # bundle parallel edges into one edge labeled with the sorted
    # multiset of their signatures.
    graph = nx.DiGraph()
    for node, data in multi.nodes(data=True):
        graph.add_node(node, sig_str=repr(data["sig"]))
    bundles: dict[tuple, list] = {}
    for source, target, data in multi.edges(data=True):
        bundles.setdefault((source, target), []).append(data["sig"])
    for (source, target), sigs in bundles.items():
        graph.add_edge(source, target, sig_str=repr(sorted(map(repr, sigs))))
    return nx.weisfeiler_lehman_graph_hash(
        graph, node_attr="sig_str", edge_attr="sig_str"
    )


def isomorphic(left: GraphSnapshot, right: GraphSnapshot) -> bool:
    """True iff the two graphs are equal up to id renaming."""
    if left.order() != right.order() or left.size() != right.size():
        return False
    if signature_counts(left) != signature_counts(right):
        return False
    try:
        import networkx as nx
    except ImportError:
        # The graphs decided here are small (paper figures, fuzz
        # cases), so an exact backtracking search suffices where
        # networkx is not installed (e.g. the CI fuzz smoke job).
        return _isomorphic_backtracking(left, right)
    matcher = nx.algorithms.isomorphism.MultiDiGraphMatcher(
        to_networkx(left),
        to_networkx(right),
        node_match=lambda a, b: a["sig"] == b["sig"],
        edge_match=_edge_multiset_match,
    )
    return matcher.is_isomorphic()


def _bundled(snapshot: GraphSnapshot):
    """``(node sigs, edge bundles)``: the categorical matching inputs.

    Mirrors :func:`to_networkx`: dangling endpoints become nodes with a
    ``("<deleted>",)`` signature, and parallel edges bundle into a
    multiset of relationship signatures per (source, target) pair.
    """
    sigs = {
        node_id: snapshot.node_signature(node_id)
        for node_id in snapshot.nodes
    }
    bundles: dict[tuple[int, int], Counter] = {}
    for rel_id in snapshot.relationships:
        source = snapshot.source[rel_id]
        target = snapshot.target[rel_id]
        for endpoint in (source, target):
            sigs.setdefault(endpoint, ("<deleted>",))
        bundles.setdefault((source, target), Counter())[
            snapshot.rel_signature(rel_id)
        ] += 1
    return sigs, bundles


def _isomorphic_backtracking(
    left: GraphSnapshot, right: GraphSnapshot
) -> bool:
    """Exact sig-preserving bijection search (no dependencies)."""
    left_sigs, left_bundles = _bundled(left)
    right_sigs, right_bundles = _bundled(right)
    if Counter(left_sigs.values()) != Counter(right_sigs.values()):
        return False
    candidates = {
        node: [
            other for other, sig in right_sigs.items()
            if sig == left_sigs[node]
        ]
        for node in left_sigs
    }
    # Most-constrained first keeps the search shallow.
    order = sorted(candidates, key=lambda node: len(candidates[node]))
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def consistent(node: int, image: int) -> bool:
        for (source, target), bundle in left_bundles.items():
            if source == node and target in mapping:
                if right_bundles.get((image, mapping[target])) != bundle:
                    return False
            if target == node and source in mapping:
                if right_bundles.get((mapping[source], image)) != bundle:
                    return False
            if source == node and target == node:
                if right_bundles.get((image, image)) != bundle:
                    return False
        return True

    def extend(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        for image in candidates[node]:
            if image in used or not consistent(node, image):
                continue
            mapping[node] = image
            used.add(image)
            if extend(index + 1):
                return True
            del mapping[node]
            used.discard(image)
        return False

    if not extend(0):
        return False
    # The bijection preserves every left bundle; equal edge counts then
    # force the reverse direction too.
    return True


def _edge_multiset_match(left_edges: dict, right_edges: dict) -> bool:
    """Match parallel-edge bundles as multisets of signatures."""
    left_sigs = Counter(data["sig"] for data in left_edges.values())
    right_sigs = Counter(data["sig"] for data in right_edges.values())
    return left_sigs == right_sigs


def signature_counts(snapshot: GraphSnapshot) -> tuple[Counter, Counter]:
    """Multisets of node and relationship content signatures.

    A cheap isomorphism invariant used both as a filter and to produce
    readable diffs in assertion messages.
    """
    node_sigs = Counter(
        snapshot.node_signature(n) for n in snapshot.nodes
    )
    rel_sigs = Counter(
        (
            snapshot.rel_signature(r),
            snapshot.node_signature(snapshot.source[r])
            if snapshot.source[r] in snapshot.nodes
            else ("<deleted>",),
            snapshot.node_signature(snapshot.target[r])
            if snapshot.target[r] in snapshot.nodes
            else ("<deleted>",),
        )
        for r in snapshot.relationships
    )
    return node_sigs, rel_sigs


def describe(snapshot: GraphSnapshot) -> str:
    """Human-readable one-line description (counts + signature summary)."""
    node_sigs, rel_sigs = signature_counts(snapshot)
    labels = Counter()
    for (label_tuple, __), count in node_sigs.items():
        labels[label_tuple or ("<none>",)] += count
    label_text = ", ".join(
        f"{'|'.join(label)}x{count}" for label, count in sorted(labels.items())
    )
    return (
        f"{snapshot.order()} nodes ({label_text}), "
        f"{snapshot.size()} relationships"
    )


def assert_isomorphic(left: GraphSnapshot, right: GraphSnapshot) -> None:
    """Assert isomorphism with a diff-style failure message."""
    if isomorphic(left, right):
        return
    left_nodes, left_rels = signature_counts(left)
    right_nodes, right_rels = signature_counts(right)
    lines = ["graphs are not isomorphic:"]
    lines.append(f"  left:  {describe(left)}")
    lines.append(f"  right: {describe(right)}")
    only_left = left_nodes - right_nodes
    only_right = right_nodes - left_nodes
    if only_left:
        lines.append(f"  node signatures only in left:  {dict(only_left)}")
    if only_right:
        lines.append(f"  node signatures only in right: {dict(only_right)}")
    only_left_rels = left_rels - right_rels
    only_right_rels = right_rels - left_rels
    if only_left_rels:
        lines.append(f"  rel signatures only in left:  {dict(only_left_rels)}")
    if only_right_rels:
        lines.append(f"  rel signatures only in right: {dict(only_right_rels)}")
    raise AssertionError("\n".join(lines))


def value_signature(value: Any) -> str:
    """A total, canonical string signature for any runtime value.

    Unlike :func:`~repro.graph.values.grouping_key`, this never raises:
    every value -- including exotic or unhashable ones -- gets a
    deterministic signature.  Numbers are normalised the way grouping
    does (``1`` and ``1.0`` coincide), entities are keyed by id, and
    containers recurse, so two values with equal grouping keys always
    share a signature.  Used by ``DrivingTable`` record keying.
    """
    from repro.graph.model import Node, Path, Relationship

    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if isinstance(value, float):
            if math.isnan(value):
                return "num:nan"
            if math.isinf(value):
                return "num:inf" if value > 0 else "num:-inf"
            if value.is_integer():
                return f"num:{int(value)}"
        return f"num:{value!r}"
    if isinstance(value, str):
        return f"str:{value}"
    if isinstance(value, Node):
        return f"node:{value.id}"
    if isinstance(value, Relationship):
        return f"rel:{value.id}"
    if isinstance(value, Path):
        nodes = ",".join(str(n.id) for n in value.nodes)
        rels = ",".join(str(r.id) for r in value.relationships)
        return f"path:[{nodes}]/[{rels}]"
    if isinstance(value, (list, tuple)):
        return "list:[" + ",".join(value_signature(v) for v in value) + "]"
    if isinstance(value, dict):
        items = ",".join(
            f"{key!r}:{value_signature(value[key])}"
            for key in sorted(value, key=repr)
        )
        return "map:{" + items + "}"
    try:
        return f"{type(value).__name__}:{value!r}"
    except Exception:
        return f"{type(value).__name__}:<unreprable>"
