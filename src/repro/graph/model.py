"""Property graph data model.

The paper formalizes a property graph as a tuple
``G = <N, R, src, tgt, iota, lambda, tau>`` where ``N`` and ``R`` are
sets of node and relationship ids, ``src``/``tgt`` give relationship
endpoints, ``lambda`` maps nodes to label sets, ``tau`` maps
relationships to their (single, mandatory) type, and ``iota`` maps
(entity, key) pairs to property values with ``iota(x, k) = null``
encoding absence.

This module provides two representations of that tuple:

* :class:`Node`, :class:`Relationship` and :class:`Path` -- lightweight
  *handles* pointing into a mutable :class:`repro.graph.store.GraphStore`.
  These are the values that flow through driving tables and are returned
  to users.

* :class:`GraphSnapshot` -- an immutable, store-independent copy of the
  whole tuple.  Snapshots are what the formal reference semantics in
  :mod:`repro.formal` operates on, and what graph comparison (equality
  up to id renaming) is defined over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.store import GraphStore


class Node:
    """Handle to a node in a :class:`GraphStore`.

    Handles are cheap, compare by id, and always reflect the *current*
    state of the store (so a handle held across an update sees the
    update).  A handle to a deleted node keeps working in the degraded
    way the legacy dialect requires: no labels, no properties.
    """

    __slots__ = ("_store", "_id")

    def __init__(self, store: "GraphStore", node_id: int):
        self._store = store
        self._id = node_id

    @property
    def id(self) -> int:
        """The store-assigned node id."""
        return self._id

    @property
    def graph(self) -> "GraphStore":
        """The store this handle points into."""
        return self._store

    @property
    def labels(self) -> frozenset[str]:
        """The node's label set (empty for deleted nodes)."""
        return self._store.node_labels(self._id)

    @property
    def properties(self) -> Mapping[str, Any]:
        """Read-only view of the node's property map."""
        return MappingProxyType(self._store.node_properties(self._id))

    @property
    def is_deleted(self) -> bool:
        """True if the node has been deleted from the store."""
        return self._store.node_is_deleted(self._id)

    def get(self, key: str, default: Any = None) -> Any:
        """Property lookup; missing keys yield *default* (Cypher null)."""
        return self._store.node_properties(self._id).get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.get(key)

    def has_label(self, label: str) -> bool:
        """True if the node currently carries *label*."""
        return label in self.labels

    def degree(self) -> int:
        """Total number of attached relationships."""
        return self._store.degree(self._id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Node)
            and other._id == self._id
            and other._store is self._store
        )

    def __hash__(self) -> int:
        return hash(("node", self._id))

    def __repr__(self) -> str:
        labels = "".join(f":{label}" for label in sorted(self.labels))
        props = dict(self.properties)
        inner = f"#{self._id}{labels}"
        if props:
            inner += f" {props!r}"
        return f"({inner})"


class Relationship:
    """Handle to a relationship in a :class:`GraphStore`."""

    __slots__ = ("_store", "_id")

    def __init__(self, store: "GraphStore", rel_id: int):
        self._store = store
        self._id = rel_id

    @property
    def id(self) -> int:
        """The store-assigned relationship id."""
        return self._id

    @property
    def graph(self) -> "GraphStore":
        """The store this handle points into."""
        return self._store

    @property
    def type(self) -> str:
        """The relationship type (tau)."""
        return self._store.rel_type(self._id)

    @property
    def start(self) -> Node:
        """Source node handle (src)."""
        return Node(self._store, self._store.rel_source(self._id))

    @property
    def end(self) -> Node:
        """Target node handle (tgt)."""
        return Node(self._store, self._store.rel_target(self._id))

    @property
    def properties(self) -> Mapping[str, Any]:
        """Read-only view of the relationship's property map."""
        return MappingProxyType(self._store.rel_properties(self._id))

    @property
    def is_deleted(self) -> bool:
        """True if the relationship has been deleted from the store."""
        return self._store.rel_is_deleted(self._id)

    def get(self, key: str, default: Any = None) -> Any:
        """Property lookup; missing keys yield *default*."""
        return self._store.rel_properties(self._id).get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.get(key)

    def other_end(self, node: Node) -> Node:
        """The endpoint that is not *node* (loops return *node*)."""
        source = self._store.rel_source(self._id)
        target = self._store.rel_target(self._id)
        return Node(self._store, target if node.id == source else source)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relationship)
            and other._id == self._id
            and other._store is self._store
        )

    def __hash__(self) -> int:
        return hash(("rel", self._id))

    def __repr__(self) -> str:
        props = dict(self.properties)
        inner = f"#{self._id}:{self.type}"
        if props:
            inner += f" {props!r}"
        return f"-[{inner}]->"


class Path:
    """An alternating sequence node, rel, node, ..., node.

    Paths are produced by named path patterns (``p = (a)-[r]->(b)``)
    and consumed by ``nodes()``, ``relationships()`` and ``length()``.
    """

    __slots__ = ("_nodes", "_relationships")

    def __init__(self, nodes: list[Node], relationships: list[Relationship]):
        if len(nodes) != len(relationships) + 1:
            raise ValueError(
                "a path of k relationships must have k+1 nodes, got "
                f"{len(nodes)} nodes and {len(relationships)} relationships"
            )
        self._nodes = tuple(nodes)
        self._relationships = tuple(relationships)

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes along the path, in order."""
        return self._nodes

    @property
    def relationships(self) -> tuple[Relationship, ...]:
        """All relationships along the path, in order."""
        return self._relationships

    @property
    def start(self) -> Node:
        """First node of the path."""
        return self._nodes[0]

    @property
    def end(self) -> Node:
        """Last node of the path."""
        return self._nodes[-1]

    def __len__(self) -> int:
        return len(self._relationships)

    def grouping_key(self) -> tuple:
        """Hashable identity key used for grouping and sorting."""
        return (
            tuple(n.id for n in self._nodes),
            tuple(r.id for r in self._relationships),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Path)
            and other.grouping_key() == self.grouping_key()
        )

    def __hash__(self) -> int:
        return hash(("path", self.grouping_key()))

    def __repr__(self) -> str:
        parts = [repr(self._nodes[0])]
        for rel, node in zip(self._relationships, self._nodes[1:]):
            parts.append(repr(rel))
            parts.append(repr(node))
        return "".join(parts)


def _frozen_value(value: Any) -> Any:
    """A hashable stand-in for a property value (lists/maps nest)."""
    if isinstance(value, list):
        return ("__list__",) + tuple(_frozen_value(item) for item in value)
    if isinstance(value, dict):
        return ("__map__",) + tuple(
            sorted((key, _frozen_value(item)) for key, item in value.items())
        )
    return value


@dataclass(frozen=True)
class GraphSnapshot:
    """An immutable copy of the formal tuple <N, R, src, tgt, iota, lambda, tau>.

    ``node_properties`` and ``rel_properties`` store only the *defined*
    keys; iota(x, k) = null for any absent key.  Snapshots are hashable
    by content (via :meth:`canonical_form`) and independent of any
    store, which makes them suitable for the pure reference semantics
    and for asserting determinism (same output up to id renaming).
    """

    nodes: frozenset[int]
    relationships: frozenset[int]
    source: Mapping[int, int] = field(default_factory=dict)
    target: Mapping[int, int] = field(default_factory=dict)
    labels: Mapping[int, frozenset[str]] = field(default_factory=dict)
    types: Mapping[int, str] = field(default_factory=dict)
    node_properties: Mapping[int, Mapping[str, Any]] = field(default_factory=dict)
    rel_properties: Mapping[int, Mapping[str, Any]] = field(default_factory=dict)

    def order(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def size(self) -> int:
        """Number of relationships."""
        return len(self.relationships)

    def node_signature(self, node_id: int) -> tuple:
        """Content signature of a node: (sorted labels, sorted properties)."""
        labels = tuple(sorted(self.labels.get(node_id, frozenset())))
        props = tuple(
            sorted(
                (key, _frozen_value(value))
                for key, value in self.node_properties.get(
                    node_id, {}
                ).items()
            )
        )
        return (labels, props)

    def rel_signature(self, rel_id: int) -> tuple:
        """Content signature of a relationship (excluding endpoints)."""
        props = tuple(
            sorted(
                (key, _frozen_value(value))
                for key, value in self.rel_properties.get(rel_id, {}).items()
            )
        )
        return (self.types[rel_id], props)

    def out_relationships(self, node_id: int) -> Iterator[int]:
        """Ids of relationships with source *node_id* (linear scan)."""
        return (r for r in self.relationships if self.source[r] == node_id)

    def in_relationships(self, node_id: int) -> Iterator[int]:
        """Ids of relationships with target *node_id* (linear scan)."""
        return (r for r in self.relationships if self.target[r] == node_id)

    def has_dangling(self) -> bool:
        """True if any relationship endpoint is not a node of the graph.

        A well-formed property graph never has dangling relationships;
        the legacy dialect can produce intermediate states where this
        returns True (Section 4.2 of the paper).
        """
        return any(
            self.source[r] not in self.nodes or self.target[r] not in self.nodes
            for r in self.relationships
        )
