"""Secondary indexes over the graph store.

Two index kinds back the pattern matcher's candidate selection:

* :class:`LabelIndex` -- label -> set of node ids.  Always maintained;
  this is what makes ``MATCH (n:Product)`` skip unlabeled nodes.

* :class:`PropertyIndex` -- (label, key) -> value -> set of node ids.
  Created on demand via :meth:`repro.graph.store.GraphStore.create_index`,
  mirroring how a production engine would let MERGE-heavy import
  workloads avoid full label scans (the CSV-import use case the paper's
  user survey highlights).

Index value keys use :func:`repro.graph.values.grouping_key` so that
1 and 1.0 share a bucket, consistently with equivalence.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.graph.counters import NO_COUNTERS, HitCounters
from repro.graph.values import grouping_key, is_storable


class LabelIndex:
    """Maps each label to the set of live node ids carrying it."""

    def __init__(self) -> None:
        self._by_label: dict[str, set[int]] = {}
        #: db-hit hooks, routed by GraphStore.install_counters
        self.counters: HitCounters = NO_COUNTERS

    def add(self, node_id: int, labels: Iterable[str]) -> None:
        """Register *node_id* under every label in *labels*."""
        for label in labels:
            self._by_label.setdefault(label, set()).add(node_id)

    def add_many(self, node_ids: Iterable[int], labels: Iterable[str]) -> None:
        """Register a batch of node ids under every label in *labels*.

        Bulk-load fast path: one C-level ``set.update`` per label
        instead of a Python-level ``add`` per (node, label) pair.
        """
        for label in labels:
            self._by_label.setdefault(label, set()).update(node_ids)

    def remove(self, node_id: int, labels: Iterable[str]) -> None:
        """Unregister *node_id* from every label in *labels*."""
        for label in labels:
            bucket = self._by_label.get(label)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del self._by_label[label]

    def nodes_with_label(self, label: str) -> frozenset[int]:
        """Ids of live nodes carrying *label* (empty set if none)."""
        self.counters.index_lookup()
        return frozenset(self._by_label.get(label, ()))

    def labels(self) -> Iterator[str]:
        """All labels with at least one live node."""
        return iter(self._by_label)

    def count(self, label: str) -> int:
        """Number of live nodes carrying *label*."""
        return len(self._by_label.get(label, ()))


class PropertyIndex:
    """A (label, key) index: property value -> set of node ids.

    Only nodes that carry the label *and* define the key appear; a node
    whose property is absent (iota = null) is deliberately not indexed,
    since ``{key: null}`` map patterns never match anyway.
    """

    def __init__(self, label: str, key: str):
        self.label = label
        self.key = key
        self._by_value: dict[Any, set[int]] = {}
        #: reverse map so updates need not know the old value
        self._value_of: dict[int, Any] = {}
        #: db-hit hooks, routed by GraphStore.install_counters
        self.counters: HitCounters = NO_COUNTERS

    def add(self, node_id: int, value: Any) -> None:
        """Index *node_id* under *value* (no-op for unstorable values)."""
        if value is None or not is_storable(value):
            return
        self.discard(node_id)
        bucket_key = grouping_key(value)
        self._by_value.setdefault(bucket_key, set()).add(node_id)
        self._value_of[node_id] = bucket_key

    def discard(self, node_id: int) -> None:
        """Remove *node_id* from the index if present."""
        bucket_key = self._value_of.pop(node_id, None)
        if bucket_key is None:
            return
        bucket = self._by_value.get(bucket_key)
        if bucket is not None:
            bucket.discard(node_id)
            if not bucket:
                del self._by_value[bucket_key]

    def lookup(self, value: Any) -> frozenset[int]:
        """Ids of nodes whose property equals *value* (equivalence)."""
        self.counters.index_lookup()
        if value is None:
            return frozenset()
        return frozenset(self._by_value.get(grouping_key(value), ()))

    def bucket_of(self, node_id: int) -> frozenset[int]:
        """All node ids sharing *node_id*'s indexed value (incl. itself)."""
        bucket_key = self._value_of.get(node_id)
        if bucket_key is None:
            return frozenset()
        return frozenset(self._by_value.get(bucket_key, ()))

    def bucket_size(self, value: Any) -> int:
        """Size of *value*'s bucket, without counting a db-hit.

        The planner's selectivity estimate -- unlike :meth:`lookup`
        this is a statistic read, not a probe, so it leaves the
        ``index_lookups`` counter alone.
        """
        if value is None:
            return 0
        return len(self._by_value.get(grouping_key(value), ()))

    def bucket_count(self) -> int:
        """Number of distinct indexed values."""
        return len(self._by_value)

    def average_bucket_size(self) -> float:
        """Expected candidate count of a probe with an unknown value.

        ``entries / distinct values`` -- 1.0 for a unique-ish index,
        larger when values repeat, 0.0 for an empty index.  No db-hit:
        this is a statistic, not a lookup.
        """
        if not self._by_value:
            return 0.0
        return len(self._value_of) / len(self._by_value)

    def duplicate_buckets(self) -> list[frozenset[int]]:
        """All value buckets containing more than one node."""
        return [
            frozenset(bucket)
            for bucket in self._by_value.values()
            if len(bucket) > 1
        ]

    def __len__(self) -> int:
        return len(self._value_of)

    def __repr__(self) -> str:
        return f"PropertyIndex(:{self.label}({self.key}), {len(self)} entries)"
