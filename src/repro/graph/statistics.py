"""Descriptive statistics over a graph store or snapshot.

Used by the workload generators (to sanity-check generated graphs), by
the benchmark harness (to report workload sizes next to timings), and
available to users for quick inspection.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.graph.model import GraphSnapshot
from repro.graph.store import GraphStore


@dataclass(frozen=True)
class GraphStatistics:
    """Summary counts of a property graph."""

    node_count: int
    relationship_count: int
    labels: Mapping[str, int] = field(default_factory=dict)
    relationship_types: Mapping[str, int] = field(default_factory=dict)
    node_property_keys: Mapping[str, int] = field(default_factory=dict)
    rel_property_keys: Mapping[str, int] = field(default_factory=dict)
    degree_histogram: Mapping[int, int] = field(default_factory=dict)

    @property
    def average_degree(self) -> float:
        """Mean total degree over all nodes (0.0 for an empty graph)."""
        if not self.node_count:
            return 0.0
        return 2.0 * self.relationship_count / self.node_count

    @property
    def max_degree(self) -> int:
        """Largest total degree of any node."""
        return max(self.degree_histogram, default=0)

    def summary(self) -> str:
        """A compact multi-line human-readable report."""
        lines = [
            f"nodes: {self.node_count}",
            f"relationships: {self.relationship_count}",
            f"average degree: {self.average_degree:.2f}",
        ]
        if self.labels:
            label_text = ", ".join(
                f":{label} x{count}"
                for label, count in sorted(self.labels.items())
            )
            lines.append(f"labels: {label_text}")
        if self.relationship_types:
            type_text = ", ".join(
                f":{rtype} x{count}"
                for rtype, count in sorted(self.relationship_types.items())
            )
            lines.append(f"relationship types: {type_text}")
        return "\n".join(lines)


def collect_statistics(graph: GraphStore | GraphSnapshot) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for a store or snapshot."""
    snapshot = graph.snapshot() if isinstance(graph, GraphStore) else graph
    labels: Counter[str] = Counter()
    node_keys: Counter[str] = Counter()
    for node_id in snapshot.nodes:
        labels.update(snapshot.labels.get(node_id, frozenset()))
        node_keys.update(snapshot.node_properties.get(node_id, {}).keys())
    rel_types: Counter[str] = Counter()
    rel_keys: Counter[str] = Counter()
    degrees: Counter[int] = Counter({node_id: 0 for node_id in snapshot.nodes})
    for rel_id in snapshot.relationships:
        rel_types[snapshot.types[rel_id]] += 1
        rel_keys.update(snapshot.rel_properties.get(rel_id, {}).keys())
        for endpoint in (snapshot.source[rel_id], snapshot.target[rel_id]):
            if endpoint in degrees:
                degrees[endpoint] += 1
    histogram: Counter[int] = Counter(degrees.values()) if degrees else Counter()
    return GraphStatistics(
        node_count=snapshot.order(),
        relationship_count=snapshot.size(),
        labels=dict(labels),
        relationship_types=dict(rel_types),
        node_property_keys=dict(node_keys),
        rel_property_keys=dict(rel_keys),
        degree_histogram=dict(histogram),
    )
