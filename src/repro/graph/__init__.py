"""Property-graph substrate: values, model, store, indexes, comparison."""

from repro.graph.model import GraphSnapshot, Node, Path, Relationship
from repro.graph.store import GraphStore

__all__ = [
    "GraphSnapshot",
    "GraphStore",
    "Node",
    "Path",
    "Relationship",
]
