"""The mutable property-graph store.

:class:`GraphStore` owns all node and relationship records, maintains
adjacency and indexes, and provides the two features the paper's update
semantics needs from a storage layer:

* an **undo journal** giving statement-level atomicity: every mutation
  appends its inverse, :meth:`mark` / :meth:`rollback_to` bracket a
  statement, and a failed statement (e.g. a revised-dialect
  :class:`~repro.errors.PropertyConflictError`) leaves the graph
  untouched;

* **tombstones and a dangling mode** emulating the legacy Cypher 9
  behaviour of Section 4.2: a node may be deleted while relationships
  still point at it, the handle of a deleted node reports no labels and
  no properties, and later writes to it are rejected (the engine's
  legacy dialect turns that rejection into a silent no-op).

Deleted records are retained (with a tombstone flag) so that handles in
driving tables keep resolving and so rollback can resurrect them.

Storage layout
--------------

Entity ids are dense non-negative integers, so records live in
**columns indexed by id** rather than dicts of per-record objects:

* node labels are dictionary-encoded: each distinct label *set* is
  interned once (as a bitmask over :class:`~repro.graph.strings.StringPool`
  ids plus a shared ``frozenset`` of the label strings) and every node
  stores only a 4-byte label-set id in an ``array('i')``;
* relationship type / source / target are ``array('i')`` /
  ``array('q')`` / ``array('q')`` columns; tombstone flags are one byte
  per entity in a ``bytearray``;
* property maps stay ordinary dicts (they are the mutable, schemaless
  part), but their keys are canonicalised through the pool so
  homogeneous records share key objects, and the dict is allocated
  lazily (``None`` until the first property);
* adjacency is one :class:`_AdjacencyHalf` per (node, direction): a
  flat ``array('q')`` of live relationship ids grouped by type with a
  per-type offset table, each group kept id-sorted.  Typed expansion
  reads one contiguous slice; untyped reads the whole array; deleting
  the last relationship of a type removes its group entirely (no empty
  buckets linger).

A hole (an id that was never allocated, or whose creation was undone)
is encoded as ``-1`` in the label-set / type column.  Ids are never
reused, so columns only ever grow.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from repro.errors import (
    ConstraintViolationError,
    DanglingRelationshipError,
    DeletedEntityError,
    EntityNotFoundError,
    PersistenceError,
)
from repro.graph.counters import NO_COUNTERS, HitCounters
from repro.graph.indexes import LabelIndex, PropertyIndex
from repro.graph.model import GraphSnapshot, Node, Relationship
from repro.graph.strings import StringPool
from repro.graph.values import grouping_key, is_storable, require_storable

_MISSING = object()

#: column hole marker: this id was never allocated (or was rolled back)
_HOLE = -1


class _AdjacencyHalf:
    """Grouped adjacency for one node and one direction.

    ``rels`` is a flat ``array('q')`` of *live* relationship ids,
    grouped by type: group *g* holds type ``types[g]`` and spans
    ``rels[offsets[g]:offsets[g + 1]]``, sorted ascending.  Groups
    appear in first-seen order; a group whose last relationship is
    removed is compacted away immediately.
    """

    __slots__ = ("types", "offsets", "rels")

    def __init__(self) -> None:
        self.types = array("i")
        self.offsets = array("q", (0,))
        self.rels = array("q")

    def add(self, type_id: int, rel_id: int) -> None:
        """Insert *rel_id* into the *type_id* group (idempotent)."""
        types = self.types
        offsets = self.offsets
        rels = self.rels
        # Tail fast path: a new relationship id is larger than every
        # existing one, so creation usually appends to the last group.
        if types and types[-1] == type_id and rels[-1] <= rel_id:
            if rels[-1] != rel_id:
                rels.append(rel_id)
                offsets[-1] += 1
            return
        for group, existing in enumerate(types):
            if existing == type_id:
                low, high = offsets[group], offsets[group + 1]
                position = bisect_left(rels, rel_id, low, high)
                if position < high and rels[position] == rel_id:
                    return
                rels.insert(position, rel_id)
                for index in range(group + 1, len(offsets)):
                    offsets[index] += 1
                return
        types.append(type_id)
        rels.append(rel_id)
        offsets.append(len(rels))

    def discard(self, type_id: int, rel_id: int) -> None:
        """Remove *rel_id* from the *type_id* group; drop empty groups."""
        types = self.types
        offsets = self.offsets
        rels = self.rels
        for group, existing in enumerate(types):
            if existing == type_id:
                low, high = offsets[group], offsets[group + 1]
                position = bisect_left(rels, rel_id, low, high)
                if position >= high or rels[position] != rel_id:
                    return
                del rels[position]
                for index in range(group + 1, len(offsets)):
                    offsets[index] -= 1
                if offsets[group] == offsets[group + 1]:
                    del types[group]
                    del offsets[group + 1]
                return

    def degree(self) -> int:
        return len(self.rels)

    def typed_degree(self, type_id: int) -> int:
        offsets = self.offsets
        for group, existing in enumerate(self.types):
            if existing == type_id:
                return offsets[group + 1] - offsets[group]
        return 0

    def extend_all(self, out: list[int]) -> None:
        out.extend(self.rels)

    def extend_type(self, type_id: int, out: list[int]) -> None:
        offsets = self.offsets
        for group, existing in enumerate(self.types):
            if existing == type_id:
                out.extend(self.rels[offsets[group]:offsets[group + 1]])
                return

    def groups(self) -> Iterator[tuple[int, list[int]]]:
        """(type id, sorted rel ids) per group -- diagnostics/oracle."""
        offsets = self.offsets
        for group, type_id in enumerate(self.types):
            yield type_id, list(
                self.rels[offsets[group]:offsets[group + 1]]
            )


class GraphStore:
    """In-memory property graph with journaled mutations."""

    def __init__(self) -> None:
        #: shared intern table for labels, types and property keys
        self._strings = StringPool()
        #: dictionary-encoded label sets: id -> bitmask over string ids
        #: and id -> shared frozenset of label strings; mask -> id
        self._labelset_masks: list[int] = [0]
        self._labelset_strings: list[frozenset[str]] = [frozenset()]
        self._labelset_ids: dict[int, int] = {0: 0}
        #: node columns, indexed by node id (_HOLE = no such node)
        self._node_labelsets = array("i")
        self._node_props: list[dict[str, Any] | None] = []
        self._node_deleted = bytearray()
        #: relationship columns, indexed by rel id (_HOLE = no such rel)
        self._rel_types = array("i")
        self._rel_source = array("q")
        self._rel_target = array("q")
        self._rel_props: list[dict[str, Any] | None] = []
        self._rel_deleted = bytearray()
        #: grouped adjacency arrays, one half per (node, direction);
        #: allocated on a node's first relationship
        self._adj_out: list[_AdjacencyHalf | None] = []
        self._adj_in: list[_AdjacencyHalf | None] = []
        self._next_node_id = 0
        self._next_rel_id = 0
        #: live-entity counters, maintained by every mutation and undo
        #: so the match planner's cardinality estimates are O(1)
        self._live_nodes = 0
        self._live_rels = 0
        self._label_index = LabelIndex()
        self._property_indexes: dict[tuple[str, str], PropertyIndex] = {}
        #: (label, key) pairs under a uniqueness constraint
        self._unique_constraints: set[tuple[str, str]] = set()
        #: undo journal: list of (op, *payload) tuples, applied in reverse
        self._journal: list[tuple] = []
        #: db-hit hooks; the shared no-op singleton unless profiling
        self.counters: HitCounters = NO_COUNTERS
        #: statement-commit hook (write-ahead log); called with the
        #: redo-op list of every committed statement / schema change
        self._commit_hook = None
        #: secondary commit observers (incremental view maintenance);
        #: called with ``(lsn, ops)`` after the hook, and -- unlike the
        #: hook -- never cause journal truncation
        self._commit_observers: list = []
        #: logical commit sequence number: bumped once per committed
        #: statement (or transaction) that changed anything
        self._lsn = 0
        #: open multi-statement transaction depth; while > 0 the
        #: per-statement commit defers to the transaction commit
        self._tx_depth = 0
        #: nesting depth of :meth:`reverted_to` snapshot-read brackets
        self._revert_depth = 0

    # ------------------------------------------------------------------
    # Profiling hooks
    # ------------------------------------------------------------------

    def install_counters(self, counters: HitCounters) -> None:
        """Route db-hit hooks (store + all indexes) to *counters*."""
        self.counters = counters
        self._label_index.counters = counters
        for index in self._property_indexes.values():
            index.counters = counters

    def reset_counters(self) -> None:
        """Restore the shared no-op counters (profiling off)."""
        self.install_counters(NO_COUNTERS)

    # ------------------------------------------------------------------
    # String interning
    # ------------------------------------------------------------------

    @property
    def string_pool(self) -> StringPool:
        """The shared label/type/property-key intern table."""
        return self._strings

    def _labelset_id(self, mask: int) -> int:
        """The label-set id for *mask*, interning the set if new."""
        labelset = self._labelset_ids.get(mask)
        if labelset is None:
            labelset = len(self._labelset_masks)
            self._labelset_ids[mask] = labelset
            self._labelset_masks.append(mask)
            text = self._strings.text
            labels = []
            remaining = mask
            while remaining:
                low = remaining & -remaining
                labels.append(text(low.bit_length() - 1))
                remaining ^= low
            self._labelset_strings.append(frozenset(labels))
        return labelset

    def _mask_of(self, labels: Iterable[str]) -> int:
        intern = self._strings.intern
        mask = 0
        for label in labels:
            mask |= 1 << intern(label)
        return mask

    def _canon_properties(
        self, properties: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        """Validated copy of *properties* with pooled key objects."""
        if not properties:
            return None
        canon = self._strings.canon
        copied: dict[str, Any] = {}
        for key, value in properties.items():
            require_storable(value, key)
            copied[canon(key)] = value
        return copied

    def _type_ids(self, types: tuple[str, ...]) -> list[int]:
        """Pool ids of *types*, skipping types never seen (no matches)."""
        id_of = self._strings.id_of
        ids = []
        for rel_type in types:
            type_id = id_of(rel_type)
            if type_id is not None:
                ids.append(type_id)
        return ids

    # ------------------------------------------------------------------
    # Record access helpers
    # ------------------------------------------------------------------

    def _require_node(self, node_id: int) -> int:
        """The label-set id of *node_id*, or EntityNotFoundError."""
        labelsets = self._node_labelsets
        if 0 <= node_id < len(labelsets):
            labelset = labelsets[node_id]
            if labelset != _HOLE:
                return labelset
        raise EntityNotFoundError(f"no node with id {node_id}")

    def _require_rel(self, rel_id: int) -> int:
        """The type id of *rel_id*, or EntityNotFoundError."""
        types = self._rel_types
        if 0 <= rel_id < len(types):
            type_id = types[rel_id]
            if type_id != _HOLE:
                return type_id
        raise EntityNotFoundError(f"no relationship with id {rel_id}")

    def _node_exists(self, node_id: int) -> bool:
        return (
            0 <= node_id < len(self._node_labelsets)
            and self._node_labelsets[node_id] != _HOLE
        )

    def _rel_exists(self, rel_id: int) -> bool:
        return (
            0 <= rel_id < len(self._rel_types)
            and self._rel_types[rel_id] != _HOLE
        )

    def _ensure_node_capacity(self, length: int) -> None:
        grow = length - len(self._node_labelsets)
        if grow > 0:
            self._node_labelsets.extend([_HOLE] * grow)
            self._node_props.extend([None] * grow)
            self._node_deleted.extend(b"\x00" * grow)
            self._adj_out.extend([None] * grow)
            self._adj_in.extend([None] * grow)

    def _ensure_rel_capacity(self, length: int) -> None:
        grow = length - len(self._rel_types)
        if grow > 0:
            self._rel_types.extend([_HOLE] * grow)
            self._rel_source.extend([0] * grow)
            self._rel_target.extend([0] * grow)
            self._rel_props.extend([None] * grow)
            self._rel_deleted.extend(b"\x00" * grow)

    def _out_half(self, node_id: int) -> _AdjacencyHalf:
        half = self._adj_out[node_id]
        if half is None:
            half = self._adj_out[node_id] = _AdjacencyHalf()
        return half

    def _in_half(self, node_id: int) -> _AdjacencyHalf:
        half = self._adj_in[node_id]
        if half is None:
            half = self._adj_in[node_id] = _AdjacencyHalf()
        return half

    # ------------------------------------------------------------------
    # Handle-facing accessors
    # ------------------------------------------------------------------

    def node_labels(self, node_id: int) -> frozenset[str]:
        """Labels of a node; deleted nodes report the empty set.

        The returned ``frozenset`` is the interned label set shared by
        every node with the same labels -- treat it as immutable.
        """
        self.counters.node_read()
        labelset = self._require_node(node_id)
        if self._node_deleted[node_id]:
            return self._labelset_strings[0]
        return self._labelset_strings[labelset]

    def node_properties(self, node_id: int) -> dict[str, Any]:
        """Property map of a node; deleted nodes report an empty map."""
        self.counters.property_read()
        self._require_node(node_id)
        if self._node_deleted[node_id]:
            return {}
        properties = self._node_props[node_id]
        return {} if properties is None else properties

    def node_is_deleted(self, node_id: int) -> bool:
        """True if the node exists as a tombstone."""
        self._require_node(node_id)
        return bool(self._node_deleted[node_id])

    def rel_type(self, rel_id: int) -> str:
        """Type of a relationship (kept even on tombstones)."""
        return self._strings.text(self._require_rel(rel_id))

    def rel_source(self, rel_id: int) -> int:
        """Source node id of a relationship."""
        self._require_rel(rel_id)
        return self._rel_source[rel_id]

    def rel_target(self, rel_id: int) -> int:
        """Target node id of a relationship."""
        self._require_rel(rel_id)
        return self._rel_target[rel_id]

    def rel_properties(self, rel_id: int) -> dict[str, Any]:
        """Property map of a relationship; empty when deleted."""
        self.counters.property_read()
        self._require_rel(rel_id)
        if self._rel_deleted[rel_id]:
            return {}
        properties = self._rel_props[rel_id]
        return {} if properties is None else properties

    def rel_is_deleted(self, rel_id: int) -> bool:
        """True if the relationship exists as a tombstone."""
        self._require_rel(rel_id)
        return bool(self._rel_deleted[rel_id])

    def has_node(self, node_id: int) -> bool:
        """True if *node_id* refers to a live node."""
        return self._node_exists(node_id) and not self._node_deleted[node_id]

    def has_relationship(self, rel_id: int) -> bool:
        """True if *rel_id* refers to a live relationship."""
        return self._rel_exists(rel_id) and not self._rel_deleted[rel_id]

    def node(self, node_id: int) -> Node:
        """Handle for a node id (which must exist, possibly deleted)."""
        self.counters.node_read()
        self._require_node(node_id)
        return Node(self, node_id)

    def relationship(self, rel_id: int) -> Relationship:
        """Handle for a relationship id (must exist, possibly deleted)."""
        self.counters.rel_read()
        self._require_rel(rel_id)
        return Relationship(self, rel_id)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """All live nodes, in id order (deterministic scans)."""
        counters = self.counters
        labelsets = self._node_labelsets
        deleted = self._node_deleted
        for node_id in range(len(labelsets)):
            if labelsets[node_id] != _HOLE and not deleted[node_id]:
                counters.node_read()
                yield Node(self, node_id)

    def relationships(self) -> Iterator[Relationship]:
        """All live relationships, in id order."""
        counters = self.counters
        types = self._rel_types
        deleted = self._rel_deleted
        for rel_id in range(len(types)):
            if types[rel_id] != _HOLE and not deleted[rel_id]:
                counters.rel_read()
                yield Relationship(self, rel_id)

    def node_count(self) -> int:
        """Number of live nodes (O(1), counter-maintained)."""
        return self._live_nodes

    def relationship_count(self) -> int:
        """Number of live relationships (O(1), counter-maintained)."""
        return self._live_rels

    def has_records(self) -> bool:
        """True if any node or relationship record exists (tombstones too)."""
        return any(ls != _HOLE for ls in self._node_labelsets) or any(
            t != _HOLE for t in self._rel_types
        )

    def nodes_with_label(self, label: str) -> frozenset[int]:
        """Ids of live nodes carrying *label* (index-backed)."""
        return self._label_index.nodes_with_label(label)

    # ------------------------------------------------------------------
    # Planner statistics
    #
    # Cheap, always-current summary counts the match planner uses for
    # selectivity estimates.  All of them read maintained structures
    # (live-entity counters, label-index buckets, live adjacency
    # arrays), so none of them scans and none of them touches the
    # journal -- rollback keeps them correct because the same
    # mutation/undo paths that maintain the structures maintain these
    # counts.
    # ------------------------------------------------------------------

    def label_count(self, label: str) -> int:
        """Number of live nodes carrying *label* (O(1), no db-hit)."""
        return self._label_index.count(label)

    def index_selectivity(self, label: str, key: str) -> float | None:
        """Average bucket size of the ``:label(key)`` index.

        ``None`` when no index exists; ``0.0`` for an empty index.  The
        planner uses this as the expected candidate count of an index
        probe whose lookup value is not yet known.
        """
        index = self._property_indexes.get((label, key))
        if index is None:
            return None
        return index.average_bucket_size()

    def out_relationships(self, node_id: int) -> frozenset[int]:
        """Ids of live relationships whose source is *node_id*."""
        if 0 <= node_id < len(self._adj_out):
            half = self._adj_out[node_id]
            if half is not None:
                return frozenset(half.rels)
        return frozenset()

    def in_relationships(self, node_id: int) -> frozenset[int]:
        """Ids of live relationships whose target is *node_id*."""
        if 0 <= node_id < len(self._adj_in):
            half = self._adj_in[node_id]
            if half is not None:
                return frozenset(half.rels)
        return frozenset()

    def _adjacency_add(
        self, rel_id: int, type_id: int, source: int, target: int
    ) -> None:
        self._out_half(source).add(type_id, rel_id)
        self._in_half(target).add(type_id, rel_id)

    def _adjacency_discard(
        self, rel_id: int, type_id: int, source: int, target: int
    ) -> None:
        half = self._adj_out[source]
        if half is not None:
            half.discard(type_id, rel_id)
        half = self._adj_in[target]
        if half is not None:
            half.discard(type_id, rel_id)

    def out_relationships_of_types(
        self, node_id: int, types: tuple[str, ...]
    ) -> frozenset[int]:
        """Live outgoing relationships of *node_id* with a type in *types*."""
        result: list[int] = []
        if 0 <= node_id < len(self._adj_out):
            half = self._adj_out[node_id]
            if half is not None:
                for type_id in self._type_ids(types):
                    half.extend_type(type_id, result)
        return frozenset(result)

    def in_relationships_of_types(
        self, node_id: int, types: tuple[str, ...]
    ) -> frozenset[int]:
        """Live incoming relationships of *node_id* with a type in *types*."""
        result: list[int] = []
        if 0 <= node_id < len(self._adj_in):
            half = self._adj_in[node_id]
            if half is not None:
                for type_id in self._type_ids(types):
                    half.extend_type(type_id, result)
        return frozenset(result)

    def out_degree(
        self, node_id: int, types: tuple[str, ...] | None = None
    ) -> int:
        """Live outgoing degree of *node_id*, optionally per type (O(1)).

        The adjacency arrays hold live relationships only (deletion
        discards, rollback re-adds), so the length is the degree --
        no filtering pass and no set materialisation.
        """
        if not 0 <= node_id < len(self._adj_out):
            return 0
        half = self._adj_out[node_id]
        if half is None:
            return 0
        if types is None:
            return half.degree()
        return sum(half.typed_degree(t) for t in self._type_ids(types))

    def in_degree(
        self, node_id: int, types: tuple[str, ...] | None = None
    ) -> int:
        """Live incoming degree of *node_id*, optionally per type (O(1))."""
        if not 0 <= node_id < len(self._adj_in):
            return 0
        half = self._adj_in[node_id]
        if half is None:
            return 0
        if types is None:
            return half.degree()
        return sum(half.typed_degree(t) for t in self._type_ids(types))

    def degree(
        self, node_id: int, types: tuple[str, ...] | None = None
    ) -> int:
        """Number of live relationships attached to *node_id* (O(1))."""
        return self.out_degree(node_id, types) + self.in_degree(
            node_id, types
        )

    def adjacent_rel_ids(
        self,
        node_id: int,
        *,
        outgoing: bool = True,
        incoming: bool = True,
        types: tuple[str, ...] | None = None,
    ) -> list[int]:
        """Live relationship ids at *node_id*, ascending, in one pass.

        This is the matcher's candidate enumeration: it reads the
        grouped adjacency arrays (the same structures :meth:`degree`
        counts) directly into a single sorted list -- typed steps read
        one contiguous slice per requested type, untyped steps read the
        whole flat array.  Self-loops (present in both directions) and
        repeated type names are emitted once.
        """
        ids: list[int] = []
        in_range = 0 <= node_id < len(self._adj_out)
        if types is None:
            if outgoing and in_range:
                half = self._adj_out[node_id]
                if half is not None:
                    ids.extend(half.rels)
            if incoming and in_range:
                half = self._adj_in[node_id]
                if half is not None:
                    ids.extend(half.rels)
        elif in_range:
            type_ids = self._type_ids(types)
            if outgoing:
                half = self._adj_out[node_id]
                if half is not None:
                    for type_id in type_ids:
                        half.extend_type(type_id, ids)
            if incoming:
                half = self._adj_in[node_id]
                if half is not None:
                    for type_id in type_ids:
                        half.extend_type(type_id, ids)
        ids.sort()
        deduped: list[int] = []
        previous = None
        for rel_id in ids:
            if rel_id != previous:
                deduped.append(rel_id)
                previous = rel_id
        return deduped

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------

    def mark(self) -> int:
        """Return a journal position to later :meth:`rollback_to`."""
        return len(self._journal)

    def rollback_to(self, mark: int) -> None:
        """Undo every mutation recorded after *mark*, newest first."""
        while len(self._journal) > mark:
            entry = self._journal.pop()
            self._undo(entry)

    def commit_to(self, mark: int) -> None:
        """Forget undo information back to *mark* (keep the changes)."""
        del self._journal[mark:]

    def journal_length(self) -> int:
        """Current journal size (diagnostics / tests)."""
        return len(self._journal)

    @contextmanager
    def reverted_to(self, mark: int) -> Iterator["GraphStore"]:
        """Temporarily rewind the store to *mark*; restore on exit.

        This is the snapshot read path for concurrent sessions: while
        one session holds an open transaction with uncommitted writes,
        a read statement from another session executes inside this
        bracket and observes exactly the last *committed* state.  The
        undo journal supplies the rewind; the redo operations (derived
        from the current record state before rewinding, the same
        mechanism the write-ahead log uses) replay the uncommitted
        changes afterwards, and the saved journal slice is re-attached
        so the open transaction can still roll back later.

        The bracketed code must not mutate the graph.  If it does
        anyway, its changes are undone before the open transaction's
        state is restored, so the store never ends up interleaved.
        """
        if mark > len(self._journal):
            raise PersistenceError(
                f"cannot revert to mark {mark}: journal only has "
                f"{len(self._journal)} entries"
            )
        redo = self.redo_ops(mark)
        saved = list(self._journal[mark:])
        self.rollback_to(mark)
        self._revert_depth += 1
        try:
            yield self
        finally:
            self._revert_depth -= 1
            # A write that slipped through the read-only guard would
            # corrupt the restore; undo it first (never interleave).
            if len(self._journal) > mark:
                self.rollback_to(mark)
            for op in redo:
                self.apply_redo(op)
            self._journal.extend(saved)

    # ------------------------------------------------------------------
    # Commit hooks (write-ahead logging)
    # ------------------------------------------------------------------

    def set_commit_hook(self, hook) -> None:
        """Install (or, with ``None``, remove) the statement-commit hook.

        The hook is called with a list of serializable redo operations
        whenever a statement (or a whole transaction) commits, and
        immediately for schema changes.  With no hook installed the
        store behaves exactly as before: the undo journal accumulates
        and nothing is published anywhere.
        """
        self._commit_hook = hook

    def commit_hook(self):
        """The installed commit hook, or ``None``."""
        return self._commit_hook

    def add_commit_observer(self, observer) -> None:
        """Register a secondary commit observer.

        Observers are called with ``(lsn, ops)`` after every committed
        statement (or transaction) that changed anything, *after* the
        commit hook ran.  Unlike the hook they never trigger journal
        truncation, so a store without a hook keeps its rollback
        behaviour unchanged.  Rolled-back transactions and snapshot
        reads never reach an observer.
        """
        self._commit_observers.append(observer)

    def remove_commit_observer(self, observer) -> None:
        """Detach a commit observer (no-op when absent)."""
        try:
            self._commit_observers.remove(observer)
        except ValueError:
            pass

    @property
    def lsn(self) -> int:
        """Logical commit sequence number (one per effective commit)."""
        return self._lsn

    @property
    def in_reverted_read(self) -> bool:
        """True while inside a :meth:`reverted_to` snapshot bracket.

        The view registry consults this before refreshing: a refresh
        against the rewound state would consume pending redo batches
        at the wrong store state and publish half-applied view state
        to snapshot readers.
        """
        return self._revert_depth > 0

    def in_transaction(self) -> bool:
        """True while a multi-statement transaction is open."""
        return self._tx_depth > 0

    def begin_transaction(self) -> int:
        """Open a transaction scope; returns its rollback mark."""
        self._tx_depth += 1
        return self.mark()

    def commit_transaction(self, mark: int) -> None:
        """Close a transaction scope, publishing its changes."""
        self._tx_depth = max(0, self._tx_depth - 1)
        self.commit_statement(mark)

    def rollback_transaction(self, mark: int) -> None:
        """Close a transaction scope, undoing its changes.

        Nothing reaches the commit hook: rolled-back statements were
        never published (the per-statement commit is deferred while the
        transaction is open).
        """
        self._tx_depth = max(0, self._tx_depth - 1)
        self.rollback_to(mark)

    def commit_statement(self, mark: int) -> None:
        """Publish ``journal[mark:]`` to the commit hook and truncate.

        No-op when neither a hook nor an observer is installed (the
        in-memory store keeps its undo journal exactly as before) or
        while a transaction is open (the transaction commit publishes
        every statement at once, and a transaction rollback means none
        of them ever existed).

        Effective commits (non-empty redo) bump the store LSN and fan
        out to the commit observers; the journal is truncated only when
        a hook is installed, so observer-only stores keep full rollback
        capability across committed statements.
        """
        if self._tx_depth:
            return
        hook = self._commit_hook
        if hook is None and not self._commit_observers:
            return
        ops = self.redo_ops(mark)
        if ops:
            if hook is not None:
                hook(ops)
            self._lsn += 1
            lsn = self._lsn
            for observer in tuple(self._commit_observers):
                observer(lsn, ops)
        if hook is not None:
            self.commit_to(mark)

    def _log_schema(self, op: tuple) -> None:
        """Publish a schema change immediately (schema is unjournaled)."""
        if self._commit_hook is not None:
            self._commit_hook([op])

    def redo_ops(self, mark: int = 0) -> list[tuple]:
        """Serializable redo equivalents of ``journal[mark:]``.

        Journal entries carry *undo* information only, but every store
        mutation is absolute (set-value, never incremental) and this
        runs synchronously at commit time, so the current record state
        supplies the redo values: replaying each entry with the final
        value converges to the committed state even when one property
        was written several times inside the statement.  Property
        removal is encoded as ``None`` (storable values are never
        null), keeping every operation JSON-serializable.
        """
        ops: list[tuple] = []
        for entry in self._journal[mark:]:
            op = entry[0]
            if op == "node_created":
                node_id = entry[1]
                properties = self._node_props[node_id]
                ops.append(
                    (
                        "create_node",
                        node_id,
                        sorted(
                            self._labelset_strings[
                                self._node_labelsets[node_id]
                            ]
                        ),
                        dict(properties) if properties else {},
                    )
                )
            elif op == "rel_created":
                rel_id = entry[1]
                properties = self._rel_props[rel_id]
                ops.append(
                    (
                        "create_rel",
                        rel_id,
                        self._strings.text(self._rel_types[rel_id]),
                        self._rel_source[rel_id],
                        self._rel_target[rel_id],
                        dict(properties) if properties else {},
                    )
                )
            elif op == "node_deleted":
                ops.append(("delete_node", entry[1]))
            elif op == "rel_deleted":
                ops.append(("delete_rel", entry[1]))
            elif op == "label_added":
                ops.append(("add_label", entry[1], entry[2]))
            elif op == "label_removed":
                ops.append(("remove_label", entry[1], entry[2]))
            elif op == "node_prop":
                properties = self._node_props[entry[1]]
                ops.append(
                    (
                        "set_node_prop",
                        entry[1],
                        entry[2],
                        None
                        if properties is None
                        else properties.get(entry[2]),
                    )
                )
            elif op == "rel_prop":
                properties = self._rel_props[entry[1]]
                ops.append(
                    (
                        "set_rel_prop",
                        entry[1],
                        entry[2],
                        None
                        if properties is None
                        else properties.get(entry[2]),
                    )
                )
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown journal op {op!r}")
        return ops

    def apply_redo(self, op: tuple) -> None:
        """Re-apply one redo operation with its original ids (recovery).

        Bypasses journaling and constraint enforcement: the operations
        were validated when first committed, and recovery must
        reproduce the exact entity ids and final state, including any
        tombstones created by later deletes.  The id counters are
        bumped past every restored id so new allocations never
        collide.
        """
        kind = op[0]
        if kind == "create_node":
            __, node_id, labels, properties = op
            self._ensure_node_capacity(node_id + 1)
            self._node_labelsets[node_id] = self._labelset_id(
                self._mask_of(labels)
            )
            self._node_props[node_id] = self._canon_properties(
                dict(properties)
            )
            self._node_deleted[node_id] = 0
            self._live_nodes += 1
            self._label_index.add(node_id, labels)
            self._reindex_node(node_id)
            self._next_node_id = max(self._next_node_id, node_id + 1)
        elif kind == "create_rel":
            __, rel_id, rel_type, source, target, properties = op
            self._ensure_rel_capacity(rel_id + 1)
            self._ensure_node_capacity(max(source, target) + 1)
            type_id = self._strings.intern(rel_type)
            self._rel_types[rel_id] = type_id
            self._rel_source[rel_id] = source
            self._rel_target[rel_id] = target
            self._rel_props[rel_id] = self._canon_properties(
                dict(properties)
            )
            self._rel_deleted[rel_id] = 0
            self._live_rels += 1
            self._adjacency_add(rel_id, type_id, source, target)
            self._next_rel_id = max(self._next_rel_id, rel_id + 1)
        elif kind == "delete_node":
            node_id = op[1]
            self._require_node(node_id)
            if not self._node_deleted[node_id]:
                self._node_deleted[node_id] = 1
                self._live_nodes -= 1
                self._label_index.remove(
                    node_id,
                    self._labelset_strings[self._node_labelsets[node_id]],
                )
                self._deindex_node(node_id)
        elif kind == "delete_rel":
            rel_id = op[1]
            type_id = self._require_rel(rel_id)
            if not self._rel_deleted[rel_id]:
                self._rel_deleted[rel_id] = 1
                self._live_rels -= 1
                self._adjacency_discard(
                    rel_id,
                    type_id,
                    self._rel_source[rel_id],
                    self._rel_target[rel_id],
                )
        elif kind == "add_label":
            __, node_id, label = op
            labelset = self._require_node(node_id)
            mask = self._labelset_masks[labelset]
            bit = 1 << self._strings.intern(label)
            if not mask & bit:
                self._node_labelsets[node_id] = self._labelset_id(
                    mask | bit
                )
                if not self._node_deleted[node_id]:
                    self._label_index.add(node_id, (label,))
                    self._reindex_node(node_id)
        elif kind == "remove_label":
            __, node_id, label = op
            labelset = self._require_node(node_id)
            mask = self._labelset_masks[labelset]
            bit = 1 << self._strings.intern(label)
            if mask & bit:
                self._node_labelsets[node_id] = self._labelset_id(
                    mask & ~bit
                )
                if not self._node_deleted[node_id]:
                    self._label_index.remove(node_id, (label,))
                    self._reindex_node(node_id)
        elif kind == "set_node_prop":
            __, node_id, key, value = op
            self._require_node(node_id)
            properties = self._node_props[node_id]
            if value is None:
                if properties is not None:
                    properties.pop(key, None)
            else:
                if properties is None:
                    properties = self._node_props[node_id] = {}
                properties[self._strings.canon(key)] = value
            if not self._node_deleted[node_id]:
                self._reindex_node(node_id, only_key=key)
        elif kind == "set_rel_prop":
            __, rel_id, key, value = op
            self._require_rel(rel_id)
            properties = self._rel_props[rel_id]
            if value is None:
                if properties is not None:
                    properties.pop(key, None)
            else:
                if properties is None:
                    properties = self._rel_props[rel_id] = {}
                properties[self._strings.canon(key)] = value
        elif kind == "create_index":
            self.create_index(op[1], op[2])
        elif kind == "drop_index":
            self.drop_index(op[1], op[2])
        elif kind == "create_constraint":
            self.create_unique_constraint(op[1], op[2])
        elif kind == "drop_constraint":
            self.drop_unique_constraint(op[1], op[2])
        else:
            raise PersistenceError(f"unknown redo op {kind!r}")

    def _record(self, entry: tuple) -> None:
        """Journal one mutation (the write-counting choke point)."""
        self.counters.write()
        self._journal.append(entry)

    def _undo(self, entry: tuple) -> None:
        op = entry[0]
        if op == "node_created":
            node_id = entry[1]
            self._live_nodes -= 1
            self._label_index.remove(
                node_id,
                self._labelset_strings[self._node_labelsets[node_id]],
            )
            self._deindex_node(node_id)
            self._node_labelsets[node_id] = _HOLE
            self._node_props[node_id] = None
            self._node_deleted[node_id] = 0
            self._adj_out[node_id] = None
            self._adj_in[node_id] = None
        elif op == "rel_created":
            rel_id = entry[1]
            self._live_rels -= 1
            self._adjacency_discard(
                rel_id,
                self._rel_types[rel_id],
                self._rel_source[rel_id],
                self._rel_target[rel_id],
            )
            self._rel_types[rel_id] = _HOLE
            self._rel_props[rel_id] = None
            self._rel_deleted[rel_id] = 0
        elif op == "node_deleted":
            node_id = entry[1]
            self._node_deleted[node_id] = 0
            self._live_nodes += 1
            self._label_index.add(
                node_id,
                self._labelset_strings[self._node_labelsets[node_id]],
            )
            self._reindex_node(node_id)
        elif op == "rel_deleted":
            rel_id = entry[1]
            self._rel_deleted[rel_id] = 0
            self._live_rels += 1
            self._adjacency_add(
                rel_id,
                self._rel_types[rel_id],
                self._rel_source[rel_id],
                self._rel_target[rel_id],
            )
        elif op == "label_added":
            node_id, label = entry[1], entry[2]
            mask = self._labelset_masks[self._node_labelsets[node_id]]
            bit = 1 << self._strings.intern(label)
            self._node_labelsets[node_id] = self._labelset_id(mask & ~bit)
            self._label_index.remove(node_id, (label,))
            self._reindex_node(node_id)
        elif op == "label_removed":
            node_id, label = entry[1], entry[2]
            mask = self._labelset_masks[self._node_labelsets[node_id]]
            bit = 1 << self._strings.intern(label)
            self._node_labelsets[node_id] = self._labelset_id(mask | bit)
            self._label_index.add(node_id, (label,))
            self._reindex_node(node_id)
        elif op == "node_prop":
            node_id, key, old = entry[1], entry[2], entry[3]
            properties = self._node_props[node_id]
            if old is _MISSING:
                if properties is not None:
                    properties.pop(key, None)
            else:
                if properties is None:
                    properties = self._node_props[node_id] = {}
                properties[self._strings.canon(key)] = old
            self._reindex_node(node_id, only_key=key)
        elif op == "rel_prop":
            rel_id, key, old = entry[1], entry[2], entry[3]
            properties = self._rel_props[rel_id]
            if old is _MISSING:
                if properties is not None:
                    properties.pop(key, None)
            else:
                if properties is None:
                    properties = self._rel_props[rel_id] = {}
                properties[self._strings.canon(key)] = old
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown journal op {op!r}")

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str] = (),
        properties: dict[str, Any] | None = None,
    ) -> int:
        """Create a node; returns its id."""
        labels = tuple(labels)
        mark = self.mark()
        node_id = self._next_node_id
        self._next_node_id += 1
        self._ensure_node_capacity(node_id + 1)
        self._node_labelsets[node_id] = self._labelset_id(
            self._mask_of(labels)
        )
        self._node_props[node_id] = self._canon_properties(properties)
        self._node_deleted[node_id] = 0
        self._live_nodes += 1
        self._label_index.add(node_id, labels)
        self._record(("node_created", node_id))
        self._reindex_node(node_id)
        self._enforce_unique(node_id, mark)
        return node_id

    def create_relationship(
        self,
        rel_type: str,
        source: int,
        target: int,
        properties: dict[str, Any] | None = None,
    ) -> int:
        """Create a relationship between two live nodes; returns its id."""
        if not rel_type:
            raise ConstraintViolationError(
                "every relationship must have a type"
            )
        if not self.has_node(source):
            raise EntityNotFoundError(
                f"cannot create relationship: source node {source} "
                f"does not exist or is deleted"
            )
        if not self.has_node(target):
            raise EntityNotFoundError(
                f"cannot create relationship: target node {target} "
                f"does not exist or is deleted"
            )
        rel_id = self._next_rel_id
        self._next_rel_id += 1
        self._ensure_rel_capacity(rel_id + 1)
        type_id = self._strings.intern(rel_type)
        self._rel_types[rel_id] = type_id
        self._rel_source[rel_id] = source
        self._rel_target[rel_id] = target
        self._rel_props[rel_id] = self._canon_properties(properties)
        self._rel_deleted[rel_id] = 0
        self._live_rels += 1
        self._adjacency_add(rel_id, type_id, source, target)
        self._record(("rel_created", rel_id))
        return rel_id

    def delete_relationship(self, rel_id: int) -> None:
        """Delete a relationship (idempotent on tombstones)."""
        type_id = self._require_rel(rel_id)
        if self._rel_deleted[rel_id]:
            return
        self._rel_deleted[rel_id] = 1
        self._live_rels -= 1
        self._adjacency_discard(
            rel_id, type_id, self._rel_source[rel_id], self._rel_target[rel_id]
        )
        self._record(("rel_deleted", rel_id))

    def delete_node(self, node_id: int, *, allow_dangling: bool = False) -> None:
        """Delete a node.

        With ``allow_dangling=False`` (the well-formed behaviour) the
        node must have no live relationships; otherwise
        :class:`DanglingRelationshipError` is raised.  With
        ``allow_dangling=True`` (legacy emulation) the node is removed
        even though relationships still point at it, producing exactly
        the illegal intermediate state described in Section 4.2.
        """
        labelset = self._require_node(node_id)
        if self._node_deleted[node_id]:
            return
        if not allow_dangling:
            attached = self.adjacent_rel_ids(node_id)
            if attached:
                raise DanglingRelationshipError(node_id, attached)
        self._node_deleted[node_id] = 1
        self._live_nodes -= 1
        self._label_index.remove(node_id, self._labelset_strings[labelset])
        self._deindex_node(node_id)
        self._record(("node_deleted", node_id))

    def add_label(self, node_id: int, label: str) -> None:
        """Add a label to a live node (no-op if already present)."""
        labelset = self._require_live_node(node_id)
        mask = self._labelset_masks[labelset]
        bit = 1 << self._strings.intern(label)
        if mask & bit:
            return
        mark = self.mark()
        self._node_labelsets[node_id] = self._labelset_id(mask | bit)
        self._label_index.add(node_id, (label,))
        self._record(("label_added", node_id, label))
        self._reindex_node(node_id)
        self._enforce_unique(node_id, mark)

    def remove_label(self, node_id: int, label: str) -> None:
        """Remove a label from a live node (no-op if absent)."""
        labelset = self._require_live_node(node_id)
        mask = self._labelset_masks[labelset]
        bit = 1 << self._strings.intern(label)
        if not mask & bit:
            return
        self._node_labelsets[node_id] = self._labelset_id(mask & ~bit)
        self._label_index.remove(node_id, (label,))
        self._reindex_node(node_id)
        self._record(("label_removed", node_id, label))

    def set_node_property(self, node_id: int, key: str, value: Any) -> None:
        """Set (or, with value=None, remove) a node property."""
        self._require_live_node(node_id)
        properties = self._node_props[node_id]
        old = _MISSING if properties is None else properties.get(key, _MISSING)
        if value is None:
            if old is _MISSING:
                return
            del properties[key]
        else:
            require_storable(value, key)
            if properties is None:
                properties = self._node_props[node_id] = {}
            properties[self._strings.canon(key)] = value
        mark = len(self._journal)
        self._record(("node_prop", node_id, key, old))
        self._reindex_node(node_id, only_key=key)
        self._enforce_unique(node_id, mark, only_key=key)

    def set_rel_property(self, rel_id: int, key: str, value: Any) -> None:
        """Set (or, with value=None, remove) a relationship property."""
        self._require_rel(rel_id)
        if self._rel_deleted[rel_id]:
            raise DeletedEntityError(
                f"cannot set property on deleted relationship {rel_id}"
            )
        properties = self._rel_props[rel_id]
        old = _MISSING if properties is None else properties.get(key, _MISSING)
        if value is None:
            if old is _MISSING:
                return
            del properties[key]
        else:
            require_storable(value, key)
            if properties is None:
                properties = self._rel_props[rel_id] = {}
            properties[self._strings.canon(key)] = value
        self._record(("rel_prop", rel_id, key, old))

    def _require_live_node(self, node_id: int) -> int:
        labelset = self._require_node(node_id)
        if self._node_deleted[node_id]:
            raise DeletedEntityError(
                f"cannot modify deleted node {node_id}"
            )
        return labelset

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    def bulk_load(
        self,
        nodes: Iterable[tuple[int, Iterable[str], dict[str, Any] | None]],
        relationships: Iterable[
            tuple[int, str, int, int, dict[str, Any] | None]
        ],
    ) -> tuple[int, int]:
        """Append entities directly into the columnar layout.

        The offline ingest path (``python -m repro.bulkload``): no
        journal entries, no commit hooks, no per-statement overhead --
        just column appends plus label-index and adjacency maintenance.
        *nodes* yields ``(id, labels, properties)``; *relationships*
        yields ``(id, type, source, target, properties)``.  Ids must be
        non-negative and unique (ascending ids append in O(1); out of
        order ids are handled but cost capacity back-fills).  Values
        are validated with :func:`~repro.graph.values.require_storable`
        and property keys are interned exactly like the journaled path,
        so a bulk-loaded store is byte-identical (via
        ``canonical_graph_json``) to one built statement by statement.

        The store must be empty; property indexes and constraints are
        created afterwards (:meth:`create_index` backfills in one
        pass).  Returns ``(node_count, relationship_count)``.
        """
        from repro.errors import LoadError

        if (
            self.has_records()
            or self._journal
            or self._property_indexes
            or self._unique_constraints
        ):
            raise PersistenceError("bulk_load requires an empty store")

        labelsets = self._node_labelsets
        props_column = self._node_props
        node_deleted = self._node_deleted
        adj_out = self._adj_out
        adj_in = self._adj_in
        labelset_id = self._labelset_id
        mask_of = self._mask_of
        canon = self._strings.canon
        #: label tuple -> (labelset id, node-id collector); the label
        #: index is flushed from the collectors in one batched pass
        seen_labels: dict[tuple[str, ...], tuple[int, list[int]]] = {}

        #: id(source dict) -> (pinned source, pooled template).  The
        #: CSV readers share one parsed dict across rows with identical
        #: property cells; pooling such a dict once and C-copying the
        #: template afterwards skips the per-key canon walk.  Pinning
        #: the source in the value keeps its id from being reused.
        def make_pooled_props():
            templates: dict[int, tuple[dict, dict]] = {}

            def pooled_props(properties: dict[str, Any]) -> dict[str, Any]:
                entry = templates.get(id(properties))
                if entry is not None:
                    return dict(entry[1])
                # Inline _canon_properties with a no-validation fast
                # path for exact scalar types (JSON/CSV values are
                # almost always str/int/float/bool; lists and oddities
                # take the slow path).
                copied: dict[str, Any] = {}
                for key, value in properties.items():
                    kind = type(value)
                    if (
                        kind is not str
                        and kind is not int
                        and kind is not float
                        and kind is not bool
                    ):
                        require_storable(value, key)
                    copied[canon(key)] = value
                if len(templates) < 8192:
                    templates[id(properties)] = (properties, dict(copied))
                return copied

            return pooled_props

        pooled_props = make_pooled_props()
        loaded_nodes = 0
        for node_id, labels, properties in nodes:
            label_key = tuple(labels)
            cached = seen_labels.get(label_key)
            if cached is None:
                cached = (labelset_id(mask_of(label_key)), [])
                seen_labels[label_key] = cached
            if node_id == len(labelsets):
                # Dense ascending ids: straight column appends.
                labelsets.append(cached[0])
                props_column.append(
                    pooled_props(properties) if properties else None
                )
                node_deleted.append(0)
                adj_out.append(None)
                adj_in.append(None)
            else:
                if node_id < 0:
                    raise LoadError(f"negative node id {node_id}")
                if node_id >= len(labelsets):
                    self._ensure_node_capacity(node_id + 1)
                elif labelsets[node_id] != _HOLE:
                    raise LoadError(f"duplicate node id {node_id}")
                labelsets[node_id] = cached[0]
                if properties:
                    props_column[node_id] = pooled_props(properties)
            cached[1].append(node_id)
            loaded_nodes += 1
        label_index_add_many = self._label_index.add_many
        for label_key, (__, collected) in seen_labels.items():
            if label_key:
                label_index_add_many(collected, label_key)
        self._live_nodes += loaded_nodes
        self._next_node_id = max(self._next_node_id, len(labelsets))

        types_column = self._rel_types
        source_column = self._rel_source
        target_column = self._rel_target
        rel_props_column = self._rel_props
        rel_deleted = self._rel_deleted
        intern = self._strings.intern
        node_len = len(labelsets)
        #: type string -> pool id (skip the intern dict on repeats)
        seen_types: dict[str, int] = {}
        # Fresh template cache: node property dicts are usually unique
        # per row and must not crowd out the (repetitive) rel payloads.
        pooled_props = make_pooled_props()
        loaded_rels = 0
        for rel_id, rel_type, source, target, properties in relationships:
            if (
                not 0 <= source < node_len
                or labelsets[source] == _HOLE
                or node_deleted[source]
            ):
                raise LoadError(
                    f"relationship {rel_id} references unknown "
                    f"source node {source}"
                )
            if (
                not 0 <= target < node_len
                or labelsets[target] == _HOLE
                or node_deleted[target]
            ):
                raise LoadError(
                    f"relationship {rel_id} references unknown "
                    f"target node {target}"
                )
            type_id = seen_types.get(rel_type)
            if type_id is None:
                if not rel_type:
                    raise LoadError(f"relationship {rel_id} has no type")
                type_id = seen_types[rel_type] = intern(rel_type)
            if rel_id == len(types_column):
                types_column.append(type_id)
                source_column.append(source)
                target_column.append(target)
                rel_props_column.append(
                    pooled_props(properties) if properties else None
                )
                rel_deleted.append(0)
            else:
                if rel_id < 0:
                    raise LoadError(f"negative relationship id {rel_id}")
                if rel_id >= len(types_column):
                    self._ensure_rel_capacity(rel_id + 1)
                elif types_column[rel_id] != _HOLE:
                    raise LoadError(f"duplicate relationship id {rel_id}")
                types_column[rel_id] = type_id
                source_column[rel_id] = source
                target_column[rel_id] = target
                if properties:
                    rel_props_column[rel_id] = pooled_props(properties)
            # Adjacency, with _AdjacencyHalf.add's tail fast path
            # inlined (ids are unique here, so no duplicate check):
            # method-call overhead is measurable at millions of rels.
            half = adj_out[source]
            if half is None:
                half = adj_out[source] = _AdjacencyHalf()
                half.types.append(type_id)
                half.offsets.append(1)
                half.rels.append(rel_id)
            else:
                half_rels = half.rels
                half_types = half.types
                if half_types[-1] == type_id and half_rels[-1] < rel_id:
                    half_rels.append(rel_id)
                    half.offsets[-1] += 1
                elif type_id not in half_types:
                    half_types.append(type_id)
                    half_rels.append(rel_id)
                    half.offsets.append(len(half_rels))
                else:
                    half.add(type_id, rel_id)
            half = adj_in[target]
            if half is None:
                half = adj_in[target] = _AdjacencyHalf()
                half.types.append(type_id)
                half.offsets.append(1)
                half.rels.append(rel_id)
            else:
                half_rels = half.rels
                half_types = half.types
                if half_types[-1] == type_id and half_rels[-1] < rel_id:
                    half_rels.append(rel_id)
                    half.offsets[-1] += 1
                elif type_id not in half_types:
                    half_types.append(type_id)
                    half_rels.append(rel_id)
                    half.offsets.append(len(half_rels))
                else:
                    half.add(type_id, rel_id)
            loaded_rels += 1
        self._live_rels += loaded_rels
        self._next_rel_id = max(self._next_rel_id, len(types_column))
        return loaded_nodes, loaded_rels

    # ------------------------------------------------------------------
    # Property indexes
    # ------------------------------------------------------------------

    def create_index(self, label: str, key: str) -> PropertyIndex:
        """Create (or return) a property index on ``:label(key)``."""
        index = self._property_indexes.get((label, key))
        if index is not None:
            return index
        index = PropertyIndex(label, key)
        index.counters = self.counters
        props_column = self._node_props
        # Backfill with PropertyIndex.add inlined: the index is fresh,
        # so no discard of stale entries is needed, and the exact-type
        # grouping keys for str/int are built without the generic
        # dispatch -- the backfill is a hot path for the bulk loader.
        by_value = index._by_value
        value_of = index._value_of
        for node_id in self._label_index.nodes_with_label(label):
            properties = props_column[node_id]
            if properties is None:
                continue
            value = properties.get(key)
            if value is None:
                continue
            kind = type(value)
            if kind is str:
                bucket_key = ("str", value)
            elif kind is int:
                bucket_key = ("num", value)
            elif is_storable(value):
                bucket_key = grouping_key(value)
            else:
                continue
            bucket = by_value.get(bucket_key)
            if bucket is None:
                by_value[bucket_key] = {node_id}
            else:
                bucket.add(node_id)
            value_of[node_id] = bucket_key
        self._property_indexes[(label, key)] = index
        self._log_schema(("create_index", label, key))
        return index

    def drop_index(self, label: str, key: str) -> None:
        """Drop a property index if it exists."""
        if self._property_indexes.pop((label, key), None) is not None:
            self._log_schema(("drop_index", label, key))

    def property_index(self, label: str, key: str) -> PropertyIndex | None:
        """The index on ``:label(key)`` if one was created."""
        return self._property_indexes.get((label, key))

    def _reindex_node(self, node_id: int, only_key: str | None = None) -> None:
        if not self._property_indexes:
            return
        if not self._node_exists(node_id) or self._node_deleted[node_id]:
            self._deindex_node(node_id)
            return
        mask = self._labelset_masks[self._node_labelsets[node_id]]
        properties = self._node_props[node_id]
        id_of = self._strings.id_of
        for (label, key), index in self._property_indexes.items():
            if only_key is not None and key != only_key:
                continue
            label_id = id_of(label)
            if (
                label_id is not None
                and mask >> label_id & 1
                and properties is not None
                and key in properties
            ):
                index.add(node_id, properties[key])
            else:
                index.discard(node_id)

    def _deindex_node(self, node_id: int) -> None:
        for index in self._property_indexes.values():
            index.discard(node_id)

    # ------------------------------------------------------------------
    # Uniqueness constraints
    # ------------------------------------------------------------------

    def create_unique_constraint(self, label: str, key: str) -> None:
        """Require ``:label(key)`` values to be unique across live nodes.

        Creates (or reuses) the backing property index, validates the
        existing data, and from then on rejects any create / SET /
        label addition that would introduce a duplicate.  Violations
        raise :class:`ConstraintViolationError`; the offending mutation
        is undone before raising, so a failed statement still rolls
        back cleanly.
        """
        index = self.create_index(label, key)
        duplicates = index.duplicate_buckets()
        if duplicates:
            worst = sorted(duplicates[0])
            raise ConstraintViolationError(
                f"cannot create uniqueness constraint on :{label}({key}): "
                f"existing nodes {worst} share a value"
            )
        if (label, key) not in self._unique_constraints:
            self._unique_constraints.add((label, key))
            self._log_schema(("create_constraint", label, key))

    def drop_unique_constraint(self, label: str, key: str) -> None:
        """Drop a uniqueness constraint (the index remains)."""
        if (label, key) in self._unique_constraints:
            self._unique_constraints.discard((label, key))
            self._log_schema(("drop_constraint", label, key))

    def unique_constraints(self) -> frozenset[tuple[str, str]]:
        """The active uniqueness constraints."""
        return frozenset(self._unique_constraints)

    def _enforce_unique(
        self, node_id: int, mark: int, only_key: str | None = None
    ) -> None:
        if not self._unique_constraints:
            return
        if not self._node_exists(node_id) or self._node_deleted[node_id]:
            return
        mask = self._labelset_masks[self._node_labelsets[node_id]]
        properties = self._node_props[node_id]
        id_of = self._strings.id_of
        for label, key in self._unique_constraints:
            if only_key is not None and key != only_key:
                continue
            label_id = id_of(label)
            if label_id is None or not mask >> label_id & 1:
                continue
            if properties is None or key not in properties:
                continue
            index = self._property_indexes[(label, key)]
            bucket = index.bucket_of(node_id)
            if len(bucket) > 1:
                others = sorted(bucket - {node_id})
                self.rollback_to(mark)
                raise ConstraintViolationError(
                    f"uniqueness constraint on :{label}({key}) violated: "
                    f"node {node_id} duplicates node(s) {others}"
                )

    # ------------------------------------------------------------------
    # Snapshots and copies
    # ------------------------------------------------------------------

    def snapshot(self, *, include_dangling: bool = True) -> GraphSnapshot:
        """Immutable copy of the current graph.

        Live relationships whose endpoints were deleted (legacy dangling
        state) are included by default so that
        :meth:`GraphSnapshot.has_dangling` can observe the illegal
        state; pass ``include_dangling=False`` to project them away.
        """
        labelsets = self._node_labelsets
        node_deleted = self._node_deleted
        nodes = frozenset(
            node_id
            for node_id in range(len(labelsets))
            if labelsets[node_id] != _HOLE and not node_deleted[node_id]
        )
        types = self._rel_types
        rel_deleted = self._rel_deleted
        source = self._rel_source
        target = self._rel_target
        rel_ids = [
            rel_id
            for rel_id in range(len(types))
            if types[rel_id] != _HOLE and not rel_deleted[rel_id]
        ]
        if not include_dangling:
            rel_ids = [
                rel_id
                for rel_id in rel_ids
                if source[rel_id] in nodes and target[rel_id] in nodes
            ]
        text = self._strings.text
        props_column = self._node_props
        rel_props_column = self._rel_props
        return GraphSnapshot(
            nodes=nodes,
            relationships=frozenset(rel_ids),
            source={r: source[r] for r in rel_ids},
            target={r: target[r] for r in rel_ids},
            labels={
                n: self._labelset_strings[labelsets[n]] for n in nodes
            },
            types={r: text(types[r]) for r in rel_ids},
            node_properties={
                n: dict(props_column[n]) if props_column[n] else {}
                for n in nodes
            },
            rel_properties={
                r: dict(rel_props_column[r]) if rel_props_column[r] else {}
                for r in rel_ids
            },
        )

    def iter_node_records(
        self,
    ) -> Iterator[tuple[int, list[str], dict[str, Any]]]:
        """Live nodes as ``(id, sorted labels, properties)`` in id order.

        A constant-memory column walk (nothing is materialised beyond
        the yielded tuple) for consumers that stream the whole graph --
        the streaming checkpoint writer foremost.  The yielded
        properties dict is the store's own: treat it as read-only.
        """
        labelsets = self._node_labelsets
        deleted = self._node_deleted
        labelset_strings = self._labelset_strings
        props_column = self._node_props
        empty: dict[str, Any] = {}
        for node_id in range(len(labelsets)):
            labelset = labelsets[node_id]
            if labelset == _HOLE or deleted[node_id]:
                continue
            yield (
                node_id,
                sorted(labelset_strings[labelset]),
                props_column[node_id] or empty,
            )

    def iter_rel_records(
        self,
    ) -> Iterator[tuple[int, str, int, int, dict[str, Any]]]:
        """Live relationships as ``(id, type, start, end, properties)``.

        Id order, constant memory, dangling relationships included --
        the same population :meth:`snapshot` reports, so a checkpoint
        built from this stream reproduces the store exactly.  As with
        :meth:`iter_node_records`, treat the yielded dict as read-only.
        """
        types = self._rel_types
        deleted = self._rel_deleted
        source = self._rel_source
        target = self._rel_target
        props_column = self._rel_props
        text = self._strings.text
        empty: dict[str, Any] = {}
        for rel_id in range(len(types)):
            type_id = types[rel_id]
            if type_id == _HOLE or deleted[rel_id]:
                continue
            yield (
                rel_id,
                text(type_id),
                source[rel_id],
                target[rel_id],
                props_column[rel_id] or empty,
            )

    def copy(self) -> "GraphStore":
        """Deep copy of the live graph (journal and tombstones dropped)."""
        clone = GraphStore()
        id_map: dict[int, int] = {}
        for node in self.nodes():
            id_map[node.id] = clone.create_node(
                node.labels, dict(node.properties)
            )
        for rel in self.relationships():
            source = id_map.get(rel.start.id)
            target = id_map.get(rel.end.id)
            if source is None or target is None:
                continue  # dangling relationships are not copied
            clone.create_relationship(
                rel.type, source, target, dict(rel.properties)
            )
        clone.commit_to(0)
        return clone

    def load_snapshot(self, snapshot: GraphSnapshot) -> dict[int, int]:
        """Append the contents of *snapshot* into this store.

        Returns the node-id mapping from snapshot ids to new store ids.
        """
        id_map: dict[int, int] = {}
        for node_id in sorted(snapshot.nodes):
            id_map[node_id] = self.create_node(
                snapshot.labels.get(node_id, frozenset()),
                dict(snapshot.node_properties.get(node_id, {})),
            )
        for rel_id in sorted(snapshot.relationships):
            source = id_map.get(snapshot.source[rel_id])
            target = id_map.get(snapshot.target[rel_id])
            if source is None or target is None:
                continue
            self.create_relationship(
                snapshot.types[rel_id],
                source,
                target,
                dict(snapshot.rel_properties.get(rel_id, {})),
            )
        return id_map

    def __repr__(self) -> str:
        return (
            f"GraphStore({self.node_count()} nodes, "
            f"{self.relationship_count()} relationships)"
        )
