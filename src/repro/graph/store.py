"""The mutable property-graph store.

:class:`GraphStore` owns all node and relationship records, maintains
adjacency and indexes, and provides the two features the paper's update
semantics needs from a storage layer:

* an **undo journal** giving statement-level atomicity: every mutation
  appends its inverse, :meth:`mark` / :meth:`rollback_to` bracket a
  statement, and a failed statement (e.g. a revised-dialect
  :class:`~repro.errors.PropertyConflictError`) leaves the graph
  untouched;

* **tombstones and a dangling mode** emulating the legacy Cypher 9
  behaviour of Section 4.2: a node may be deleted while relationships
  still point at it, the handle of a deleted node reports no labels and
  no properties, and later writes to it are rejected (the engine's
  legacy dialect turns that rejection into a silent no-op).

Deleted records are retained (with ``deleted=True``) so that handles in
driving tables keep resolving and so rollback can resurrect them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import (
    ConstraintViolationError,
    DanglingRelationshipError,
    DeletedEntityError,
    EntityNotFoundError,
    PersistenceError,
)
from repro.graph.counters import NO_COUNTERS, HitCounters
from repro.graph.indexes import LabelIndex, PropertyIndex
from repro.graph.model import GraphSnapshot, Node, Relationship
from repro.graph.values import require_storable

_MISSING = object()


@dataclass
class _NodeRecord:
    labels: set[str] = field(default_factory=set)
    properties: dict[str, Any] = field(default_factory=dict)
    deleted: bool = False


@dataclass
class _RelRecord:
    type: str
    source: int
    target: int
    properties: dict[str, Any] = field(default_factory=dict)
    deleted: bool = False


class GraphStore:
    """In-memory property graph with journaled mutations."""

    def __init__(self) -> None:
        self._nodes: dict[int, _NodeRecord] = {}
        self._rels: dict[int, _RelRecord] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}
        #: per-type adjacency: node id -> type -> rel ids (live only);
        #: lets typed traversals skip unrelated relationships entirely
        self._out_by_type: dict[int, dict[str, set[int]]] = {}
        self._in_by_type: dict[int, dict[str, set[int]]] = {}
        self._next_node_id = 0
        self._next_rel_id = 0
        #: live-entity counters, maintained by every mutation and undo
        #: so the match planner's cardinality estimates are O(1)
        self._live_nodes = 0
        self._live_rels = 0
        self._label_index = LabelIndex()
        self._property_indexes: dict[tuple[str, str], PropertyIndex] = {}
        #: (label, key) pairs under a uniqueness constraint
        self._unique_constraints: set[tuple[str, str]] = set()
        #: undo journal: list of (op, *payload) tuples, applied in reverse
        self._journal: list[tuple] = []
        #: db-hit hooks; the shared no-op singleton unless profiling
        self.counters: HitCounters = NO_COUNTERS
        #: statement-commit hook (write-ahead log); called with the
        #: redo-op list of every committed statement / schema change
        self._commit_hook = None
        #: open multi-statement transaction depth; while > 0 the
        #: per-statement commit defers to the transaction commit
        self._tx_depth = 0

    # ------------------------------------------------------------------
    # Profiling hooks
    # ------------------------------------------------------------------

    def install_counters(self, counters: HitCounters) -> None:
        """Route db-hit hooks (store + all indexes) to *counters*."""
        self.counters = counters
        self._label_index.counters = counters
        for index in self._property_indexes.values():
            index.counters = counters

    def reset_counters(self) -> None:
        """Restore the shared no-op counters (profiling off)."""
        self.install_counters(NO_COUNTERS)

    # ------------------------------------------------------------------
    # Record access helpers
    # ------------------------------------------------------------------

    def _node_record(self, node_id: int) -> _NodeRecord:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise EntityNotFoundError(f"no node with id {node_id}") from None

    def _rel_record(self, rel_id: int) -> _RelRecord:
        try:
            return self._rels[rel_id]
        except KeyError:
            raise EntityNotFoundError(
                f"no relationship with id {rel_id}"
            ) from None

    # ------------------------------------------------------------------
    # Handle-facing accessors
    # ------------------------------------------------------------------

    def node_labels(self, node_id: int) -> frozenset[str]:
        """Labels of a node; deleted nodes report the empty set."""
        self.counters.node_read()
        record = self._node_record(node_id)
        if record.deleted:
            return frozenset()
        return frozenset(record.labels)

    def node_properties(self, node_id: int) -> dict[str, Any]:
        """Property map of a node; deleted nodes report an empty map."""
        self.counters.property_read()
        record = self._node_record(node_id)
        if record.deleted:
            return {}
        return record.properties

    def node_is_deleted(self, node_id: int) -> bool:
        """True if the node exists as a tombstone."""
        return self._node_record(node_id).deleted

    def rel_type(self, rel_id: int) -> str:
        """Type of a relationship (kept even on tombstones)."""
        return self._rel_record(rel_id).type

    def rel_source(self, rel_id: int) -> int:
        """Source node id of a relationship."""
        return self._rel_record(rel_id).source

    def rel_target(self, rel_id: int) -> int:
        """Target node id of a relationship."""
        return self._rel_record(rel_id).target

    def rel_properties(self, rel_id: int) -> dict[str, Any]:
        """Property map of a relationship; empty when deleted."""
        self.counters.property_read()
        record = self._rel_record(rel_id)
        if record.deleted:
            return {}
        return record.properties

    def rel_is_deleted(self, rel_id: int) -> bool:
        """True if the relationship exists as a tombstone."""
        return self._rel_record(rel_id).deleted

    def has_node(self, node_id: int) -> bool:
        """True if *node_id* refers to a live node."""
        record = self._nodes.get(node_id)
        return record is not None and not record.deleted

    def has_relationship(self, rel_id: int) -> bool:
        """True if *rel_id* refers to a live relationship."""
        record = self._rels.get(rel_id)
        return record is not None and not record.deleted

    def node(self, node_id: int) -> Node:
        """Handle for a node id (which must exist, possibly deleted)."""
        self.counters.node_read()
        self._node_record(node_id)
        return Node(self, node_id)

    def relationship(self, rel_id: int) -> Relationship:
        """Handle for a relationship id (must exist, possibly deleted)."""
        self.counters.rel_read()
        self._rel_record(rel_id)
        return Relationship(self, rel_id)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """All live nodes, in id order (deterministic scans)."""
        counters = self.counters
        for node_id in sorted(self._nodes):
            if not self._nodes[node_id].deleted:
                counters.node_read()
                yield Node(self, node_id)

    def relationships(self) -> Iterator[Relationship]:
        """All live relationships, in id order."""
        counters = self.counters
        for rel_id in sorted(self._rels):
            if not self._rels[rel_id].deleted:
                counters.rel_read()
                yield Relationship(self, rel_id)

    def node_count(self) -> int:
        """Number of live nodes (O(1), counter-maintained)."""
        return self._live_nodes

    def relationship_count(self) -> int:
        """Number of live relationships (O(1), counter-maintained)."""
        return self._live_rels

    def nodes_with_label(self, label: str) -> frozenset[int]:
        """Ids of live nodes carrying *label* (index-backed)."""
        return self._label_index.nodes_with_label(label)

    # ------------------------------------------------------------------
    # Planner statistics
    #
    # Cheap, always-current summary counts the match planner uses for
    # selectivity estimates.  All of them read maintained structures
    # (live-entity counters, label-index buckets, live adjacency sets),
    # so none of them scans and none of them touches the journal --
    # rollback keeps them correct because the same mutation/undo paths
    # that maintain the structures maintain these counts.
    # ------------------------------------------------------------------

    def label_count(self, label: str) -> int:
        """Number of live nodes carrying *label* (O(1), no db-hit)."""
        return self._label_index.count(label)

    def index_selectivity(self, label: str, key: str) -> float | None:
        """Average bucket size of the ``:label(key)`` index.

        ``None`` when no index exists; ``0.0`` for an empty index.  The
        planner uses this as the expected candidate count of an index
        probe whose lookup value is not yet known.
        """
        index = self._property_indexes.get((label, key))
        if index is None:
            return None
        return index.average_bucket_size()

    def out_relationships(self, node_id: int) -> frozenset[int]:
        """Ids of live relationships whose source is *node_id*."""
        rel_ids = self._out.get(node_id, ())
        return frozenset(r for r in rel_ids if not self._rels[r].deleted)

    def in_relationships(self, node_id: int) -> frozenset[int]:
        """Ids of live relationships whose target is *node_id*."""
        rel_ids = self._in.get(node_id, ())
        return frozenset(r for r in rel_ids if not self._rels[r].deleted)

    def _adjacency_add(
        self, rel_id: int, rel_type: str, source: int, target: int
    ) -> None:
        self._out_by_type.setdefault(source, {}).setdefault(
            rel_type, set()
        ).add(rel_id)
        self._in_by_type.setdefault(target, {}).setdefault(
            rel_type, set()
        ).add(rel_id)

    def _adjacency_discard(
        self, rel_id: int, rel_type: str, source: int, target: int
    ) -> None:
        self._out_by_type.get(source, {}).get(rel_type, set()).discard(rel_id)
        self._in_by_type.get(target, {}).get(rel_type, set()).discard(rel_id)

    def out_relationships_of_types(
        self, node_id: int, types: tuple[str, ...]
    ) -> frozenset[int]:
        """Live outgoing relationships of *node_id* with a type in *types*."""
        buckets = self._out_by_type.get(node_id, {})
        result: set[int] = set()
        for rel_type in types:
            result |= buckets.get(rel_type, set())
        return frozenset(result)

    def in_relationships_of_types(
        self, node_id: int, types: tuple[str, ...]
    ) -> frozenset[int]:
        """Live incoming relationships of *node_id* with a type in *types*."""
        buckets = self._in_by_type.get(node_id, {})
        result: set[int] = set()
        for rel_type in types:
            result |= buckets.get(rel_type, set())
        return frozenset(result)

    def out_degree(
        self, node_id: int, types: tuple[str, ...] | None = None
    ) -> int:
        """Live outgoing degree of *node_id*, optionally per type (O(1)).

        The adjacency sets hold live relationships only (deletion
        discards, rollback re-adds), so the length is the degree --
        no filtering pass and no set materialisation.
        """
        if types is None:
            return len(self._out.get(node_id, ()))
        buckets = self._out_by_type.get(node_id, {})
        return sum(len(buckets.get(rel_type, ())) for rel_type in types)

    def in_degree(
        self, node_id: int, types: tuple[str, ...] | None = None
    ) -> int:
        """Live incoming degree of *node_id*, optionally per type (O(1))."""
        if types is None:
            return len(self._in.get(node_id, ()))
        buckets = self._in_by_type.get(node_id, {})
        return sum(len(buckets.get(rel_type, ())) for rel_type in types)

    def degree(
        self, node_id: int, types: tuple[str, ...] | None = None
    ) -> int:
        """Number of live relationships attached to *node_id* (O(1))."""
        return self.out_degree(node_id, types) + self.in_degree(
            node_id, types
        )

    def adjacent_rel_ids(
        self,
        node_id: int,
        *,
        outgoing: bool = True,
        incoming: bool = True,
        types: tuple[str, ...] | None = None,
    ) -> list[int]:
        """Live relationship ids at *node_id*, ascending, in one pass.

        This is the matcher's candidate enumeration: it reads the live
        adjacency sets (the same structures :meth:`degree` counts)
        directly into a single sorted list -- no intermediate
        frozensets and no set unions, which matters on dense nodes
        where undirected/untyped steps previously materialised
        ``sorted(out | in)`` per expansion step.  Self-loops (present
        in both directions) and repeated type names are emitted once.
        """
        ids: list[int] = []
        if types is None:
            if outgoing:
                ids.extend(self._out.get(node_id, ()))
            if incoming:
                ids.extend(self._in.get(node_id, ()))
        else:
            if outgoing:
                buckets = self._out_by_type.get(node_id, {})
                for rel_type in types:
                    ids.extend(buckets.get(rel_type, ()))
            if incoming:
                buckets = self._in_by_type.get(node_id, {})
                for rel_type in types:
                    ids.extend(buckets.get(rel_type, ()))
        ids.sort()
        deduped: list[int] = []
        previous = None
        for rel_id in ids:
            if rel_id != previous:
                deduped.append(rel_id)
                previous = rel_id
        return deduped

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------

    def mark(self) -> int:
        """Return a journal position to later :meth:`rollback_to`."""
        return len(self._journal)

    def rollback_to(self, mark: int) -> None:
        """Undo every mutation recorded after *mark*, newest first."""
        while len(self._journal) > mark:
            entry = self._journal.pop()
            self._undo(entry)

    def commit_to(self, mark: int) -> None:
        """Forget undo information back to *mark* (keep the changes)."""
        del self._journal[mark:]

    def journal_length(self) -> int:
        """Current journal size (diagnostics / tests)."""
        return len(self._journal)

    @contextmanager
    def reverted_to(self, mark: int) -> Iterator["GraphStore"]:
        """Temporarily rewind the store to *mark*; restore on exit.

        This is the snapshot read path for concurrent sessions: while
        one session holds an open transaction with uncommitted writes,
        a read statement from another session executes inside this
        bracket and observes exactly the last *committed* state.  The
        undo journal supplies the rewind; the redo operations (derived
        from the current record state before rewinding, the same
        mechanism the write-ahead log uses) replay the uncommitted
        changes afterwards, and the saved journal slice is re-attached
        so the open transaction can still roll back later.

        The bracketed code must not mutate the graph.  If it does
        anyway, its changes are undone before the open transaction's
        state is restored, so the store never ends up interleaved.
        """
        if mark > len(self._journal):
            raise PersistenceError(
                f"cannot revert to mark {mark}: journal only has "
                f"{len(self._journal)} entries"
            )
        redo = self.redo_ops(mark)
        saved = list(self._journal[mark:])
        self.rollback_to(mark)
        try:
            yield self
        finally:
            # A write that slipped through the read-only guard would
            # corrupt the restore; undo it first (never interleave).
            if len(self._journal) > mark:
                self.rollback_to(mark)
            for op in redo:
                self.apply_redo(op)
            self._journal.extend(saved)

    # ------------------------------------------------------------------
    # Commit hooks (write-ahead logging)
    # ------------------------------------------------------------------

    def set_commit_hook(self, hook) -> None:
        """Install (or, with ``None``, remove) the statement-commit hook.

        The hook is called with a list of serializable redo operations
        whenever a statement (or a whole transaction) commits, and
        immediately for schema changes.  With no hook installed the
        store behaves exactly as before: the undo journal accumulates
        and nothing is published anywhere.
        """
        self._commit_hook = hook

    def commit_hook(self):
        """The installed commit hook, or ``None``."""
        return self._commit_hook

    def in_transaction(self) -> bool:
        """True while a multi-statement transaction is open."""
        return self._tx_depth > 0

    def begin_transaction(self) -> int:
        """Open a transaction scope; returns its rollback mark."""
        self._tx_depth += 1
        return self.mark()

    def commit_transaction(self, mark: int) -> None:
        """Close a transaction scope, publishing its changes."""
        self._tx_depth = max(0, self._tx_depth - 1)
        self.commit_statement(mark)

    def rollback_transaction(self, mark: int) -> None:
        """Close a transaction scope, undoing its changes.

        Nothing reaches the commit hook: rolled-back statements were
        never published (the per-statement commit is deferred while the
        transaction is open).
        """
        self._tx_depth = max(0, self._tx_depth - 1)
        self.rollback_to(mark)

    def commit_statement(self, mark: int) -> None:
        """Publish ``journal[mark:]`` to the commit hook and truncate.

        No-op when no hook is installed (the in-memory store keeps its
        undo journal exactly as before) or while a transaction is open
        (the transaction commit publishes every statement at once, and
        a transaction rollback means none of them ever existed).
        """
        if self._commit_hook is None or self._tx_depth:
            return
        ops = self.redo_ops(mark)
        if ops:
            self._commit_hook(ops)
        self.commit_to(mark)

    def _log_schema(self, op: tuple) -> None:
        """Publish a schema change immediately (schema is unjournaled)."""
        if self._commit_hook is not None:
            self._commit_hook([op])

    def redo_ops(self, mark: int = 0) -> list[tuple]:
        """Serializable redo equivalents of ``journal[mark:]``.

        Journal entries carry *undo* information only, but every store
        mutation is absolute (set-value, never incremental) and this
        runs synchronously at commit time, so the current record state
        supplies the redo values: replaying each entry with the final
        value converges to the committed state even when one property
        was written several times inside the statement.  Property
        removal is encoded as ``None`` (storable values are never
        null), keeping every operation JSON-serializable.
        """
        ops: list[tuple] = []
        for entry in self._journal[mark:]:
            op = entry[0]
            if op == "node_created":
                record = self._nodes[entry[1]]
                ops.append(
                    (
                        "create_node",
                        entry[1],
                        sorted(record.labels),
                        dict(record.properties),
                    )
                )
            elif op == "rel_created":
                record = self._rels[entry[1]]
                ops.append(
                    (
                        "create_rel",
                        entry[1],
                        record.type,
                        record.source,
                        record.target,
                        dict(record.properties),
                    )
                )
            elif op == "node_deleted":
                ops.append(("delete_node", entry[1]))
            elif op == "rel_deleted":
                ops.append(("delete_rel", entry[1]))
            elif op == "label_added":
                ops.append(("add_label", entry[1], entry[2]))
            elif op == "label_removed":
                ops.append(("remove_label", entry[1], entry[2]))
            elif op == "node_prop":
                record = self._nodes[entry[1]]
                ops.append(
                    (
                        "set_node_prop",
                        entry[1],
                        entry[2],
                        record.properties.get(entry[2]),
                    )
                )
            elif op == "rel_prop":
                record = self._rels[entry[1]]
                ops.append(
                    (
                        "set_rel_prop",
                        entry[1],
                        entry[2],
                        record.properties.get(entry[2]),
                    )
                )
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown journal op {op!r}")
        return ops

    def apply_redo(self, op: tuple) -> None:
        """Re-apply one redo operation with its original ids (recovery).

        Bypasses journaling and constraint enforcement: the operations
        were validated when first committed, and recovery must
        reproduce the exact entity ids and final state, including any
        tombstones created by later deletes.  The id counters are
        bumped past every restored id so new allocations never
        collide.
        """
        kind = op[0]
        if kind == "create_node":
            __, node_id, labels, properties = op
            record = _NodeRecord(
                labels=set(labels), properties=dict(properties)
            )
            self._nodes[node_id] = record
            self._live_nodes += 1
            self._out.setdefault(node_id, set())
            self._in.setdefault(node_id, set())
            self._label_index.add(node_id, record.labels)
            self._reindex_node(node_id)
            self._next_node_id = max(self._next_node_id, node_id + 1)
        elif kind == "create_rel":
            __, rel_id, rel_type, source, target, properties = op
            record = _RelRecord(
                type=rel_type,
                source=source,
                target=target,
                properties=dict(properties),
            )
            self._rels[rel_id] = record
            self._live_rels += 1
            self._out.setdefault(source, set()).add(rel_id)
            self._in.setdefault(target, set()).add(rel_id)
            self._adjacency_add(rel_id, rel_type, source, target)
            self._next_rel_id = max(self._next_rel_id, rel_id + 1)
        elif kind == "delete_node":
            record = self._nodes[op[1]]
            if not record.deleted:
                record.deleted = True
                self._live_nodes -= 1
                self._label_index.remove(op[1], record.labels)
                self._deindex_node(op[1])
        elif kind == "delete_rel":
            record = self._rels[op[1]]
            if not record.deleted:
                record.deleted = True
                self._live_rels -= 1
                self._out.get(record.source, set()).discard(op[1])
                self._in.get(record.target, set()).discard(op[1])
                self._adjacency_discard(
                    op[1], record.type, record.source, record.target
                )
        elif kind == "add_label":
            __, node_id, label = op
            record = self._nodes[node_id]
            if label not in record.labels:
                record.labels.add(label)
                if not record.deleted:
                    self._label_index.add(node_id, (label,))
                    self._reindex_node(node_id)
        elif kind == "remove_label":
            __, node_id, label = op
            record = self._nodes[node_id]
            if label in record.labels:
                record.labels.discard(label)
                if not record.deleted:
                    self._label_index.remove(node_id, (label,))
                    self._reindex_node(node_id)
        elif kind == "set_node_prop":
            __, node_id, key, value = op
            record = self._nodes[node_id]
            if value is None:
                record.properties.pop(key, None)
            else:
                record.properties[key] = value
            if not record.deleted:
                self._reindex_node(node_id, only_key=key)
        elif kind == "set_rel_prop":
            __, rel_id, key, value = op
            record = self._rels[rel_id]
            if value is None:
                record.properties.pop(key, None)
            else:
                record.properties[key] = value
        elif kind == "create_index":
            self.create_index(op[1], op[2])
        elif kind == "drop_index":
            self.drop_index(op[1], op[2])
        elif kind == "create_constraint":
            self.create_unique_constraint(op[1], op[2])
        elif kind == "drop_constraint":
            self.drop_unique_constraint(op[1], op[2])
        else:
            raise PersistenceError(f"unknown redo op {kind!r}")

    def _record(self, entry: tuple) -> None:
        """Journal one mutation (the write-counting choke point)."""
        self.counters.write()
        self._journal.append(entry)

    def _undo(self, entry: tuple) -> None:
        op = entry[0]
        if op == "node_created":
            node_id = entry[1]
            record = self._nodes.pop(node_id)
            self._live_nodes -= 1
            self._label_index.remove(node_id, record.labels)
            self._deindex_node(node_id)
            self._out.pop(node_id, None)
            self._in.pop(node_id, None)
        elif op == "rel_created":
            rel_id = entry[1]
            record = self._rels.pop(rel_id)
            self._live_rels -= 1
            self._out.get(record.source, set()).discard(rel_id)
            self._in.get(record.target, set()).discard(rel_id)
            self._adjacency_discard(
                rel_id, record.type, record.source, record.target
            )
        elif op == "node_deleted":
            node_id = entry[1]
            record = self._nodes[node_id]
            record.deleted = False
            self._live_nodes += 1
            self._label_index.add(node_id, record.labels)
            self._reindex_node(node_id)
        elif op == "rel_deleted":
            rel_id = entry[1]
            record = self._rels[rel_id]
            record.deleted = False
            self._live_rels += 1
            self._out.setdefault(record.source, set()).add(rel_id)
            self._in.setdefault(record.target, set()).add(rel_id)
            self._adjacency_add(
                rel_id, record.type, record.source, record.target
            )
        elif op == "label_added":
            node_id, label = entry[1], entry[2]
            record = self._nodes[node_id]
            record.labels.discard(label)
            self._label_index.remove(node_id, (label,))
            self._reindex_node(node_id)
        elif op == "label_removed":
            node_id, label = entry[1], entry[2]
            record = self._nodes[node_id]
            record.labels.add(label)
            self._label_index.add(node_id, (label,))
            self._reindex_node(node_id)
        elif op == "node_prop":
            node_id, key, old = entry[1], entry[2], entry[3]
            record = self._nodes[node_id]
            if old is _MISSING:
                record.properties.pop(key, None)
            else:
                record.properties[key] = old
            self._reindex_node(node_id, only_key=key)
        elif op == "rel_prop":
            rel_id, key, old = entry[1], entry[2], entry[3]
            record = self._rels[rel_id]
            if old is _MISSING:
                record.properties.pop(key, None)
            else:
                record.properties[key] = old
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown journal op {op!r}")

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str] = (),
        properties: dict[str, Any] | None = None,
    ) -> int:
        """Create a node; returns its id."""
        properties = dict(properties or {})
        for key, value in properties.items():
            require_storable(value, key)
        mark = self.mark()
        node_id = self._next_node_id
        self._next_node_id += 1
        record = _NodeRecord(labels=set(labels), properties=properties)
        self._nodes[node_id] = record
        self._live_nodes += 1
        self._out[node_id] = set()
        self._in[node_id] = set()
        self._label_index.add(node_id, record.labels)
        self._record(("node_created", node_id))
        self._reindex_node(node_id)
        self._enforce_unique(node_id, mark)
        return node_id

    def create_relationship(
        self,
        rel_type: str,
        source: int,
        target: int,
        properties: dict[str, Any] | None = None,
    ) -> int:
        """Create a relationship between two live nodes; returns its id."""
        if not rel_type:
            raise ConstraintViolationError(
                "every relationship must have a type"
            )
        if not self.has_node(source):
            raise EntityNotFoundError(
                f"cannot create relationship: source node {source} "
                f"does not exist or is deleted"
            )
        if not self.has_node(target):
            raise EntityNotFoundError(
                f"cannot create relationship: target node {target} "
                f"does not exist or is deleted"
            )
        properties = dict(properties or {})
        for key, value in properties.items():
            require_storable(value, key)
        rel_id = self._next_rel_id
        self._next_rel_id += 1
        self._rels[rel_id] = _RelRecord(
            type=rel_type, source=source, target=target, properties=properties
        )
        self._live_rels += 1
        self._out[source].add(rel_id)
        self._in[target].add(rel_id)
        self._adjacency_add(rel_id, rel_type, source, target)
        self._record(("rel_created", rel_id))
        return rel_id

    def delete_relationship(self, rel_id: int) -> None:
        """Delete a relationship (idempotent on tombstones)."""
        record = self._rel_record(rel_id)
        if record.deleted:
            return
        record.deleted = True
        self._live_rels -= 1
        self._out.get(record.source, set()).discard(rel_id)
        self._in.get(record.target, set()).discard(rel_id)
        self._adjacency_discard(rel_id, record.type, record.source, record.target)
        self._record(("rel_deleted", rel_id))

    def delete_node(self, node_id: int, *, allow_dangling: bool = False) -> None:
        """Delete a node.

        With ``allow_dangling=False`` (the well-formed behaviour) the
        node must have no live relationships; otherwise
        :class:`DanglingRelationshipError` is raised.  With
        ``allow_dangling=True`` (legacy emulation) the node is removed
        even though relationships still point at it, producing exactly
        the illegal intermediate state described in Section 4.2.
        """
        record = self._node_record(node_id)
        if record.deleted:
            return
        attached = self.out_relationships(node_id) | self.in_relationships(
            node_id
        )
        if attached and not allow_dangling:
            raise DanglingRelationshipError(node_id, sorted(attached))
        record.deleted = True
        self._live_nodes -= 1
        self._label_index.remove(node_id, record.labels)
        self._deindex_node(node_id)
        self._record(("node_deleted", node_id))

    def add_label(self, node_id: int, label: str) -> None:
        """Add a label to a live node (no-op if already present)."""
        record = self._require_live_node(node_id)
        if label in record.labels:
            return
        mark = self.mark()
        record.labels.add(label)
        self._label_index.add(node_id, (label,))
        self._record(("label_added", node_id, label))
        self._reindex_node(node_id)
        self._enforce_unique(node_id, mark)

    def remove_label(self, node_id: int, label: str) -> None:
        """Remove a label from a live node (no-op if absent)."""
        record = self._require_live_node(node_id)
        if label not in record.labels:
            return
        record.labels.discard(label)
        self._label_index.remove(node_id, (label,))
        self._reindex_node(node_id)
        self._record(("label_removed", node_id, label))

    def set_node_property(self, node_id: int, key: str, value: Any) -> None:
        """Set (or, with value=None, remove) a node property."""
        record = self._require_live_node(node_id)
        old = record.properties.get(key, _MISSING)
        if value is None:
            if old is _MISSING:
                return
            del record.properties[key]
        else:
            require_storable(value, key)
            record.properties[key] = value
        mark = len(self._journal)
        self._record(("node_prop", node_id, key, old))
        self._reindex_node(node_id, only_key=key)
        self._enforce_unique(node_id, mark, only_key=key)

    def set_rel_property(self, rel_id: int, key: str, value: Any) -> None:
        """Set (or, with value=None, remove) a relationship property."""
        record = self._rel_record(rel_id)
        if record.deleted:
            raise DeletedEntityError(
                f"cannot set property on deleted relationship {rel_id}"
            )
        old = record.properties.get(key, _MISSING)
        if value is None:
            if old is _MISSING:
                return
            del record.properties[key]
        else:
            require_storable(value, key)
            record.properties[key] = value
        self._record(("rel_prop", rel_id, key, old))

    def _require_live_node(self, node_id: int) -> _NodeRecord:
        record = self._node_record(node_id)
        if record.deleted:
            raise DeletedEntityError(
                f"cannot modify deleted node {node_id}"
            )
        return record

    # ------------------------------------------------------------------
    # Property indexes
    # ------------------------------------------------------------------

    def create_index(self, label: str, key: str) -> PropertyIndex:
        """Create (or return) a property index on ``:label(key)``."""
        index = self._property_indexes.get((label, key))
        if index is not None:
            return index
        index = PropertyIndex(label, key)
        index.counters = self.counters
        for node_id in self._label_index.nodes_with_label(label):
            value = self._nodes[node_id].properties.get(key)
            if value is not None:
                index.add(node_id, value)
        self._property_indexes[(label, key)] = index
        self._log_schema(("create_index", label, key))
        return index

    def drop_index(self, label: str, key: str) -> None:
        """Drop a property index if it exists."""
        if self._property_indexes.pop((label, key), None) is not None:
            self._log_schema(("drop_index", label, key))

    def property_index(self, label: str, key: str) -> PropertyIndex | None:
        """The index on ``:label(key)`` if one was created."""
        return self._property_indexes.get((label, key))

    def _reindex_node(self, node_id: int, only_key: str | None = None) -> None:
        record = self._nodes.get(node_id)
        if record is None or record.deleted:
            self._deindex_node(node_id)
            return
        for (label, key), index in self._property_indexes.items():
            if only_key is not None and key != only_key:
                continue
            if label in record.labels and key in record.properties:
                index.add(node_id, record.properties[key])
            else:
                index.discard(node_id)

    def _deindex_node(self, node_id: int) -> None:
        for index in self._property_indexes.values():
            index.discard(node_id)

    # ------------------------------------------------------------------
    # Uniqueness constraints
    # ------------------------------------------------------------------

    def create_unique_constraint(self, label: str, key: str) -> None:
        """Require ``:label(key)`` values to be unique across live nodes.

        Creates (or reuses) the backing property index, validates the
        existing data, and from then on rejects any create / SET /
        label addition that would introduce a duplicate.  Violations
        raise :class:`ConstraintViolationError`; the offending mutation
        is undone before raising, so a failed statement still rolls
        back cleanly.
        """
        index = self.create_index(label, key)
        duplicates = index.duplicate_buckets()
        if duplicates:
            worst = sorted(duplicates[0])
            raise ConstraintViolationError(
                f"cannot create uniqueness constraint on :{label}({key}): "
                f"existing nodes {worst} share a value"
            )
        if (label, key) not in self._unique_constraints:
            self._unique_constraints.add((label, key))
            self._log_schema(("create_constraint", label, key))

    def drop_unique_constraint(self, label: str, key: str) -> None:
        """Drop a uniqueness constraint (the index remains)."""
        if (label, key) in self._unique_constraints:
            self._unique_constraints.discard((label, key))
            self._log_schema(("drop_constraint", label, key))

    def unique_constraints(self) -> frozenset[tuple[str, str]]:
        """The active uniqueness constraints."""
        return frozenset(self._unique_constraints)

    def _enforce_unique(
        self, node_id: int, mark: int, only_key: str | None = None
    ) -> None:
        record = self._nodes.get(node_id)
        if record is None or record.deleted or not self._unique_constraints:
            return
        for label, key in self._unique_constraints:
            if only_key is not None and key != only_key:
                continue
            if label not in record.labels or key not in record.properties:
                continue
            index = self._property_indexes[(label, key)]
            bucket = index.bucket_of(node_id)
            if len(bucket) > 1:
                others = sorted(bucket - {node_id})
                self.rollback_to(mark)
                raise ConstraintViolationError(
                    f"uniqueness constraint on :{label}({key}) violated: "
                    f"node {node_id} duplicates node(s) {others}"
                )

    # ------------------------------------------------------------------
    # Snapshots and copies
    # ------------------------------------------------------------------

    def snapshot(self, *, include_dangling: bool = True) -> GraphSnapshot:
        """Immutable copy of the current graph.

        Live relationships whose endpoints were deleted (legacy dangling
        state) are included by default so that
        :meth:`GraphSnapshot.has_dangling` can observe the illegal
        state; pass ``include_dangling=False`` to project them away.
        """
        nodes = frozenset(
            node_id
            for node_id, record in self._nodes.items()
            if not record.deleted
        )
        rel_ids = [
            rel_id
            for rel_id, record in self._rels.items()
            if not record.deleted
        ]
        if not include_dangling:
            rel_ids = [
                rel_id
                for rel_id in rel_ids
                if self._rels[rel_id].source in nodes
                and self._rels[rel_id].target in nodes
            ]
        return GraphSnapshot(
            nodes=nodes,
            relationships=frozenset(rel_ids),
            source={r: self._rels[r].source for r in rel_ids},
            target={r: self._rels[r].target for r in rel_ids},
            labels={
                n: frozenset(self._nodes[n].labels) for n in nodes
            },
            types={r: self._rels[r].type for r in rel_ids},
            node_properties={
                n: dict(self._nodes[n].properties) for n in nodes
            },
            rel_properties={
                r: dict(self._rels[r].properties) for r in rel_ids
            },
        )

    def copy(self) -> "GraphStore":
        """Deep copy of the live graph (journal and tombstones dropped)."""
        clone = GraphStore()
        id_map: dict[int, int] = {}
        for node in self.nodes():
            id_map[node.id] = clone.create_node(
                node.labels, dict(node.properties)
            )
        for rel in self.relationships():
            source = id_map.get(rel.start.id)
            target = id_map.get(rel.end.id)
            if source is None or target is None:
                continue  # dangling relationships are not copied
            clone.create_relationship(
                rel.type, source, target, dict(rel.properties)
            )
        clone.commit_to(0)
        return clone

    def load_snapshot(self, snapshot: GraphSnapshot) -> dict[int, int]:
        """Append the contents of *snapshot* into this store.

        Returns the node-id mapping from snapshot ids to new store ids.
        """
        id_map: dict[int, int] = {}
        for node_id in sorted(snapshot.nodes):
            id_map[node_id] = self.create_node(
                snapshot.labels.get(node_id, frozenset()),
                dict(snapshot.node_properties.get(node_id, {})),
            )
        for rel_id in sorted(snapshot.relationships):
            source = id_map.get(snapshot.source[rel_id])
            target = id_map.get(snapshot.target[rel_id])
            if source is None or target is None:
                continue
            self.create_relationship(
                snapshot.types[rel_id],
                source,
                target,
                dict(snapshot.rel_properties.get(rel_id, {})),
            )
        return id_map

    def __repr__(self) -> str:
        return (
            f"GraphStore({self.node_count()} nodes, "
            f"{self.relationship_count()} relationships)"
        )
