"""String interning for the columnar graph store.

Labels, relationship types and property keys come from tiny
vocabularies (a handful of distinct strings describe millions of
entities), yet the dict-of-objects layout stored a fresh reference --
and often a fresh ``str`` -- per entity.  :class:`StringPool` interns
each distinct string once and hands out a small, stable integer id:

* node label sets become bitmasks over pool ids (dictionary-encoded in
  :class:`~repro.graph.store.GraphStore`, so a million ``:User`` nodes
  share one ``frozenset`` and one mask ``int``);
* relationship types become one 4-byte entry in a type column;
* property-map keys are canonicalised through :meth:`canon`, so every
  ``{"id": ...}`` map points at the same key object instead of carrying
  its own copy.

Ids are allocated densely in first-intern order and are never freed:
a journal rollback that removes the last ``:Ghost`` node keeps the
pool entry, which keeps ids stable for the whole store lifetime (the
match planner and adjacency groups cache them).  The pool is *not*
persisted -- checkpoints and the WAL carry plain strings -- so a
recovered store re-interns lazily in replay order; only the mapping
differs, never the observable graph.
"""

from __future__ import annotations

from typing import Iterator


class StringPool:
    """A bidirectional ``str`` <-> dense ``int`` intern table."""

    __slots__ = ("_ids", "_strings")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []

    def intern(self, text: str) -> int:
        """The id of *text*, allocating the next dense id if new."""
        sid = self._ids.get(text)
        if sid is None:
            sid = len(self._strings)
            self._ids[text] = sid
            self._strings.append(text)
        return sid

    def id_of(self, text: str) -> int | None:
        """The id of *text*, or ``None`` -- never allocates.

        Lookup paths (typed expansions, index maintenance) use this so
        probing for a type that was never created cannot grow the pool.
        """
        return self._ids.get(text)

    def text(self, sid: int) -> str:
        """The string with id *sid* (which must have been interned)."""
        return self._strings[sid]

    def canon(self, text: str) -> str:
        """The pooled (canonical) ``str`` object equal to *text*.

        Property-map keys are routed through this, so homogeneous
        records share one key object per distinct key instead of one
        per record.
        """
        return self._strings[self.intern(text)]

    def __contains__(self, text: str) -> bool:
        return text in self._ids

    def __len__(self) -> int:
        return len(self._strings)

    def __iter__(self) -> Iterator[str]:
        """All interned strings, in id (first-intern) order."""
        return iter(self._strings)

    def check(self) -> list[str]:
        """Internal-consistency problems (empty when healthy).

        The invariant oracle calls this: ids must be dense, and the
        forward and reverse tables must be exact inverses.
        """
        problems: list[str] = []
        if len(self._ids) != len(self._strings):
            problems.append(
                f"string pool maps {len(self._ids)} strings to "
                f"{len(self._strings)} ids"
            )
        for sid, text in enumerate(self._strings):
            if self._ids.get(text) != sid:
                problems.append(
                    f"string pool id {sid} holds {text!r} but the "
                    f"reverse map says {self._ids.get(text)!r}"
                )
        return problems

    def __repr__(self) -> str:
        return f"StringPool({len(self._strings)} strings)"
