"""The Cypher value model.

Values manipulated by the interpreter are plain Python objects:

================  =============================================
Cypher type       Python representation
================  =============================================
null              ``None``
Boolean           ``bool``
Integer           ``int``
Float             ``float``
String            ``str``
List              ``list``
Map               ``dict`` (string keys)
Node              :class:`repro.graph.model.Node`
Relationship      :class:`repro.graph.model.Relationship`
Path              :class:`repro.graph.model.Path`
================  =============================================

Two distinct notions of equality coexist in Cypher, and the paper's
semantics relies on both:

* **Ternary equality** (:func:`cypher_eq`) is the ``=`` operator used in
  predicates.  It follows SQL-style three-valued logic: any comparison
  involving ``null`` yields ``null`` (represented as ``None``).  This is
  why a pattern map ``{id: null}`` never matches (Example 5 of the
  paper): the induced predicate ``n.id = null`` is ``null``, not true.

* **Equivalence** (:func:`equivalent`) is the reflexive equality used
  for grouping, ``DISTINCT``, and the collapsibility relations of the
  revised ``MERGE`` (Definitions 1 and 2).  Under equivalence
  ``null = null`` holds, so two created nodes that both lack a property
  agree on that key (ι(n, k) = null for both) and may collapse.

The module also defines the *global sort order* used by ``ORDER BY``
and helpers validating values that may be stored in property maps.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.errors import CypherEvaluationError, CypherTypeError

#: Values considered numbers for comparison purposes. ``bool`` is a
#: subclass of ``int`` in Python but is a distinct type in Cypher, so
#: all type dispatch below checks ``bool`` first.
NUMBER_TYPES = (int, float)

#: The Cypher Integer domain: 64-bit signed, matching the openCypher
#: TCK and Neo4j's store format.  Python integers are unbounded, so
#: arithmetic must check its results explicitly.
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


def check_int64(value: int, operation: str) -> int:
    """Return *value* if it fits the Integer domain, else raise.

    Cypher Integers are 64-bit signed; an arithmetic result outside
    that range is an evaluation error, not a silent promotion to an
    arbitrary-precision integer.
    """
    if INT64_MIN <= value <= INT64_MAX:
        return value
    raise CypherEvaluationError(
        f"integer overflow: {operation} result is outside the 64-bit "
        f"Integer range [{INT64_MIN}, {INT64_MAX}]"
    )


def is_null(value: Any) -> bool:
    """Return True if *value* is the Cypher null."""
    return value is None


def is_number(value: Any) -> bool:
    """Return True for Cypher Integer or Float (not Boolean)."""
    return isinstance(value, NUMBER_TYPES) and not isinstance(value, bool)


def is_primitive(value: Any) -> bool:
    """Return True for storable scalar values (no entities, no null)."""
    return isinstance(value, (bool, int, float, str))


def is_entity(value: Any) -> bool:
    """Return True for Node or Relationship handles."""
    # Imported lazily to avoid a circular import with repro.graph.model.
    from repro.graph.model import Node, Relationship

    return isinstance(value, (Node, Relationship))


def type_name(value: Any) -> str:
    """A human-readable Cypher type name, for error messages."""
    from repro.graph.model import Node, Path, Relationship

    if value is None:
        return "Null"
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    if isinstance(value, list):
        return "List"
    if isinstance(value, dict):
        return "Map"
    if isinstance(value, Node):
        return "Node"
    if isinstance(value, Relationship):
        return "Relationship"
    if isinstance(value, Path):
        return "Path"
    return type(value).__name__


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

def tri_not(value: Any) -> Any:
    """NOT under three-valued logic; null stays null."""
    if value is None:
        return None
    _require_boolean(value, "NOT")
    return not value


def tri_and(left: Any, right: Any) -> Any:
    """AND under three-valued logic."""
    if left is not None:
        _require_boolean(left, "AND")
    if right is not None:
        _require_boolean(right, "AND")
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def tri_or(left: Any, right: Any) -> Any:
    """OR under three-valued logic."""
    if left is not None:
        _require_boolean(left, "OR")
    if right is not None:
        _require_boolean(right, "OR")
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def tri_xor(left: Any, right: Any) -> Any:
    """XOR under three-valued logic."""
    if left is not None:
        _require_boolean(left, "XOR")
    if right is not None:
        _require_boolean(right, "XOR")
    if left is None or right is None:
        return None
    return left != right


def _require_boolean(value: Any, operator: str) -> None:
    if not isinstance(value, bool):
        raise CypherTypeError(
            f"{operator} expects a Boolean, got {type_name(value)}"
        )


# ---------------------------------------------------------------------------
# Ternary equality and comparison (the `=`, `<`, ... operators)
# ---------------------------------------------------------------------------

def cypher_eq(left: Any, right: Any) -> Any:
    """The Cypher ``=`` operator: True, False, or None (unknown).

    * any operand null => None;
    * numbers compare numerically across int/float;
    * lists and maps compare element-wise, propagating unknowns;
    * entities compare by identity (their graph-assigned id);
    * values of genuinely different types compare False.
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left == right
        return False
    if is_number(left) and is_number(right):
        if isinstance(left, float) and math.isnan(left):
            return False
        if isinstance(right, float) and math.isnan(right):
            return False
        return left == right
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, list) and isinstance(right, list):
        return _eq_lists(left, right)
    if isinstance(left, dict) and isinstance(right, dict):
        return _eq_maps(left, right)
    if is_entity(left) and is_entity(right):
        return type(left) is type(right) and left.id == right.id
    from repro.graph.model import Path

    if isinstance(left, Path) and isinstance(right, Path):
        return left == right
    return False


def _eq_lists(left: list, right: list) -> Any:
    if len(left) != len(right):
        return False
    unknown = False
    for a, b in zip(left, right):
        result = cypher_eq(a, b)
        if result is False:
            return False
        if result is None:
            unknown = True
    return None if unknown else True


def _eq_maps(left: dict, right: dict) -> Any:
    if set(left) != set(right):
        return False
    unknown = False
    for key in left:
        result = cypher_eq(left[key], right[key])
        if result is False:
            return False
        if result is None:
            unknown = True
    return None if unknown else True


def cypher_neq(left: Any, right: Any) -> Any:
    """The Cypher ``<>`` operator."""
    return tri_not(cypher_eq(left, right))


def cypher_lt(left: Any, right: Any) -> Any:
    """The Cypher ``<`` operator; None when incomparable or null."""
    if left is None or right is None:
        return None
    if is_number(left) and is_number(right):
        if _has_nan(left, right):
            return False
        return left < right
    if isinstance(left, str) and isinstance(right, str) and not (
        isinstance(left, bool) or isinstance(right, bool)
    ):
        return left < right
    if isinstance(left, bool) and isinstance(right, bool):
        return left < right
    # Values of incomparable types: comparison is undefined (null).
    return None


def cypher_lte(left: Any, right: Any) -> Any:
    """The Cypher ``<=`` operator."""
    less = cypher_lt(left, right)
    if less is True:
        return True
    equal = cypher_eq(left, right)
    if less is None or equal is None:
        return None
    return equal


def cypher_gt(left: Any, right: Any) -> Any:
    """The Cypher ``>`` operator."""
    return cypher_lt(right, left)


def cypher_gte(left: Any, right: Any) -> Any:
    """The Cypher ``>=`` operator."""
    return cypher_lte(right, left)


def _has_nan(*values: Any) -> bool:
    return any(isinstance(v, float) and math.isnan(v) for v in values)


def cypher_in(item: Any, container: Any) -> Any:
    """The Cypher ``IN`` operator over lists, with ternary semantics."""
    if container is None:
        return None
    if not isinstance(container, list):
        raise CypherTypeError(
            f"IN expects a List on the right, got {type_name(container)}"
        )
    unknown = False
    for element in container:
        result = cypher_eq(item, element)
        if result is True:
            return True
        if result is None:
            unknown = True
    return None if unknown else False


# ---------------------------------------------------------------------------
# Equivalence (grouping / DISTINCT / collapsibility equality)
# ---------------------------------------------------------------------------

def equivalent(left: Any, right: Any) -> bool:
    """Reflexive equality: null = null, NaN = NaN, entities by id.

    This is the equality used to group records, deduplicate DISTINCT
    results, and decide collapsibility of created nodes/relationships in
    the revised MERGE (Definitions 1-2 of the paper).
    """
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if is_number(left) and is_number(right):
        if _has_nan(left):
            return _has_nan(right)
        if _has_nan(right):
            return False
        return left == right
    if isinstance(left, list) and isinstance(right, list):
        return len(left) == len(right) and all(
            equivalent(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        return set(left) == set(right) and all(
            equivalent(left[k], right[k]) for k in left
        )
    if is_entity(left) and is_entity(right):
        return type(left) is type(right) and left.id == right.id
    if type(left) is not type(right):
        return False
    return left == right


def grouping_key(value: Any) -> Any:
    """A hashable canonical key such that two values share a key iff
    they are :func:`equivalent`.

    Used to bucket records during grouping, DISTINCT, and the Grouping
    MERGE semantics without quadratic pairwise comparison.
    """
    from repro.graph.model import Node, Path, Relationship

    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("bool", value)
    if is_number(value):
        if isinstance(value, float) and math.isnan(value):
            return ("nan",)
        # 1 and 1.0 are equivalent; normalise via float when exact.
        if isinstance(value, float) and value.is_integer():
            return ("num", int(value))
        return ("num", value)
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, list):
        return ("list", tuple(grouping_key(v) for v in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((k, grouping_key(v)) for k, v in value.items())),
        )
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, Path):
        return ("path", value.grouping_key())
    raise CypherTypeError(f"value {value!r} cannot be grouped")


# ---------------------------------------------------------------------------
# Global sort order (ORDER BY)
# ---------------------------------------------------------------------------

#: Rank of each type in Cypher's global sort order.  Within a rank,
#: values compare by their natural order; across ranks, by rank.
_TYPE_RANK = {
    "Map": 0,
    "Node": 1,
    "Relationship": 2,
    "List": 3,
    "Path": 4,
    "String": 5,
    "Boolean": 6,
    "Number": 7,
    "Null": 8,  # nulls sort last in ascending order
}


def sort_key(value: Any) -> tuple:
    """A total-order key implementing Cypher's global sort order.

    ``ORDER BY`` must order *any* two values, including values of
    different types and nulls; this key makes Python's ``sorted``
    implement exactly that order.
    """
    from repro.graph.model import Node, Path, Relationship

    if value is None:
        return (_TYPE_RANK["Null"], 0)
    if isinstance(value, bool):
        return (_TYPE_RANK["Boolean"], value)
    if is_number(value):
        if isinstance(value, float) and math.isnan(value):
            return (_TYPE_RANK["Number"], math.inf, 1)
        return (_TYPE_RANK["Number"], value, 0)
    if isinstance(value, str):
        return (_TYPE_RANK["String"], value)
    if isinstance(value, list):
        return (_TYPE_RANK["List"], tuple(sort_key(v) for v in value))
    if isinstance(value, dict):
        return (
            _TYPE_RANK["Map"],
            tuple(sorted((k, sort_key(v)) for k, v in value.items())),
        )
    if isinstance(value, Node):
        return (_TYPE_RANK["Node"], value.id)
    if isinstance(value, Relationship):
        return (_TYPE_RANK["Relationship"], value.id)
    if isinstance(value, Path):
        return (_TYPE_RANK["Path"], value.grouping_key())
    raise CypherTypeError(f"value {value!r} is not orderable")


# ---------------------------------------------------------------------------
# Property storage validation
# ---------------------------------------------------------------------------

def is_storable(value: Any) -> bool:
    """True if *value* may be stored as a property value.

    Storable values are non-null scalars and (possibly empty) lists of
    scalars of a single type, mirroring the property-graph model where
    ι maps to values and ι(n, k) = null encodes absence.
    """
    if is_primitive(value):
        return True
    if isinstance(value, list):
        return all(is_primitive(v) for v in value)
    return False


def require_storable(value: Any, key: str) -> None:
    """Raise :class:`CypherTypeError` unless *value* is storable."""
    if not is_storable(value):
        raise CypherTypeError(
            f"cannot store value of type {type_name(value)} "
            f"under property key '{key}'"
        )


def normalize_property_map(pairs: Iterable[tuple[str, Any]]) -> dict:
    """Build a property map, dropping null values (absent keys).

    Setting a property to null removes it; a map literal with a null
    value therefore produces a map without that key, which is what makes
    nodes created from null table cells propertyless (Example 5).
    """
    result: dict[str, Any] = {}
    for key, value in pairs:
        if value is None:
            result.pop(key, None)
            continue
        require_storable(value, key)
        result[key] = value
    return result
