"""repro: a reproduction of "Updating Graph Databases with Cypher"
(Green et al., PVLDB 2019).

A pure-Python property-graph database with a Cypher interpreter that
implements *both* update semantics the paper discusses:

* the legacy Cypher 9 behaviour, including its atomicity and
  determinism anomalies (``Dialect.CYPHER9``), and
* the paper's revision -- atomic SET/DELETE and the ``MERGE ALL`` /
  ``MERGE SAME`` clauses, plus the three unshipped Section 6 proposals
  (``Dialect.REVISED``).

Quickstart::

    from repro import Graph

    g = Graph()
    g.run("CREATE (:User {id: 89, name: 'Bob'})")
    print(g.run("MATCH (u:User) RETURN u.name AS name").records)
"""

from repro.dialect import Dialect
from repro.engine import CypherEngine, QueryResult, UpdateCounters
from repro.errors import (
    CypherError,
    CypherSyntaxError,
    DanglingRelationshipError,
    MergeSyntaxError,
    PropertyConflictError,
)
from repro.graph.counters import NO_COUNTERS, DbHits, HitCounters
from repro.graph.model import GraphSnapshot, Node, Path, Relationship
from repro.graph.store import GraphStore
from repro.core.merge import MergeSemantics
from repro.runtime.context import MatchMode
from repro.runtime.profile import ClauseProfile, QueryProfile
from repro.runtime.table import DrivingTable
from repro.session import Graph, Transaction

__version__ = "1.0.0"

__all__ = [
    "ClauseProfile",
    "CypherEngine",
    "CypherError",
    "CypherSyntaxError",
    "DanglingRelationshipError",
    "DbHits",
    "Dialect",
    "DrivingTable",
    "Graph",
    "GraphSnapshot",
    "GraphStore",
    "HitCounters",
    "MatchMode",
    "MergeSemantics",
    "MergeSyntaxError",
    "NO_COUNTERS",
    "Node",
    "Path",
    "PropertyConflictError",
    "QueryProfile",
    "QueryResult",
    "Relationship",
    "Transaction",
    "UpdateCounters",
]
